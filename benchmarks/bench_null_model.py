"""Benchmark: regenerate Falsifiability control — the filecule advantage must vanish when co-access structure is shuffled away.

Run with ``pytest benchmarks/bench_null_model.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_null_model(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "null_model")
