"""Benchmark: regenerate Section 6 quantified — filecule-batched vs file-at-a-time inbound transfer scheduling.

Run with ``pytest benchmarks/bench_transfer_scheduling.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_transfer_scheduling(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "transfer_scheduling")
