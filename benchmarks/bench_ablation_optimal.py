"""Benchmark: regenerate Optimality ablation — online filecule policies vs clairvoyant Belady MIN at both granularities.

Run with ``pytest benchmarks/bench_ablation_optimal.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_ablation_optimal(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "ablation_optimal")
