"""Benchmark: regenerate Figure 9 — requests per filecule (thousands cold, tens very hot).

Run with ``pytest benchmarks/bench_fig9.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig9(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig9")
