"""Benchmark: regenerate Figure 7 — files per filecule per data tier.

Run with ``pytest benchmarks/bench_fig7.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig7(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig7")
