"""Benchmark: regenerate Section 6 — proactive replication at file vs filecule granularity under per-site budgets.

Run with ``pytest benchmarks/bench_replication.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_replication(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "replication")
