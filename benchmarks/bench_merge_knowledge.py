"""Benchmark: regenerate Section 6 extension — distributed identification accuracy as concentrators pool partitions.

Run with ``pytest benchmarks/bench_merge_knowledge.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_merge_knowledge(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "merge_knowledge")
