"""Benchmark: regenerate Section 8 — filecule stability across trace epochs (future-work experiment).

Run with ``pytest benchmarks/bench_ablation_dynamics.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_ablation_dynamics(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "ablation_dynamics")
