"""Benchmark: policy robustness across workload scenarios — every
registered policy swept over the :mod:`repro.scenario` catalog with the
stationary world as the degradation baseline.

Run with ``pytest "benchmarks/bench_robustness-matrix.py" --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_robustness_matrix(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "robustness-matrix")
