"""Benchmark: regenerate Robustness sweep — Figure 10 improvement factors across five independent workload seeds.

Run with ``pytest benchmarks/bench_robustness.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_robustness(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "robustness")
