"""Benchmark: regenerate Micro-structure diagnostics — input-set reuse, pairwise overlap, and reuse-distance signatures.

Run with ``pytest benchmarks/bench_characterization.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_characterization(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "characterization")
