"""Benchmark: regenerate Ablation — filecule-LRU against FIFO/LRU/LFU/SIZE/GDS/Landlord/group-prefetch baselines.

Run with ``pytest benchmarks/bench_ablation_policies.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_ablation_policies(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "ablation_policies")
