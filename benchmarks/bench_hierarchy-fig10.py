"""Benchmark: Figure 10 at hierarchy scale — origin offload for file- vs
filecule-LRU regional tiers behind a site cache.

Run with ``pytest "benchmarks/bench_hierarchy-fig10.py" --benchmark-only -s``.
(The hierarchy *engine* benchmark with its gates lives in
``benchmarks/bench_hierarchy.py``.)
"""

from benchmarks.conftest import run_and_report


def test_hierarchy_fig10(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "hierarchy-fig10")
