"""Benchmark: regenerate Figure 8 — filecule popularity per tier with Zipf fit (non-Zipf, flattened head).

Run with ``pytest benchmarks/bench_fig8.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig8(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig8")
