"""Benchmark: regenerate Table 2 — per-domain jobs, submission nodes, sites, users, filecules, files and total data.

Run with ``pytest benchmarks/bench_table2.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_table2(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "table2")
