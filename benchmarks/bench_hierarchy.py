"""Benchmark the hierarchical replay engine across workload tiers.

For each tier in ``REPRO_BENCH_TIERS`` (comma list; default ``tiny``):

* **flat-collapse overhead** — a single-tier hierarchy replays the same
  stream as :func:`repro.engine.simulate`; the results must be
  bit-identical and the hierarchy wrapper's wall-clock overhead is
  reported (and gated ≤ ``FLAT_OVERHEAD_TOL`` at every tier — the
  wrapper is spec parsing plus arithmetic, not a second replay);
* **miss-through grid** — the hierarchy-scale Figure 10 cells
  (two-tier ``site + regional`` stacks, file vs filecule regional
  policy) replayed through :func:`repro.hierarchy.hierarchy_sweep`,
  serially and with ``jobs=4``; the parallel run must be bit-identical
  and never slower than serial beyond tolerance;
* **ordering gate** — the filecule regional tier's origin offload must
  match or beat file granularity at every measured capacity (the §5
  result the hierarchy experiment reproduces).

Results go to ``BENCH_hierarchy.json`` (repo root, with
:func:`~repro.util.host.host_info` provenance) and
``benchmarks/output/hierarchy.txt``.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_hierarchy.py -q

The committed artifact is regenerated with
``REPRO_BENCH_TIERS=tiny,paper``; the ``paper`` trace comes from the
on-disk trace store, so only the first run pays generation.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.engine import simulate
from repro.experiments.base import EXPERIMENT_SEED, get_context
from repro.hierarchy import (
    estimate_transfer_seconds,
    hierarchy_sweep,
    simulate_hierarchy,
)
from repro.parallel import plan_sweep
from repro.util.host import host_info
from repro.util.units import format_bytes

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_hierarchy.json"

#: Single-tier hierarchy wall clock vs the flat replay it wraps.  The
#: wrapper adds spec parsing and origin arithmetic only; the tolerance
#: absorbs run-to-run noise on sub-second tiny-tier cells.
FLAT_OVERHEAD_TOL = 1.5
FLAT_OVERHEAD_GRACE_S = 0.25

#: "jobs=4 is never slower than serial" tolerance, as in bench_sweep.
NEVER_SLOWER_TOL = 1.35
NEVER_SLOWER_GRACE_S = 0.5

#: Site tier fraction (fixed) and regional-tier fractions (swept) for
#: the miss-through grid — the hierarchy_fig10 shape, coarsened.
SITE_FRACTION = 0.005
REGIONAL_FRACTIONS: dict[str, tuple[float, ...]] = {
    "tiny": (0.01, 0.05, 0.2),
    "small": (0.01, 0.05, 0.2),
    "default": (0.01, 0.05, 0.2),
    "paper": (0.01, 0.1),
    "grown": (0.1,),
}

TIERS = tuple(REGIONAL_FRACTIONS)


def bench_tiers() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_TIERS", "tiny")
    tiers = tuple(t.strip() for t in raw.split(",") if t.strip())
    unknown = [t for t in tiers if t not in TIERS]
    if unknown:
        raise ValueError(
            f"REPRO_BENCH_TIERS: unknown tiers {unknown}; "
            f"choose from {sorted(TIERS)}"
        )
    return tiers


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _two_tier(policy: str, fraction: float) -> str:
    return (
        f"site:file-lru@{SITE_FRACTION * 100:g}%"
        f"+regional:{policy}@{fraction * 100:g}%+origin"
    )


def _bench_tier(tier: str, lines: list[str]) -> dict:
    ctx = get_context(tier, EXPERIMENT_SEED)
    trace, partition = ctx.trace, ctx.partition
    total = trace.total_bytes()
    lines.append(
        f"[{tier}] {trace.n_accesses:,} accesses, "
        f"{format_bytes(total, 1)} data"
    )

    # --- flat collapse: single tier == simulate, and nearly free -----
    cap = max(total // 10, 1)
    trace.replay_columns  # warm the shared list cache outside timing
    flat, flat_wall = _timed(
        lambda: simulate(trace, "filecule-lru", cap, partition=partition)
    )
    single, single_wall = _timed(
        lambda: simulate_hierarchy(
            trace, f"site:filecule-lru@{cap}+origin", partition=partition
        )
    )
    assert single.tiers[0].metrics == flat, (
        f"{tier}: single-tier hierarchy diverged from simulate()"
    )
    overhead = single_wall / flat_wall if flat_wall else 1.0
    lines.append(
        f"[{tier}] flat collapse: simulate {flat_wall:6.2f}s, "
        f"1-tier hierarchy {single_wall:6.2f}s ({overhead:.2f}x)"
    )
    assert single_wall <= flat_wall * FLAT_OVERHEAD_TOL + FLAT_OVERHEAD_GRACE_S, (
        f"{tier}: single-tier hierarchy {single_wall:.2f}s vs flat "
        f"{flat_wall:.2f}s — wrapper overhead above tolerance"
    )

    # --- miss-through grid: serial vs jobs=4, bit-identical ----------
    fractions = REGIONAL_FRACTIONS[tier]
    grid = [
        _two_tier(policy, f)
        for policy in ("file-lru", "filecule-lru")
        for f in fractions
    ]
    serial, serial_wall = _timed(
        lambda: hierarchy_sweep(trace, grid, partition=partition)
    )
    plan = plan_sweep(len(grid), trace.n_accesses, 4)
    parallel, parallel_wall = _timed(
        lambda: hierarchy_sweep(trace, grid, jobs=4, partition=partition)
    )
    assert parallel == serial, f"{tier}: jobs=4 diverged from serial"
    mode = "pool" if plan.use_parallel else "auto-serial"
    lines.append(
        f"[{tier}] {len(grid)}-cell grid: serial {serial_wall:6.2f}s, "
        f"jobs=4 ({mode}) {parallel_wall:6.2f}s "
        f"({serial_wall / parallel_wall:.2f}x)"
    )
    assert (
        parallel_wall <= serial_wall * NEVER_SLOWER_TOL + NEVER_SLOWER_GRACE_S
    ), (
        f"{tier}: hierarchy_sweep(jobs=4) took {parallel_wall:.2f}s vs "
        f"{serial_wall:.2f}s serial — slower than serial"
    )

    # --- ordering gate + per-cell report -----------------------------
    cells = []
    for f in fractions:
        file_res = serial[_two_tier("file-lru", f)]
        cule_res = serial[_two_tier("filecule-lru", f)]
        assert (
            cule_res.origin_byte_hit_rate
            >= file_res.origin_byte_hit_rate - 1e-9
        ), (
            f"{tier}: filecule regional tier offloads less than file "
            f"at {f:.1%} ({cule_res.origin_byte_hit_rate:.4f} < "
            f"{file_res.origin_byte_hit_rate:.4f})"
        )
        refill = estimate_transfer_seconds(cule_res)
        cells.append(
            {
                "regional_fraction": f,
                "file_origin_offload": round(
                    file_res.origin_byte_hit_rate, 4
                ),
                "filecule_origin_offload": round(
                    cule_res.origin_byte_hit_rate, 4
                ),
                "filecule_request_hit_rate": round(
                    cule_res.request_hit_rate, 4
                ),
                "filecule_link_refill_s": {
                    name: round(sec, 2) for name, sec in refill.items()
                },
            }
        )
        lines.append(
            f"[{tier}]   regional@{f:5.1%}: origin offload "
            f"{cells[-1]['file_origin_offload']:.3f} (file) vs "
            f"{cells[-1]['filecule_origin_offload']:.3f} (filecule)"
        )

    trace.release_replay_columns()
    n_replays = len(grid) * 2  # two caching tiers per cell
    return {
        "seed": EXPERIMENT_SEED,
        "grid": {
            "hierarchies": grid,
            "cells": len(grid),
            "tier_replays": n_replays,
            "accesses_per_cell": trace.n_accesses,
        },
        "flat_collapse": {
            "simulate_s": round(flat_wall, 4),
            "single_tier_s": round(single_wall, 4),
            "overhead": round(overhead, 2),
            "bit_identical": True,
        },
        "sweep": {
            "serial_s": round(serial_wall, 4),
            "jobs4_s": round(parallel_wall, 4),
            "jobs4_mode": mode,
            "vs_serial": round(serial_wall / parallel_wall, 2),
            "identical_to_serial": True,
        },
        "cells": cells,
        "gates": {
            "flat_overhead_tol": FLAT_OVERHEAD_TOL,
            "never_slower_tol": NEVER_SLOWER_TOL,
            "filecule_beats_file_at_origin": True,
        },
    }


def test_bench_hierarchy(benchmark, archive):
    tiers = bench_tiers()
    lines: list[str] = []

    def run_all():
        return {tier: _bench_tier(tier, lines) for tier in tiers}

    tier_payloads = benchmark.pedantic(run_all, rounds=1, iterations=1)

    payload = {
        "benchmark": "hierarchy",
        "host": host_info(),
        "tiers_run": list(tiers),
        "tiers": tier_payloads,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    header = (
        f"hierarchy bench — tiers {', '.join(tiers)} on "
        f"{payload['host']['cpus']} cpu(s), "
        f"python {payload['host']['python']}"
    )
    rendered = "\n".join(
        [header, *lines, "all variants bit-identical: yes"]
    )
    print()
    print(rendered)
    archive("hierarchy", rendered)
