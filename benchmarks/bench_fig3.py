"""Benchmark: regenerate Figure 3 — file size distribution (narrow, domain-ruled -- not web-like heavy-tailed).

Run with ``pytest benchmarks/bench_fig3.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig3(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig3")
