"""Benchmark: regenerate Figure 12 — per-user access intervals for the hottest filecule.

Run with ``pytest benchmarks/bench_fig12.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig12(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig12")
