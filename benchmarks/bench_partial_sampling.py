"""Benchmark: regenerate Section 6 sampling experiment — filecule identification accuracy vs observed job fraction.

Run with ``pytest benchmarks/bench_partial_sampling.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_partial_sampling(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "partial_sampling")
