"""Benchmark: online drift detection scored against scenario ground
truth — the ``detection`` experiment replays every non-stationary
scenario through a live flight-recorder daemon and scores each health
detector's precision/recall/lag against the injection windows.

Wall-clock here is dominated by the paced live replays (a fixed number
of seconds per scenario), not computation.

Run with ``pytest benchmarks/bench_detection.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_detection(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "detection")
