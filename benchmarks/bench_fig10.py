"""Benchmark: regenerate Figure 10 — LRU miss rate, file vs filecule granularity, across seven cache sizes.

Run with ``pytest benchmarks/bench_fig10.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig10(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig10")
