"""Benchmark: regenerate Figure 11 — per-site access intervals for the hottest filecule.

Run with ``pytest benchmarks/bench_fig11.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig11(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig11")
