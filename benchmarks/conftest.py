"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables/figures against the
shared default-scale workload (5% of DZero scale, seed 7 — the same
context `python -m repro.experiments all` uses), times it, prints the
rendered rows, and archives them under ``benchmarks/output/``.

Set ``REPRO_BENCH_SCALE=small`` (or ``tiny``) to run the harness on a
smaller workload.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.base import get_context, run_experiment

SCALE = os.environ.get("REPRO_BENCH_SCALE", "default")
OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def ctx():
    return get_context(SCALE)


@pytest.fixture(scope="session")
def archive():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def save(experiment_id: str, text: str) -> None:
        (OUTPUT_DIR / f"{experiment_id}.txt").write_text(text + "\n")

    return save


def run_and_report(benchmark, ctx, archive, experiment_id: str):
    """Benchmark one experiment once and emit its table/figure."""
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, ctx), rounds=1, iterations=1
    )
    rendered = result.render()
    print()
    print(rendered)
    archive(experiment_id, rendered)
    assert result.rows, f"{experiment_id} produced no rows"
    failing = [name for name, ok in result.checks.items() if not ok]
    assert not failing, f"{experiment_id}: failing checks {failing}"
    return result
