"""Benchmark: regenerate Figure 6 — filecule sizes in MB per data tier.

Run with ``pytest benchmarks/bench_fig6.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig6(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig6")
