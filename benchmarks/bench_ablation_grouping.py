"""Benchmark: regenerate Grouping ablation — bundle eviction vs learned prefetch vs filecule variants + stack-distance mechanism.

Run with ``pytest benchmarks/bench_ablation_grouping.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_ablation_grouping(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "ablation_grouping")
