"""Benchmark: regenerate Figure 4 — number of users sharing a filecule (~10% single-user; capped sharing).

Run with ``pytest benchmarks/bench_fig4.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig4(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig4")
