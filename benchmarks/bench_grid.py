"""Benchmark: regenerate Grid replay — end-to-end SAM substrate: station caches, tape, WAN, replication.

Run with ``pytest benchmarks/bench_grid.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_grid(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "grid")
