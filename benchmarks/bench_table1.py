"""Benchmark: regenerate Table 1 — per-tier users/jobs/files, input per job (MB) and wall time per job (hours).

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_table1(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "table1")
