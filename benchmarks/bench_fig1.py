"""Benchmark: regenerate Figure 1 — distribution of the number of input files per job (paper mean: 108).

Run with ``pytest benchmarks/bench_fig1.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig1(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig1")
