"""Benchmark the online filecule service end to end.

Starts the daemon in-process on an ephemeral loopback port, replays a
calibrated synthetic workload (≥ 1,000 jobs at the default scale) through
the concurrent load generator, verifies the served partition equals
offline identification of the same stream, and writes throughput plus
client-observed latency percentiles to ``BENCH_service.json`` (repo root)
and ``benchmarks/output/service.txt``, plus the server's full metrics
registry snapshot to ``benchmarks/output/metrics.json`` (per-op latency
histograms with min/p50/p99/max — the run's observability record).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path

from repro.core.identify import find_filecules
from repro.service import FileculeServer, ServiceState, jobs_from_trace, run_load
from repro.service.state import partition_checksum
from repro.util.units import GB
from repro.workload.calibration import small_config, tiny_config
from repro.workload.generator import generate_trace

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_service.json"
METRICS_JSON = REPO_ROOT / "benchmarks" / "output" / "metrics.json"

#: The service bench defaults to `small` (1,174 jobs — the acceptance
#: demo wants ≥ 1,000); REPRO_BENCH_SCALE=tiny shrinks it for smoke runs.
SCALE = tiny_config if os.environ.get("REPRO_BENCH_SCALE") == "tiny" else small_config
SEED = 7
CONNECTIONS = 8
ADVISE_EVERY = 10


async def _drive(jobs: list[dict]) -> tuple:
    server = FileculeServer(
        ServiceState(policy="lru", capacity_bytes=100 * GB)
    )
    await server.start()
    try:
        report = await run_load(
            "127.0.0.1",
            server.port,
            jobs,
            connections=CONNECTIONS,
            advise_every=ADVISE_EVERY,
        )
    finally:
        await server.stop()
    return report, server.metrics.snapshot()


def test_bench_service(benchmark, archive):
    trace = generate_trace(SCALE(), seed=SEED)
    jobs = jobs_from_trace(trace)

    report, server_metrics = benchmark.pedantic(
        lambda: asyncio.run(_drive(jobs)), rounds=1, iterations=1
    )

    # correctness gate: the streamed partition equals offline identification
    offline = partition_checksum(
        fc.file_ids.tolist() for fc in find_filecules(trace)
    )
    assert report.errors == 0
    assert report.final_stats["partition_checksum"] == offline
    assert report.final_stats["jobs_observed"] == trace.n_jobs

    payload = {
        "benchmark": "service",
        "scale": SCALE.__name__.removesuffix("_config"),
        "seed": SEED,
        "connections": CONNECTIONS,
        "advise_every": ADVISE_EVERY,
        "partition_checksum_matches_offline": True,
        "n_classes": report.final_stats["n_classes"],
        **report.as_dict(),
        "server": server_metrics,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    METRICS_JSON.parent.mkdir(parents=True, exist_ok=True)
    METRICS_JSON.write_text(
        json.dumps(
            {
                "benchmark": "service",
                "scale": payload["scale"],
                "seed": SEED,
                "metrics": server_metrics,
            },
            indent=2,
        )
        + "\n"
    )

    rendered = report.render() + (
        f"\npartition: {report.final_stats['n_classes']} classes, "
        f"checksum matches offline identification"
    )
    print()
    print(rendered)
    archive("service", rendered)

    assert report.requests_per_second > 0
    assert report.latencies_ms["ingest"]["p99"] >= report.latencies_ms["ingest"]["p50"]
