"""Benchmark the online filecule service: pre-shard baseline vs workers.

Measures two request mixes against each server configuration:

* **replay** — the calibrated job stream (one ``ingest`` per job plus an
  ``advise`` every tenth job).  This path is state-bound: most of each
  request is partition refinement and per-site cache modelling, so its
  ceiling is the state floor, not the protocol.  The served partition is
  verified against offline :func:`find_filecules` for every
  configuration (merged across workers via the §6 partition meet).
* **lookup** — ``filecule_of`` reads over the observed catalog, the
  service's placement-lookup API.  This is the protocol/read path the
  sharding PR optimizes: memoized per-class payloads, template-encoded
  responses, client pipelining, coalesced writes.

Rows:

* ``baseline`` — a faithful transcription of the pre-shard stack
  (commit c976267: per-file ingest accounting, per-response writes,
  uncached ``_class_info`` lookups) driven by its own serial depth-1
  client, exactly as the pre-shard bench measured it.  Same
  legacy-transcription methodology as ``bench_sweep.py``: the old code
  is measured fresh, in the same run, so host drift cancels out of the
  speedup ratios.
* ``workers N`` — the pre-fork SO_REUSEPORT cluster at each worker
  count, driven by a pre-encoded pipelined socket blaster (wrk-style:
  request lines are serialized off the clock so the measurement tracks
  server capacity, not client JSON throughput).

``cpus`` is recorded in the payload: on a single-CPU host the worker
rows measure sharding overhead rather than parallel speedup, and the
speedup-vs-baseline ratios come from the protocol fast path (see
``docs/PERFORMANCE.md``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q

``REPRO_BENCH_SCALE=tiny`` shrinks the workload for smoke runs;
``REPRO_BENCH_WORKERS=2`` (comma list) overrides the worker counts —
CI uses both for its two-worker smoke job.

The **ingest tier** measures the write path on its own: an ingest-only
stream replayed through one single-worker server per row, one
connection, pipelined.  Three rows replay the same prefix slice —

* ``per-job (pre-batch, transcribed)`` — the ingest path as it stood
  before the batch kernel landed: the quadratic new-file probe
  (``request - class_of.keys()`` walks the whole observed catalog per
  job) plus the per-access advisor walk, transcribed and measured
  fresh in the same run (the ``bench_sweep`` legacy methodology);
* ``per-job (current)`` — today's code with the kernel and writer
  coalescing disabled (``ingest_kernel=False``,
  ``coalesce_ingest=False``): per-request ``observe_job`` and the
  per-access advisor walk, but with the quadratic fixed;
* ``batched`` — the default stack: the actor coalesces each wakeup's
  run of queued ingests into one ``observe_jobs_batch`` +
  ``request_window`` kernel call.

``REPRO_BENCH_INGEST=paper`` runs the tier on the calibrated
paper-scale workload from the trace store (~235k jobs, ~11.3M
accesses) instead of the suite trace: the batched row then replays
the *full* stream (partition checksum verified against offline
``find_filecules``) and the tier enforces the hard >= 3x
ingest-throughput gate, batched vs the transcribed per-job baseline,
single worker.  At other scales the rows are measured and reported
but carry no floor — the pre-batch quadratic only bites once the
observed catalog is large, so small-scale ratios measure protocol
overhead, not the optimization.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import socket
import time
from pathlib import Path

from repro.core.identify import find_filecules
from repro.core.incremental import IncrementalFileculeIdentifier
from repro.obs import trace as obstrace
from repro.util.host import host_info
from repro.service import (
    AsyncServiceClient,
    FileculeServer,
    ServiceState,
    jobs_from_trace,
    run_load,
)
from repro.service.aggregate import (
    aggregate_partition,
    aggregate_registry,
    fetch_json,
)
from repro.service.cluster import (
    ClusterConfig,
    ClusterServer,
    pick_free_port_block,
)
from repro.service.protocol import encode_request, encode_response
from repro.service.state import partition_checksum
from repro.util.units import GB
from repro.workload.calibration import paper_config, small_config, tiny_config
from repro.workload.generator import generate_trace
from repro.workload.store import cached_trace

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_service.json"
METRICS_JSON = REPO_ROOT / "benchmarks" / "output" / "metrics.json"

TINY = os.environ.get("REPRO_BENCH_SCALE") == "tiny"
SCALE = tiny_config if TINY else small_config
SEED = 7
CONNECTIONS = 8  # baseline client connections (pre-shard bench setting)
ADVISE_EVERY = 10
PIPELINE_DEPTH = 100  # blaster chunk size (< server's 128 backpressure window)
N_LOOKUPS = 1500 if TINY else 5000
N_BASELINE_LOOKUPS = 600 if TINY else 2000
WORKER_COUNTS = [
    int(w)
    for w in os.environ.get("REPRO_BENCH_WORKERS", "1,2,4").split(",")
    if w.strip()
]
#: The speedup the workers table must demonstrate at its largest worker
#: count, lookup mix, vs the transcribed pre-shard baseline.
REQUIRED_SPEEDUP = 1.0 if TINY else 3.0
#: Floor on the state-bound replay mix at the largest worker count vs
#: the pre-shard baseline (committed runs sit at ~1.5-1.6x; tiny smoke
#: runs are noise-dominated and carry no floor).
REQUIRED_REPLAY_SPEEDUP = None if TINY else 1.2
#: Ceiling on flight-recorder cost: replay-mix throughput with the
#: sampler + health panel on may lose at most this fraction vs off.
#: (Tiny smoke runs are noise-dominated, so the gate widens there.)
MAX_SAMPLER_OVERHEAD = 0.25 if TINY else 0.03
SAMPLER_ROUNDS = 3  # best-of-N per configuration to squeeze out noise
#: Replay-stream repetitions per sampler round.  The coalesced write
#: path pushed small-scale replay under the 1 s sample interval, so a
#: single pass measured scheduler noise, not sampling; repeating the
#: stream keeps each round multi-second and lets the sampler actually
#: fire.  Both sides of the ratio see the identical repeated workload.
SAMPLER_REPEATS = 1 if TINY else 10

#: Ingest tier: ``REPRO_BENCH_INGEST=paper`` swaps in the trace-store
#: paper workload and arms the hard single-worker throughput gate.
INGEST_TIER = os.environ.get("REPRO_BENCH_INGEST", "").strip() or None
#: Jobs in the prefix slice all three ingest rows replay (the pre-batch
#: baseline is quadratic in observed files, so it runs the prefix only;
#: its measured throughput *falls* with every additional job, making
#: the prefix-based gate conservative).
INGEST_PREFIX_JOBS = 20_000
#: The paper-tier gate: batched ingest throughput vs the transcribed
#: pre-batch per-job path, same prefix, single worker, one connection.
REQUIRED_INGEST_SPEEDUP = 3.0


# ----------------------------------------------------------------------
# legacy transcription (bench_sweep precedent): the pre-shard stack,
# measured fresh so the speedup ratios are host-drift free
# ----------------------------------------------------------------------
class LegacyServiceState(ServiceState):
    """Pre-shard ``ServiceState`` hot paths, transcribed from c976267."""

    def ingest(self, files, sizes=None, site=0):
        if sizes is not None:
            for f, s in zip(files, sizes):
                self._sizes[f] = int(s)
        self._ident.observe_job(files)
        advisor = self._advisor(site)
        self._clock += 1.0
        hits = 0
        for f in dict.fromkeys(files):  # de-duplicated, order-preserving
            size = self._size_of(f)
            outcome = advisor.policy.request(f, size, self._clock)
            advisor.metrics.record(size, outcome)
            hits += outcome.hit
        return {
            "job_seq": self._ident.n_jobs_observed,
            "n_files": self._ident.n_files_observed,
            "n_classes": self._ident.n_classes,
            "site_hits": hits,
        }

    #: The pre-shard state had no memoized read path — hide the
    #: attribute so the server takes the generic (re-sort, re-sum,
    #: re-encode per request) lookup path the old stack paid for.
    filecule_of_json = None


class LegacyServer(FileculeServer):
    """Pre-shard ``FileculeServer`` write path, transcribed from c976267.

    Futures carry response dicts (the writer encodes), and every
    response is its own ``write`` + ``drain`` — no coalescing, no
    template fast paths.
    """

    async def _actor(self, inbox):
        while True:
            batch = [await inbox.get()]
            while len(batch) < self.batch_max:
                try:
                    batch.append(inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.metrics.inc("batches")
            for request, future, t_enqueued in batch:
                op = request["op"]
                rid = request.get("rid")
                t0 = time.perf_counter()
                with obstrace.span(
                    f"op.{op}", recorder=self.spans, rid=rid
                ) as span_fields:
                    response = self._handle(request)
                    span_fields["ok"] = response["ok"]
                t1 = time.perf_counter()
                self.metrics.inc("requests")
                self.metrics.observe(f"op.{op}", t1 - t0)
                self.metrics.observe("queue_wait", t0 - t_enqueued)
                if not future.done():
                    future.set_result(response)
            await asyncio.sleep(0)

    async def _write_responses(self, outbox, writer):
        from repro.service.server import _STOP

        while True:
            item = await outbox.get()
            if item is _STOP:
                return
            response = await item
            writer.write(encode_response(response))
            await writer.drain()


# ----------------------------------------------------------------------
# workload encoding + the blaster
# ----------------------------------------------------------------------
def _encode_replay(jobs: list[dict]) -> list[bytes]:
    lines = []
    request_id = 0
    for k, job in enumerate(jobs):
        if k % ADVISE_EVERY == 0:
            lines.append(
                encode_request(
                    "advise", request_id, files=job["files"], site=job["site"]
                )
            )
            request_id += 1
        lines.append(
            encode_request(
                "ingest",
                request_id,
                files=job["files"],
                sizes=job["sizes"],
                site=job["site"],
            )
        )
        request_id += 1
    return lines


def _lookup_files(jobs: list[dict], count: int) -> list[int]:
    rng = random.Random(SEED)
    catalog = sorted({f for job in jobs for f in job["files"]})
    return [rng.choice(catalog) for _ in range(count)]


def _encode_lookups(files: list[int]) -> list[bytes]:
    return [
        encode_request("filecule_of", i, file=f) for i, f in enumerate(files)
    ]


def _blast(port: int, lines: list[bytes], connections: int = 1) -> float:
    """Pipelined replay of pre-encoded lines; returns requests/second.

    Chunks of ``PIPELINE_DEPTH`` requests are written per connection and
    their responses drained before the next chunk — staying inside the
    server's per-connection backpressure window.  Connections take turns
    chunk-by-chunk so a multi-worker cluster sees concurrent streams.
    """
    conns = []
    for _ in range(connections):
        sock = socket.create_connection(("127.0.0.1", port))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conns.append((sock, sock.makefile("rb")))
    shares = [lines[i::connections] for i in range(connections)]
    offsets = [0] * connections
    t0 = time.perf_counter()
    remaining = connections
    while remaining:
        remaining = 0
        for c, (sock, rfile) in enumerate(conns):
            share, i = shares[c], offsets[c]
            if i >= len(share):
                continue
            remaining += 1
            chunk = share[i : i + PIPELINE_DEPTH]
            sock.sendall(b"".join(chunk))
            for _ in chunk:
                rfile.readline()
            offsets[c] = i + len(chunk)
    duration = time.perf_counter() - t0
    for sock, rfile in conns:
        rfile.close()
        sock.close()
    return len(lines) / duration


# ----------------------------------------------------------------------
# ingest tier: the write path on its own, single worker
# ----------------------------------------------------------------------
class _PreBatchIdentifier(IncrementalFileculeIdentifier):
    """Pre-batch-kernel refinement core, transcribed from commit 6e6d173.

    One line differs from today's ``_apply_request``: the new-file probe
    was ``request - class_of.keys()``, which CPython evaluates by
    walking the *entire* keys view — O(files observed) per job.  The
    rest of the body is byte-for-byte today's sequential core, so the
    row isolates exactly the costs this PR removed.
    """

    def _apply_request(self, request, now, affected):
        class_of = self._class_of
        new_files = request - class_of.keys()  # the pre-batch quadratic
        if new_files:
            cid = self._fresh_class(new_files, requests=1, weight=1.0, last=now)
            affected.add(cid)
            self._push_expiry(cid)
            request -= new_files
        touched: dict[int, set[int]] = {}
        for f in request:
            touched.setdefault(class_of[f], set()).add(f)
        for cid, touched_files in touched.items():
            affected.add(cid)
            current = self._members[cid]
            if len(touched_files) == len(current):
                self._requests[cid] += 1
                self._weight[cid] = self._decayed_weight(cid, now) + 1.0
                self._last[cid] = now
                self._push_expiry(cid)
            else:
                weight = self._decayed_weight(cid, now) + 1.0
                current -= touched_files
                new_cid = self._fresh_class(
                    touched_files,
                    requests=self._requests[cid] + 1,
                    weight=weight,
                    last=now,
                )
                affected.add(new_cid)
                self._push_expiry(new_cid)


class _PreBatchIngestState(ServiceState):
    """The pre-batch per-job ingest stack: quadratic probe, scalar advisors."""

    def __init__(self, **kwargs):
        super().__init__(ingest_kernel=False, **kwargs)
        self._ident = _PreBatchIdentifier(half_life=self.decay_half_life)


def _encode_ingests(jobs: list[dict]) -> list[bytes]:
    return [
        encode_request(
            "ingest", i, files=j["files"], sizes=j["sizes"], site=j["site"]
        )
        for i, j in enumerate(jobs)
    ]


async def _measure_ingest_row(
    label: str,
    lines: list[bytes],
    capacity_bytes: int,
    *,
    make_state=ServiceState,
    ingest_kernel: bool = True,
    coalesce_ingest: bool = True,
) -> dict:
    """Replay an ingest-only stream through one fresh single-worker server."""
    kwargs = {"policy": "lru", "capacity_bytes": capacity_bytes}
    if make_state is ServiceState:
        kwargs["ingest_kernel"] = ingest_kernel
    state = make_state(**kwargs)
    server = FileculeServer(
        state, log_interval=None, coalesce_ingest=coalesce_ingest
    )
    await server.start()
    try:
        t0 = time.perf_counter()
        await asyncio.to_thread(_blast, server.port, lines, 1)
        duration = time.perf_counter() - t0
        snapshot = server.metrics.snapshot()
    finally:
        await server.stop()
    stats = state.stats()
    counters = snapshot["counters"]
    batches = counters.get("ingest_batches", 0)
    ingest_lat = snapshot["latency"].get("op.ingest", {})
    return {
        "row": label,
        "jobs": len(lines),
        "seconds": round(duration, 3),
        "jobs_per_second": round(len(lines) / duration, 2),
        "ingest_us_per_job_amortized": round(
            1000.0 * ingest_lat.get("mean_ms", 0.0), 2
        ),
        "writer_batches": batches,
        "mean_jobs_per_batch": round(len(lines) / batches, 2) if batches else 0,
        "partition_checksum": stats["partition_checksum"],
        "n_classes": stats["n_classes"],
    }


def _measure_ingest_tier(suite_trace, suite_jobs: list[dict]) -> dict:
    """The single-worker ingest table: pre-batch, per-job, batched rows."""
    if INGEST_TIER == "paper":
        trace = cached_trace(paper_config(), seed=SEED, on_event=print)
        jobs = jobs_from_trace(trace)
        tier = "paper"
    else:
        trace, jobs, tier = suite_trace, suite_jobs, SCALE.__name__.removesuffix(
            "_config"
        )
    capacity = max(1, int(trace.file_sizes.sum()) // 10)
    prefix = jobs[: min(INGEST_PREFIX_JOBS, len(jobs))]
    prefix_lines = _encode_ingests(prefix)
    rows = [
        asyncio.run(
            _measure_ingest_row(
                "per-job (pre-batch, transcribed)",
                prefix_lines,
                capacity,
                make_state=_PreBatchIngestState,
                coalesce_ingest=False,
            )
        ),
        asyncio.run(
            _measure_ingest_row(
                "per-job (current)",
                prefix_lines,
                capacity,
                ingest_kernel=False,
                coalesce_ingest=False,
            )
        ),
        asyncio.run(
            _measure_ingest_row("batched", prefix_lines, capacity)
        ),
    ]
    # Same slice, same order, single worker: every row must serve the
    # identical partition.
    assert len({r["partition_checksum"] for r in rows}) == 1, (
        "ingest rows diverged on the prefix slice"
    )
    baseline_rps = rows[0]["jobs_per_second"]
    for row in rows:
        row["speedup_vs_pre_batch"] = round(
            row["jobs_per_second"] / baseline_rps, 2
        )
    batched_prefix = rows[-1]
    result = {
        "tier": tier,
        "capacity_bytes": capacity,
        "prefix_jobs": len(prefix),
        "workload_jobs": len(jobs),
        "workload_accesses": sum(len(j["files"]) for j in jobs),
        "rows": rows,
        "gate": {
            "required_speedup": REQUIRED_INGEST_SPEEDUP if tier == "paper" else None,
            "achieved": batched_prefix["speedup_vs_pre_batch"],
            "comparison": (
                "batched vs per-job (pre-batch, transcribed), same prefix, "
                "single worker, one connection"
            ),
        },
    }
    if tier == "paper":
        # The batched stack replays the *entire* paper stream; its
        # served partition must match offline find_filecules exactly.
        full = asyncio.run(
            _measure_ingest_row("batched (full stream)", _encode_ingests(jobs), capacity)
        )
        offline = partition_checksum(
            fc.file_ids.tolist() for fc in find_filecules(trace)
        )
        assert full["partition_checksum"] == offline, (
            "paper-tier batched ingest diverged from offline find_filecules"
        )
        full["partition_checksum_matches_offline"] = True
        result["rows"].append(full)
        assert (
            batched_prefix["speedup_vs_pre_batch"] >= REQUIRED_INGEST_SPEEDUP
        ), (
            f"paper-tier batched ingest speedup "
            f"{batched_prefix['speedup_vs_pre_batch']}x < required "
            f"{REQUIRED_INGEST_SPEEDUP}x vs the pre-batch per-job path"
        )
    return result


# ----------------------------------------------------------------------
# measurement rows
# ----------------------------------------------------------------------
async def _measure_baseline(
    jobs: list[dict], lookup_files: list[int]
) -> dict:
    """The pre-shard stack, driven exactly as the pre-shard bench did."""
    server = LegacyServer(
        LegacyServiceState(policy="lru", capacity_bytes=100 * GB)
    )
    await server.start()
    try:
        report = await run_load(
            "127.0.0.1",
            server.port,
            jobs,
            connections=CONNECTIONS,
            advise_every=ADVISE_EVERY,
        )
        sample = lookup_files[:N_BASELINE_LOOKUPS]

        async def drive(files: list[int]) -> None:
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            try:
                for f in files:
                    await client.filecule_of(f)
            finally:
                await client.close()

        t0 = time.perf_counter()
        await asyncio.gather(
            *(drive(sample[i::CONNECTIONS]) for i in range(CONNECTIONS))
        )
        lookup_rps = len(sample) / (time.perf_counter() - t0)
    finally:
        await server.stop()
    assert report.errors == 0
    return {
        "stack": "pre-shard single actor (transcribed, commit c976267)",
        "workers": 1,
        "requests_per_second": round(lookup_rps, 2),
        "replay_requests_per_second": round(report.requests_per_second, 2),
        "replay_latency_ms": report.latencies_ms,
        "partition_checksum": report.final_stats["partition_checksum"],
        "jobs_observed": report.final_stats["jobs_observed"],
    }


def _measure_workers(
    workers: int, replay_lines: list[bytes], lookup_lines: list[bytes]
) -> dict:
    """One cluster row: replay (checksum-gated) then the lookup mix."""
    config = ClusterConfig(
        port=0,
        workers=workers,
        capacity_bytes=100 * GB,
        log_interval=None,
        metrics_port=pick_free_port_block("127.0.0.1", workers),
    )
    with ClusterServer(config) as cluster:
        ports = cluster.metrics_ports()
        replay_rps = _blast(
            cluster.port, replay_lines, connections=max(2 * workers, 2)
        )
        merged = aggregate_partition("127.0.0.1", ports)
        jobs_observed = sum(
            fetch_json("127.0.0.1", port, "/healthz")["jobs_observed"]
            for port in ports
        )
        lookup_rps = _blast(cluster.port, lookup_lines, connections=workers)
        registry = aggregate_registry("127.0.0.1", ports)
    return {
        "workers": workers,
        "requests_per_second": round(lookup_rps, 2),
        "replay_requests_per_second": round(replay_rps, 2),
        "partition_checksum": merged["checksum"],
        "n_classes": merged["n_classes"],
        "jobs_observed": jobs_observed,
        "server_metrics": registry.snapshot(),
    }


async def _measure_sampler_once(
    replay_lines: list[bytes], sampled: bool
) -> float:
    """Replay-mix req/s on one single-worker server, sampler on or off."""
    server = FileculeServer(
        ServiceState(policy="lru", capacity_bytes=100 * GB),
        log_interval=None,
        sample_interval=1.0 if sampled else None,
        health=sampled,
    )
    await server.start()
    try:
        return await asyncio.to_thread(
            _blast, server.port, replay_lines * SAMPLER_REPEATS, 2
        )
    finally:
        await server.stop()


def _measure_sampler_overhead(replay_lines: list[bytes]) -> dict:
    """Flight-recorder cost on the replay mix: sampler+health on vs off.

    Best-of-``SAMPLER_ROUNDS`` per configuration, alternating so thermal
    and scheduler drift hit both sides equally.
    """
    off, on = 0.0, 0.0
    for _ in range(SAMPLER_ROUNDS):
        off = max(off, asyncio.run(_measure_sampler_once(replay_lines, False)))
        on = max(on, asyncio.run(_measure_sampler_once(replay_lines, True)))
    overhead = max(0.0, 1.0 - on / off)
    return {
        "mix": "replay (requests_per_second, single worker)",
        "sample_interval_seconds": 1.0,
        "rounds": SAMPLER_ROUNDS,
        "stream_repeats": SAMPLER_REPEATS,
        "requests_per_second_sampler_off": round(off, 2),
        "requests_per_second_sampler_on": round(on, 2),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_SAMPLER_OVERHEAD,
    }


def test_bench_service(benchmark, archive):
    trace = generate_trace(SCALE(), seed=SEED)
    jobs = jobs_from_trace(trace)
    replay_lines = _encode_replay(jobs)
    lookup_files = _lookup_files(jobs, N_LOOKUPS)
    lookup_lines = _encode_lookups(lookup_files)
    offline = partition_checksum(
        fc.file_ids.tolist() for fc in find_filecules(trace)
    )

    def suite():
        baseline = asyncio.run(_measure_baseline(jobs, lookup_files))
        rows = [
            _measure_workers(n, replay_lines, lookup_lines)
            for n in WORKER_COUNTS
        ]
        sampler = _measure_sampler_overhead(replay_lines)
        ingest = _measure_ingest_tier(trace, jobs)
        return baseline, rows, sampler, ingest

    baseline, rows, sampler, ingest = benchmark.pedantic(
        suite, rounds=1, iterations=1
    )

    # flight-recorder gate: sampling must be effectively free on the
    # replay mix
    assert sampler["overhead_fraction"] <= MAX_SAMPLER_OVERHEAD, (
        f"flight-recorder sampling cost "
        f"{sampler['overhead_fraction']:.1%} of replay throughput "
        f"(allowed {MAX_SAMPLER_OVERHEAD:.0%})"
    )

    # correctness gates: every configuration serves the offline partition
    assert baseline["partition_checksum"] == offline
    assert baseline["jobs_observed"] == len(jobs)
    baseline["partition_checksum_matches_offline"] = True
    for row in rows:
        assert row["partition_checksum"] == offline, (
            f"workers={row['workers']}: merged partition diverged"
        )
        assert row["jobs_observed"] == len(jobs)
        row["partition_checksum_matches_offline"] = True
        row["speedup_vs_baseline"] = round(
            row["requests_per_second"] / baseline["requests_per_second"], 2
        )
        row["replay_speedup_vs_baseline"] = round(
            row["replay_requests_per_second"]
            / baseline["replay_requests_per_second"],
            2,
        )

    # performance gate: the largest worker count must beat the pre-shard
    # baseline >= REQUIRED_SPEEDUP x on the lookup mix
    top = max(rows, key=lambda r: r["workers"])
    assert top["speedup_vs_baseline"] >= REQUIRED_SPEEDUP, (
        f"workers={top['workers']} lookup speedup "
        f"{top['speedup_vs_baseline']}x < required {REQUIRED_SPEEDUP}x"
    )

    # replay-mix gate: the state-bound ingest/advise mix must also hold
    # its ground vs the pre-shard baseline (committed runs: ~1.5-1.6x)
    if REQUIRED_REPLAY_SPEEDUP is not None:
        assert top["replay_speedup_vs_baseline"] >= REQUIRED_REPLAY_SPEEDUP, (
            f"workers={top['workers']} replay speedup "
            f"{top['replay_speedup_vs_baseline']}x < required "
            f"{REQUIRED_REPLAY_SPEEDUP}x"
        )

    per_worker_metrics = [row.pop("server_metrics") for row in rows]
    payload_tier = SCALE.__name__.removesuffix("_config")
    payload = {
        "benchmark": "service",
        "scale": SCALE.__name__.removesuffix("_config"),
        "seed": SEED,
        "host": host_info(),
        "advise_every": ADVISE_EVERY,
        "pipeline_depth": PIPELINE_DEPTH,
        "workload": {
            "tier": payload_tier,
            "jobs": len(jobs),
            "replay_requests": len(replay_lines),
            "lookup_requests": N_LOOKUPS,
        },
        "baseline": baseline,
        "workers": rows,
        "sampler_overhead": sampler,
        "ingest": ingest,
        "gate": {
            "required_speedup_at_max_workers": REQUIRED_SPEEDUP,
            "achieved": top["speedup_vs_baseline"],
            "mix": "lookup (requests_per_second)",
            "required_replay_speedup_at_max_workers": REQUIRED_REPLAY_SPEEDUP,
            "achieved_replay": top["replay_speedup_vs_baseline"],
        },
        "notes": (
            "requests_per_second is the filecule_of lookup mix (the "
            "protocol/read fast path); replay_requests_per_second is the "
            "state-bound trace replay.  Baseline is the pre-shard stack "
            "transcribed and measured in the same run.  On a single-CPU "
            "host the worker rows measure sharding overhead, not "
            "parallel speedup — see docs/PERFORMANCE.md."
        ),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    METRICS_JSON.parent.mkdir(parents=True, exist_ok=True)
    METRICS_JSON.write_text(
        json.dumps(
            {
                "benchmark": "service",
                "scale": payload["scale"],
                "seed": SEED,
                "worker_counts": WORKER_COUNTS,
                "merged_metrics_per_row": per_worker_metrics,
            },
            indent=2,
        )
        + "\n"
    )

    lines = [
        f"service bench — scale {payload['scale']}, seed {SEED}, "
        f"cpus {payload['host']['cpus']}",
        f"{'row':>12}  {'lookup req/s':>12}  {'replay req/s':>12}  "
        f"{'speedup':>8}  checksum",
        f"{'baseline':>12}  {baseline['requests_per_second']:>12.0f}  "
        f"{baseline['replay_requests_per_second']:>12.0f}  "
        f"{'1.00x':>8}  ok",
    ]
    for row in rows:
        lines.append(
            f"{'workers ' + str(row['workers']):>12}  "
            f"{row['requests_per_second']:>12.0f}  "
            f"{row['replay_requests_per_second']:>12.0f}  "
            f"{str(row['speedup_vs_baseline']) + 'x':>8}  ok"
        )
    lines.append(
        f"flight recorder: replay "
        f"{sampler['requests_per_second_sampler_on']:.0f} req/s sampled vs "
        f"{sampler['requests_per_second_sampler_off']:.0f} unsampled — "
        f"{sampler['overhead_fraction']:.1%} overhead "
        f"(allowed {MAX_SAMPLER_OVERHEAD:.0%})"
    )
    lines.append(
        f"ingest tier ({ingest['tier']}): {ingest['prefix_jobs']} job "
        f"prefix of {ingest['workload_jobs']} "
        f"({ingest['workload_accesses']} accesses), single worker"
    )
    for row in ingest["rows"]:
        speedup = row.get("speedup_vs_pre_batch")
        lines.append(
            f"  {row['row']:<34} {row['jobs_per_second']:>10.0f} jobs/s  "
            f"{row['ingest_us_per_job_amortized']:>7.1f} us/job  "
            + (f"{speedup}x" if speedup is not None else "(full stream)")
        )
    if ingest["gate"]["required_speedup"] is not None:
        lines.append(
            f"  gate: batched >= {ingest['gate']['required_speedup']}x "
            f"pre-batch — achieved {ingest['gate']['achieved']}x"
        )
    rendered = "\n".join(lines)
    print()
    print(rendered)
    archive("service", rendered)
