"""Benchmark the online filecule service: pre-shard baseline vs workers.

Measures two request mixes against each server configuration:

* **replay** — the calibrated job stream (one ``ingest`` per job plus an
  ``advise`` every tenth job).  This path is state-bound: most of each
  request is partition refinement and per-site cache modelling, so its
  ceiling is the state floor, not the protocol.  The served partition is
  verified against offline :func:`find_filecules` for every
  configuration (merged across workers via the §6 partition meet).
* **lookup** — ``filecule_of`` reads over the observed catalog, the
  service's placement-lookup API.  This is the protocol/read path the
  sharding PR optimizes: memoized per-class payloads, template-encoded
  responses, client pipelining, coalesced writes.

Rows:

* ``baseline`` — a faithful transcription of the pre-shard stack
  (commit c976267: per-file ingest accounting, per-response writes,
  uncached ``_class_info`` lookups) driven by its own serial depth-1
  client, exactly as the pre-shard bench measured it.  Same
  legacy-transcription methodology as ``bench_sweep.py``: the old code
  is measured fresh, in the same run, so host drift cancels out of the
  speedup ratios.
* ``workers N`` — the pre-fork SO_REUSEPORT cluster at each worker
  count, driven by a pre-encoded pipelined socket blaster (wrk-style:
  request lines are serialized off the clock so the measurement tracks
  server capacity, not client JSON throughput).

``cpus`` is recorded in the payload: on a single-CPU host the worker
rows measure sharding overhead rather than parallel speedup, and the
speedup-vs-baseline ratios come from the protocol fast path (see
``docs/PERFORMANCE.md``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q

``REPRO_BENCH_SCALE=tiny`` shrinks the workload for smoke runs;
``REPRO_BENCH_WORKERS=2`` (comma list) overrides the worker counts —
CI uses both for its two-worker smoke job.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import socket
import time
from pathlib import Path

from repro.core.identify import find_filecules
from repro.obs import trace as obstrace
from repro.util.host import host_info
from repro.service import (
    AsyncServiceClient,
    FileculeServer,
    ServiceState,
    jobs_from_trace,
    run_load,
)
from repro.service.aggregate import (
    aggregate_partition,
    aggregate_registry,
    fetch_json,
)
from repro.service.cluster import (
    ClusterConfig,
    ClusterServer,
    pick_free_port_block,
)
from repro.service.protocol import encode_request, encode_response
from repro.service.state import partition_checksum
from repro.util.units import GB
from repro.workload.calibration import small_config, tiny_config
from repro.workload.generator import generate_trace

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_service.json"
METRICS_JSON = REPO_ROOT / "benchmarks" / "output" / "metrics.json"

TINY = os.environ.get("REPRO_BENCH_SCALE") == "tiny"
SCALE = tiny_config if TINY else small_config
SEED = 7
CONNECTIONS = 8  # baseline client connections (pre-shard bench setting)
ADVISE_EVERY = 10
PIPELINE_DEPTH = 100  # blaster chunk size (< server's 128 backpressure window)
N_LOOKUPS = 1500 if TINY else 5000
N_BASELINE_LOOKUPS = 600 if TINY else 2000
WORKER_COUNTS = [
    int(w)
    for w in os.environ.get("REPRO_BENCH_WORKERS", "1,2,4").split(",")
    if w.strip()
]
#: The speedup the workers table must demonstrate at its largest worker
#: count, lookup mix, vs the transcribed pre-shard baseline.
REQUIRED_SPEEDUP = 1.0 if TINY else 3.0
#: Ceiling on flight-recorder cost: replay-mix throughput with the
#: sampler + health panel on may lose at most this fraction vs off.
#: (Tiny smoke runs are noise-dominated, so the gate widens there.)
MAX_SAMPLER_OVERHEAD = 0.25 if TINY else 0.03
SAMPLER_ROUNDS = 3  # best-of-N per configuration to squeeze out noise


# ----------------------------------------------------------------------
# legacy transcription (bench_sweep precedent): the pre-shard stack,
# measured fresh so the speedup ratios are host-drift free
# ----------------------------------------------------------------------
class LegacyServiceState(ServiceState):
    """Pre-shard ``ServiceState`` hot paths, transcribed from c976267."""

    def ingest(self, files, sizes=None, site=0):
        if sizes is not None:
            for f, s in zip(files, sizes):
                self._sizes[f] = int(s)
        self._ident.observe_job(files)
        advisor = self._advisor(site)
        self._clock += 1.0
        hits = 0
        for f in dict.fromkeys(files):  # de-duplicated, order-preserving
            size = self._size_of(f)
            outcome = advisor.policy.request(f, size, self._clock)
            advisor.metrics.record(size, outcome)
            hits += outcome.hit
        return {
            "job_seq": self._ident.n_jobs_observed,
            "n_files": self._ident.n_files_observed,
            "n_classes": self._ident.n_classes,
            "site_hits": hits,
        }

    #: The pre-shard state had no memoized read path — hide the
    #: attribute so the server takes the generic (re-sort, re-sum,
    #: re-encode per request) lookup path the old stack paid for.
    filecule_of_json = None


class LegacyServer(FileculeServer):
    """Pre-shard ``FileculeServer`` write path, transcribed from c976267.

    Futures carry response dicts (the writer encodes), and every
    response is its own ``write`` + ``drain`` — no coalescing, no
    template fast paths.
    """

    async def _actor(self, inbox):
        while True:
            batch = [await inbox.get()]
            while len(batch) < self.batch_max:
                try:
                    batch.append(inbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.metrics.inc("batches")
            for request, future, t_enqueued in batch:
                op = request["op"]
                rid = request.get("rid")
                t0 = time.perf_counter()
                with obstrace.span(
                    f"op.{op}", recorder=self.spans, rid=rid
                ) as span_fields:
                    response = self._handle(request)
                    span_fields["ok"] = response["ok"]
                t1 = time.perf_counter()
                self.metrics.inc("requests")
                self.metrics.observe(f"op.{op}", t1 - t0)
                self.metrics.observe("queue_wait", t0 - t_enqueued)
                if not future.done():
                    future.set_result(response)
            await asyncio.sleep(0)

    async def _write_responses(self, outbox, writer):
        from repro.service.server import _STOP

        while True:
            item = await outbox.get()
            if item is _STOP:
                return
            response = await item
            writer.write(encode_response(response))
            await writer.drain()


# ----------------------------------------------------------------------
# workload encoding + the blaster
# ----------------------------------------------------------------------
def _encode_replay(jobs: list[dict]) -> list[bytes]:
    lines = []
    request_id = 0
    for k, job in enumerate(jobs):
        if k % ADVISE_EVERY == 0:
            lines.append(
                encode_request(
                    "advise", request_id, files=job["files"], site=job["site"]
                )
            )
            request_id += 1
        lines.append(
            encode_request(
                "ingest",
                request_id,
                files=job["files"],
                sizes=job["sizes"],
                site=job["site"],
            )
        )
        request_id += 1
    return lines


def _lookup_files(jobs: list[dict], count: int) -> list[int]:
    rng = random.Random(SEED)
    catalog = sorted({f for job in jobs for f in job["files"]})
    return [rng.choice(catalog) for _ in range(count)]


def _encode_lookups(files: list[int]) -> list[bytes]:
    return [
        encode_request("filecule_of", i, file=f) for i, f in enumerate(files)
    ]


def _blast(port: int, lines: list[bytes], connections: int = 1) -> float:
    """Pipelined replay of pre-encoded lines; returns requests/second.

    Chunks of ``PIPELINE_DEPTH`` requests are written per connection and
    their responses drained before the next chunk — staying inside the
    server's per-connection backpressure window.  Connections take turns
    chunk-by-chunk so a multi-worker cluster sees concurrent streams.
    """
    conns = []
    for _ in range(connections):
        sock = socket.create_connection(("127.0.0.1", port))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conns.append((sock, sock.makefile("rb")))
    shares = [lines[i::connections] for i in range(connections)]
    offsets = [0] * connections
    t0 = time.perf_counter()
    remaining = connections
    while remaining:
        remaining = 0
        for c, (sock, rfile) in enumerate(conns):
            share, i = shares[c], offsets[c]
            if i >= len(share):
                continue
            remaining += 1
            chunk = share[i : i + PIPELINE_DEPTH]
            sock.sendall(b"".join(chunk))
            for _ in chunk:
                rfile.readline()
            offsets[c] = i + len(chunk)
    duration = time.perf_counter() - t0
    for sock, rfile in conns:
        rfile.close()
        sock.close()
    return len(lines) / duration


# ----------------------------------------------------------------------
# measurement rows
# ----------------------------------------------------------------------
async def _measure_baseline(
    jobs: list[dict], lookup_files: list[int]
) -> dict:
    """The pre-shard stack, driven exactly as the pre-shard bench did."""
    server = LegacyServer(
        LegacyServiceState(policy="lru", capacity_bytes=100 * GB)
    )
    await server.start()
    try:
        report = await run_load(
            "127.0.0.1",
            server.port,
            jobs,
            connections=CONNECTIONS,
            advise_every=ADVISE_EVERY,
        )
        sample = lookup_files[:N_BASELINE_LOOKUPS]

        async def drive(files: list[int]) -> None:
            client = await AsyncServiceClient.connect("127.0.0.1", server.port)
            try:
                for f in files:
                    await client.filecule_of(f)
            finally:
                await client.close()

        t0 = time.perf_counter()
        await asyncio.gather(
            *(drive(sample[i::CONNECTIONS]) for i in range(CONNECTIONS))
        )
        lookup_rps = len(sample) / (time.perf_counter() - t0)
    finally:
        await server.stop()
    assert report.errors == 0
    return {
        "stack": "pre-shard single actor (transcribed, commit c976267)",
        "workers": 1,
        "requests_per_second": round(lookup_rps, 2),
        "replay_requests_per_second": round(report.requests_per_second, 2),
        "replay_latency_ms": report.latencies_ms,
        "partition_checksum": report.final_stats["partition_checksum"],
        "jobs_observed": report.final_stats["jobs_observed"],
    }


def _measure_workers(
    workers: int, replay_lines: list[bytes], lookup_lines: list[bytes]
) -> dict:
    """One cluster row: replay (checksum-gated) then the lookup mix."""
    config = ClusterConfig(
        port=0,
        workers=workers,
        capacity_bytes=100 * GB,
        log_interval=None,
        metrics_port=pick_free_port_block("127.0.0.1", workers),
    )
    with ClusterServer(config) as cluster:
        ports = cluster.metrics_ports()
        replay_rps = _blast(
            cluster.port, replay_lines, connections=max(2 * workers, 2)
        )
        merged = aggregate_partition("127.0.0.1", ports)
        jobs_observed = sum(
            fetch_json("127.0.0.1", port, "/healthz")["jobs_observed"]
            for port in ports
        )
        lookup_rps = _blast(cluster.port, lookup_lines, connections=workers)
        registry = aggregate_registry("127.0.0.1", ports)
    return {
        "workers": workers,
        "requests_per_second": round(lookup_rps, 2),
        "replay_requests_per_second": round(replay_rps, 2),
        "partition_checksum": merged["checksum"],
        "n_classes": merged["n_classes"],
        "jobs_observed": jobs_observed,
        "server_metrics": registry.snapshot(),
    }


async def _measure_sampler_once(
    replay_lines: list[bytes], sampled: bool
) -> float:
    """Replay-mix req/s on one single-worker server, sampler on or off."""
    server = FileculeServer(
        ServiceState(policy="lru", capacity_bytes=100 * GB),
        log_interval=None,
        sample_interval=1.0 if sampled else None,
        health=sampled,
    )
    await server.start()
    try:
        return await asyncio.to_thread(
            _blast, server.port, replay_lines, 2
        )
    finally:
        await server.stop()


def _measure_sampler_overhead(replay_lines: list[bytes]) -> dict:
    """Flight-recorder cost on the replay mix: sampler+health on vs off.

    Best-of-``SAMPLER_ROUNDS`` per configuration, alternating so thermal
    and scheduler drift hit both sides equally.
    """
    off, on = 0.0, 0.0
    for _ in range(SAMPLER_ROUNDS):
        off = max(off, asyncio.run(_measure_sampler_once(replay_lines, False)))
        on = max(on, asyncio.run(_measure_sampler_once(replay_lines, True)))
    overhead = max(0.0, 1.0 - on / off)
    return {
        "mix": "replay (requests_per_second, single worker)",
        "sample_interval_seconds": 1.0,
        "rounds": SAMPLER_ROUNDS,
        "requests_per_second_sampler_off": round(off, 2),
        "requests_per_second_sampler_on": round(on, 2),
        "overhead_fraction": round(overhead, 4),
        "max_overhead_fraction": MAX_SAMPLER_OVERHEAD,
    }


def test_bench_service(benchmark, archive):
    trace = generate_trace(SCALE(), seed=SEED)
    jobs = jobs_from_trace(trace)
    replay_lines = _encode_replay(jobs)
    lookup_files = _lookup_files(jobs, N_LOOKUPS)
    lookup_lines = _encode_lookups(lookup_files)
    offline = partition_checksum(
        fc.file_ids.tolist() for fc in find_filecules(trace)
    )

    def suite():
        baseline = asyncio.run(_measure_baseline(jobs, lookup_files))
        rows = [
            _measure_workers(n, replay_lines, lookup_lines)
            for n in WORKER_COUNTS
        ]
        sampler = _measure_sampler_overhead(replay_lines)
        return baseline, rows, sampler

    baseline, rows, sampler = benchmark.pedantic(suite, rounds=1, iterations=1)

    # flight-recorder gate: sampling must be effectively free on the
    # replay mix
    assert sampler["overhead_fraction"] <= MAX_SAMPLER_OVERHEAD, (
        f"flight-recorder sampling cost "
        f"{sampler['overhead_fraction']:.1%} of replay throughput "
        f"(allowed {MAX_SAMPLER_OVERHEAD:.0%})"
    )

    # correctness gates: every configuration serves the offline partition
    assert baseline["partition_checksum"] == offline
    assert baseline["jobs_observed"] == len(jobs)
    baseline["partition_checksum_matches_offline"] = True
    for row in rows:
        assert row["partition_checksum"] == offline, (
            f"workers={row['workers']}: merged partition diverged"
        )
        assert row["jobs_observed"] == len(jobs)
        row["partition_checksum_matches_offline"] = True
        row["speedup_vs_baseline"] = round(
            row["requests_per_second"] / baseline["requests_per_second"], 2
        )
        row["replay_speedup_vs_baseline"] = round(
            row["replay_requests_per_second"]
            / baseline["replay_requests_per_second"],
            2,
        )

    # performance gate: the largest worker count must beat the pre-shard
    # baseline >= REQUIRED_SPEEDUP x on the lookup mix
    top = max(rows, key=lambda r: r["workers"])
    assert top["speedup_vs_baseline"] >= REQUIRED_SPEEDUP, (
        f"workers={top['workers']} lookup speedup "
        f"{top['speedup_vs_baseline']}x < required {REQUIRED_SPEEDUP}x"
    )

    per_worker_metrics = [row.pop("server_metrics") for row in rows]
    payload = {
        "benchmark": "service",
        "scale": SCALE.__name__.removesuffix("_config"),
        "seed": SEED,
        "host": host_info(),
        "advise_every": ADVISE_EVERY,
        "pipeline_depth": PIPELINE_DEPTH,
        "workload": {
            "jobs": len(jobs),
            "replay_requests": len(replay_lines),
            "lookup_requests": N_LOOKUPS,
        },
        "baseline": baseline,
        "workers": rows,
        "sampler_overhead": sampler,
        "gate": {
            "required_speedup_at_max_workers": REQUIRED_SPEEDUP,
            "achieved": top["speedup_vs_baseline"],
            "mix": "lookup (requests_per_second)",
        },
        "notes": (
            "requests_per_second is the filecule_of lookup mix (the "
            "protocol/read fast path); replay_requests_per_second is the "
            "state-bound trace replay.  Baseline is the pre-shard stack "
            "transcribed and measured in the same run.  On a single-CPU "
            "host the worker rows measure sharding overhead, not "
            "parallel speedup — see docs/PERFORMANCE.md."
        ),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    METRICS_JSON.parent.mkdir(parents=True, exist_ok=True)
    METRICS_JSON.write_text(
        json.dumps(
            {
                "benchmark": "service",
                "scale": payload["scale"],
                "seed": SEED,
                "worker_counts": WORKER_COUNTS,
                "merged_metrics_per_row": per_worker_metrics,
            },
            indent=2,
        )
        + "\n"
    )

    lines = [
        f"service bench — scale {payload['scale']}, seed {SEED}, "
        f"cpus {payload['host']['cpus']}",
        f"{'row':>12}  {'lookup req/s':>12}  {'replay req/s':>12}  "
        f"{'speedup':>8}  checksum",
        f"{'baseline':>12}  {baseline['requests_per_second']:>12.0f}  "
        f"{baseline['replay_requests_per_second']:>12.0f}  "
        f"{'1.00x':>8}  ok",
    ]
    for row in rows:
        lines.append(
            f"{'workers ' + str(row['workers']):>12}  "
            f"{row['requests_per_second']:>12.0f}  "
            f"{row['replay_requests_per_second']:>12.0f}  "
            f"{str(row['speedup_vs_baseline']) + 'x':>8}  ok"
        )
    lines.append(
        f"flight recorder: replay "
        f"{sampler['requests_per_second_sampler_on']:.0f} req/s sampled vs "
        f"{sampler['requests_per_second_sampler_off']:.0f} unsampled — "
        f"{sampler['overhead_fraction']:.1%} overhead "
        f"(allowed {MAX_SAMPLER_OVERHEAD:.0%})"
    )
    rendered = "\n".join(lines)
    print()
    print(rendered)
    archive("service", rendered)
