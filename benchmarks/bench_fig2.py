"""Benchmark: regenerate Figure 2 — jobs and file requests per day over the 27-month window.

Run with ``pytest benchmarks/bench_fig2.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig2(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig2")
