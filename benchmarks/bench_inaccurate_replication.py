"""Benchmark: regenerate Section 6 experiment — replication byte-cost inflation under per-site (coarsened) identification.

Run with ``pytest benchmarks/bench_inaccurate_replication.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_inaccurate_replication(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "inaccurate_replication")
