"""Benchmark: regenerate Section 6 — per-site filecule identification accuracy (coarsening theorem + accuracy-vs-activity).

Run with ``pytest benchmarks/bench_partial.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_partial(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "partial")
