"""Benchmark the sweep engine across workload tiers, at paper scale.

For each tier in ``REPRO_BENCH_TIERS`` (comma list; default ``tiny``)
the Figure 10 contenders (file-LRU and filecule-LRU) replay a capacity
grid four ways:

* ``legacy`` — a faithful transcription of the pre-optimization replay
  (per-access loop with numpy scalar boxing, per-access
  ``CacheMetrics.record``, and policies that allocate a fresh
  :class:`~repro.cache.base.RequestOutcome` on every request); measured
  at the ``tiny`` tier only — it is a frozen historical reference, not
  a contender;
* ``serial`` — the per-access fast path
  (:func:`repro.engine.simulate` with ``batch=False``);
* ``batch`` — the vectorized batch kernel (``batch=True``), the default
  path for batch-capable policies since the kernel landed;
* ``parallel`` — ``sweep(jobs=N)``: the chunked process pool, or the
  auto-serial fallback when the planner says a pool cannot win (a
  one-CPU host, a tiny grid) — either way never slower than serial.

Every variant must produce bit-identical :class:`CacheMetrics` — the
benchmark *fails* on any divergence; so do the paper-tier performance
gates (batch >= 2x the per-access path per policy on the gated
capacities; ``jobs=4`` >= 2x serial when the host actually has >= 4
CPUs).  The batch gate applies to capacities at or above 10% of the
accessed data, where hits dominate and the kernel's numpy paths carry
the traffic.  Below that the workload is *eviction-bound* (at
total/100 the miss rate is ~87% and nearly every access mutates
eviction state): by design the kernel resolves state-mutating accesses
on its per-access walk, so such cells compare two per-access loops and
their ratio measures loop overhead, not vectorization.  They are still
measured, asserted bit-identical, and reported — flagged
``eviction_bound`` — they just carry no 2x floor.  Results go to
``BENCH_sweep.json`` (repo root) and ``benchmarks/output/sweep.txt``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py -q

The committed artifact is regenerated with
``REPRO_BENCH_TIERS=tiny,paper,grown``; the ``paper`` and ``grown``
traces come from the on-disk trace store (``~/.cache/repro-traces`` or
``REPRO_TRACE_CACHE``), so only the first run pays generation.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cache.base import CacheMetrics, RequestOutcome
from repro.cache.filecule_lru import FileculeLRU
from repro.cache.lru import FileLRU
from repro.cache.simulator import sweep
from repro.engine import simulate
from repro.experiments.base import EXPERIMENT_SEED, get_context
from repro.experiments.fig10 import capacities_for
from repro.parallel import plan_sweep
from repro.traces.trace import Trace
from repro.util.host import host_info
from repro.util.units import format_bytes

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sweep.json"

#: Wall-clock tolerance for the "--jobs is never slower than serial"
#: gate.  Single-CPU hosts show double-digit run-to-run variance on
#: multi-second replays; the auto-serial fallback's true overhead is a
#: single plan_sweep call (microseconds).  The absolute grace term
#: covers millisecond-scale grids where dispatch fixed costs (policy
#: resolution, one planner call) dwarf the replay itself.
NEVER_SLOWER_TOL = 1.35
NEVER_SLOWER_GRACE_S = 0.5

#: Per-tier shape: capacity grid, parallel degrees, whether the legacy
#: baseline runs, and the per-policy batch-speedup floor (None = report
#: only).  Paper-tier capacities are total/100, total/10 and total —
#: the high-eviction-pressure, mixed, and no-eviction regimes.
TIER_SPECS = {
    "tiny": {"caps": "fig10", "jobs": (1, 2, 4), "legacy": True, "gate": None},
    "small": {"caps": "fig10", "jobs": (1, 2, 4), "legacy": True, "gate": None},
    "default": {"caps": "fig10", "jobs": (1, 2, 4), "legacy": True, "gate": None},
    "paper": {"caps": "coarse3", "jobs": (4,), "legacy": False, "gate": 2.0},
    "grown": {"caps": "coarse1", "jobs": (4,), "legacy": False, "gate": None},
}

#: Capacities below total_bytes // GATE_MIN_CAP_DIVISOR are
#: eviction-bound (the total/100 cell runs at ~87% miss rate, so the
#: batch kernel is on its per-access walk almost the whole time — by
#: design; see the module docstring).  Such cells are measured and
#: reported but excluded from the batch-speedup floor.  An integer
#: divisor, matching ``tier_capacities``'s own floor division, so the
#: total/10 cell compares equal rather than a float-rounding hair
#: below the threshold.
GATE_MIN_CAP_DIVISOR = 10


def bench_tiers() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCH_TIERS", "tiny")
    tiers = tuple(t.strip() for t in raw.split(",") if t.strip())
    unknown = [t for t in tiers if t not in TIER_SPECS]
    if unknown:
        raise ValueError(
            f"REPRO_BENCH_TIERS: unknown tiers {unknown}; "
            f"choose from {sorted(TIER_SPECS)}"
        )
    return tiers


def tier_capacities(kind: str, total_bytes: int) -> list[int]:
    if kind == "fig10":
        return capacities_for(total_bytes)
    if kind == "coarse3":
        return [total_bytes // 100, total_bytes // 10, total_bytes]
    if kind == "coarse1":
        return [total_bytes // 10]
    raise ValueError(kind)


# --------------------------------------------------------------------------
# Faithful pre-optimization baseline.  The loop below is the replay inner
# loop as it stood before the fast path landed (numpy scalar boxing per
# access, per-access metrics recording), and the two _Legacy* policies
# restore the original `request` bodies that allocated a RequestOutcome
# per call.  Keep in sync with nothing — this is a frozen reference.
# --------------------------------------------------------------------------


class _LegacyFileLRU(FileLRU):
    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        entry = self._entries.get(file_id)
        if entry is not None:
            self._entries.move_to_end(file_id)
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + size > self.capacity_bytes:
            _, evicted_size = self._entries.popitem(last=False)
            self._release(evicted_size)
        self._entries[file_id] = size
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)


class _LegacyFileculeLRU(FileculeLRU):
    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        label = int(self._labels[file_id])
        if label < 0:
            raise KeyError(
                f"file {file_id} has no filecule; partition does not match "
                f"the replayed trace"
            )
        if label in self._entries:
            self._entries.move_to_end(label)
            if not self._intra_job_hits and self._load_key.get(label) == now:
                return RequestOutcome(hit=False, bytes_fetched=0)
            return RequestOutcome(hit=True)
        fc_size = int(self._sizes[label])
        if fc_size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + fc_size > self.capacity_bytes:
            evicted_label, evicted = self._entries.popitem(last=False)
            self._release(evicted)
            self._load_key.pop(evicted_label, None)
        self._entries[label] = fc_size
        self._charge(fc_size)
        if not self._intra_job_hits:
            self._load_key[label] = now
        return RequestOutcome(hit=False, bytes_fetched=fc_size)


def _legacy_simulate(trace: Trace, policy, name: str, capacity: int) -> CacheMetrics:
    metrics = CacheMetrics(name=name, capacity_bytes=int(capacity))
    sizes = trace.file_sizes
    starts = trace.job_starts
    access_jobs = trace.access_jobs
    access_files = trace.access_files
    record = metrics.record
    request = policy.request
    begin_job = policy.begin_job
    ptr = trace.job_access_ptr
    current_job = -1
    for i in range(len(access_jobs)):
        j = int(access_jobs[i])
        if j != current_job:
            begin_job(
                trace.access_files[ptr[j] : ptr[j + 1]], float(starts[j])
            )
            current_job = j
        f = int(access_files[i])
        size = int(sizes[f])
        record(size, request(f, size, float(starts[j])))
    return metrics


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _assert_cells_identical(reference, other, label: str) -> None:
    assert other.capacities == reference.capacities, label
    assert set(other.metrics) == set(reference.metrics), label
    for name, ref_cells in reference.metrics.items():
        for ref, got in zip(ref_cells, other.metrics[name]):
            assert got == ref, (
                f"{label}: {name}@{format_bytes(ref.capacity_bytes, 1)} "
                f"diverged: {got} != {ref}"
            )


def _bench_tier(tier: str, lines: list[str]) -> dict:
    spec = TIER_SPECS[tier]
    ctx = get_context(tier, EXPERIMENT_SEED)
    trace, partition = ctx.trace, ctx.partition
    caps = tier_capacities(spec["caps"], trace.total_bytes())
    factories = {
        "file-lru": lambda c: FileLRU(c),
        "filecule-lru": lambda c: FileculeLRU(c, partition),
    }
    n_cells = len(factories) * len(caps)
    total_accesses = trace.n_accesses * n_cells
    lines.append(
        f"[{tier}] {n_cells} cells x {trace.n_accesses:,} accesses "
        f"({format_bytes(trace.total_bytes(), 1)} data)"
    )

    # Serial per-access fast path and batch kernel, timed per cell so
    # the per-policy speedups (the paper-tier gate) fall out directly.
    from repro.cache.simulator import SweepResult

    per_policy: dict[str, dict] = {}
    serial_cells: dict[str, list] = {}
    batch_cells: dict[str, list] = {}
    serial_wall = batch_wall = 0.0
    # Warm the per-access path's one-time list conversion outside the
    # timed region so it isn't booked against the first cell.
    trace.replay_columns
    gate_floor_cap = trace.total_bytes() // GATE_MIN_CAP_DIVISOR
    for name, factory in factories.items():
        s_wall = b_wall = 0.0
        gs_wall = gb_wall = 0.0
        s_cells, b_cells = [], []
        per_cap = []
        for cap in caps:
            m, sw = _timed(
                lambda f=factory, c=cap, n=name: simulate(
                    trace, f, c, name=n, batch=False
                )
            )
            s_cells.append(m)
            s_wall += sw
            m, bw = _timed(
                lambda f=factory, c=cap, n=name: simulate(
                    trace, f, c, name=n, batch=True
                )
            )
            b_cells.append(m)
            b_wall += bw
            eviction_bound = cap < gate_floor_cap
            if not eviction_bound:
                gs_wall += sw
                gb_wall += bw
            per_cap.append(
                {
                    "capacity": cap,
                    "serial_s": round(sw, 4),
                    "batch_s": round(bw, 4),
                    "batch_speedup": round(sw / bw, 2),
                    "eviction_bound": eviction_bound,
                }
            )
        serial_cells[name] = s_cells
        batch_cells[name] = b_cells
        serial_wall += s_wall
        batch_wall += b_wall
        per_policy[name] = {
            "serial_s": round(s_wall, 4),
            "batch_s": round(b_wall, 4),
            "batch_speedup": round(s_wall / b_wall, 2),
            "batch_speedup_gated": round(gs_wall / gb_wall, 2)
            if gb_wall
            else None,
            "per_capacity": per_cap,
        }
        lines.append(
            f"[{tier}] {name:>14}: serial {s_wall:7.2f}s  "
            f"batch {b_wall:7.2f}s  ({s_wall / b_wall:.2f}x all caps, "
            f"{per_policy[name]['batch_speedup_gated']}x gated)"
        )
        for row in per_cap:
            regime = "eviction-bound" if row["eviction_bound"] else "gated"
            lines.append(
                f"[{tier}]   {format_bytes(row['capacity'], 1):>10}: "
                f"serial {row['serial_s']:7.2f}s  "
                f"batch {row['batch_s']:7.2f}s  "
                f"({row['batch_speedup']:.2f}x, {regime})"
            )
    serial = SweepResult(
        capacities=tuple(caps),
        metrics={n: tuple(c) for n, c in serial_cells.items()},
    )
    batch = SweepResult(
        capacities=tuple(caps),
        metrics={n: tuple(c) for n, c in batch_cells.items()},
    )
    _assert_cells_identical(serial, batch, f"{tier}: batch vs per-access")

    # Frozen pre-optimization reference, cheap tiers only.
    legacy_stats = None
    if spec["legacy"]:
        legacy_factories = {
            "file-lru": lambda c: _LegacyFileLRU(c),
            "filecule-lru": lambda c: _LegacyFileculeLRU(c, partition),
        }
        t0 = time.perf_counter()
        legacy_cells = {
            name: tuple(
                _legacy_simulate(trace, factory(cap), name, cap)
                for cap in caps
            )
            for name, factory in legacy_factories.items()
        }
        legacy_wall = time.perf_counter() - t0
        legacy = SweepResult(
            capacities=tuple(caps), metrics=legacy_cells
        )
        _assert_cells_identical(serial, legacy, f"{tier}: legacy vs serial")
        legacy_stats = {
            "wall_s": round(legacy_wall, 4),
            "speedup_serial": round(legacy_wall / serial_wall, 2),
            "speedup_batch": round(legacy_wall / batch_wall, 2),
        }
        lines.append(
            f"[{tier}] legacy loop: {legacy_wall:7.2f}s  "
            f"(fast path {legacy_stats['speedup_serial']:.2f}x, "
            f"batch {legacy_stats['speedup_batch']:.2f}x faster)"
        )

    # The parallel engine at each requested degree.  On hosts/grids
    # where the planner rejects a pool this measures the auto-serial
    # fallback — which is the point: --jobs must never be slower.
    parallel = {}
    for jobs in spec["jobs"]:
        plan = plan_sweep(n_cells, trace.n_accesses, jobs)
        result, wall = _timed(
            lambda j=jobs: sweep(trace, factories, caps, jobs=j)
        )
        _assert_cells_identical(
            serial, result, f"{tier}: parallel jobs={jobs} vs serial"
        )
        mode = "pool" if plan.use_parallel else "auto-serial"
        parallel[str(jobs)] = {
            "wall_s": round(wall, 4),
            "mode": mode,
            "effective_workers": plan.workers if plan.use_parallel else 1,
            "chunks": plan.n_chunks if plan.use_parallel else n_cells,
            "vs_serial": round(serial_wall / wall, 2),
            "vs_batch": round(batch_wall / wall, 2),
            "plan_reason": plan.reason,
        }
        lines.append(
            f"[{tier}] jobs={jobs} ({mode}): {wall:7.2f}s  "
            f"({serial_wall / wall:.2f}x vs serial, "
            f"{batch_wall / wall:.2f}x vs batch)"
        )
        # Acceptance: --jobs is never slower than the shipped serial
        # path (which uses the batch kernel where policies offer one).
        assert wall <= batch_wall * NEVER_SLOWER_TOL + NEVER_SLOWER_GRACE_S, (
            f"{tier}: sweep(jobs={jobs}) took {wall:.2f}s vs "
            f"{batch_wall:.2f}s serial — slower than serial"
        )

    cpus = os.cpu_count() or 1
    if spec["gate"] is not None:
        for name, stats in per_policy.items():
            gated = stats["batch_speedup_gated"]
            assert gated is not None, (
                f"{tier}: {name} has no gated capacities (all below "
                f"total/{GATE_MIN_CAP_DIVISOR}) — cannot gate"
            )
            assert gated >= spec["gate"], (
                f"{tier}: {name} batch kernel {gated}x "
                f"< required {spec['gate']}x over the per-access path "
                f"on gated (hit-dominated) capacities"
            )
        if cpus >= 4 and "4" in parallel:
            assert parallel["4"]["vs_serial"] >= 2.0, (
                f"{tier}: jobs=4 only {parallel['4']['vs_serial']}x vs "
                f"serial on a {cpus}-cpu host (gate: >= 2x)"
            )

    # Drop the tier's per-access list cache before the next (possibly
    # larger) tier replays — at grown scale it holds ~10 GB.
    trace.release_replay_columns()

    def stats(wall: float) -> dict:
        return {
            "wall_s": round(wall, 4),
            "accesses_per_s": round(total_accesses / wall, 1),
            "ns_per_access": round(wall / total_accesses * 1e9, 1),
        }

    payload = {
        "seed": EXPERIMENT_SEED,
        "grid": {
            "policies": sorted(factories),
            "capacities": list(caps),
            "cells": n_cells,
            "accesses_per_cell": trace.n_accesses,
            "total_accesses": total_accesses,
        },
        "identical_to_serial": True,
        "serial_per_access": stats(serial_wall),
        "batch": stats(batch_wall),
        "per_policy": per_policy,
        "parallel": parallel,
    }
    if legacy_stats is not None:
        payload["legacy_serial"] = legacy_stats
    if spec["gate"] is not None:
        payload["gates"] = {
            "batch_speedup_floor": spec["gate"],
            "batch_gate_min_cap_frac": 1 / GATE_MIN_CAP_DIVISOR,
            "batch_gated_capacities": [
                cap for cap in caps if cap >= gate_floor_cap
            ],
            "parallel_jobs4_floor": 2.0 if cpus >= 4 else None,
            "note": (
                "parallel gate skipped: host has "
                f"{cpus} cpu(s), pool gated behind cpus >= 4"
            )
            if cpus < 4
            else "all gates enforced",
        }
    return payload


def test_bench_sweep(benchmark, archive):
    tiers = bench_tiers()
    lines: list[str] = []

    def run_all():
        return {tier: _bench_tier(tier, lines) for tier in tiers}

    tier_payloads = benchmark.pedantic(run_all, rounds=1, iterations=1)

    payload = {
        "benchmark": "sweep",
        "host": host_info(),
        "tiers_run": list(tiers),
        "tiers": tier_payloads,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    header = (
        f"sweep bench — tiers {', '.join(tiers)} on "
        f"{payload['host']['cpus']} cpu(s), "
        f"python {payload['host']['python']}"
    )
    rendered = "\n".join([header, *lines, "all variants bit-identical: yes"])
    print()
    print(rendered)
    archive("sweep", rendered)
