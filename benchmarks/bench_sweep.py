"""Benchmark the sweep engine: legacy loop vs fast path vs process pool.

Replays the Figure 10 grid (file-LRU and filecule-LRU × seven
capacities) four ways over the shared benchmark workload:

* ``legacy`` — a faithful transcription of the pre-optimization replay
  (per-access loop with numpy scalar boxing, per-access
  ``CacheMetrics.record``, and policies that allocate a fresh
  :class:`~repro.cache.base.RequestOutcome` on every request);
* ``serial`` — today's :func:`repro.cache.simulator.simulate` fast path;
* ``parallel`` — :func:`~repro.cache.simulator.sweep` with
  ``jobs`` ∈ {1, 2, 4} fanning the grid over a process pool with the
  trace in shared memory.

Every variant must produce bit-identical :class:`CacheMetrics` — the
benchmark *fails* on any divergence; timings are informational.  Results
go to ``BENCH_sweep.json`` (repo root) and ``benchmarks/output/sweep.txt``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py -q

``REPRO_BENCH_SCALE=tiny`` (or ``small``) shrinks the workload for smoke
runs; the default scale matches ``python -m repro.experiments all``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cache.base import CacheMetrics, RequestOutcome
from repro.cache.filecule_lru import FileculeLRU
from repro.cache.lru import FileLRU
from repro.cache.simulator import SweepResult, sweep
from repro.parallel import ParallelSweepRunner
from repro.experiments.fig10 import capacities_for
from repro.traces.trace import Trace
from repro.util.units import format_bytes

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sweep.json"

PARALLEL_JOBS = (1, 2, 4)


# --------------------------------------------------------------------------
# Faithful pre-optimization baseline.  The loop below is the replay inner
# loop as it stood before the fast path landed (numpy scalar boxing per
# access, per-access metrics recording), and the two _Legacy* policies
# restore the original `request` bodies that allocated a RequestOutcome
# per call.  Keep in sync with nothing — this is a frozen reference.
# --------------------------------------------------------------------------


class _LegacyFileLRU(FileLRU):
    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        entry = self._entries.get(file_id)
        if entry is not None:
            self._entries.move_to_end(file_id)
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + size > self.capacity_bytes:
            _, evicted_size = self._entries.popitem(last=False)
            self._release(evicted_size)
        self._entries[file_id] = size
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)


class _LegacyFileculeLRU(FileculeLRU):
    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        label = int(self._labels[file_id])
        if label < 0:
            raise KeyError(
                f"file {file_id} has no filecule; partition does not match "
                f"the replayed trace"
            )
        if label in self._entries:
            self._entries.move_to_end(label)
            if not self._intra_job_hits and self._load_key.get(label) == now:
                return RequestOutcome(hit=False, bytes_fetched=0)
            return RequestOutcome(hit=True)
        fc_size = int(self._sizes[label])
        if fc_size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + fc_size > self.capacity_bytes:
            evicted_label, evicted = self._entries.popitem(last=False)
            self._release(evicted)
            self._load_key.pop(evicted_label, None)
        self._entries[label] = fc_size
        self._charge(fc_size)
        if not self._intra_job_hits:
            self._load_key[label] = now
        return RequestOutcome(hit=False, bytes_fetched=fc_size)


def _legacy_simulate(trace: Trace, policy, name: str, capacity: int) -> CacheMetrics:
    metrics = CacheMetrics(name=name, capacity_bytes=int(capacity))
    sizes = trace.file_sizes
    starts = trace.job_starts
    access_jobs = trace.access_jobs
    access_files = trace.access_files
    record = metrics.record
    request = policy.request
    begin_job = policy.begin_job
    ptr = trace.job_access_ptr
    current_job = -1
    for i in range(len(access_jobs)):
        j = int(access_jobs[i])
        if j != current_job:
            begin_job(
                trace.access_files[ptr[j] : ptr[j + 1]], float(starts[j])
            )
            current_job = j
        f = int(access_files[i])
        size = int(sizes[f])
        record(size, request(f, size, float(starts[j])))
    return metrics


def _legacy_sweep(trace, factories, capacities) -> SweepResult:
    metrics = {
        name: tuple(
            _legacy_simulate(trace, factory(cap), name, cap)
            for cap in capacities
        )
        for name, factory in factories.items()
    }
    return SweepResult(capacities=tuple(capacities), metrics=metrics)


def _assert_identical(reference: SweepResult, other: SweepResult, label: str):
    assert other.capacities == reference.capacities, label
    assert set(other.metrics) == set(reference.metrics), label
    for name, ref_cells in reference.metrics.items():
        for ref, got in zip(ref_cells, other.metrics[name]):
            assert got == ref, (
                f"{label}: {name}@{format_bytes(ref.capacity_bytes, 1)} "
                f"diverged: {got} != {ref}"
            )


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_bench_sweep(benchmark, ctx, archive):
    trace = ctx.trace
    partition = ctx.partition
    caps = capacities_for(trace.total_bytes())
    factories = {
        "file-lru": lambda c: FileLRU(c),
        "filecule-lru": lambda c: FileculeLRU(c, partition),
    }
    legacy_factories = {
        "file-lru": lambda c: _LegacyFileLRU(c),
        "filecule-lru": lambda c: _LegacyFileculeLRU(c, partition),
    }
    n_cells = len(factories) * len(caps)
    total_accesses = trace.n_accesses * n_cells

    def run_all():
        # Warm the one-time list conversion outside the timed regions so
        # every variant (including legacy, which doesn't use it) is
        # measured on the same footing.
        trace.replay_columns
        legacy, legacy_s = _timed(
            lambda: _legacy_sweep(trace, legacy_factories, caps)
        )
        serial, serial_s = _timed(lambda: sweep(trace, factories, caps))
        parallel = {}
        for jobs in PARALLEL_JOBS:
            runner = ParallelSweepRunner(jobs)
            result, wall = _timed(
                lambda r=runner: r.run(trace, factories, caps)
            )
            parallel[jobs] = (result, wall, runner.effective_jobs)
        # One deliberately oversubscribed run at the top degree: measures
        # the cost the runner's CPU clamp avoids (pure context-switch /
        # cache-thrash loss on CPU-bound workers).
        over = ParallelSweepRunner(max(PARALLEL_JOBS), oversubscribe=True)
        over_result, over_s = _timed(lambda: over.run(trace, factories, caps))
        return legacy, legacy_s, serial, serial_s, parallel, (
            over_result, over_s, over.effective_jobs
        )

    legacy, legacy_s, serial, serial_s, parallel, oversub = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # Correctness gates: the fast path must match the legacy loop, and
    # every parallel degree must match serial, bit for bit.
    _assert_identical(legacy, serial, "fast path vs legacy")
    for jobs, (result, _, _) in parallel.items():
        _assert_identical(serial, result, f"parallel jobs={jobs} vs serial")
    _assert_identical(serial, oversub[0], "oversubscribed pool vs serial")

    def stats(wall: float) -> dict:
        return {
            "wall_s": round(wall, 4),
            "accesses_per_s": round(total_accesses / wall, 1),
            "ns_per_access": round(wall / total_accesses * 1e9, 1),
        }

    payload = {
        "benchmark": "sweep",
        "scale": os.environ.get("REPRO_BENCH_SCALE", "default"),
        "cpus": os.cpu_count(),
        "grid": {
            "policies": sorted(factories),
            "capacities": list(caps),
            "cells": n_cells,
            "accesses_per_cell": trace.n_accesses,
            "total_accesses": total_accesses,
        },
        "identical_to_serial": True,
        "legacy_serial": stats(legacy_s),
        "serial": stats(serial_s),
        "parallel": {
            str(j): {**stats(w), "effective_workers": eff}
            for j, (_, w, eff) in parallel.items()
        },
        # The degradation the runner's CPU clamp avoids: same grid, pool
        # forced to the full requested worker count.
        "oversubscribed": {
            **stats(oversub[1]),
            "requested_workers": max(PARALLEL_JOBS),
            "effective_workers": oversub[2],
        },
        # Headline: end-to-end improvement this PR delivers on the grid —
        # pre-PR serial loop vs the parallel engine at 1/2/4 workers.
        "speedup_vs_legacy": {
            "serial": round(legacy_s / serial_s, 2),
            **{
                str(j): round(legacy_s / w, 2)
                for j, (_, w, _) in parallel.items()
            },
        },
        # Honest pool scaling: parallel vs today's serial fast path.  On
        # a single-CPU host the clamp pins this near 1.0 — the
        # speedup_vs_legacy numbers are the deliverable there.
        "speedup_vs_serial": {
            str(j): round(serial_s / w, 2) for j, (_, w, _) in parallel.items()
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"sweep grid: {n_cells} cells × {trace.n_accesses:,} accesses "
        f"({total_accesses:,} total) on {payload['cpus']} cpu(s)",
        f"legacy serial : {legacy_s:8.2f}s  "
        f"{payload['legacy_serial']['ns_per_access']:7.1f} ns/access",
        f"serial (fast) : {serial_s:8.2f}s  "
        f"{payload['serial']['ns_per_access']:7.1f} ns/access  "
        f"({payload['speedup_vs_legacy']['serial']:.2f}x vs legacy)",
    ]
    for jobs, (_, wall, eff) in parallel.items():
        lines.append(
            f"parallel x{jobs}   : {wall:8.2f}s  "
            f"{payload['parallel'][str(jobs)]['ns_per_access']:7.1f} ns/access  "
            f"({payload['speedup_vs_legacy'][str(jobs)]:.2f}x vs legacy, "
            f"{payload['speedup_vs_serial'][str(jobs)]:.2f}x vs serial, "
            f"{eff} worker(s))"
        )
    lines.append(
        f"oversubscribed: {oversub[1]:.2f}s with {oversub[2]} workers on "
        f"{payload['cpus']} cpu(s) — the cost the CPU clamp avoids"
    )
    lines.append("all variants bit-identical: yes")
    rendered = "\n".join(lines)
    print()
    print(rendered)
    archive("sweep", rendered)

    assert payload["speedup_vs_legacy"]["serial"] > 1.0
