"""Benchmark: regenerate Figure 5 — number of filecules per job (multiple, but far fewer than files per job).

Run with ``pytest benchmarks/bench_fig5.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_fig5(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "fig5")
