"""Benchmark: regenerate Section 5 — BitTorrent feasibility: swarm vs client-server under observed arrivals.

Run with ``pytest benchmarks/bench_swarm.py --benchmark-only -s``.
"""

from benchmarks.conftest import run_and_report


def test_swarm(benchmark, ctx, archive):
    run_and_report(benchmark, ctx, archive, "swarm")
