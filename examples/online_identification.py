#!/usr/bin/env python
"""Online filecule identification and partial knowledge (paper §6).

Feeds the job stream to the incremental identifier, reporting how the
partition refines over time; then compares per-site (local-knowledge)
identification against the global partition, demonstrating the paper's
coarsening observation and its accuracy-grows-with-activity trend.

Usage::

    python examples/online_identification.py [scale] [seed]
"""

from __future__ import annotations

import sys

from repro import IncrementalFileculeIdentifier, find_filecules, generate_trace
from repro.core import coarsening_report, identify_per_site, is_coarsening_of
from repro.util import render_table
from repro.workload import default_config, small_config, tiny_config

SCALES = {"tiny": tiny_config, "small": small_config, "default": default_config}


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    trace = generate_trace(SCALES[scale](), seed=seed)

    # --- streaming identification ------------------------------------
    ident = IncrementalFileculeIdentifier()
    checkpoints = sorted(
        {max(1, trace.n_jobs * k // 10) for k in range(1, 11)}
    )
    next_checkpoint = 0
    print("streaming identification (partition refines as jobs arrive):")
    for job_id, files in trace.iter_jobs():
        if len(files):
            ident.observe_job(files.tolist())
        if (
            next_checkpoint < len(checkpoints)
            and job_id + 1 == checkpoints[next_checkpoint]
        ):
            print(
                f"  after {job_id + 1:6d} jobs: "
                f"{ident.n_files_observed:6d} files seen, "
                f"{ident.n_classes:5d} filecule classes"
            )
            next_checkpoint += 1

    batch = find_filecules(trace)
    streaming_groups = sorted(
        tuple(sorted(c)) for c in ident.classes()
    )
    batch_groups = sorted(tuple(fc.file_ids.tolist()) for fc in batch)
    print(
        f"streaming result matches offline identification: "
        f"{streaming_groups == batch_groups}"
    )

    # --- partial knowledge (per site) ---------------------------------
    print("\nper-site identification (each site sees only its own jobs):")
    locals_ = identify_per_site(trace)
    all_coarser = all(
        is_coarsening_of(local, batch) for local in locals_.values()
    )
    print(f"  coarsening theorem holds at every site: {all_coarser}")
    reports = coarsening_report(trace, group_by="site")
    print(
        render_table(
            ["site", "jobs", "files seen", "local", "true", "exact", "inflation"],
            [
                [
                    r.group,
                    r.n_jobs,
                    r.n_files_seen,
                    r.n_local_filecules,
                    r.n_true_filecules,
                    f"{r.exact_fraction:.2f}",
                    f"{r.inflation:.2f}",
                ]
                for r in reports
            ],
        )
    )
    print(
        "note the trend: the busier the site, the closer its local "
        "filecules come to the global truth (paper §6)"
    )


if __name__ == "__main__":
    main()
