#!/usr/bin/env python
"""End-to-end grid replay on the SAM substrate (stations, tape, WAN).

Replays the workload through a discrete-event model of the DZero data
grid under three configurations:

1. demand caching with per-site file-LRU stations;
2. demand caching with filecule-LRU stations;
3. filecule-LRU stations plus proactive filecule replication planned from
   the first half of the trace (paper §6's proposal, end to end).

Reports data-stall times, tape traffic and WAN traffic for each.

Usage::

    python examples/grid_replay.py [scale] [seed]
"""

from __future__ import annotations

import sys

from repro import find_filecules, generate_trace
from repro.cache import FileLRU, FileculeLRU
from repro.replication import resolve_strategy, site_budgets
from repro.sam import ReplicaCatalog, replay_trace
from repro.util import format_bytes, render_table
from repro.workload import default_config, small_config, tiny_config

SCALES = {"tiny": tiny_config, "small": small_config, "default": default_config}


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    trace = generate_trace(SCALES[scale](), seed=seed)
    partition = find_filecules(trace)
    capacity = max(int(0.02 * trace.total_bytes()), 1)
    print(
        f"replaying {trace.n_jobs} jobs across {trace.n_sites} sites, "
        f"station caches of {format_bytes(capacity)}"
    )

    reports = {}
    reports["file-lru stations"] = replay_trace(
        trace,
        cache_factory=lambda cap, site: FileLRU(cap),
        cache_capacity=capacity,
    )
    reports["filecule-lru stations"] = replay_trace(
        trace,
        cache_factory=lambda cap, site: FileculeLRU(cap, partition),
        cache_capacity=capacity,
    )

    # proactive replication: plan on the first half of the history
    t_lo, t_hi = trace.time_span()
    warm = trace.subset_jobs(trace.job_starts < t_lo + 0.5 * (t_hi - t_lo))
    warm_partition = find_filecules(warm)
    plan = resolve_strategy("filecule-rank").plan(
        warm, warm_partition, site_budgets(trace, capacity)
    )
    catalog = ReplicaCatalog(trace.n_files, trace.n_sites)
    for site in range(trace.n_sites):
        catalog.bulk_register(plan.site_files[site], site)
    reports["+ filecule replication"] = replay_trace(
        trace,
        cache_factory=lambda cap, site: FileculeLRU(cap, partition),
        cache_capacity=capacity,
        catalog=catalog,
    )

    print()
    print(
        render_table(
            [
                "configuration",
                "local byte frac",
                "mean stall (s)",
                "p95 stall (s)",
                "tape",
                "WAN",
            ],
            [
                [
                    name,
                    f"{r.local_byte_fraction:.3f}",
                    f"{r.mean_stall_seconds:.0f}",
                    f"{r.p95_stall_seconds:.0f}",
                    format_bytes(r.tape_bytes, 1),
                    format_bytes(r.wan_bytes, 1),
                ]
                for name, r in reports.items()
            ],
            title="grid replay outcomes",
        )
    )
    base = reports["file-lru stations"].mean_stall_seconds
    best = reports["+ filecule replication"].mean_stall_seconds
    if best > 0:
        print(
            f"\nfilecule-aware stations + replication cut mean data stall "
            f"by {base / best:.1f}x vs file-LRU demand caching"
        )


if __name__ == "__main__":
    main()
