#!/usr/bin/env python
"""How close is filecule-LRU to optimal?  (Belady MIN + Mattson MRCs.)

Validates the generated workload against the paper's calibration targets,
then compares online LRU against clairvoyant Belady MIN at file and
filecule granularity, and prints the Mattson unit-count miss-rate curves
that explain the gap analytically.

Usage::

    python examples/optimality_study.py [scale] [seed]
"""

from __future__ import annotations

import sys

from repro import find_filecules, generate_trace
from repro.analysis import granularity_mrcs
from repro.cache import BeladyMIN, FileLRU, FileculeBeladyMIN, FileculeLRU, sweep
from repro.util import format_bytes, render_table
from repro.workload import (
    default_config,
    small_config,
    tiny_config,
    validate_calibration,
)

SCALES = {"tiny": tiny_config, "small": small_config, "default": default_config}


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    trace = generate_trace(SCALES[scale](), seed=seed)
    partition = find_filecules(trace)

    print("calibration check against the paper's targets:")
    for r in validate_calibration(trace, partition):
        marker = "ok " if r.ok else "OUT"
        print(
            f"  [{marker}] {r.name}: expected {r.expected:.3g}, "
            f"measured {r.measured:.3g} ({r.deviation:+.0%})"
        )

    total = trace.total_bytes()
    caps = [max(int(f * total), 1) for f in (0.02, 0.1)]
    result = sweep(
        trace,
        {
            "file-lru": lambda c: FileLRU(c),
            "file-belady-min": lambda c: BeladyMIN(c, trace),
            "filecule-lru": lambda c: FileculeLRU(c, partition),
            "filecule-belady-min": lambda c: FileculeBeladyMIN(
                c, trace, partition
            ),
        },
        caps,
    )
    print()
    print(
        render_table(
            ["policy"] + [format_bytes(c, 1) for c in caps],
            [
                [name] + [f"{m.miss_rate:.3f}" for m in metrics]
                for name, metrics in result.metrics.items()
            ],
            title="miss rate: online vs clairvoyant, both granularities",
        )
    )

    file_curve, cule_curve = granularity_mrcs(trace, partition)
    print()
    print("Mattson unit-count LRU curves (hit rate at k held units):")
    header = ["granularity"] + [f"k={k}" for k in (1, 8, 64, 512)]
    rows = [
        ["files"] + [f"{file_curve.hit_rate(k):.3f}" for k in (1, 8, 64, 512)],
        ["filecules"]
        + [f"{cule_curve.hit_rate(k):.3f}" for k in (1, 8, 64, 512)],
    ]
    print(render_table(header, rows))
    k80_file = file_curve.capacity_for_hit_rate(0.8)
    k80_cule = cule_curve.capacity_for_hit_rate(0.8)
    print(
        f"\nan 80% hit rate requires holding {k80_file} files "
        f"vs {k80_cule} filecules concurrently — the analytic core of "
        f"Figure 10"
    )


if __name__ == "__main__":
    main()
