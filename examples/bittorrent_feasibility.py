#!/usr/bin/env python
"""BitTorrent feasibility study (paper §5, Figures 11–12).

For the most widely shared filecules: draw the per-site and per-user
access-interval charts, compute concurrency profiles, and price swarm vs
client-server transfers under the observed arrivals — plus a flash-crowd
control showing the swarm model does pay off when concurrency exists.

Usage::

    python examples/bittorrent_feasibility.py [scale] [seed]
"""

from __future__ import annotations

import sys

from repro import find_filecules, generate_trace
from repro.transfer import (
    bittorrent_feasibility,
    concurrency_profile,
    job_duration_intervals,
    select_hot_filecule,
    simulate_client_server,
    simulate_swarm,
    site_intervals,
    user_intervals,
)
from repro.util import ascii_intervals, format_bytes, render_table
from repro.util.timeutil import SECONDS_PER_DAY
from repro.util.units import GB
from repro.workload import default_config, small_config, tiny_config

SCALES = {"tiny": tiny_config, "small": small_config, "default": default_config}


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    trace = generate_trace(SCALES[scale](), seed=seed)
    partition = find_filecules(trace)

    fc = select_hot_filecule(trace, partition)
    print(f"hottest filecule: {fc}")

    rows = site_intervals(trace, fc)
    print()
    print(
        ascii_intervals(
            [
                (r.label, r.start / SECONDS_PER_DAY, r.end / SECONDS_PER_DAY)
                for r in rows
            ],
            title="Figure 11: per-site access intervals (days)",
        )
    )
    rows = user_intervals(trace, fc)
    print()
    print(
        ascii_intervals(
            [
                (r.label, r.start / SECONDS_PER_DAY, r.end / SECONDS_PER_DAY)
                for r in rows
            ],
            title="Figure 12: per-user access intervals (days)",
        )
    )
    running = concurrency_profile(job_duration_intervals(trace, fc))
    print(
        f"\njobs running on this filecule simultaneously: "
        f"max {running.max_concurrency}, "
        f"time-weighted mean {running.mean_concurrency:.2f}"
    )

    print()
    table = bittorrent_feasibility(trace, partition, top_k=5)
    print(
        render_table(
            ["filecule", "size", "jobs", "users", "max conc", "swarm speedup"],
            [
                [
                    f"#{r.filecule_id}",
                    format_bytes(r.size_bytes, 1),
                    r.n_jobs,
                    r.n_users,
                    r.max_concurrent_users,
                    f"{r.speedup:.2f}x",
                ]
                for r in table
            ],
            title="swarm vs client-server under observed arrivals",
        )
    )

    # control: the same machinery under a flash crowd
    size = 2 * GB
    cs = simulate_client_server([0.0] * 40, size)
    sw = simulate_swarm([0.0] * 40, size)
    print(
        f"\nflash-crowd control (40 peers, {format_bytes(size)}): "
        f"client-server {cs.mean_download_time:.0f}s vs swarm "
        f"{sw.mean_download_time:.0f}s "
        f"({cs.mean_download_time / sw.mean_download_time:.1f}x)"
    )
    print(
        "conclusion: the mechanism works; the DZero-like workload simply "
        "lacks the concurrency to exploit it (paper §5)"
    )


if __name__ == "__main__":
    main()
