#!/usr/bin/env python
"""Full paper-scale reproduction of the workload characterization.

Generates the *unscaled* DZero calibration — ≈ 234k jobs, ≈ 1M catalog
files, ≈ 13M accesses — identifies its filecules and prints Tables 1–2
plus the headline filecule statistics at the paper's own magnitudes.

Expect a few minutes and several GB of RAM; every other script in this
repository uses the scaled presets instead.

Usage::

    python examples/paper_scale.py [seed]
"""

from __future__ import annotations

import sys
import time

from repro import find_filecules, generate_trace
from repro.core.identify import find_filecules as _find
from repro.traces import domain_table, summarize, tier_table
from repro.util import GB, TB, format_bytes, render_table
from repro.workload import paper_config, validate_calibration


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
    config = paper_config()
    print(
        f"generating paper-scale workload (seed {seed}): "
        f"{config.n_jobs} jobs, {config.n_files} files ..."
    )
    t0 = time.perf_counter()
    trace = generate_trace(config, seed=seed)
    print(f"generated in {time.perf_counter() - t0:.0f}s: {summarize(trace)}")

    t0 = time.perf_counter()
    partition = find_filecules(trace)
    print(
        f"identified {len(partition)} filecules in "
        f"{time.perf_counter() - t0:.0f}s "
        f"(paper: ~100k filecules over 1.13M files)"
    )
    print(
        f"largest filecule: "
        f"{format_bytes(int(partition.sizes_bytes.max()))} "
        f"(paper: 17 TB); mean files/filecule "
        f"{partition.files_per_filecule.mean():.1f}"
    )

    rows = tier_table(trace)
    print()
    print(
        render_table(
            ["Data tier", "Users", "Jobs", "Files", "Input/Job (MB)", "Time/Job (h)"],
            [
                (r["tier"], r["users"], r["jobs"], r["files"], r["input_mb"], r["hours"])
                for r in rows
            ],
            title="Table 1 at paper scale",
        )
    )

    rows = domain_table(trace, filecule_counter=lambda sub: len(_find(sub)))
    print()
    print(
        render_table(
            ["Domain", "Jobs", "Nodes", "Sites", "Users", "Filecules", "Files", "Data (GB)"],
            [
                (r["domain"], r["jobs"], r["nodes"], r["sites"], r["users"],
                 r["filecules"], r["files"], r["data_gb"])
                for r in rows
            ],
            title="Table 2 at paper scale",
        )
    )

    print()
    print("calibration targets:")
    for r in validate_calibration(trace, partition):
        marker = "ok " if r.ok else "OUT"
        print(
            f"  [{marker}] {r.name}: expected {r.expected:.3g}, "
            f"measured {r.measured:.3g} ({r.deviation:+.0%})"
        )


if __name__ == "__main__":
    main()
