#!/usr/bin/env python
"""Analyze an external trace file: the adoption path for real SAM exports.

Loads a trace from disk (JSONL file or CSV directory, the formats of
``repro.traces.io``), then runs the full first-look analysis battery:

* headline summary and Table 1/2-style breakdowns;
* filecule identification with invariant validation;
* micro-structure diagnostics (input-set reuse, overlap, reuse distance);
* a quick file-vs-filecule LRU comparison at 5% of the data volume.

Usage::

    # produce an input first (or bring your own export):
    python -m repro.workload --scale small --seed 1 --format jsonl --out t.jsonl
    python examples/analyze_trace.py t.jsonl
    python examples/analyze_trace.py some_csv_directory/
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import find_filecules
from repro.analysis import (
    file_vs_filecule_reuse,
    job_set_reuse,
    pairwise_jaccard_sample,
)
from repro.cache import FileLRU, FileculeLRU, simulate
from repro.core import assert_partition_valid
from repro.traces import (
    domain_table,
    read_trace_csv,
    read_trace_jsonl,
    summarize,
    tier_table,
)
from repro.util import format_bytes, render_table


def load(path: Path):
    if path.is_dir():
        return read_trace_csv(path)
    return read_trace_jsonl(path)


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__)
        raise SystemExit(2)
    path = Path(sys.argv[1])
    trace = load(path)
    print(f"loaded {path}: {summarize(trace)}")

    partition = find_filecules(trace)
    assert_partition_valid(trace, partition)
    print(
        f"\n{len(partition)} filecules over {partition.n_covered_files} "
        f"accessed files; largest "
        f"{format_bytes(int(partition.sizes_bytes.max()))}, most requested "
        f"{int(partition.requests.max())} times (invariants verified)"
    )

    rows = tier_table(trace)
    print()
    print(
        render_table(
            ["Data tier", "Users", "Jobs", "Files", "Input/Job (MB)", "Time/Job (h)"],
            [
                (r["tier"], r["users"], r["jobs"], r["files"], r["input_mb"], r["hours"])
                for r in rows
            ],
            title="per-tier characteristics",
        )
    )
    rows = domain_table(trace)
    print()
    print(
        render_table(
            ["Domain", "Jobs", "Nodes", "Sites", "Users", "Files", "Data (GB)"],
            [
                (r["domain"], r["jobs"], r["nodes"], r["sites"], r["users"],
                 r["files"], r["data_gb"])
                for r in rows
            ],
            title="per-domain characteristics",
        )
    )

    reuse = job_set_reuse(trace)
    overlap = pairwise_jaccard_sample(trace, n_pairs=2000, seed=0)
    file_r, cule_r = file_vs_filecule_reuse(trace, partition)
    print(
        f"\nmicro-structure: {reuse.reuse_fraction:.0%} of jobs repeat an "
        f"exact input set; job pairs {overlap.disjoint_fraction:.0%} "
        f"disjoint / {overlap.partial_fraction:.0%} partial / "
        f"{overlap.identical_fraction:.0%} identical; median reuse "
        f"distance {file_r.median_distance:.0f} files vs "
        f"{cule_r.median_distance:.0f} filecules"
    )

    capacity = max(int(0.05 * trace.total_bytes()), 1)
    m_file = simulate(trace, lambda c: FileLRU(c), capacity)
    m_cule = simulate(trace, lambda c: FileculeLRU(c, partition), capacity)
    factor = (
        m_file.miss_rate / m_cule.miss_rate if m_cule.miss_rate else float("inf")
    )
    print(
        f"\ncache check at {format_bytes(capacity)} (5% of data): "
        f"file-LRU misses {m_file.miss_rate:.2f}, filecule-LRU "
        f"{m_cule.miss_rate:.2f} — managing this workload at filecule "
        f"granularity is worth {factor:.1f}x"
    )


if __name__ == "__main__":
    main()
