#!/usr/bin/env python
"""Build a custom workload configuration and export the trace.

Shows the full configuration surface: define your own tiers, domains and
behavioural knobs, generate the trace, characterize it, and write it out
in both interchange formats (CSV directory + JSONL) for external tools —
or for loading real SAM-style exports back in.

Usage::

    python examples/custom_workload.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import find_filecules, generate_trace
from repro.traces import (
    read_trace_jsonl,
    summarize,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.util import GB, MB, format_bytes
from repro.workload import DomainConfig, TierConfig, WorkloadConfig


def build_config() -> WorkloadConfig:
    """A two-tier, three-domain mini-collaboration."""
    tiers = (
        TierConfig(
            name="reconstructed",
            n_files=3000,
            n_datasets=200,
            file_size_mean=500 * MB,
            file_size_sigma=0.4,
            file_size_min=50 * MB,
            file_size_max=2 * GB,
            dataset_len_mean=40.0,
            dataset_len_sigma=1.3,
            dataset_len_max=600,
            job_weight=1.0,
            duration_hours_mean=8.0,
        ),
        TierConfig(
            name="thumbnail",
            n_files=2000,
            n_datasets=300,
            file_size_mean=200 * MB,
            file_size_sigma=0.5,
            file_size_min=10 * MB,
            file_size_max=1 * GB,
            dataset_len_mean=60.0,
            dataset_len_sigma=1.3,
            dataset_len_max=800,
            job_weight=3.0,
            duration_hours_mean=3.0,
        ),
    )
    domains = (
        DomainConfig(".gov", n_sites=1, n_nodes=4, user_weight=30, activity_boost=4.0),
        DomainConfig(".edu", n_sites=3, n_nodes=5, user_weight=12),
        DomainConfig(".de", n_sites=1, n_nodes=2, user_weight=6),
    )
    return WorkloadConfig(
        tiers=tiers,
        domains=domains,
        n_users=48,
        n_traced_jobs=1500,
        n_other_jobs=800,
        span_days=365.0,
        locality_boost=6.0,
        name="mini-collab",
    )


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "custom_workload_out")
    config = build_config()
    trace = generate_trace(config, seed=2026)
    print(f"generated '{config.name}': {summarize(trace)}")

    partition = find_filecules(trace)
    print(
        f"{len(partition)} filecules; largest "
        f"{format_bytes(int(partition.sizes_bytes.max()))}, most requested "
        f"{int(partition.requests.max())} times"
    )

    csv_dir = write_trace_csv(trace, out_dir / "trace_csv")
    jsonl_path = write_trace_jsonl(trace, out_dir / "trace.jsonl")
    print(f"wrote {csv_dir}/ (CSV tables) and {jsonl_path} (JSONL)")

    # round-trip sanity: the loaded trace yields the identical partition
    reloaded = read_trace_jsonl(jsonl_path)
    same = sorted(
        tuple(fc.file_ids.tolist()) for fc in find_filecules(reloaded)
    ) == sorted(tuple(fc.file_ids.tolist()) for fc in partition)
    print(f"round-trip identification matches: {same}")


if __name__ == "__main__":
    main()
