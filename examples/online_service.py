#!/usr/bin/env python
"""Walkthrough of the online filecule data-management service (paper §6).

Starts the daemon in-process on an ephemeral port, replays a calibrated
synthetic job stream through the concurrent load generator (each job
first asks the service for a filecule-granularity prefetch/admission
plan, then is ingested), then verifies the big claim: the partition the
service maintained *online* is exactly the partition offline
identification finds on the same jobs.  Finishes with a snapshot/restore
round-trip — the crash-recovery path a deployed daemon relies on.

Usage::

    python examples/online_service.py [scale] [seed]

For the operational (multi-process) form of the same flow, see
``docs/SERVICE.md``:  ``repro-serve serve`` + ``repro-serve loadgen``.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
from pathlib import Path

from repro import find_filecules, generate_trace
from repro.service import (
    AsyncServiceClient,
    FileculeServer,
    ServiceState,
    jobs_from_trace,
    run_load,
)
from repro.service.state import partition_checksum
from repro.util import format_bytes
from repro.util.units import GB
from repro.workload import default_config, small_config, tiny_config

SCALES = {"tiny": tiny_config, "small": small_config, "default": default_config}


async def demo(scale: str, seed: int) -> None:
    trace = generate_trace(SCALES[scale](), seed=seed)
    jobs = jobs_from_trace(trace)
    print(f"workload: {trace.n_jobs} jobs over {trace.n_files} files")

    # --- start the daemon and replay the stream -----------------------
    server = FileculeServer(
        ServiceState(policy="lru", capacity_bytes=100 * GB)
    )
    await server.start()
    print(f"daemon listening on 127.0.0.1:{server.port}")

    report = await run_load(
        "127.0.0.1", server.port, jobs, connections=8, advise_every=10
    )
    print(report.render())

    # --- the online partition equals the offline one ------------------
    offline = find_filecules(trace)
    offline_sum = partition_checksum(fc.file_ids.tolist() for fc in offline)
    online_sum = report.final_stats["partition_checksum"]
    print(
        f"online partition: {report.final_stats['n_classes']} filecules, "
        f"checksum {online_sum}"
    )
    print(
        f"offline find_filecules: {len(offline)} filecules, "
        f"checksum {offline_sum}"
    )
    print(f"streamed partition matches offline identification: "
          f"{online_sum == offline_sum}")

    # --- ask for a plan, inspect live popularity ----------------------
    async with await AsyncServiceClient.connect(
        "127.0.0.1", server.port
    ) as client:
        hottest = report.final_stats["top_filecules"][0]
        plan = await client.advise(hottest["files"][:2], site=0)
        print(
            f"advise for 2 files of the hottest filecule "
            f"({hottest['requests']} requests, "
            f"{format_bytes(hottest['bytes'])}): "
            f"action={plan['plan'][0]['action']}, "
            f"{len(plan['plan'][0]['prefetch'])} members to prefetch"
        )

        # --- snapshot / restore (crash recovery) ----------------------
        with tempfile.TemporaryDirectory() as tmp:
            snap = Path(tmp) / "state.jsonl"
            receipt = await client.snapshot(str(snap))
            print(f"snapshot: {receipt['n_classes']} classes -> {snap.name}")
            restored = ServiceState.restore(snap)
            same = (
                partition_checksum(
                    c["files"] for c in restored.partition()["classes"]
                )
                == online_sum
            )
            print(f"restored daemon state matches: {same}")

    await server.stop()


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    asyncio.run(demo(scale, seed))


if __name__ == "__main__":
    main()
