#!/usr/bin/env python
"""Quickstart: generate a DZero-like trace, find filecules, compare caches.

Usage::

    python examples/quickstart.py [scale] [seed]

``scale`` is one of tiny/small/default (default: small).
"""

from __future__ import annotations

import sys

from repro import find_filecules, generate_trace
from repro.cache import FileLRU, FileculeLRU, simulate
from repro.traces import summarize
from repro.util import format_bytes
from repro.workload import default_config, small_config, tiny_config

SCALES = {"tiny": tiny_config, "small": small_config, "default": default_config}


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    config = SCALES[scale]()

    # 1. generate a synthetic SAM trace (substitute for the proprietary
    #    DZero history; see DESIGN.md section 2)
    trace = generate_trace(config, seed=seed)
    print(f"workload '{config.name}', seed {seed}")
    print(f"  {summarize(trace)}")

    # 2. identify filecules: maximal groups of files always used together
    partition = find_filecules(trace)
    print(
        f"  {len(partition)} filecules over "
        f"{partition.n_covered_files} accessed files "
        f"(mean {partition.files_per_filecule.mean():.1f} files/filecule)"
    )
    print("  three most requested filecules:")
    for fc in list(partition)[:3]:
        print(f"    {fc}")

    # 3. replay the request stream against a 5%-of-data cache, with LRU at
    #    file vs filecule granularity (the paper's Figure 10 comparison)
    capacity = max(int(0.05 * trace.total_bytes()), 1)
    file_metrics = simulate(trace, lambda c: FileLRU(c), capacity)
    cule_metrics = simulate(
        trace, lambda c: FileculeLRU(c, partition), capacity
    )
    print(f"  cache of {format_bytes(capacity)} (5% of accessed data):")
    print(f"    file-lru      miss rate {file_metrics.miss_rate:.3f}")
    print(f"    filecule-lru  miss rate {cule_metrics.miss_rate:.3f}")
    factor = (
        file_metrics.miss_rate / cule_metrics.miss_rate
        if cule_metrics.miss_rate
        else float("inf")
    )
    print(f"    filecule granularity wins by {factor:.1f}x")


if __name__ == "__main__":
    main()
