#!/usr/bin/env python
"""Cache policy study: the Figure 10 sweep plus the related-work baselines.

Replays the workload against seven cache sizes and eight replacement
policies, printing miss rates, byte miss rates and fetch overheads —
extending the paper's two-policy Figure 10 with the §7 related-work field
(FIFO, LFU, SIZE, Greedy-Dual-Size, Landlord, group-prefetching LRU).

Usage::

    python examples/cache_study.py [scale] [seed]
"""

from __future__ import annotations

import sys

from repro import find_filecules, generate_trace
from repro.cache import (
    FileFIFO,
    FileLFU,
    FileLRU,
    FileculeLRU,
    GreedyDualSize,
    GroupPrefetchLRU,
    Landlord,
    LargestFirst,
    sweep,
)
from repro.experiments.fig10 import CAPACITY_FRACTIONS
from repro.util import format_bytes, render_table
from repro.workload import default_config, small_config, tiny_config

SCALES = {"tiny": tiny_config, "small": small_config, "default": default_config}


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42
    trace = generate_trace(SCALES[scale](), seed=seed)
    partition = find_filecules(trace)
    total = trace.total_bytes()
    capacities = [max(int(f * total), 1) for f in CAPACITY_FRACTIONS]

    factories = {
        "file-fifo": lambda c: FileFIFO(c),
        "file-lru": lambda c: FileLRU(c),
        "file-lfu": lambda c: FileLFU(c),
        "largest-first": lambda c: LargestFirst(c),
        "gds": lambda c: GreedyDualSize(c),
        "landlord": lambda c: Landlord(c),
        "group-prefetch": lambda c: GroupPrefetchLRU(
            c, trace.file_datasets.astype("int64"), trace.file_sizes
        ),
        "filecule-lru": lambda c: FileculeLRU(c, partition),
    }
    print(
        f"sweeping {len(factories)} policies x {len(capacities)} capacities "
        f"over {trace.n_accesses} requests ({format_bytes(total)} of data)"
    )
    result = sweep(trace, factories, capacities)

    headers = ["policy"] + [format_bytes(c, 1) for c in capacities]
    rows = [
        [name] + [f"{m.miss_rate:.3f}" for m in metrics]
        for name, metrics in result.metrics.items()
    ]
    print()
    print(render_table(headers, rows, title="miss rate by cache size"))

    rows = [
        [name] + [f"{m.fetch_overhead:.1f}" for m in metrics]
        for name, metrics in result.metrics.items()
    ]
    print()
    print(
        render_table(
            headers,
            rows,
            title="fetch overhead (bytes pulled per missed requested byte)",
        )
    )
    factors = result.improvement_factor("file-lru", "filecule-lru")
    print()
    print(
        "filecule-LRU improvement over file-LRU per capacity: "
        + ", ".join(f"{f:.1f}x" for f in factors)
    )


if __name__ == "__main__":
    main()
