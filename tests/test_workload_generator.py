"""Unit and statistical tests for the synthetic workload generator."""

import numpy as np
import pytest

from repro.traces.records import TIER_OTHER
from repro.traces.stats import summarize, tier_table
from repro.util.timeutil import SECONDS_PER_DAY
from repro.workload.calibration import small_config, tiny_config
from repro.workload.datasets import build_population
from repro.workload.generator import _apportion, generate_trace


class TestApportion:
    def test_total_preserved(self):
        shares = _apportion(np.array([5.0, 3.0, 2.0]), 100)
        assert shares.sum() == 100

    def test_proportionality(self):
        shares = _apportion(np.array([50.0, 30.0, 20.0]), 100)
        assert shares.tolist() == [50, 30, 20]

    def test_small_weights_get_one(self):
        shares = _apportion(np.array([1000.0, 1.0, 1.0]), 50)
        assert shares[1] >= 1 and shares[2] >= 1

    def test_zero_weight_gets_nothing(self):
        shares = _apportion(np.array([1.0, 0.0]), 10)
        assert shares.tolist() == [10, 0]

    def test_fewer_units_than_entries(self):
        shares = _apportion(np.array([5.0, 1.0, 3.0]), 2)
        assert shares.sum() == 2
        assert shares[0] == 1 and shares[2] == 1

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            _apportion(np.array([1.0]), -1)
        with pytest.raises(ValueError):
            _apportion(np.array([0.0]), 1)


class TestPopulation:
    def test_counts_match_config(self):
        cfg = tiny_config()
        pop, catalog = build_population(cfg, seed=0)
        assert pop.n_files == cfg.n_files
        assert catalog.n_datasets == cfg.n_datasets

    def test_tier_ranges_partition_files(self):
        cfg = tiny_config()
        pop, _ = build_population(cfg, seed=0)
        spans = sorted(pop.tier_ranges.values())
        assert spans[0][0] == 0
        for (a0, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 == b0
        assert spans[-1][1] == pop.n_files

    def test_datasets_inside_tier(self):
        cfg = tiny_config()
        pop, catalog = build_population(cfg, seed=0)
        for d in range(catalog.n_datasets):
            tier = int(catalog.tier_codes[d])
            lo, hi = pop.tier_ranges[tier]
            files = catalog.files_of(d)
            assert files.min() >= lo and files.max() < hi
            assert np.all(pop.tiers[files] == tier)

    def test_sizes_in_bounds(self):
        cfg = tiny_config()
        pop, _ = build_population(cfg, seed=0)
        for tier_cfg in cfg.tiers:
            lo, hi = pop.tier_ranges[tier_cfg.code]
            sizes = pop.sizes[lo:hi]
            if len(sizes):
                assert sizes.min() >= tier_cfg.file_size_min - 1
                assert sizes.max() <= tier_cfg.file_size_max + 1

    def test_deterministic(self):
        cfg = tiny_config()
        p1, c1 = build_population(cfg, seed=9)
        p2, c2 = build_population(cfg, seed=9)
        np.testing.assert_array_equal(p1.sizes, p2.sizes)
        np.testing.assert_array_equal(c1.starts, c2.starts)


class TestGenerateTrace:
    def test_deterministic(self):
        cfg = tiny_config()
        a = generate_trace(cfg, seed=5)
        b = generate_trace(cfg, seed=5)
        np.testing.assert_array_equal(a.access_files, b.access_files)
        np.testing.assert_array_equal(a.job_starts, b.job_starts)

    def test_seed_changes_output(self):
        cfg = tiny_config()
        a = generate_trace(cfg, seed=5)
        b = generate_trace(cfg, seed=6)
        assert not np.array_equal(a.job_starts, b.job_starts)

    def test_job_counts(self, tiny_trace):
        cfg = tiny_config()
        assert tiny_trace.n_jobs == cfg.n_jobs
        traced = (tiny_trace.files_per_job > 0).sum()
        # every traced job must have at least one file
        assert traced <= cfg.n_traced_jobs
        assert (tiny_trace.job_tiers == TIER_OTHER).sum() == cfg.n_other_jobs

    def test_other_jobs_have_no_files(self, tiny_trace):
        other = tiny_trace.job_tiers == TIER_OTHER
        assert tiny_trace.files_per_job[other].max(initial=0) == 0

    def test_chronological_job_ids(self, tiny_trace):
        starts = tiny_trace.job_starts
        assert np.all(starts[:-1] <= starts[1:])

    def test_time_window(self, tiny_trace):
        t_lo, t_hi = tiny_trace.time_span()
        assert t_lo >= 0
        assert t_hi <= (tiny_config().span_days + 110) * SECONDS_PER_DAY

    def test_jobs_request_whole_datasets(self, tiny_trace):
        """Each traced job's file set is a union of 1-2 contiguous runs."""
        for j in range(tiny_trace.n_jobs):
            files = tiny_trace.job_files(j)
            if len(files) == 0:
                continue
            breaks = int((np.diff(files) > 1).sum())
            assert breaks <= 1, f"job {j} spans {breaks + 1} runs"


class TestCalibrationShape:
    """Statistical checks on the small-scale preset (seed-fixed)."""

    def test_mean_files_per_job_near_paper(self, small_trace):
        fpj = small_trace.files_per_job[small_trace.files_per_job > 0]
        assert 50 <= fpj.mean() <= 220  # paper: 108

    def test_hub_dominates(self, small_trace):
        domains = small_trace.job_domains
        hub_jobs = (domains == 0).sum()
        assert hub_jobs > 0.5 * small_trace.n_jobs

    def test_tier_mix_ordering(self, small_trace):
        rows = {r["tier"]: r for r in tier_table(small_trace)}
        assert rows["Thumbnail"]["jobs"] > rows["Reconstructed"]["jobs"]
        assert rows["Reconstructed"]["jobs"] > rows["Root-tuple"]["jobs"]

    def test_summary_scale(self, small_trace):
        s = summarize(small_trace)
        assert s.n_jobs == small_config().n_jobs
        assert s.span_days > 365

    def test_multiple_domains_active(self, small_trace):
        assert len(np.unique(small_trace.job_domains)) >= 3
