"""Health detectors: each fires on its synthetic anomaly, stays quiet
on stationary traffic, and the monitor's event buffer is a ring.

Synthetic series are fed straight into a :class:`TimeSeriesRecorder`
(no registry, no server) so each detector's trigger logic is exercised
in isolation with exact control over the signal shape.
"""

import json

import pytest

from repro.obs.health import (
    ChurnSpikeDetector,
    HealthEvent,
    HealthMonitor,
    HitRateDivergenceDetector,
    LatencyBurnRateDetector,
    SiteShareCollapseDetector,
    default_detectors,
)
from repro.obs.timeseries import TimeSeriesRecorder


def recorder_with(series_values: dict, *, interval: float = 1.0, weights=None):
    """A recorder preloaded with named series (one value per tick)."""
    recorder = TimeSeriesRecorder(interval=interval)
    for name, values in series_values.items():
        agg = "mean" if name.startswith(("derived:", "p")) else "sum"
        series = recorder.series(name, agg)
        for t, v in enumerate(values):
            series.add(t * interval, v, weight=(weights or {}).get(name, 1.0))
    return recorder


def drive(detector, series_values, **kwargs):
    """One observe() pass over a fully-preloaded recorder."""
    return detector.observe(recorder_with(series_values, **kwargs))


class TestHitRateDivergence:
    def test_fires_on_step_change_after_warmup(self):
        values = [0.5] * 12 + [0.95] * 8
        events = drive(
            HitRateDivergenceDetector(), {"derived:hit_rate": values}
        )
        assert events, "step change after warmup must fire"
        assert all(e.detector == "hit-rate-divergence" for e in events)
        assert all(e.severity == "warning" for e in events)
        assert "above" in events[0].message
        assert events[0].evidence["divergence"] > 0
        # fires only after the step (tick 12), never during warmup
        assert min(e.ts for e in events) >= 12.0

    def test_fires_downward_too(self):
        values = [0.8] * 12 + [0.1] * 8
        events = drive(
            HitRateDivergenceDetector(), {"derived:hit_rate": values}
        )
        assert events and "below" in events[0].message

    def test_quiet_on_stationary_signal(self):
        events = drive(
            HitRateDivergenceDetector(), {"derived:hit_rate": [0.7] * 40}
        )
        assert events == []

    def test_quiet_during_cache_fill_trend(self):
        # A cache warming from empty: fast early climb inside warmup.
        values = [0.0, 0.2, 0.4, 0.55, 0.65, 0.72, 0.76, 0.78, 0.79, 0.8]
        events = drive(
            HitRateDivergenceDetector(warmup=8), {"derived:hit_rate": values}
        )
        assert events == []

    def test_leaky_baseline_eventually_absorbs_sustained_shift(self):
        # A permanent regime change fires for a while, then the slow
        # leak adopts it as the new normal — no firing forever.
        values = [0.5] * 12 + [0.9] * 300
        detector = HitRateDivergenceDetector()
        events = drive(detector, {"derived:hit_rate": values})
        assert events
        assert max(e.ts for e in events) < 311.0

    def test_processes_only_new_slots(self):
        detector = HitRateDivergenceDetector()
        recorder = recorder_with({"derived:hit_rate": [0.5] * 12 + [0.95] * 4})
        first = detector.observe(recorder)
        assert first
        assert detector.observe(recorder) == []  # nothing new


class TestSiteShareCollapse:
    @staticmethod
    def series(site_rates: dict):
        return {
            f'rate:site_requests{{site="{s}"}}': rates
            for s, rates in site_rates.items()
        }

    def test_fires_after_consecutive_collapsed_ticks(self):
        # Site 0 holds 50% share for 10 ticks, then goes dark.
        rates = self.series(
            {"0": [50.0] * 10 + [0.0] * 4, "1": [50.0] * 14}
        )
        events = drive(SiteShareCollapseDetector(), rates)
        assert events
        assert all(e.severity == "critical" for e in events)
        assert all(e.evidence["site"] == "0" for e in events)
        # needs `consecutive` collapsed ticks: first firing at tick 11
        assert events[0].ts == 11.0
        assert len(events) == 3  # ticks 11, 12, 13

    def test_single_tick_dropout_not_enough(self):
        rates = self.series(
            {"0": [50.0] * 10 + [0.0] + [50.0] * 3, "1": [50.0] * 14}
        )
        assert drive(SiteShareCollapseDetector(), rates) == []

    def test_low_share_sites_never_eligible(self):
        # An intermittent 5%-share site goes quiet: not a collapse.
        rates = self.series(
            {"0": [95.0] * 14, "1": [5.0] * 10 + [0.0] * 4}
        )
        events = drive(SiteShareCollapseDetector(min_share=0.2), rates)
        assert events == []

    def test_bursty_totals_cancel_out(self):
        # Total traffic swings 10x but shares stay constant: quiet.
        totals = [10.0, 100.0, 30.0, 80.0, 15.0, 90.0, 40.0, 70.0] * 3
        rates = self.series(
            {
                "0": [0.6 * t for t in totals],
                "1": [0.4 * t for t in totals],
            }
        )
        assert drive(SiteShareCollapseDetector(), rates) == []

    def test_quiet_ticks_skipped(self):
        # Globally-silent ticks carry no share information.
        rates = self.series(
            {"0": [50.0] * 10 + [0.0] * 4, "1": [50.0] * 10 + [0.0] * 4}
        )
        assert drive(SiteShareCollapseDetector(), rates) == []

    def test_baseline_frozen_during_collapse(self):
        detector = SiteShareCollapseDetector()
        rates = self.series(
            {"0": [50.0] * 10 + [0.0] * 6, "1": [50.0] * 16}
        )
        drive_events = drive(detector, rates)
        assert drive_events
        # the stored baseline still remembers the healthy ~50% share
        assert detector._share["0"] > 0.4


class TestLatencyBurnRate:
    def test_fires_when_burn_crosses_threshold(self):
        # p99 in seconds; SLO 5 ms. 6 of the last 8 ticks breach.
        values = [0.001] * 8 + [0.02] * 6
        events = drive(
            LatencyBurnRateDetector(slo_ms=5.0, window=8, burn_threshold=0.5),
            {"p99:op.ingest": values},
        )
        assert events
        assert events[0].severity == "critical"
        assert events[0].evidence["burn_rate"] >= 0.5

    def test_quiet_below_slo(self):
        events = drive(
            LatencyBurnRateDetector(slo_ms=5.0),
            {"p99:op.ingest": [0.001] * 30},
        )
        assert events == []

    def test_needs_full_window(self):
        events = drive(
            LatencyBurnRateDetector(slo_ms=5.0, window=8),
            {"p99:op.ingest": [0.02] * 5},  # all breaching, window unfilled
        )
        assert events == []


class TestChurnSpike:
    def test_fires_on_class_count_jump(self):
        values = [100.0 + t for t in range(10)] + [400.0]
        events = drive(
            ChurnSpikeDetector(), {"gauge:filecule_classes": values}
        )
        assert events
        assert events[0].value == pytest.approx(291.0)
        assert events[0].evidence["classes"] == 400.0

    def test_quiet_on_steady_drift(self):
        values = [100.0 + t for t in range(30)]
        assert (
            drive(ChurnSpikeDetector(), {"gauge:filecule_classes": values})
            == []
        )

    def test_spike_does_not_poison_typical_delta(self):
        detector = ChurnSpikeDetector()
        values = [100.0 + t for t in range(10)] + [400.0] + [401.0 + t for t in range(5)]
        drive(detector, {"gauge:filecule_classes": values})
        # typical delta reflects the steady ±1 movement, not the spike
        assert detector._typical < 2.0


class TestHealthMonitor:
    def test_ring_capacity_and_dropped_count(self):
        recorder = recorder_with(
            {"derived:hit_rate": [0.5] * 12 + [0.95] * 20}
        )
        monitor = HealthMonitor(
            recorder, [HitRateDivergenceDetector()], capacity=4
        )
        new = monitor.observe()
        assert len(new) > 4
        assert len(monitor.events()) == 4
        assert monitor.dropped == len(new) - 4
        # newest events retained
        assert monitor.events()[-1].ts == new[-1].ts

    def test_counts_and_default_panel(self):
        monitor = HealthMonitor(TimeSeriesRecorder())
        names = [d.name for d in monitor.detectors]
        assert names == [d.name for d in default_detectors()]
        assert monitor.observe() == []
        assert monitor.counts() == {}

    def test_jsonl_export_round_trips(self, tmp_path):
        recorder = recorder_with(
            {"derived:hit_rate": [0.5] * 12 + [0.95] * 6}
        )
        monitor = HealthMonitor(recorder, [HitRateDivergenceDetector()])
        monitor.observe()
        path = tmp_path / "health.jsonl"
        written = monitor.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert written == len(lines) == len(monitor.events())
        parsed = [json.loads(line) for line in lines]
        assert parsed == [e.as_dict() for e in monitor.events()]
        assert monitor.to_jsonl() == "".join(line + "\n" for line in lines)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            HealthMonitor(TimeSeriesRecorder(), capacity=0)

    def test_event_as_dict_is_json_safe(self):
        event = HealthEvent(
            detector="x", severity="warning", ts=1.0, value=2.0, message="m"
        )
        assert json.loads(json.dumps(event.as_dict()))["detector"] == "x"
