"""Unit tests for access-interval extraction (Figures 11-12 data)."""

import numpy as np
import pytest

from repro.core.identify import find_filecules
from repro.transfer.intervals import (
    filecule_access_times,
    job_duration_intervals,
    select_hot_filecule,
    site_intervals,
    user_intervals,
)
from tests.conftest import make_trace


@pytest.fixture()
def trace():
    """Filecule {0,1} accessed by 3 jobs from 2 sites / 2 users."""
    return make_trace(
        [[0, 1], [0, 1], [0, 1], [2]],
        job_users=[0, 1, 1, 0],
        n_users=2,
        job_nodes=[0, 1, 1, 0],
        node_sites=[0, 1],
        node_domains=[0, 0],
        site_names=["fnal", "desy"],
        job_starts=[0.0, 10.0, 50.0, 99.0],
        job_durations=[5.0, 5.0, 5.0, 5.0],
    )


@pytest.fixture()
def partition(trace):
    return find_filecules(trace)


class TestAccessTimes:
    def test_sorted_start_times(self, trace, partition):
        fc = partition.filecule_of(0)
        times = filecule_access_times(trace, fc)
        assert times.tolist() == [0.0, 10.0, 50.0]

    def test_job_duration_intervals(self, trace, partition):
        fc = partition.filecule_of(0)
        ivs = job_duration_intervals(trace, fc)
        assert ivs == [(0.0, 5.0), (10.0, 15.0), (50.0, 55.0)]


class TestSiteIntervals:
    def test_per_site_rows(self, trace, partition):
        fc = partition.filecule_of(0)
        rows = site_intervals(trace, fc)
        assert len(rows) == 2
        by_label = {r.label: r for r in rows}
        assert by_label["fnal"].start == 0.0
        assert by_label["fnal"].end == 0.0
        assert by_label["fnal"].n_jobs == 1
        assert by_label["desy"].start == 10.0
        assert by_label["desy"].end == 50.0
        assert by_label["desy"].n_jobs == 2
        assert by_label["desy"].n_users == 1

    def test_rows_sorted_by_start(self, trace, partition):
        rows = site_intervals(trace, partition.filecule_of(0))
        starts = [r.start for r in rows]
        assert starts == sorted(starts)

    def test_duration_property(self, trace, partition):
        rows = site_intervals(trace, partition.filecule_of(0))
        for r in rows:
            assert r.duration == r.end - r.start


class TestUserIntervals:
    def test_per_user_rows(self, trace, partition):
        fc = partition.filecule_of(0)
        rows = user_intervals(trace, fc)
        assert len(rows) == 2
        by_label = {r.label: r for r in rows}
        assert by_label["user1"].n_jobs == 2
        assert by_label["user1"].duration == 40.0


class TestSelectHotFilecule:
    def test_selects_most_shared(self, trace, partition):
        fc = select_hot_filecule(trace, partition)
        assert 0 in fc and 1 in fc

    def test_min_requests_filter(self, trace, partition):
        fc = select_hot_filecule(trace, partition, min_requests=2)
        assert fc.n_requests >= 2

    def test_fallback_when_filter_too_strict(self, trace, partition):
        fc = select_hot_filecule(trace, partition, min_requests=10**6)
        assert fc is not None

    def test_empty_partition_rejected(self):
        t = make_trace([], n_files=1)
        with pytest.raises(ValueError):
            select_hot_filecule(t, find_filecules(t))

    def test_generated(self, tiny_trace, tiny_partition):
        fc = select_hot_filecule(tiny_trace, tiny_partition)
        users = tiny_partition.users_per_filecule(tiny_trace)
        assert users[fc.filecule_id] == users.max()
