"""Unit tests for the filecule-aware transfer scheduler."""

import numpy as np
import pytest

from repro.core.identify import find_filecules
from repro.transfer.scheduling import compare_scheduling, schedule_transfers
from tests.conftest import make_trace


@pytest.fixture()
def trace():
    """One site; filecule {0,1} requested by two jobs, {2} by the first."""
    return make_trace(
        [[0, 1, 2], [0, 1]],
        file_sizes=[100, 100, 100],
        job_starts=[0.0, 10_000.0],
        job_durations=[1.0, 1.0],
    )


@pytest.fixture()
def partition(trace):
    return find_filecules(trace)


class TestFileAtATime:
    def test_counts_and_bytes(self, trace):
        report = schedule_transfers(trace, 0, bandwidth_bps=100.0, setup_latency_s=5.0)
        assert report.strategy == "file-at-a-time"
        assert report.n_transfers == 3  # files 0,1,2 once each
        assert report.bytes_moved == 300
        assert report.setup_seconds == 15.0
        assert report.n_jobs == 2

    def test_no_retransfer_of_on_disk_files(self, trace):
        report = schedule_transfers(trace, 0, bandwidth_bps=100.0)
        # job 2 needs 0,1 which are already on disk -> zero extra transfers
        assert report.n_transfers == 3

    def test_wait_accounts_setup_and_bandwidth(self, trace):
        report = schedule_transfers(
            trace, 0, bandwidth_bps=100.0, setup_latency_s=5.0
        )
        # job 0: three sequential transfers of (5 + 1)s each => ready at
        # t=18, waiting 18s; job 1 (t=10000) finds everything on disk
        assert report.mean_wait_seconds == pytest.approx(9.0)
        # makespan tracks the last job's readiness instant
        assert report.makespan_seconds == pytest.approx(10_000.0)


class TestFileculeBatched:
    def test_counts_and_bytes(self, trace, partition):
        report = schedule_transfers(
            trace, 0, partition=partition, bandwidth_bps=100.0, setup_latency_s=5.0
        )
        assert report.strategy == "filecule-batched"
        assert report.n_transfers == 2  # {0,1} and {2}
        assert report.bytes_moved == 300
        assert report.setup_seconds == 10.0

    def test_identical_bytes_both_strategies(self, trace, partition):
        f, c = compare_scheduling(trace, partition, 0, bandwidth_bps=100.0)
        assert f.bytes_moved == c.bytes_moved

    def test_batching_faster_with_setup_cost(self, trace, partition):
        f, c = compare_scheduling(
            trace, partition, 0, bandwidth_bps=100.0, setup_latency_s=30.0
        )
        assert c.mean_wait_seconds < f.mean_wait_seconds
        assert c.setup_seconds < f.setup_seconds

    def test_zero_setup_equalizes(self, trace, partition):
        f, c = compare_scheduling(
            trace, partition, 0, bandwidth_bps=100.0, setup_latency_s=0.0
        )
        assert c.mean_wait_seconds == pytest.approx(f.mean_wait_seconds)

    def test_piggyback_on_in_flight_filecule(self, partition):
        # two jobs submitted at the same instant needing the same filecule
        t = make_trace(
            [[0, 1], [0, 1]],
            file_sizes=[100, 100],
            job_starts=[0.0, 0.0],
            job_durations=[1.0, 1.0],
        )
        p = find_filecules(t)
        report = schedule_transfers(
            t, 0, partition=p, bandwidth_bps=100.0, setup_latency_s=5.0
        )
        assert report.n_transfers == 1  # second job piggybacks
        assert report.n_jobs == 2


class TestValidation:
    def test_bad_site(self, trace):
        with pytest.raises(ValueError):
            schedule_transfers(trace, 7)

    def test_bad_bandwidth(self, trace):
        with pytest.raises(ValueError):
            schedule_transfers(trace, 0, bandwidth_bps=0.0)

    def test_bad_setup(self, trace):
        with pytest.raises(ValueError):
            schedule_transfers(trace, 0, setup_latency_s=-1.0)

    def test_site_without_jobs(self):
        t = make_trace(
            [[0]],
            job_nodes=[0],
            node_sites=[0, 1],
            node_domains=[0, 0],
            site_names=["a", "b"],
        )
        report = schedule_transfers(t, 1)
        assert report.n_jobs == 0
        assert report.n_transfers == 0


class TestGeneratedWorkload:
    def test_invariants_on_generated_trace(self, tiny_trace, tiny_partition):
        f, c = compare_scheduling(tiny_trace, tiny_partition, 0)
        assert f.bytes_moved == c.bytes_moved
        assert c.n_transfers <= f.n_transfers
        assert c.mean_wait_seconds <= f.mean_wait_seconds + 1e-9
