"""Second property-test battery: serialization, merging, scheduling,
clairvoyance and unit parsing."""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.belady import BeladyMIN
from repro.cache.lru import FileLRU
from repro.cache.simulator import simulate
from repro.core.identify import find_filecules
from repro.core.merge import merge_all, merge_partitions
from repro.core.partial import identify_per_site
from repro.traces.io import (
    read_trace_jsonl,
    write_trace_jsonl,
)
from repro.transfer.scheduling import compare_scheduling
from repro.util.units import format_bytes, parse_size
from tests.conftest import make_trace
from tests.test_traces_io import assert_traces_equal

job_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=6),
    min_size=1,
    max_size=12,
)


def trace_from(jobs, n_sites=1, sizes=None):
    nodes = [j % n_sites for j in range(len(jobs))]
    return make_trace(
        jobs,
        n_files=12,
        file_sizes=sizes,
        job_nodes=nodes,
        node_sites=list(range(n_sites)),
        node_domains=[0] * n_sites,
        site_names=[f"s{i}" for i in range(n_sites)],
    )


class TestSerializationProperties:
    @given(job_lists, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_jsonl_roundtrip(self, jobs, size_seed):
        rng = np.random.default_rng(size_seed)
        sizes = rng.integers(1, 1000, size=12).tolist()
        trace = trace_from(jobs, sizes=sizes)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.jsonl"
            assert_traces_equal(
                trace, read_trace_jsonl(write_trace_jsonl(trace, path))
            )

    @given(job_lists)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_filecules(self, jobs):
        trace = trace_from(jobs)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.jsonl"
            loaded = read_trace_jsonl(write_trace_jsonl(trace, path))
        a = sorted(tuple(fc.file_ids.tolist()) for fc in find_filecules(trace))
        b = sorted(tuple(fc.file_ids.tolist()) for fc in find_filecules(loaded))
        assert a == b


class TestMergeProperties:
    @given(job_lists, st.integers(min_value=2, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_meet_of_all_observers_is_global(self, jobs, n_sites):
        trace = trace_from(jobs, n_sites=n_sites)
        locals_ = list(identify_per_site(trace).values())
        merged = merge_all(locals_)
        global_p = find_filecules(trace)
        assert sorted(tuple(fc.file_ids.tolist()) for fc in merged) == sorted(
            tuple(fc.file_ids.tolist()) for fc in global_p
        )

    @given(job_lists, st.integers(min_value=2, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_merge_commutative(self, jobs, n_sites):
        trace = trace_from(jobs, n_sites=n_sites)
        locals_ = list(identify_per_site(trace).values())
        if len(locals_) < 2:
            return
        ab = merge_partitions(locals_[0], locals_[1])
        ba = merge_partitions(locals_[1], locals_[0])
        assert sorted(tuple(fc.file_ids.tolist()) for fc in ab) == sorted(
            tuple(fc.file_ids.tolist()) for fc in ba
        )

    @given(job_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_idempotent(self, jobs):
        p = find_filecules(trace_from(jobs))
        merged = merge_partitions(p, p)
        assert sorted(tuple(fc.file_ids.tolist()) for fc in merged) == sorted(
            tuple(fc.file_ids.tolist()) for fc in p
        )


class TestSchedulingProperties:
    @given(job_lists, st.floats(min_value=0.0, max_value=60.0))
    @settings(max_examples=60, deadline=None)
    def test_batching_invariants(self, jobs, setup):
        trace = trace_from(jobs)
        partition = find_filecules(trace)
        f, c = compare_scheduling(
            trace, partition, 0, setup_latency_s=setup
        )
        assert f.bytes_moved == c.bytes_moved
        assert c.n_transfers <= f.n_transfers
        assert c.mean_wait_seconds <= f.mean_wait_seconds + 1e-6
        assert c.setup_seconds <= f.setup_seconds + 1e-9


class TestClairvoyanceProperties:
    @given(job_lists, st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_min_never_worse_than_lru(self, jobs, capacity):
        """Unit-size Belady MIN dominates LRU at every capacity."""
        trace = trace_from(jobs)  # unit-size files
        m_lru = simulate(trace, lambda c: FileLRU(c), capacity)
        m_min = simulate(trace, lambda c: BeladyMIN(c, trace), capacity)
        assert m_min.misses <= m_lru.misses


class TestUnitsProperties:
    @given(st.integers(min_value=0, max_value=2**55))
    @settings(max_examples=200, deadline=None)
    def test_format_parse_roundtrip_within_precision(self, n):
        """parse(format(n)) stays within the printed precision."""
        text = format_bytes(n, precision=3)
        back = parse_size(text)
        if n < 1024:
            assert back == n
        else:
            assert back == pytest.approx(n, rel=2e-3)
