"""Unit tests for trace subsampling, shifting and concatenation."""

import numpy as np
import pytest

from repro.core.identify import find_filecules
from repro.core.partial import is_coarsening_of
from repro.traces.combine import concat_traces, shift_time, subsample_jobs
from repro.traces.filters import split_epochs
from tests.conftest import make_trace


class TestSubsampleJobs:
    def test_fraction_extremes(self, classic_trace):
        assert subsample_jobs(classic_trace, 0.0).n_jobs == 0
        assert subsample_jobs(classic_trace, 1.0).n_jobs == classic_trace.n_jobs

    def test_deterministic(self, classic_trace):
        a = subsample_jobs(classic_trace, 0.5, seed=3)
        b = subsample_jobs(classic_trace, 0.5, seed=3)
        np.testing.assert_array_equal(a.job_labels, b.job_labels)

    def test_catalog_preserved(self, classic_trace):
        sub = subsample_jobs(classic_trace, 0.5, seed=3)
        assert sub.n_files == classic_trace.n_files

    def test_sample_partition_coarsens_global(self, tiny_trace, tiny_partition):
        sample = subsample_jobs(tiny_trace, 0.3, seed=5)
        local = find_filecules(sample)
        assert is_coarsening_of(local, tiny_partition)

    def test_rough_proportion(self, tiny_trace):
        sample = subsample_jobs(tiny_trace, 0.5, seed=0)
        assert 0.3 * tiny_trace.n_jobs < sample.n_jobs < 0.7 * tiny_trace.n_jobs

    def test_bad_fraction(self, classic_trace):
        with pytest.raises(ValueError):
            subsample_jobs(classic_trace, 1.5)


class TestShiftTime:
    def test_forward_shift(self, classic_trace):
        shifted = shift_time(classic_trace, 100.0)
        np.testing.assert_allclose(
            shifted.job_starts, classic_trace.job_starts + 100.0
        )
        np.testing.assert_allclose(
            shifted.job_ends, classic_trace.job_ends + 100.0
        )

    def test_accesses_untouched(self, classic_trace):
        shifted = shift_time(classic_trace, 50.0)
        np.testing.assert_array_equal(
            shifted.access_files, classic_trace.access_files
        )

    def test_negative_past_zero_rejected(self, classic_trace):
        with pytest.raises(ValueError):
            shift_time(classic_trace, -1e9)

    def test_empty_trace(self):
        t = make_trace([], n_files=0)
        assert shift_time(t, -100.0).n_jobs == 0


class TestConcatTraces:
    def test_epoch_split_roundtrip(self, tiny_trace):
        """Splitting into epochs and concatenating preserves everything
        the analyses care about."""
        epochs = split_epochs(tiny_trace, 3)
        combined = concat_traces(epochs)
        assert combined.n_jobs == tiny_trace.n_jobs
        assert combined.n_accesses == tiny_trace.n_accesses
        a = sorted(
            tuple(fc.file_ids.tolist()) for fc in find_filecules(combined)
        )
        b = sorted(
            tuple(fc.file_ids.tolist()) for fc in find_filecules(tiny_trace)
        )
        assert a == b

    def test_labels_preserved(self, classic_trace):
        parts = split_epochs(classic_trace, 2)
        combined = concat_traces(parts)
        assert sorted(combined.job_labels.tolist()) == list(range(5))

    def test_single_input(self, classic_trace):
        combined = concat_traces([classic_trace])
        assert combined.n_jobs == classic_trace.n_jobs

    def test_mismatched_catalogs_rejected(self):
        a = make_trace([[0]], n_files=2)
        b = make_trace([[0]], n_files=3)
        with pytest.raises(ValueError, match="identical"):
            concat_traces([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat_traces([])

    def test_access_job_ids_offset(self):
        a = make_trace([[0], [1]], n_files=3)
        b = make_trace([[2]], n_files=3)
        combined = concat_traces([a, b])
        assert combined.job_files(2).tolist() == [2]


class TestShuffledNull:
    def test_marginals_preserved(self, tiny_trace):
        from repro.traces.combine import shuffled_null

        null = shuffled_null(tiny_trace, seed=0)
        # duplicates within a job merge, so accesses can only shrink
        assert null.n_accesses <= tiny_trace.n_accesses
        assert null.n_accesses >= 0.5 * tiny_trace.n_accesses
        # per-job counts never grow
        assert (null.files_per_job <= tiny_trace.files_per_job).all()
        # total per-file request mass equals the surviving accesses
        assert null.file_popularity.sum() == null.n_accesses

    def test_filecules_collapse(self, tiny_trace, tiny_partition):
        from repro.traces.combine import shuffled_null

        null = shuffled_null(tiny_trace, seed=0)
        null_p = find_filecules(null)
        assert null_p.files_per_filecule.mean() < 1.5
        assert len(null_p) > len(tiny_partition)

    def test_deterministic(self, tiny_trace):
        from repro.traces.combine import shuffled_null

        a = shuffled_null(tiny_trace, seed=4)
        b = shuffled_null(tiny_trace, seed=4)
        np.testing.assert_array_equal(a.access_files, b.access_files)
