"""Unit tests for filecule dynamics / partition similarity."""

import numpy as np
import pytest

from repro.core.dynamics import (
    epoch_stability,
    partition_similarity,
)
from repro.core.identify import find_filecules
from tests.conftest import make_trace


class TestPartitionSimilarity:
    def test_identical_partitions(self, classic_trace):
        p = find_filecules(classic_trace)
        sim = partition_similarity(p, p)
        assert sim.exact_fraction == 1.0
        assert sim.rand_index == 1.0
        assert sim.n_common_files == 7

    def test_disjoint_coverage(self):
        a = find_filecules(make_trace([[0]], n_files=2))
        b = find_filecules(make_trace([[1]], n_files=2))
        sim = partition_similarity(a, b)
        assert sim.n_common_files == 0
        assert sim.exact_fraction == 1.0

    def test_split_detected(self):
        merged = find_filecules(make_trace([[0, 1]]))
        split = find_filecules(make_trace([[0, 1], [0]]))
        sim = partition_similarity(merged, split)
        assert sim.n_common_files == 2
        assert sim.exact_fraction == 0.0
        assert sim.rand_index == 0.0  # the single pair disagrees

    def test_partial_agreement(self):
        # {0,1},{2,3} vs {0,1},{2},{3}: files 0,1 exact; 2,3 not
        a = find_filecules(make_trace([[0, 1], [2, 3]], n_files=4))
        b = find_filecules(make_trace([[0, 1], [2, 3], [2]], n_files=4))
        sim = partition_similarity(a, b)
        assert sim.exact_fraction == pytest.approx(0.5)
        # pairs: (0,1) together/together agree; (2,3) together/apart disagree;
        # 4 cross pairs apart/apart agree -> 5/6
        assert sim.rand_index == pytest.approx(5 / 6)

    def test_symmetry(self, tiny_trace):
        from repro.traces.filters import split_epochs

        e0, e1 = split_epochs(tiny_trace, 2)
        pa, pb = find_filecules(e0), find_filecules(e1)
        ab = partition_similarity(pa, pb)
        ba = partition_similarity(pb, pa)
        assert ab.rand_index == pytest.approx(ba.rand_index)
        assert ab.exact_fraction == pytest.approx(ba.exact_fraction)
        assert ab.n_common_files == ba.n_common_files

    def test_size_mismatch_rejected(self):
        a = find_filecules(make_trace([[0]], n_files=1))
        b = find_filecules(make_trace([[0]], n_files=2))
        with pytest.raises(ValueError):
            partition_similarity(a, b)


class TestEpochStability:
    def test_rows_shape(self, tiny_trace):
        rows = epoch_stability(tiny_trace, 3)
        assert len(rows) == 2
        assert rows[0].epoch_a == 0 and rows[0].epoch_b == 1
        for row in rows:
            assert 0.0 <= row.similarity.rand_index <= 1.0
            assert 0.0 <= row.similarity.exact_fraction <= 1.0

    def test_jobs_accounted(self, tiny_trace):
        rows = epoch_stability(tiny_trace, 2)
        assert rows[0].n_jobs_a + rows[0].n_jobs_b == tiny_trace.n_jobs

    def test_stable_workload_fully_stable(self):
        # same jobs in both halves -> identical epoch partitions
        jobs = [[0, 1], [2], [0, 1], [2]]
        t = make_trace(jobs, job_starts=[0.0, 1.0, 100.0, 101.0])
        (row,) = epoch_stability(t, 2)
        assert row.similarity.exact_fraction == 1.0
        assert row.similarity.rand_index == 1.0
