"""The policy registry: specs, parsing, building, and equivalence.

The registry's contract is twofold.  *Completeness*: every replacement
policy shipped in ``src/`` is constructible by name through
:func:`repro.registry.build`, and replaying a trace through a
registry-built policy produces the **same metrics** as the legacy direct
constructor.  *Canonical strings*: ``parse`` is a canonicalizer —
aliases resolve, values coerce to the defaults' types, parameters sort —
so ``parse(str(spec)) == spec`` for every representable spec (property
tested below), which is what lets spec strings cross process boundaries
as the parallel runner's wire format.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.cache.arc import AdaptiveReplacementCache
from repro.cache.base import ReplacementPolicy
from repro.cache.belady import BeladyMIN, FileculeBeladyMIN
from repro.cache.bundle import FileBundleCache
from repro.cache.fifo import FileFIFO
from repro.cache.filecule_lru import FileculeLRU
from repro.cache.filecule_variants import FileculeGDS, FileculeLFU
from repro.cache.frequency import FileLFU
from repro.cache.gds import GreedyDualSize, Landlord
from repro.cache.lru import FileLRU
from repro.cache.prefetch import GroupPrefetchLRU
from repro.cache.size import LargestFirst
from repro.cache.working_set import WorkingSetPrefetchLRU
from repro.engine import simulate, sweep
from repro.registry import (
    BoundSpec,
    PolicyResourceError,
    PolicySpecError,
    UnknownPolicyError,
)


def legacy_factories(trace, partition) -> dict:
    """Direct-constructor twins of every registered spec (the pre-registry
    wiring, kept here as the equivalence baseline)."""
    return {
        "file-fifo": lambda c: FileFIFO(c),
        "file-lru": lambda c: FileLRU(c),
        "file-lfu": lambda c: FileLFU(c),
        "largest-first": lambda c: LargestFirst(c),
        "greedy-dual-size": lambda c: GreedyDualSize(c),
        "landlord": lambda c: Landlord(c),
        "arc": lambda c: AdaptiveReplacementCache(c),
        "file-bundle": lambda c: FileBundleCache(c),
        "group-prefetch-lru": lambda c: GroupPrefetchLRU(
            c, trace.file_datasets.astype("int64"), trace.file_sizes
        ),
        "working-set-prefetch": lambda c: WorkingSetPrefetchLRU(
            c, trace.file_sizes
        ),
        "file-belady-min": lambda c: BeladyMIN(c, trace),
        "filecule-lru": lambda c: FileculeLRU(c, partition),
        "filecule-lfu": lambda c: FileculeLFU(c, partition),
        "filecule-gds": lambda c: FileculeGDS(c, partition),
        "filecule-belady-min": lambda c: FileculeBeladyMIN(
            c, trace, partition
        ),
    }


def two_capacities(trace) -> list[int]:
    total = trace.total_bytes()
    return [max(int(f * total), 1) for f in (0.01, 0.05)]


class TestCatalog:
    def test_every_shipped_policy_is_registered(self, tiny_trace, tiny_partition):
        registered = set(registry.policy_names())
        expected = set(legacy_factories(tiny_trace, tiny_partition))
        assert registered == expected

    def test_specs_are_sorted_and_flagged(self):
        specs = registry.list_specs()
        assert [s.name for s in specs] == sorted(s.name for s in specs)
        by_name = {s.name: s for s in specs}
        assert by_name["filecule-lru"].needs_filecules
        assert not by_name["filecule-lru"].needs_trace
        assert by_name["file-belady-min"].is_offline_optimal
        assert by_name["file-belady-min"].needs_trace
        assert by_name["filecule-belady-min"].flags == (
            "needs_filecules",
            "needs_trace",
            "is_offline_optimal",
        )
        assert by_name["file-lru"].flags == ("supports_batch",)
        assert by_name["file-lfu"].flags == ()
        # The batch capability matches exactly the policies whose
        # instances actually offer a kernel (see test_engine_batch).
        batchable = {s.name for s in specs if s.supports_batch}
        assert batchable == {"file-lru", "file-fifo", "filecule-lru"}

    def test_aliases_resolve_to_canonical_specs(self):
        for alias, canonical in (
            ("lru", "file-lru"),
            ("fifo", "file-fifo"),
            ("lfu", "file-lfu"),
            ("size", "largest-first"),
            ("gds", "greedy-dual-size"),
        ):
            assert registry.get_spec(alias).name == canonical
            assert registry.parse(alias) == BoundSpec(canonical)

    def test_service_policy_names_exclude_offline_resources(self):
        names = registry.service_policy_names()
        assert "file-lru" in names and "lru" in names
        for needing in (
            "filecule-lru",
            "filecule-lfu",
            "filecule-gds",
            "file-belady-min",
            "filecule-belady-min",
            "group-prefetch-lru",
            "working-set-prefetch",
        ):
            assert needing not in names

    def test_unknown_name_lists_known_specs(self):
        with pytest.raises(UnknownPolicyError, match="unknown policy 'nope'"):
            registry.get_spec("nope")
        with pytest.raises(UnknownPolicyError, match="file-lru"):
            registry.build("nope", 100)


class TestParse:
    def test_parse_canonicalizes_alias_and_params(self):
        bound = registry.parse("lru")
        assert bound == BoundSpec("file-lru")
        assert str(bound) == "file-lru"

        bound = registry.parse("filecule-lru?intra_job_hits=0")
        assert bound == BoundSpec(
            "filecule-lru", (("intra_job_hits", False),)
        )
        assert str(bound) == "filecule-lru?intra_job_hits=false"

    def test_params_sort_into_one_canonical_form(self):
        a = registry.parse(
            "working-set-prefetch?max_group_size=128&max_prefetch_fraction=0.25"
        )
        b = registry.parse(
            "working-set-prefetch?max_prefetch_fraction=0.25&max_group_size=128"
        )
        assert a == b
        assert str(a) == str(b)

    def test_bool_coercions(self):
        for raw, value in (
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("false", False), ("No", False), ("off", False),
        ):
            assert registry.parse(f"filecule-lru?intra_job_hits={raw}") == (
                BoundSpec("filecule-lru", (("intra_job_hits", value),))
            )

    def test_malformed_specs_rejected(self):
        with pytest.raises(PolicySpecError, match="param=value"):
            registry.parse("file-lru?oops")
        with pytest.raises(PolicySpecError, match="no parameter"):
            registry.parse("file-lru?speed=11")
        with pytest.raises(PolicySpecError, match="not a boolean"):
            registry.parse("filecule-lru?intra_job_hits=maybe")
        with pytest.raises(PolicySpecError, match="bad value"):
            registry.parse("working-set-prefetch?max_group_size=lots")

    @settings(max_examples=200, deadline=None)
    @given(data=st.data())
    def test_parse_of_str_is_idempotent(self, data):
        """parse(str(spec)) == spec for any representable BoundSpec."""
        spec = data.draw(st.sampled_from(registry.list_specs()))
        overrides = {}
        for key, default in sorted(spec.defaults.items()):
            if not data.draw(st.booleans(), label=f"override {key}?"):
                continue
            if isinstance(default, bool):
                overrides[key] = data.draw(st.booleans(), label=key)
            elif isinstance(default, int):
                overrides[key] = data.draw(
                    st.integers(min_value=0, max_value=10**6), label=key
                )
            elif isinstance(default, float):
                overrides[key] = data.draw(
                    st.floats(
                        min_value=0.0,
                        max_value=1e6,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    label=key,
                )
            else:
                overrides[key] = data.draw(
                    st.text(
                        alphabet=st.characters(
                            whitelist_categories=("Ll", "Nd")
                        ),
                        min_size=1,
                        max_size=8,
                    ),
                    label=key,
                )
        bound = BoundSpec(spec.name, tuple(sorted(overrides.items())))
        reparsed = registry.parse(str(bound))
        assert reparsed == bound
        assert str(reparsed) == str(bound)
        # and once more around the loop, for good measure
        assert registry.parse(str(reparsed)) == bound


class TestBuild:
    def test_build_round_trip_matches_legacy_constructors(
        self, tiny_trace, tiny_partition
    ):
        """parse -> build == direct constructor, for all 15 policies x 2 caps."""
        legacy = legacy_factories(tiny_trace, tiny_partition)
        for cap in two_capacities(tiny_trace):
            for name, factory in legacy.items():
                expected = simulate(tiny_trace, factory, cap, name=name)
                built = registry.build(
                    registry.parse(name),
                    cap,
                    trace=tiny_trace,
                    partition=tiny_partition,
                )
                assert isinstance(built, ReplacementPolicy)
                got = simulate(tiny_trace, lambda c, _p=built: _p, cap, name=name)
                assert got == expected, f"{name}@{cap} diverged from legacy"

    def test_build_missing_resources_rejected(self):
        with pytest.raises(PolicyResourceError, match="filecule partition"):
            registry.build("filecule-lru", 100)
        with pytest.raises(PolicyResourceError, match="replayed trace"):
            registry.build("file-belady-min", 100)

    def test_build_kwargs_override_spec_string(self, tiny_partition):
        policy = registry.build(
            "filecule-lru?intra_job_hits=false",
            100,
            partition=tiny_partition,
            intra_job_hits=True,
        )
        assert policy._intra_job_hits is True

    def test_build_unknown_kwarg_rejected(self):
        with pytest.raises(PolicySpecError, match="no parameter"):
            registry.build("file-lru", 100, speed=11)


class TestSweepBySpec:
    def test_spec_sweep_matches_factory_sweep_serial_and_parallel(
        self, tiny_trace, tiny_partition
    ):
        caps = two_capacities(tiny_trace)
        legacy = legacy_factories(tiny_trace, tiny_partition)
        by_factory = sweep(tiny_trace, legacy, caps)
        by_spec_serial = sweep(
            tiny_trace, tuple(legacy), caps, partition=tiny_partition
        )
        assert by_spec_serial.capacities == by_factory.capacities
        assert by_spec_serial.metrics == by_factory.metrics
        by_spec_parallel = sweep(
            tiny_trace, tuple(legacy), caps, partition=tiny_partition, jobs=2
        )
        assert by_spec_parallel.metrics == by_factory.metrics

    def test_display_name_mapping_to_specs(self, tiny_trace, tiny_partition):
        caps = two_capacities(tiny_trace)
        named = sweep(
            tiny_trace,
            {"file": "file-lru", "cule": "filecule-lru"},
            caps,
            partition=tiny_partition,
        )
        assert set(named.metrics) == {"file", "cule"}
        plain = sweep(
            tiny_trace,
            ("file-lru", "filecule-lru"),
            caps,
            partition=tiny_partition,
        )
        # CacheMetrics equality includes the display name, so compare rates.
        assert named.miss_rates("file") == plain.miss_rates("file-lru")
        assert named.miss_rates("cule") == plain.miss_rates("filecule-lru")
        assert named.byte_miss_rates("cule") == plain.byte_miss_rates(
            "filecule-lru"
        )

    def test_simulate_accepts_spec_strings(self, tiny_trace, tiny_partition):
        cap = two_capacities(tiny_trace)[0]
        via_spec = simulate(
            tiny_trace, "filecule-lru", cap, partition=tiny_partition
        )
        direct = simulate(
            tiny_trace,
            lambda c: FileculeLRU(c, tiny_partition),
            cap,
            name="filecule-lru",
        )
        assert via_spec == direct

    @pytest.mark.skipif(
        "spawn" not in multiprocessing.get_all_start_methods(),
        reason="spawn start method unavailable",
    )
    def test_spawn_start_method_with_specs(self, tiny_trace, tiny_partition):
        from repro.parallel.runner import ParallelSweepRunner

        caps = [two_capacities(tiny_trace)[0]]
        serial = sweep(
            tiny_trace,
            ("file-lru", "filecule-lru"),
            caps,
            partition=tiny_partition,
        )
        runner = ParallelSweepRunner(2, start_method="spawn")
        spawned = runner.run(
            tiny_trace,
            ("file-lru", "filecule-lru"),
            caps,
            partition=tiny_partition,
        )
        assert spawned.metrics == serial.metrics

    def test_factory_callables_require_fork(self, tiny_trace):
        from repro.parallel.runner import ParallelSweepRunner

        runner = ParallelSweepRunner(2, start_method="spawn")
        with pytest.raises(ValueError, match="spec strings"):
            runner.run(
                tiny_trace, {"file-lru": lambda c: FileLRU(c)}, [1000]
            )


class TestWorkerDispatchErrors:
    def test_unknown_spec_name_in_worker_is_a_clear_sweep_cell_error(
        self, tiny_trace, monkeypatch
    ):
        """A spec name the worker's registry can't resolve surfaces as
        SweepCellError naming the cell with the registry's message."""
        from repro.parallel import runner as runner_mod

        real_resolve = runner_mod.resolve_policies

        def poisoned_resolve(policies, trace=None, partition=None):
            factories, _specs = real_resolve(policies, trace, partition)
            # Ship an unregistered name to the workers, bypassing the
            # parent-side parse that normally makes this impossible.
            return factories, {"file-lru": BoundSpec("not-a-registered-policy")}

        monkeypatch.setattr(runner_mod, "resolve_policies", poisoned_resolve)
        runner = runner_mod.ParallelSweepRunner(2)
        with pytest.raises(
            runner_mod.SweepCellError, match="unknown policy"
        ) as excinfo:
            runner.run(tiny_trace, ("file-lru",), [1000])
        assert excinfo.value.policy == "file-lru"

    def test_worker_side_missing_name_message(self, tiny_trace):
        from repro.parallel import runner as runner_mod
        from repro.parallel.shm import SharedTraceBuffers

        buffers = SharedTraceBuffers(tiny_trace)
        try:
            runner_mod._init_worker(
                buffers.spec, ("specs", {"file-lru": "file-lru"}, None), None, False
            )
            with pytest.raises(
                UnknownPolicyError, match="unknown policy 'mystery'"
            ):
                runner_mod._policy_factory("mystery")
        finally:
            runner_mod._WORKER.clear()
            buffers.close()
            buffers.unlink()


class TestPicklability:
    def test_bound_specs_and_spec_strings_pickle(self):
        import pickle

        for text in (
            "file-lru",
            "filecule-lru?intra_job_hits=false",
            "working-set-prefetch?max_group_size=64&max_prefetch_fraction=0.1",
        ):
            bound = registry.parse(text)
            clone = pickle.loads(pickle.dumps(bound))
            assert clone == bound
            assert str(clone) == str(bound)
