"""Unit and integration tests for SAM stations and trace replay."""

import numpy as np
import pytest

from repro.cache.lru import FileLRU
from repro.cache.filecule_lru import FileculeLRU
from repro.core.identify import find_filecules
from repro.sam.catalog import ReplicaCatalog
from repro.sam.events import Simulation
from repro.sam.scheduler import replay_trace
from repro.sam.station import Station
from repro.sam.storage import TapeArchive, TransferModel
from tests.conftest import make_trace


def build_station(n_files=5, n_sites=2, site=1, capacity=1000, sizes=None):
    sim = Simulation()
    catalog = ReplicaCatalog(n_files, n_sites, hub_site=0)
    transfers = TransferModel(sim, n_sites)
    tape = TapeArchive(sim)
    sizes = (
        np.asarray(sizes) if sizes is not None else np.full(n_files, 100)
    )
    station = Station(
        sim, site, FileLRU(capacity), catalog, transfers, tape, sizes
    )
    return sim, catalog, station


class TestStation:
    def test_cold_fetch_goes_to_tape(self):
        sim, catalog, station = build_station()
        stall = station.run_project(np.array([0, 1]))
        assert stall > 0
        assert station.metrics.bytes_tape == 200
        assert station.metrics.bytes_wan == 200

    def test_cache_hit_after_fetch(self):
        sim, catalog, station = build_station()
        station.run_project(np.array([0]))
        station.run_project(np.array([0]))
        assert station.metrics.bytes_cache_hit == 100

    def test_pinned_replica_free(self):
        sim, catalog, station = build_station()
        catalog.register(0, 1)
        stall = station.run_project(np.array([0]))
        assert stall == 0.0
        assert station.metrics.bytes_pinned == 100
        assert station.metrics.bytes_tape == 0

    def test_remote_replica_cheaper_than_tape(self):
        sim, catalog, s1 = build_station(n_sites=3, site=1)
        catalog.register(0, 2)
        s1.run_project(np.array([0]))
        assert s1.metrics.bytes_wan == 100
        assert s1.metrics.bytes_tape == 0

    def test_hub_station_skips_wan(self):
        sim, catalog, station = build_station(site=0)
        station.run_project(np.array([0]))
        assert station.metrics.bytes_tape == 100
        assert station.metrics.bytes_wan == 0

    def test_metrics_fractions(self):
        sim, catalog, station = build_station()
        catalog.register(0, 1)
        station.run_project(np.array([0, 1]))
        assert station.metrics.local_byte_fraction == pytest.approx(0.5)
        assert station.metrics.projects == 1
        assert station.metrics.requests == 2


class TestReplayTrace:
    @pytest.fixture()
    def trace(self):
        return make_trace(
            [[0, 1], [0, 1], [2]],
            file_sizes=[100, 100, 100],
            job_nodes=[0, 1, 1],
            node_sites=[0, 1],
            node_domains=[0, 0],
            site_names=["hub", "remote"],
        )

    def test_report_aggregates(self, trace):
        report = replay_trace(trace, cache_capacity=10_000)
        assert len(report.stations) == 2
        assert report.total_requested_bytes == 500
        assert report.tape_bytes > 0
        assert 0.0 <= report.local_byte_fraction <= 1.0
        assert report.mean_stall_seconds >= 0.0
        assert report.p95_stall_seconds >= report.mean_stall_seconds * 0.0

    def test_prepinned_catalog_reduces_traffic(self, trace):
        baseline = replay_trace(trace, cache_capacity=10_000)
        catalog = ReplicaCatalog(trace.n_files, trace.n_sites)
        for f in range(3):
            catalog.register(f, 0)
            catalog.register(f, 1)
        pinned = replay_trace(trace, cache_capacity=10_000, catalog=catalog)
        assert pinned.tape_bytes == 0
        assert pinned.local_byte_fraction == 1.0
        assert pinned.mean_stall_seconds <= baseline.mean_stall_seconds

    def test_filecule_cache_factory(self, trace):
        partition = find_filecules(trace)
        report = replay_trace(
            trace,
            cache_factory=lambda cap, site: FileculeLRU(cap, partition),
            cache_capacity=10_000,
        )
        assert report.total_requested_bytes == 500

    def test_generated_trace_runs(self, tiny_trace):
        report = replay_trace(tiny_trace, cache_capacity=10**12)
        traced_jobs = int((tiny_trace.files_per_job > 0).sum())
        assert sum(s.projects for s in report.stations) == traced_jobs
