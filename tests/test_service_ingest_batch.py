"""Coalesced ingest, end to end: state kernel, actor runs, loadgen knob.

The contract under test: a window of ingest requests processed through
``ServiceState.ingest_batch`` (and the server actor's coalescing on top
of it) returns the *same receipts* and leaves the *same state* — the
partition, size catalog, per-site advisor caches and metrics — as the
per-job path, while the observability layer faithfully reports what
coalescing actually achieved (batch counters, size histogram, per-request
latency accounting).
"""

import asyncio

import pytest

from repro.service import (
    AsyncServiceClient,
    FileculeServer,
    ServiceState,
    run_load,
)
from repro.service.server import _batch_bucket
from repro.service.shard import ShardedServiceState

#: An adversarial little stream: duplicates, unsorted segments, empty
#: jobs, missing sizes, a size refinement (file 3 shrinks), three sites.
JOBS = [
    ([5, 3, 5, 2], [10, 20, 10, 30], 0),
    ([], None, 1),
    ([2, 3], [30, 25], 1),
    ([7, 8, 9, 1], None, 0),
    ([1, 2, 3, 4, 5], [5, 5, 5, 5, 5], 2),
    ([4, 6], [5, 40], 0),
    ([9, 7], [2, 2], 0),
    ([6, 4, 6], None, 2),
]


def state_fingerprint(state):
    stats = state.stats()
    return (
        stats["partition_checksum"],
        stats["jobs_observed"],
        stats["n_classes"],
        stats["sites"],
    )


def replay_sequential(jobs, **kwargs):
    state = ServiceState(capacity_bytes=64, **kwargs)
    return state, [state.ingest(f, s, site) for f, s, site in jobs]


class TestStateIngestBatch:
    @pytest.mark.parametrize("window", [1, 3, len(JOBS)])
    def test_matches_sequential(self, window):
        ref, want = replay_sequential(JOBS)
        state = ServiceState(capacity_bytes=64)
        got = []
        for i in range(0, len(JOBS), window):
            got.extend(state.ingest_batch(JOBS[i : i + window]))
        assert got == want
        assert state_fingerprint(state) == state_fingerprint(ref)

    def test_matches_sequential_with_decay(self):
        ref, want = replay_sequential(JOBS, decay_half_life=3.0)
        state = ServiceState(capacity_bytes=64, decay_half_life=3.0)
        got = state.ingest_batch(JOBS)
        assert got == want
        assert state_fingerprint(state) == state_fingerprint(ref)

    def test_matches_sequential_without_kernel(self):
        # ingest_kernel=False advisors take the per-access fallback
        # inside ingest_batch; the receipts must not change.
        ref, want = replay_sequential(JOBS)
        state = ServiceState(capacity_bytes=64, ingest_kernel=False)
        assert state.ingest_batch(JOBS) == want
        assert state_fingerprint(state) == state_fingerprint(ref)

    def test_empty_batch(self):
        assert ServiceState().ingest_batch([]) == []

    def test_sharded_delegates_same_shard_runs(self):
        ref = ShardedServiceState(n_shards=2, capacity_bytes=64)
        want = [ref.ingest(f, s, site) for f, s, site in JOBS]
        state = ShardedServiceState(n_shards=2, capacity_bytes=64)
        got = state.ingest_batch(JOBS)
        assert got == want
        assert ref.stats() == state.stats()


class TestBatchBucket:
    def test_power_of_two_buckets(self):
        assert [_batch_bucket(n) for n in (1, 2, 3, 4, 5, 8, 9, 64, 65)] == [
            "1", "2", "3-4", "3-4", "5-8", "5-8", "9-16", "33-64", "65+",
        ]


def run(coro):
    return asyncio.run(coro)


async def _serve(state=None, **kwargs):
    server = FileculeServer(
        state if state is not None else ServiceState(),
        log_interval=None,
        **kwargs,
    )
    await server.start()
    return server


def loadgen_jobs():
    return [
        {"files": files, "sizes": sizes, "site": site}
        for files, sizes, site in JOBS * 6
    ]


class TestServerCoalescing:
    def test_coalesced_run_matches_per_job_server(self):
        async def scenario(coalesce, ingest_batch):
            state = ServiceState(capacity_bytes=64)
            server = await _serve(state, coalesce_ingest=coalesce)
            try:
                report = await run_load(
                    "127.0.0.1",
                    server.port,
                    loadgen_jobs(),
                    connections=1,
                    ingest_batch=ingest_batch,
                )
                snapshot = server.metrics.snapshot()
            finally:
                await server.stop()
            assert report.errors == 0
            return state_fingerprint(state), report, snapshot

        base_fp, base_report, base_snap = run(scenario(False, 1))
        coal_fp, coal_report, coal_snap = run(scenario(True, 8))
        # Same single-connection arrival order: everything the daemon
        # models — partition AND per-site cache advisors — must match.
        assert coal_fp == base_fp
        # The actor really coalesced: fewer batches than requests, and
        # the latency histogram still counts one sample per request.
        n = len(loadgen_jobs())
        assert coal_snap["counters"]["ingest_batches"] < n
        assert base_snap["counters"]["ingest_batches"] == n
        assert coal_snap["latency"]["op.ingest"]["count"] == n
        batching = coal_report.writer_batching()
        assert batching is not None
        assert batching["mean_jobs_per_batch"] > 1
        assert sum(
            count * (int(label.rstrip("+").split("-")[0]))
            for label, count in batching["batch_size_histogram"].items()
        ) <= n
        assert coal_report.as_dict()["writer_batching"] == batching

    def test_interleaved_read_breaks_run_and_sees_prior_ingests(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                results = await client.pipeline(
                    [
                        ("ingest", {"files": [1, 2]}),
                        ("ingest", {"files": [3, 4]}),
                        ("stats", {}),
                        ("ingest", {"files": [5]}),
                        ("stats", {}),
                    ]
                )
            # The mid-pipeline stats must observe exactly the two
            # ingests queued before it — coalescing may not reorder a
            # read past the writes behind it.
            assert results[0]["job_seq"] == 1
            assert results[1]["job_seq"] == 2
            assert results[2]["jobs_observed"] == 2
            assert results[3]["job_seq"] == 3
            assert results[4]["jobs_observed"] == 3
            return None

        run(_with_coalescing_server(scenario))

    def test_mixed_ops_with_rids_take_slow_path_but_agree(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                first = await client.request(
                    "ingest", files=[1, 2, 3], rid="tagged-1"
                )
                rest = await client.pipeline(
                    [
                        ("ingest", {"files": [2, 3]}),
                        ("ingest", {"files": [4]}),
                    ]
                )
            assert first["job_seq"] == 1
            assert [r["job_seq"] for r in rest] == [2, 3]
            return None

        run(_with_coalescing_server(scenario))


async def _with_coalescing_server(fn):
    server = await _serve(coalesce_ingest=True)
    try:
        return await fn(server)
    finally:
        await server.stop()


class TestLoadgenKnob:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="ingest_batch"):
            run(run_load("127.0.0.1", 1, [], ingest_batch=0))
        with pytest.raises(ValueError, match="mutually exclusive"):
            run(
                run_load(
                    "127.0.0.1", 1, [], ingest_batch=4, pipeline_depth=4
                )
            )

    def test_writer_batching_none_without_final_stats(self):
        async def scenario(server):
            return await run_load(
                "127.0.0.1",
                server.port,
                loadgen_jobs()[:8],
                connections=1,
                fetch_final_stats=False,
            )

        report = run(_with_coalescing_server(scenario))
        assert report.writer_batching() is None
        assert "writer_batching" not in report.as_dict()
