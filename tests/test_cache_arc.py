"""Unit tests for the Adaptive Replacement Cache."""

import numpy as np
import pytest

from repro.cache.arc import AdaptiveReplacementCache
from repro.cache.lru import FileLRU
from repro.cache.simulator import simulate
from tests.conftest import make_trace


class TestBasics:
    def test_miss_then_hit(self):
        p = AdaptiveReplacementCache(100)
        assert not p.request(1, 10, 0.0).hit
        assert p.request(1, 10, 1.0).hit
        assert 1 in p

    def test_hit_promotes_to_t2(self):
        p = AdaptiveReplacementCache(100)
        p.request(1, 10, 0.0)
        assert 1 in p._t1
        p.request(1, 10, 1.0)
        assert 1 in p._t2 and 1 not in p._t1

    def test_bypass_oversized(self):
        p = AdaptiveReplacementCache(5)
        out = p.request(1, 10, 0.0)
        assert out.bypassed
        assert p.used_bytes == 0

    def test_occupancy_bounded(self):
        p = AdaptiveReplacementCache(50)
        rng = np.random.default_rng(0)
        for i in range(500):
            p.request(int(rng.integers(0, 30)), int(rng.integers(5, 15)), float(i))
            assert 0 <= p.used_bytes <= 50
            assert 0.0 <= p._p <= 50.0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveReplacementCache(0)


class TestGhostLearning:
    def test_ghost_hit_reinserts_into_t2(self):
        p = AdaptiveReplacementCache(20)
        p.request(1, 10, 0.0)
        p.request(2, 10, 1.0)
        p.request(3, 10, 2.0)  # evicts 1 into B1
        assert 1 in p._b1
        p.request(1, 10, 3.0)  # ghost hit: back as frequent
        assert 1 in p._t2

    def test_b1_hit_grows_p(self):
        p = AdaptiveReplacementCache(20)
        p.request(1, 10, 0.0)
        p.request(2, 10, 1.0)
        p.request(3, 10, 2.0)
        before = p._p
        p.request(1, 10, 3.0)  # B1 ghost hit
        assert p._p > before

    def test_ghost_lists_bounded(self):
        p = AdaptiveReplacementCache(30)
        for i in range(100):
            p.request(i, 10, float(i))
        assert p._b1.bytes <= 30
        assert p._b2.bytes <= 30


class TestScanResistance:
    def test_one_shot_scan_does_not_flush_working_set(self):
        """ARC's signature property: a sequential scan of cold files must
        not destroy an established frequently-used working set."""
        capacity = 40
        hot = [0, 1]  # 2 x 10 bytes, touched repeatedly
        jobs = []
        for _ in range(6):
            jobs.append(hot)
        jobs.append(list(range(10, 30)))  # the scan: 20 cold files
        for _ in range(3):
            jobs.append(hot)
        t = make_trace(jobs, n_files=30, file_sizes=[10] * 30)

        m_arc = simulate(t, lambda c: AdaptiveReplacementCache(c), capacity)
        m_lru = simulate(t, lambda c: FileLRU(c), capacity)
        # after the scan, LRU has flushed the hot set; ARC kept it
        assert m_arc.hits >= m_lru.hits

    def test_matches_lru_regime_on_pure_recency(self):
        # cyclic reuse within capacity: both should hit everything warm
        jobs = [[0, 1], [0, 1], [0, 1]]
        t = make_trace(jobs, file_sizes=[10, 10])
        m = simulate(t, lambda c: AdaptiveReplacementCache(c), 100)
        assert m.hits == 4


class TestOnGeneratedWorkload:
    def test_sane_on_generated_trace(self, small_trace):
        cap = max(int(0.05 * small_trace.total_bytes()), 1)
        m = simulate(small_trace, lambda c: AdaptiveReplacementCache(c), cap)
        assert 0.0 <= m.miss_rate <= 1.0
        assert m.requests == small_trace.n_accesses

    def test_competitive_with_lru(self, small_trace):
        cap = max(int(0.05 * small_trace.total_bytes()), 1)
        m_arc = simulate(small_trace, lambda c: AdaptiveReplacementCache(c), cap)
        m_lru = simulate(small_trace, lambda c: FileLRU(c), cap)
        assert m_arc.miss_rate <= m_lru.miss_rate + 0.05
