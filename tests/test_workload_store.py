"""On-disk trace artifact store: keying, round trip, failure recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.trace import Trace
from repro.workload import (
    cached_trace,
    generate_trace,
    load_trace,
    save_trace,
    tiny_config,
    trace_cache_dir,
    trace_key,
    trace_path,
)
from repro.workload.store import FORMAT_VERSION, TRACE_ARRAY_COLUMNS

SEED = 11


@pytest.fixture()
def store_dir(tmp_path):
    return tmp_path / "traces"


def _assert_traces_equal(a: Trace, b: Trace) -> None:
    for name in TRACE_ARRAY_COLUMNS:
        got, want = getattr(a, name), getattr(b, name)
        assert got.dtype == want.dtype, name
        assert np.array_equal(got, want), name
    assert a.site_names == b.site_names
    assert a.domain_names == b.domain_names


def test_round_trip_restores_every_column(store_dir):
    cfg = tiny_config()
    ref = generate_trace(cfg, seed=SEED)
    path = trace_path(cfg, SEED, store_dir)
    save_trace(ref, path)
    loaded = load_trace(path)
    _assert_traces_equal(loaded, ref)
    # loaded columns are frozen like any Trace's
    with pytest.raises(ValueError):
        loaded.access_files[0] = 1


def test_cached_trace_generates_once(store_dir):
    cfg = tiny_config()
    events: list[str] = []
    first = cached_trace(cfg, SEED, cache_dir=store_dir, on_event=events.append)
    second = cached_trace(cfg, SEED, cache_dir=store_dir, on_event=events.append)
    _assert_traces_equal(second, first)
    assert any("generating" in e for e in events[:2])
    assert any("hit" in e for e in events[2:])
    # exactly one artifact on disk
    assert len(list(store_dir.glob("*.npz"))) == 1


def test_key_is_structural_not_nominal(store_dir):
    cfg = tiny_config()
    renamed = cfg.scaled(1.0, name="renamed")
    # scaled(1.0) keeps every count: only the name differs
    assert trace_key(cfg, SEED) == trace_key(renamed, SEED)
    # any calibrated number (or the seed) changes the key
    assert trace_key(cfg, SEED) != trace_key(cfg, SEED + 1)
    assert trace_key(cfg, SEED) != trace_key(cfg.scaled(2.0), SEED)


def test_corrupt_artifact_is_regenerated(store_dir):
    cfg = tiny_config()
    ref = cached_trace(cfg, SEED, cache_dir=store_dir)
    path = trace_path(cfg, SEED, store_dir)
    path.write_bytes(b"not an npz")
    events: list[str] = []
    recovered = cached_trace(
        cfg, SEED, cache_dir=store_dir, on_event=events.append
    )
    _assert_traces_equal(recovered, ref)
    assert any("discarding" in e for e in events)
    # and the rewritten artifact is valid again
    _assert_traces_equal(load_trace(path), ref)


def test_format_version_mismatch_is_refused_then_rewritten(
    store_dir, monkeypatch
):
    cfg = tiny_config()
    cached_trace(cfg, SEED, cache_dir=store_dir)
    path = trace_path(cfg, SEED, store_dir)
    # rewrite the artifact claiming a future format
    with np.load(path, allow_pickle=False) as data:
        arrays = {k: data[k] for k in data.files}
    arrays["format_version"] = np.asarray(FORMAT_VERSION + 1, dtype=np.int64)
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)
    with pytest.raises(ValueError, match="format"):
        load_trace(path)
    # cached_trace treats it like any unreadable artifact
    recovered = cached_trace(cfg, SEED, cache_dir=store_dir)
    assert recovered.n_accesses > 0
    assert int(np.load(path)["format_version"]) == FORMAT_VERSION


def test_refresh_forces_regeneration(store_dir):
    cfg = tiny_config()
    cached_trace(cfg, SEED, cache_dir=store_dir)
    path = trace_path(cfg, SEED, store_dir)
    before = path.stat().st_mtime_ns
    events: list[str] = []
    cached_trace(
        cfg, SEED, cache_dir=store_dir, refresh=True, on_event=events.append
    )
    assert any("generating" in e for e in events)
    assert path.stat().st_mtime_ns >= before


def test_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "elsewhere"))
    assert trace_cache_dir() == tmp_path / "elsewhere"
    monkeypatch.delenv("REPRO_TRACE_CACHE")
    default = trace_cache_dir()
    assert default.name == "repro-traces"


def test_no_tmp_files_left_behind(store_dir):
    cfg = tiny_config()
    cached_trace(cfg, SEED, cache_dir=store_dir)
    leftovers = [p for p in store_dir.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
