"""Unit tests for partition invariant validation."""

import numpy as np
import pytest

from repro.core.filecule import Filecule, FileculePartition
from repro.core.identify import find_filecules
from repro.core.properties import (
    FileculeInvariantError,
    assert_partition_valid,
    partition_is_valid,
)
from tests.conftest import make_trace


@pytest.fixture()
def trace():
    return make_trace([[0, 1], [0, 1], [2]])


def partition_from(groups, trace, requests=None):
    filecules = []
    pop = trace.file_popularity
    for i, members in enumerate(groups):
        arr = np.asarray(members, dtype=np.int64)
        filecules.append(
            Filecule(
                i,
                arr,
                n_requests=(
                    requests[i] if requests is not None else int(pop[arr[0]])
                ),
                size_bytes=int(trace.file_sizes[arr].sum()),
            )
        )
    return FileculePartition(filecules, trace.n_files)


class TestValidator:
    def test_correct_partition_passes(self, trace):
        assert partition_is_valid(trace, find_filecules(trace))

    def test_uncovered_accessed_file(self, trace):
        p = partition_from([[0, 1]], trace)
        with pytest.raises(FileculeInvariantError, match="coverage"):
            assert_partition_valid(trace, p)

    def test_covering_unaccessed_file(self):
        t = make_trace([[0]], n_files=2)
        p = partition_from([[0], [1]], t, requests=[1, 0])
        with pytest.raises(FileculeInvariantError, match="coverage"):
            assert_partition_valid(t, p)

    def test_mixed_signature_group(self, trace):
        p = partition_from([[0, 1, 2]], trace, requests=[2])
        with pytest.raises(FileculeInvariantError, match="different access"):
            assert_partition_valid(trace, p)

    def test_wrong_request_count(self, trace):
        p = partition_from([[0, 1], [2]], trace, requests=[5, 1])
        with pytest.raises(FileculeInvariantError, match="claims 5 requests"):
            assert_partition_valid(trace, p)

    def test_non_maximal_partition(self, trace):
        # files 0 and 1 share a signature but are placed in two filecules
        p = partition_from([[0], [1], [2]], trace)
        with pytest.raises(FileculeInvariantError, match="not maximal"):
            assert_partition_valid(trace, p)

    def test_catalog_size_mismatch(self, trace):
        p = partition_from([[0, 1], [2]], trace)
        other = make_trace([[0, 1], [0, 1], [2]], n_files=7)
        with pytest.raises(FileculeInvariantError, match="catalog"):
            assert_partition_valid(other, p)

    def test_wrong_size_bytes(self, trace):
        fc_bad = Filecule(0, np.array([0, 1]), 2, size_bytes=12345)
        fc_ok = Filecule(1, np.array([2]), 1, 1)
        p = FileculePartition([fc_bad, fc_ok], trace.n_files)
        with pytest.raises(FileculeInvariantError, match="size"):
            assert_partition_valid(trace, p)

    def test_zero_size_tolerated(self, trace):
        """Partitions from incremental snapshots without sizes are valid."""
        fc1 = Filecule(0, np.array([0, 1]), 2, size_bytes=0)
        fc2 = Filecule(1, np.array([2]), 1, size_bytes=0)
        p = FileculePartition([fc1, fc2], trace.n_files)
        assert_partition_valid(trace, p)

    def test_boolean_form(self, trace):
        assert not partition_is_valid(trace, partition_from([[0, 1]], trace))
