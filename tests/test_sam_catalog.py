"""Unit tests for the replica catalog."""

import numpy as np
import pytest

from repro.core.filecule import Filecule
from repro.sam.catalog import ReplicaCatalog


@pytest.fixture()
def catalog():
    return ReplicaCatalog(n_files=10, n_sites=3, hub_site=0)


class TestRegistration:
    def test_register_and_locate(self, catalog):
        catalog.register(1, 2)
        assert catalog.locate(1) == {2}
        assert catalog.has_replica(1, 2)
        assert not catalog.has_replica(1, 0)

    def test_unregister_idempotent(self, catalog):
        catalog.register(1, 2)
        catalog.unregister(1, 2)
        catalog.unregister(1, 2)
        assert catalog.locate(1) == frozenset()

    def test_files_at(self, catalog):
        catalog.register(1, 2)
        catalog.register(3, 2)
        assert catalog.files_at(2) == {1, 3}

    def test_bounds_checked(self, catalog):
        with pytest.raises(KeyError):
            catalog.register(100, 0)
        with pytest.raises(KeyError):
            catalog.register(0, 7)
        with pytest.raises(KeyError):
            catalog.files_at(9)

    def test_bulk_register(self, catalog):
        catalog.bulk_register([1, 2, 3], 1)
        assert catalog.files_at(1) == {1, 2, 3}


class TestBestSource:
    def test_local_preferred(self, catalog):
        catalog.register(1, 2)
        catalog.register(1, 1)
        assert catalog.best_source(1, 2) == 2

    def test_remote_replica_over_tape(self, catalog):
        catalog.register(1, 2)
        assert catalog.best_source(1, 1) == 2

    def test_hub_fallback(self, catalog):
        assert catalog.best_source(1, 2) == 0  # tape at hub

    def test_deterministic_choice(self, catalog):
        catalog.register(1, 2)
        catalog.register(1, 1)
        assert catalog.best_source(1, 0) == 1  # lowest site id


class TestFileculeHelpers:
    def test_presence_fraction(self, catalog):
        fc = Filecule(0, np.array([1, 2, 3, 4]), 1, 4)
        catalog.register(1, 1)
        catalog.register(2, 1)
        assert catalog.filecule_presence(fc, 1) == pytest.approx(0.5)
        assert catalog.filecule_presence(fc, 2) == 0.0

    def test_register_filecule(self, catalog):
        fc = Filecule(0, np.array([5, 6]), 1, 2)
        catalog.register_filecule(fc, 2)
        assert catalog.filecule_presence(fc, 2) == 1.0

    def test_site_bytes(self, catalog):
        sizes = np.arange(10) * 10
        catalog.register(2, 1)
        catalog.register(4, 1)
        assert catalog.site_bytes(1, sizes) == 60
        assert catalog.site_bytes(2, sizes) == 0


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicaCatalog(n_files=-1, n_sites=1)
        with pytest.raises(ValueError):
            ReplicaCatalog(n_files=1, n_sites=0)
        with pytest.raises(ValueError):
            ReplicaCatalog(n_files=1, n_sites=1, hub_site=5)
