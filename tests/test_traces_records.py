"""Unit tests for tier vocabulary and record types."""

import pytest

from repro.traces.records import (
    TIER_NAMES,
    TIER_OTHER,
    TIER_RAW,
    TIER_RECONSTRUCTED,
    TIER_ROOTTUPLE,
    TIER_THUMBNAIL,
    FileMeta,
    JobMeta,
    tier_code,
    tier_name,
)


class TestTierVocabulary:
    def test_codes_are_dense(self):
        codes = {TIER_RAW, TIER_RECONSTRUCTED, TIER_THUMBNAIL, TIER_ROOTTUPLE, TIER_OTHER}
        assert codes == set(range(len(TIER_NAMES)))

    @pytest.mark.parametrize(
        "alias,code",
        [
            ("raw", TIER_RAW),
            ("Reconstructed", TIER_RECONSTRUCTED),
            ("reco", TIER_RECONSTRUCTED),
            ("thumbnail", TIER_THUMBNAIL),
            ("TMB", TIER_THUMBNAIL),
            ("root-tuple", TIER_ROOTTUPLE),
            ("roottuple", TIER_ROOTTUPLE),
            ("root_tuple", TIER_ROOTTUPLE),
            ("Others", TIER_OTHER),
            (" other ", TIER_OTHER),
        ],
    )
    def test_aliases(self, alias, code):
        assert tier_code(alias) == code

    def test_code_passthrough(self):
        assert tier_code(TIER_RAW) == TIER_RAW

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown data tier"):
            tier_code("esd")

    def test_code_out_of_range(self):
        with pytest.raises(ValueError):
            tier_code(99)
        with pytest.raises(ValueError):
            tier_name(-1)

    def test_roundtrip(self):
        for code, name in enumerate(TIER_NAMES):
            assert tier_code(tier_name(code)) == code
            assert tier_name(tier_code(name)) == name


class TestRecordTypes:
    def test_file_meta_label(self):
        meta = FileMeta(1, "f", 10, TIER_THUMBNAIL, 0)
        assert meta.tier_label == "thumbnail"

    def test_job_meta_duration(self):
        meta = JobMeta(
            job_id=0,
            user_id=0,
            node_id=0,
            site_id=0,
            domain_id=0,
            tier=TIER_OTHER,
            start_time=0.0,
            end_time=7200.0,
        )
        assert meta.duration_hours == pytest.approx(2.0)
        assert meta.file_ids == ()
        assert meta.tier_label == "other"

    def test_records_frozen(self):
        meta = FileMeta(1, "f", 10, TIER_RAW, 0)
        with pytest.raises(AttributeError):
            meta.size_bytes = 5
