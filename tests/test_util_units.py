"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import GB, KB, MB, PB, TB, format_bytes, parse_size


class TestConstants:
    def test_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB
        assert PB == 1024 * TB


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"

    def test_suffix_selection(self):
        assert format_bytes(KB) == "1.00 KB"
        assert format_bytes(3 * GB) == "3.00 GB"
        assert format_bytes(17 * TB) == "17.00 TB"
        assert format_bytes(2 * PB) == "2.00 PB"

    def test_precision(self):
        assert format_bytes(1536, 1) == "1.5 KB"
        assert format_bytes(1536, 0) == "2 KB"

    def test_just_below_boundary(self):
        assert format_bytes(KB - 1) == "1023 B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            format_bytes(-1)


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1KB", KB),
            ("1 kb", KB),
            ("2.5 MB", int(2.5 * MB)),
            ("100GB", 100 * GB),
            ("1.5 TB", int(1.5 * TB)),
            ("3PB", 3 * PB),
            ("42", 42),
            ("42B", 42),
            ("7 M", 7 * MB),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    def test_passthrough_numbers(self):
        assert parse_size(1000) == 1000
        assert parse_size(1000.7) == 1000

    def test_negative_number_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-5)

    @pytest.mark.parametrize("bad", ["", "abc", "12 XB", "GB", "1.2.3 GB"])
    def test_invalid(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_roundtrip_with_format(self):
        for n in (KB, 3 * GB, 17 * TB):
            assert parse_size(format_bytes(n)) == n
