"""Property tests: every registered placement obeys the plan contract.

The :class:`~repro.replication.ReplicationPlan` invariants the §6
evaluation machinery (and the grid substrate's catalogs) rely on:

* **budget safety** — each site's pushed bytes never exceed its budget;
* **no duplicates** — a site is never handed the same file id twice
  (``ReplicaCatalog.bulk_register`` would double-count it);
* **self-consistency** — ``site_bytes[s]`` equals the actual byte sum
  of ``site_files[s]``;
* **determinism** — planning twice from the same history is identical
  (plans feed seeded experiments; nondeterminism would break replay).

The strategies come from the registry placement catalog, so a newly
registered placement is swept automatically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import registry
from repro.core.identify import find_filecules
from repro.hierarchy import parse_hierarchy
from tests.conftest import make_trace

N_FILES = 12
N_SITES = 3

#: Hierarchy handed to ``needs_hierarchy`` placements under test.
HIERARCHY = "site:file-lru@40%+regional:filecule-lru@60%+origin"

job_lists = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=N_FILES - 1),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=14,
)
file_size_lists = st.lists(
    st.integers(min_value=1, max_value=50),
    min_size=N_FILES,
    max_size=N_FILES,
)
budget_values = st.integers(min_value=0, max_value=400)


def build_trace(jobs, sizes):
    n_jobs = len(jobs)
    nodes = [j % N_SITES for j in range(n_jobs)]
    return make_trace(
        jobs,
        n_files=N_FILES,
        file_sizes=sizes,
        job_nodes=nodes,
        node_sites=list(range(N_SITES)),
        node_domains=[0] * N_SITES,
        site_names=[f"s{i}" for i in range(N_SITES)],
    )


def build_strategy(name: str):
    spec = registry.get_spec(name)
    hierarchy = parse_hierarchy(HIERARCHY) if spec.needs_hierarchy else None
    return registry.build_placement(name, hierarchy=hierarchy)


@pytest.mark.parametrize("name", registry.placement_names())
class TestPlanContract:
    @given(jobs=job_lists, sizes=file_size_lists, budget=budget_values)
    @settings(max_examples=25, deadline=None)
    def test_invariants(self, name, jobs, sizes, budget):
        trace = build_trace(jobs, sizes)
        partition = find_filecules(trace)
        budgets = np.full(trace.n_sites, budget, dtype=np.int64)
        strategy = build_strategy(name)
        plan = strategy.plan(trace, partition, budgets)

        assert plan.strategy == name
        assert len(plan.site_files) == trace.n_sites
        file_sizes = trace.file_sizes
        for s in range(trace.n_sites):
            pushed = plan.site_files[s]
            # no duplicate file ids per site
            assert len(np.unique(pushed)) == len(pushed)
            # bytes within budget and self-consistent
            actual = int(file_sizes[pushed].sum()) if len(pushed) else 0
            assert actual == plan.site_bytes[s]
            assert actual <= budget
        assert plan.total_bytes == sum(plan.site_bytes)
        assert plan.total_replicas == sum(len(f) for f in plan.site_files)

        # determinism: a fresh strategy over the same history agrees
        again = build_strategy(name).plan(trace, partition, budgets)
        assert again.site_bytes == plan.site_bytes
        for a, b in zip(again.site_files, plan.site_files):
            assert np.array_equal(a, b)

    def test_zero_budget_plans_nothing(self, name):
        trace = build_trace([[0, 1], [2, 3]], [5] * N_FILES)
        partition = find_filecules(trace)
        plan = build_strategy(name).plan(
            trace, partition, np.zeros(trace.n_sites, dtype=np.int64)
        )
        assert plan.total_bytes == 0
        assert plan.total_replicas == 0


class TestPlacementRegistry:
    def test_placement_catalog(self):
        names = registry.placement_names()
        for required in (
            "file-rank",
            "filecule-rank",
            "global-rank",
            "local-filecule-rank",
            "hybrid-rank",
            "tiered-filecule-rank",
        ):
            assert required in names
        # placements never leak into the cache-policy catalog
        assert not set(names) & set(registry.policy_names())

    def test_aliases_resolve(self):
        legacy = registry.get_spec("filecule-granularity")
        assert legacy.name == "filecule-rank"
        assert registry.get_spec("file-granularity").name == "file-rank"

    def test_flags(self):
        spec = registry.get_spec("tiered-filecule-rank")
        assert spec.is_placement
        assert spec.needs_hierarchy
        assert not registry.get_spec("filecule-rank").needs_hierarchy

    def test_build_direction_guards(self):
        with pytest.raises(registry.PolicySpecError, match="placement"):
            registry.build("filecule-rank", 100)
        with pytest.raises(registry.PolicySpecError, match="cache policy"):
            registry.build_placement("file-lru")

    def test_needs_hierarchy_enforced(self):
        with pytest.raises(registry.PolicyResourceError, match="hierarchy"):
            registry.build_placement("tiered-filecule-rank")
        strategy = registry.build_placement(
            "tiered-filecule-rank", hierarchy=HIERARCHY
        )
        assert str(strategy.hierarchy) == HIERARCHY
