"""Unit tests for the trace-replay cache simulator."""

import pytest

from repro.cache.filecule_lru import FileculeLRU
from repro.cache.lru import FileLRU
from repro.cache.simulator import simulate, sweep
from repro.core.identify import find_filecules
from tests.conftest import make_trace


@pytest.fixture()
def trace():
    return make_trace(
        [[0, 1], [0, 1], [2], [0, 1]],
        file_sizes=[10, 10, 10],
    )


class TestSimulate:
    def test_request_count(self, trace):
        m = simulate(trace, lambda c: FileLRU(c), capacity=100)
        assert m.requests == trace.n_accesses

    def test_cold_misses_only_when_everything_fits(self, trace):
        m = simulate(trace, lambda c: FileLRU(c), capacity=1000)
        assert m.misses == 3  # files 0, 1, 2 each miss exactly once

    def test_all_miss_when_nothing_fits(self, trace):
        m = simulate(trace, lambda c: FileLRU(c), capacity=5)
        assert m.misses == m.requests
        assert m.bypasses == m.requests

    def test_name_default_and_override(self, trace):
        assert simulate(trace, lambda c: FileLRU(c), 10).name == "file-lru"
        assert simulate(trace, lambda c: FileLRU(c), 10, name="x").name == "x"

    def test_capacity_recorded(self, trace):
        assert simulate(trace, lambda c: FileLRU(c), 77).capacity_bytes == 77


class TestSweep:
    def test_grid_shape(self, trace):
        partition = find_filecules(trace)
        res = sweep(
            trace,
            {
                "a": lambda c: FileLRU(c),
                "b": lambda c: FileculeLRU(c, partition),
            },
            [50, 100],
        )
        assert res.capacities == (50, 100)
        assert set(res.metrics) == {"a", "b"}
        assert len(res.metrics["a"]) == 2

    def test_miss_rates_and_factor(self, trace):
        partition = find_filecules(trace)
        res = sweep(
            trace,
            {
                "file": lambda c: FileLRU(c),
                "cule": lambda c: FileculeLRU(c, partition),
            },
            [1000],
        )
        assert res.miss_rates("file")[0] > res.miss_rates("cule")[0]
        factor = res.improvement_factor("file", "cule")[0]
        assert factor > 1.0

    def test_factor_inf_on_zero_miss(self):
        t = make_trace([[0], [0]], file_sizes=[10])
        res = sweep(
            t,
            {
                "warm": lambda c: FileLRU(c),
                "cold": lambda c: FileLRU(1),
            },
            [100],
        )
        # contender with zero misses is impossible here; test inf path directly
        from repro.cache.base import CacheMetrics
        from repro.cache.simulator import SweepResult

        res2 = SweepResult(
            capacities=(1,),
            metrics={
                "base": (CacheMetrics(requests=10, hits=5),),
                "perfect": (CacheMetrics(requests=10, hits=10),),
            },
        )
        assert res2.improvement_factor("base", "perfect") == [float("inf")]

    def test_factor_nan_when_both_miss_rates_zero(self):
        import math

        from repro.cache.base import CacheMetrics
        from repro.cache.simulator import SweepResult

        res = SweepResult(
            capacities=(1, 2),
            metrics={
                "base": (
                    CacheMetrics(requests=10, hits=10),
                    CacheMetrics(),  # empty cell: no requests at all
                ),
                "contender": (
                    CacheMetrics(requests=10, hits=10),
                    CacheMetrics(),
                ),
            },
        )
        factors = res.improvement_factor("base", "contender")
        assert len(factors) == 2
        assert all(math.isnan(f) for f in factors)

    def test_empty_args_rejected(self, trace):
        with pytest.raises(ValueError):
            sweep(trace, {}, [10])
        with pytest.raises(ValueError):
            sweep(trace, {"a": lambda c: FileLRU(c)}, [])

    def test_byte_miss_rates(self, trace):
        res = sweep(trace, {"a": lambda c: FileLRU(c)}, [1000])
        assert 0.0 <= res.byte_miss_rates("a")[0] <= 1.0
