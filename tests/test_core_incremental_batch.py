"""The vectorized observe kernel: batched ≡ sequential, bit for bit.

``observe_jobs_batch`` promises the exact partition, class ids,
``state_dict`` and affected-id union that per-job ``observe_job`` calls
would produce — at infinite and finite half-life, for any window split.
These tests drive both paths over adversarial streams (splits, new
files, duplicates, unsorted input, empty jobs, decay expiry) and demand
equality of everything observable.
"""

import math

import numpy as np
import pytest

from repro.core.identify import find_filecules
from repro.core.incremental import IncrementalFileculeIdentifier
from tests.conftest import make_trace


def columnar(jobs):
    """Flat array + offsets for a list of per-job file-id lists."""
    flat = np.array([f for job in jobs for f in job], dtype=np.int64)
    offsets = np.zeros(len(jobs) + 1, dtype=np.int64)
    np.cumsum([len(job) for job in jobs], out=offsets[1:])
    return flat, offsets


def sequential_replay(jobs, nows=None, **ident_kwargs):
    ident = IncrementalFileculeIdentifier(**ident_kwargs)
    affected = set()
    for k, job in enumerate(jobs):
        affected |= ident.observe_job(
            job, now=None if nows is None else nows[k]
        )
    return ident, affected


def random_stream(rng, n_jobs=60, n_files=40):
    """A job stream rigged to exercise every kernel branch."""
    jobs = []
    for _ in range(n_jobs):
        kind = rng.random()
        size = int(rng.integers(1, 8))
        job = rng.choice(n_files, size=size, replace=False).tolist()
        if kind < 0.25:
            job = sorted(job)  # sorted-unique: pure-path candidate
        elif kind < 0.35:
            job = job + [job[0]]  # duplicate
        jobs.append(job)
    return jobs


class TestEquivalence:
    @pytest.mark.parametrize("half_life", [math.inf, 40.0])
    def test_batch_matches_sequential(self, half_life):
        rng = np.random.default_rng(11)
        jobs = random_stream(rng)
        nows = np.cumsum(rng.uniform(0.0, 5.0, size=len(jobs)))
        seq, seq_affected = sequential_replay(
            jobs, nows=nows, half_life=half_life
        )
        bat = IncrementalFileculeIdentifier(half_life=half_life)
        flat, offsets = columnar(jobs)
        bat_affected = bat.observe_jobs_batch(flat, offsets, now=nows)
        assert bat.state_dict() == seq.state_dict()
        assert bat_affected == seq_affected

    def test_logical_clock_when_now_omitted(self):
        jobs = [[1, 2, 3], [2, 3], [4, 5], [1], [2, 3, 6]]
        seq, seq_affected = sequential_replay(jobs)
        bat = IncrementalFileculeIdentifier()
        flat, offsets = columnar(jobs)
        bat_affected = bat.observe_jobs_batch(flat, offsets)
        assert bat.state_dict() == seq.state_dict()
        assert bat_affected == seq_affected

    def test_affected_union_over_window_splits(self):
        rng = np.random.default_rng(23)
        jobs = random_stream(rng, n_jobs=80)
        nows = np.cumsum(rng.uniform(0.0, 3.0, size=len(jobs)))
        _, want = sequential_replay(jobs, nows=nows, half_life=25.0)
        for split_seed in range(4):
            srng = np.random.default_rng(split_seed)
            cuts = sorted(
                srng.choice(len(jobs), size=5, replace=False).tolist()
            )
            bounds = [0] + cuts + [len(jobs)]
            ident = IncrementalFileculeIdentifier(half_life=25.0)
            got = set()
            for lo, hi in zip(bounds, bounds[1:]):
                if lo == hi:
                    continue
                flat, offsets = columnar(jobs[lo:hi])
                got |= ident.observe_jobs_batch(
                    flat, offsets, now=nows[lo:hi]
                )
            assert got == want, f"split at {cuts}"

    def test_mid_batch_snapshot_restore_continue(self):
        rng = np.random.default_rng(5)
        jobs = random_stream(rng, n_jobs=50)
        nows = np.cumsum(rng.uniform(0.0, 4.0, size=len(jobs)))
        ref, _ = sequential_replay(jobs, nows=nows, half_life=30.0)

        ident = IncrementalFileculeIdentifier(half_life=30.0)
        flat, offsets = columnar(jobs[:20])
        ident.observe_jobs_batch(flat, offsets, now=nows[:20])
        restored = IncrementalFileculeIdentifier.from_state_dict(
            ident.state_dict()
        )
        flat, offsets = columnar(jobs[20:])
        restored.observe_jobs_batch(flat, offsets, now=nows[20:])
        assert restored.state_dict() == ref.state_dict()

    def test_empty_jobs_do_not_tick(self):
        jobs = [[1, 2], [], [2], [], []]
        seq, _ = sequential_replay([j for j in jobs if j])
        bat = IncrementalFileculeIdentifier()
        flat, offsets = columnar(jobs)
        counts = []
        bat.observe_jobs_batch(flat, offsets, job_counts=counts)
        # Empty jobs still yield a receipt but advance nothing...
        assert len(counts) == len(jobs)
        assert counts[1] == counts[0]
        # ...including the logical clock, matching the skip-empties
        # behavior of the sequential trace loop.
        assert bat.n_jobs_observed == len(jobs)

    def test_job_counts_match_post_job_state(self):
        jobs = [[1, 2, 3], [2, 3], [4], [1, 4]]
        flat, offsets = columnar(jobs)
        ident = IncrementalFileculeIdentifier()
        counts = []
        ident.observe_jobs_batch(flat, offsets, job_counts=counts)
        ref = IncrementalFileculeIdentifier()
        want = []
        for job in jobs:
            ref.observe_job(job)
            want.append((ref.n_files_observed, ref.n_classes))
        assert counts == want


class TestObserveTrace:
    def test_matches_per_job_loop(self):
        jobs = [[0, 1, 2], [1, 2], [3, 4], [0], [3, 4], [2, 5]]
        trace = make_trace(jobs, n_files=6)
        via_trace = IncrementalFileculeIdentifier()
        via_trace.observe_trace(trace)
        starts = trace.job_starts
        per_job = IncrementalFileculeIdentifier()
        for j, files in trace.iter_jobs():
            if len(files):
                per_job.observe_job(files.tolist(), now=float(starts[j]))
        assert via_trace.state_dict() == per_job.state_dict()

    def test_matches_offline_partition(self):
        rng = np.random.default_rng(3)
        jobs = random_stream(rng, n_jobs=70, n_files=30)
        trace = make_trace([sorted(set(j)) for j in jobs], n_files=30)
        ident = IncrementalFileculeIdentifier()
        ident.observe_trace(trace, window=16)
        want = sorted(
            tuple(sorted(fc.file_ids.tolist()))
            for fc in find_filecules(trace)
        )
        got = sorted(tuple(sorted(c)) for c in ident.classes())
        assert got == want

    def test_window_size_is_immaterial(self):
        rng = np.random.default_rng(9)
        jobs = random_stream(rng, n_jobs=45, n_files=25)
        trace = make_trace([sorted(set(j)) for j in jobs], n_files=25)
        states = []
        for window in (1, 7, 45, 8192):
            ident = IncrementalFileculeIdentifier(half_life=60.0)
            ident.observe_trace(trace, window=window)
            states.append(ident.state_dict())
        assert all(s == states[0] for s in states[1:])


class TestValidation:
    def test_rejects_bad_offsets(self):
        ident = IncrementalFileculeIdentifier()
        with pytest.raises(ValueError, match="offsets"):
            ident.observe_jobs_batch(np.array([1, 2]), np.array([1, 2]))
        with pytest.raises(ValueError, match="offsets"):
            ident.observe_jobs_batch(np.array([1, 2]), np.array([0, 1]))
        with pytest.raises(ValueError, match="offsets"):
            ident.observe_jobs_batch(np.array([1, 2]), np.array([0, 2, 1]))
        with pytest.raises(ValueError, match="offsets"):
            ident.observe_jobs_batch(np.array([1, 2]), np.array([]))

    def test_rejects_negative_ids(self):
        ident = IncrementalFileculeIdentifier()
        with pytest.raises(ValueError, match="non-negative"):
            ident.observe_jobs_batch(np.array([3, -1]), np.array([0, 2]))

    def test_rejects_now_shape_mismatch(self):
        ident = IncrementalFileculeIdentifier()
        with pytest.raises(ValueError, match="one timestamp per job"):
            ident.observe_jobs_batch(
                np.array([1, 2]), np.array([0, 1, 2]), now=[1.0]
            )

    def test_batch_interleaves_with_observe_job(self):
        # Mixing the two entry points on one identifier stays coherent.
        rng = np.random.default_rng(17)
        jobs = random_stream(rng, n_jobs=30)
        seq, _ = sequential_replay(jobs)
        mixed = IncrementalFileculeIdentifier()
        for job in jobs[:10]:
            mixed.observe_job(job)
        flat, offsets = columnar(jobs[10:22])
        mixed.observe_jobs_batch(flat, offsets)
        for job in jobs[22:]:
            mixed.observe_job(job)
        assert mixed.state_dict() == seq.state_dict()
