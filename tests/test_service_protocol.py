"""Unit tests for the service wire protocol and metrics primitives."""

import json

import pytest

from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode_request,
    encode_response,
    error_response,
    ok_response,
)


class TestEncoding:
    def test_request_line_is_newline_terminated_json(self):
        line = encode_request("ingest", 3, files=[1, 2], sizes=None, site=0)
        assert line.endswith(b"\n")
        obj = json.loads(line)
        assert obj == {
            "v": PROTOCOL_VERSION,
            "op": "ingest",
            "id": 3,
            "files": [1, 2],
            "sizes": None,
            "site": 0,
        }

    def test_response_roundtrip(self):
        ok = json.loads(encode_response(ok_response(7, {"x": 1})))
        assert ok == {"v": PROTOCOL_VERSION, "id": 7, "ok": True, "result": {"x": 1}}
        err = json.loads(
            encode_response(error_response(7, "bad-request", "nope"))
        )
        assert err["ok"] is False
        assert err["error"] == {"code": "bad-request", "message": "nope"}

    def test_unknown_error_code_downgraded_to_internal(self):
        assert error_response(1, "no-such-code", "m")["error"]["code"] == "internal"


class TestDecodeValidation:
    def test_roundtrip_ingest(self):
        req = decode_request(
            encode_request("ingest", 1, files=[3, 4], sizes=[10, 20], site=2)
        )
        assert req == {
            "op": "ingest",
            "id": 1,
            "files": [3, 4],
            "sizes": [10, 20],
            "site": 2,
        }

    def test_defaults_filled_in(self):
        req = decode_request(b'{"op": "ingest", "files": [1]}')
        assert req["site"] == 0 and req["sizes"] is None and req["id"] is None

    @pytest.mark.parametrize(
        "line, code",
        [
            (b"not json\n", "bad-request"),
            (b"[1, 2]\n", "bad-request"),
            (b'{"op": "frobnicate"}', "unknown-op"),
            (b'{"op": 7}', "unknown-op"),
            (b'{"op": "ingest", "v": 99, "files": []}', "unsupported-version"),
            (b'{"op": "ingest"}', "bad-request"),  # files missing
            (b'{"op": "ingest", "files": [1, true]}', "bad-request"),
            (b'{"op": "ingest", "files": [1, -2]}', "bad-request"),
            (b'{"op": "ingest", "files": [1], "sizes": [1, 2]}', "bad-request"),
            (b'{"op": "ingest", "files": [1], "site": "x"}', "bad-request"),
            (b'{"op": "filecule_of"}', "bad-request"),
            (b'{"op": "filecule_of", "file": -1}', "bad-request"),
            (b'{"op": "snapshot", "path": 7}', "bad-request"),
        ],
    )
    def test_rejections_carry_machine_readable_codes(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(line)
        assert excinfo.value.code == code

    def test_oversized_line_rejected(self):
        line = b'{"op": "ping", "pad": "' + b"x" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError) as excinfo:
            decode_request(line)
        assert excinfo.value.code == "too-large"

    def test_unknown_extra_fields_dropped(self):
        req = decode_request(b'{"op": "ping", "future_field": 1}')
        assert req == {"op": "ping", "id": None}

    def test_bool_is_not_an_int(self):
        with pytest.raises(ProtocolError):
            decode_request(b'{"op": "filecule_of", "file": true}')


class TestLatencyHistogram:
    def test_percentiles_bracket_true_values(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):  # 1..100 ms uniform
            hist.record(ms / 1e3)
        # geometric buckets have 20% resolution; p50 near 50 ms
        assert 0.035 <= hist.percentile(0.5) <= 0.075
        assert 0.08 <= hist.percentile(0.99) <= 0.13
        assert hist.count == 100
        assert hist.max == pytest.approx(0.1)

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.99) == 0.0
        assert hist.mean == 0.0

    def test_extremes_clamped(self):
        hist = LatencyHistogram()
        hist.record(-1.0)  # clock skew: clamped to 0
        hist.record(20000.0)  # beyond the last bucket: reported as max
        assert hist.count == 2
        assert hist.percentile(1.0) == 20000.0

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)


class TestMetricsRegistry:
    def test_counters_and_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("requests")
        reg.inc("requests", 2)
        reg.observe("op.ingest", 0.002)
        snap = reg.snapshot()
        assert snap["counters"]["requests"] == 3
        assert snap["latency"]["op.ingest"]["count"] == 1
        assert snap["uptime_seconds"] >= 0

    def test_log_line_mentions_counters_and_percentiles(self):
        reg = MetricsRegistry()
        reg.inc("connections")
        reg.observe("op.stats", 0.001)
        line = reg.format_log_line()
        assert "connections=1" in line
        assert "op.stats.p50=" in line
