"""Unit tests for the sweep-line concurrency profile."""

import numpy as np
import pytest

from repro.transfer.concurrency import concurrency_profile
from repro.transfer.intervals import AccessInterval


class TestConcurrencyProfile:
    def test_empty(self):
        p = concurrency_profile([])
        assert p.max_concurrency == 0
        assert p.mean_concurrency == 0.0

    def test_single_interval(self):
        p = concurrency_profile([(0.0, 10.0)])
        assert p.max_concurrency == 1
        assert p.mean_concurrency == pytest.approx(1.0)

    def test_disjoint_intervals(self):
        p = concurrency_profile([(0.0, 1.0), (5.0, 6.0)])
        assert p.max_concurrency == 1
        # 2 units active over a 6-unit span
        assert p.mean_concurrency == pytest.approx(2 / 6)

    def test_nested_overlap(self):
        p = concurrency_profile([(0.0, 10.0), (2.0, 4.0), (3.0, 5.0)])
        assert p.max_concurrency == 3

    def test_exact_overlap_counts(self):
        p = concurrency_profile([(0.0, 10.0)] * 7)
        assert p.max_concurrency == 7
        assert p.mean_concurrency == pytest.approx(7.0)

    def test_endpoint_touching(self):
        # [0,5] and [5,10]: at t=5 the first ends as the second starts;
        # with right-open segments concurrency never exceeds 1
        p = concurrency_profile([(0.0, 5.0), (5.0, 10.0)])
        assert p.max_concurrency == 1
        assert p.mean_concurrency == pytest.approx(1.0)

    def test_point_interval(self):
        p = concurrency_profile([(5.0, 5.0)])
        assert p.max_concurrency == 1

    def test_point_interval_inside_long_one(self):
        p = concurrency_profile([(0.0, 10.0), (5.0, 5.0)])
        assert p.max_concurrency == 2
        # zero-width spike contributes no time weight
        assert p.mean_concurrency == pytest.approx(1.0)

    def test_fraction_at_least(self):
        p = concurrency_profile([(0.0, 10.0), (0.0, 5.0)])
        assert p.fraction_at_least(1) == pytest.approx(1.0)
        assert p.fraction_at_least(2) == pytest.approx(0.5)
        assert p.fraction_at_least(3) == 0.0

    def test_accepts_access_intervals(self):
        rows = [
            AccessInterval("a", 0, 0.0, 4.0, 1, 1),
            AccessInterval("b", 1, 2.0, 6.0, 1, 1),
        ]
        p = concurrency_profile(rows)
        assert p.max_concurrency == 2

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            concurrency_profile([(5.0, 1.0)])

    def test_counts_nonnegative(self):
        rng = np.random.default_rng(0)
        starts = rng.random(50) * 100
        ends = starts + rng.random(50) * 20
        p = concurrency_profile(list(zip(starts, ends)))
        assert p.counts.min() >= 0
        assert p.counts[-1] == 0  # everything has ended at the last breakpoint
