"""Tests for the command-line entry points and the report generator."""

import pytest

from repro.experiments.base import get_context
from repro.experiments.report import generate_report
from repro.traces.io import read_trace_jsonl, read_trace_csv
from repro.workload.__main__ import main as workload_main


class TestWorkloadCli:
    def test_jsonl_export(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        code = workload_main(
            ["--scale", "tiny", "--seed", "3", "--format", "jsonl", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        trace = read_trace_jsonl(out)
        assert trace.n_jobs > 0
        printed = capsys.readouterr().out
        assert "generated 'tiny'" in printed

    def test_csv_export(self, tmp_path, capsys):
        out = tmp_path / "csvdir"
        code = workload_main(
            ["--scale", "tiny", "--seed", "3", "--format", "csv", "--out", str(out)]
        )
        assert code == 0
        trace = read_trace_csv(out)
        assert trace.n_jobs > 0

    def test_export_matches_direct_generation(self, tmp_path, tiny_trace):
        out = tmp_path / "t.jsonl"
        workload_main(
            ["--scale", "tiny", "--seed", "3", "--format", "jsonl", "--out", str(out)]
        )
        loaded = read_trace_jsonl(out)
        assert loaded.n_jobs == tiny_trace.n_jobs
        assert loaded.n_accesses == tiny_trace.n_accesses

    def test_requires_out(self):
        with pytest.raises(SystemExit):
            workload_main(["--scale", "tiny"])


class TestReportGenerator:
    def test_subset_report(self, tmp_path):
        ctx = get_context("small", seed=7)
        path = generate_report(
            tmp_path / "REPORT.md", ctx, experiment_ids=["fig3", "fig9"]
        )
        text = path.read_text()
        assert "# Reproduction report" in text
        assert "## fig3" in text
        assert "## fig9" in text
        assert "Check summary" in text
        assert "fig10" not in text

    def test_unknown_id_rejected(self, tmp_path):
        ctx = get_context("small", seed=7)
        with pytest.raises(KeyError):
            generate_report(tmp_path / "r.md", ctx, experiment_ids=["nope"])


class TestSweepCli:
    """The ``sweep`` subcommand of ``python -m repro.experiments``."""

    @staticmethod
    def _main(argv):
        from repro.experiments.__main__ import main

        return main(argv)

    def test_dry_run_plans_paper_scale_without_a_trace(self, capsys):
        """--dry-run prints the grid and the dispatch decision from the
        workload config alone — fast even at paper scale."""
        code = self._main(
            ["sweep", "--dry-run", "--scale", "paper", "--jobs", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep plan: scale=paper" in out
        assert "2 policies x 7 capacities = 14 cells" in out
        assert "est. accesses:" in out
        assert "decision:" in out

    def test_dry_run_chunking_shown_when_parallel(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_FORCE", "1")
        code = self._main(
            ["sweep", "--dry-run", "--scale", "tiny", "--jobs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decision: parallel — REPRO_PARALLEL_FORCE=1" in out
        assert "chunking:" in out

    def test_dry_run_policies_override(self, capsys):
        code = self._main(
            [
                "sweep",
                "--dry-run",
                "--scale",
                "tiny",
                "--policies",
                "file-lru,file-fifo,file-lfu",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 policies x 7 capacities = 21 cells" in out
        assert "file-lru, file-fifo, file-lfu" in out

    def test_sweep_runs_the_grid(self, capsys):
        code = self._main(
            ["sweep", "--scale", "tiny", "--seed", "3", "--policies", "file-lru"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss rate" in out

    def test_sweep_cannot_combine_with_experiment_ids(self, capsys):
        with pytest.raises(SystemExit):
            self._main(["sweep", "fig10", "--scale", "tiny"])
        assert "cannot be combined" in capsys.readouterr().err

    def test_dry_run_requires_sweep(self, capsys):
        with pytest.raises(SystemExit):
            self._main(["fig10", "--dry-run", "--scale", "tiny"])
        assert "--dry-run" in capsys.readouterr().err

    def test_policies_requires_sweep(self, capsys):
        with pytest.raises(SystemExit):
            self._main(["fig10", "--policies", "file-lru", "--scale", "tiny"])
        assert "--policies" in capsys.readouterr().err
