"""Unit tests for trace filters."""

import numpy as np
import pytest

from repro.traces.filters import (
    filter_by_domain,
    filter_by_site,
    filter_by_tier,
    filter_by_time,
    filter_jobs,
    split_epochs,
)
from repro.traces.records import TIER_RECONSTRUCTED, TIER_THUMBNAIL
from tests.conftest import make_trace


@pytest.fixture()
def mixed_trace():
    return make_trace(
        [[0], [1], [2], [3]],
        job_tiers=[TIER_RECONSTRUCTED, TIER_THUMBNAIL, TIER_RECONSTRUCTED, TIER_THUMBNAIL],
        job_nodes=[0, 0, 1, 1],
        node_sites=[0, 1],
        node_domains=[0, 1],
        site_names=["fnal", "desy"],
        domain_names=[".gov", ".de"],
        job_starts=[0.0, 100.0, 200.0, 300.0],
    )


class TestFilterByTier:
    def test_by_name(self, mixed_trace):
        sub = filter_by_tier(mixed_trace, "thumbnail")
        assert sub.n_jobs == 2
        assert set(sub.job_labels.tolist()) == {1, 3}

    def test_by_code(self, mixed_trace):
        assert filter_by_tier(mixed_trace, TIER_RECONSTRUCTED).n_jobs == 2

    def test_unknown_tier(self, mixed_trace):
        with pytest.raises(ValueError):
            filter_by_tier(mixed_trace, "nope")


class TestFilterByDomainAndSite:
    def test_domain_by_name(self, mixed_trace):
        sub = filter_by_domain(mixed_trace, ".de")
        assert sub.job_labels.tolist() == [2, 3]

    def test_domain_by_code(self, mixed_trace):
        assert filter_by_domain(mixed_trace, 0).n_jobs == 2

    def test_unknown_domain(self, mixed_trace):
        with pytest.raises(ValueError, match="unknown domain"):
            filter_by_domain(mixed_trace, ".xx")
        with pytest.raises(ValueError, match="out of range"):
            filter_by_domain(mixed_trace, 7)

    def test_site_by_name(self, mixed_trace):
        assert filter_by_site(mixed_trace, "desy").n_jobs == 2

    def test_unknown_site(self, mixed_trace):
        with pytest.raises(ValueError, match="unknown site"):
            filter_by_site(mixed_trace, "cern")
        with pytest.raises(ValueError, match="out of range"):
            filter_by_site(mixed_trace, -1)


class TestFilterByTime:
    def test_window(self, mixed_trace):
        sub = filter_by_time(mixed_trace, 100.0, 300.0)
        assert sub.job_labels.tolist() == [1, 2]

    def test_reversed_window(self, mixed_trace):
        with pytest.raises(ValueError):
            filter_by_time(mixed_trace, 10.0, 0.0)


class TestFilterJobs:
    def test_alias(self, mixed_trace):
        sub = filter_jobs(mixed_trace, np.array([True, False, False, True]))
        assert sub.job_labels.tolist() == [0, 3]


class TestSplitEpochs:
    def test_every_job_in_exactly_one_epoch(self, mixed_trace):
        epochs = split_epochs(mixed_trace, 3)
        assert sum(e.n_jobs for e in epochs) == mixed_trace.n_jobs
        labels = sorted(
            label for e in epochs for label in e.job_labels.tolist()
        )
        assert labels == [0, 1, 2, 3]

    def test_job_starting_at_window_end_not_dropped(self):
        # zero-length jobs make the span end exactly at the last start
        t = make_trace(
            [[0], [1], [2], [3]],
            job_starts=[0.0, 100.0, 200.0, 300.0],
            job_durations=[0.0, 0.0, 0.0, 0.0],
        )
        epochs = split_epochs(t, 4)
        assert 3 in epochs[-1].job_labels.tolist()
        assert sum(e.n_jobs for e in epochs) == 4

    def test_single_epoch(self, mixed_trace):
        (only,) = split_epochs(mixed_trace, 1)
        assert only.n_jobs == mixed_trace.n_jobs

    def test_generated_trace_partition(self, tiny_trace):
        epochs = split_epochs(tiny_trace, 5)
        assert sum(e.n_jobs for e in epochs) == tiny_trace.n_jobs

    def test_zero_epochs(self, mixed_trace):
        with pytest.raises(ValueError):
            split_epochs(mixed_trace, 0)
