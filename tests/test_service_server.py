"""End-to-end tests: daemon, clients, load generator, graceful shutdown.

Everything runs in-process — the server binds an ephemeral port on
loopback and the clients connect to it for real, so the wire protocol,
backpressure plumbing and shutdown paths are all exercised; only process
boundaries are skipped (covered by the CLI smoke test below via a
background thread running the blocking client).
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.core.identify import find_filecules
from repro.service import (
    AsyncServiceClient,
    FileculeServer,
    ServiceClient,
    ServiceError,
    ServiceState,
    jobs_from_trace,
    run_load,
)
from repro.service.state import partition_checksum
from repro.workload.calibration import tiny_config
from repro.workload.generator import generate_trace


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(tiny_config(), seed=42)


def offline_checksum(trace):
    return partition_checksum(
        fc.file_ids.tolist() for fc in find_filecules(trace)
    )


def run(coro):
    return asyncio.run(coro)


async def _with_server(state, fn, **server_kwargs):
    """Start a server, run ``fn(server)``, always stop the server."""
    server = FileculeServer(state, **server_kwargs)
    await server.start()
    try:
        return await fn(server)
    finally:
        await server.stop()


class TestProtocolOverTheWire:
    def test_ping_ingest_query_stats(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                assert (await client.ping())["pong"] is True
                receipt = await client.ingest([1, 2, 3], sizes=[10, 10, 10])
                assert receipt == {
                    "job_seq": 1,
                    "n_files": 3,
                    "n_classes": 1,
                    "site_hits": 0,
                }
                await client.ingest([2, 3])
                info = await client.filecule_of(2)
                assert info["filecule"]["files"] == [2, 3]
                assert info["filecule"]["requests"] == 2
                none = await client.filecule_of(999)
                assert none["filecule"] is None
                stats = await client.stats()
                assert stats["n_classes"] == 2
                assert stats["server"]["counters"]["requests"] >= 5

        run(_with_server(ServiceState(), scenario))

    def test_errors_are_typed_and_connection_survives(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"this is not json\n")
            writer.write(b'{"op": "launch-missiles"}\n')
            writer.write(b'{"v": 31, "op": "ping"}\n')
            writer.write(b'{"op": "ping"}\n')  # still served afterwards
            await writer.drain()
            codes = []
            for _ in range(3):
                codes.append(
                    json.loads(await reader.readline())["error"]["code"]
                )
            assert codes == ["bad-request", "unknown-op", "unsupported-version"]
            last = json.loads(await reader.readline())
            assert last["ok"] and last["result"]["pong"]
            writer.close()
            await writer.wait_closed()

        run(_with_server(ServiceState(), scenario))

    def test_pipelined_requests_answered_in_order(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            n = 300  # > pending_per_connection: exercises backpressure
            for i in range(n):
                writer.write(
                    json.dumps(
                        {"op": "ingest", "id": i, "files": [i, i + 1]}
                    ).encode()
                    + b"\n"
                )
            await writer.drain()
            for i in range(n):
                response = json.loads(await reader.readline())
                assert response["id"] == i
                assert response["result"]["job_seq"] == i + 1
            writer.close()
            await writer.wait_closed()

        run(_with_server(ServiceState(), scenario))

    def test_sync_client_in_thread(self):
        async def scenario(server):
            def blocking_session():
                with ServiceClient("127.0.0.1", server.port) as client:
                    client.ingest([5, 6], sizes=[2, 2])
                    plan = client.advise([5])
                    assert plan["plan"][0]["prefetch"] == [6]
                    with pytest.raises(ServiceError) as excinfo:
                        client.request("snapshot")  # no path configured
                    assert excinfo.value.code == "bad-request"

            await asyncio.to_thread(blocking_session)

        run(_with_server(ServiceState(), scenario))

    def test_shutdown_op_stops_serve_forever(self):
        state = ServiceState()

        async def scenario():
            server = FileculeServer(state)
            serve_task = asyncio.create_task(server.serve_forever())
            while server._server is None:  # wait for the bind
                await asyncio.sleep(0.01)
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                await client.ingest([1])
                assert (await client.shutdown())["stopping"] is True
            await asyncio.wait_for(serve_task, timeout=10)

        run(scenario())


class TestLoadGeneratorEndToEnd:
    def test_replay_matches_offline_partition(self, tiny_trace):
        """Acceptance demo: replay the synthetic stream through loadgen;
        the served partition equals offline identification."""
        jobs = jobs_from_trace(tiny_trace)

        async def scenario(server):
            report = await run_load(
                "127.0.0.1",
                server.port,
                jobs,
                connections=5,
                advise_every=7,
            )
            assert report.errors == 0
            assert report.jobs == tiny_trace.n_jobs
            assert report.requests > tiny_trace.n_jobs  # ingests + advises
            assert report.requests_per_second > 0
            assert set(report.latencies_ms) == {"ingest", "advise"}
            for stats in report.latencies_ms.values():
                assert stats["p50"] <= stats["p99"] <= stats["max"]
            assert (
                report.final_stats["partition_checksum"]
                == offline_checksum(tiny_trace)
            )
            assert report.final_stats["jobs_observed"] == tiny_trace.n_jobs

            # full-partition comparison, not just the checksum
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                served = await client.partition()
            assert sorted(tuple(c["files"]) for c in served["classes"]) == sorted(
                tuple(fc.file_ids.tolist()) for fc in find_filecules(tiny_trace)
            )

        run(_with_server(ServiceState(), scenario))

    def test_paced_replay_respects_target_rate(self, tiny_trace):
        jobs = jobs_from_trace(tiny_trace)[:60]

        async def scenario(server):
            report = await run_load(
                "127.0.0.1",
                server.port,
                jobs,
                connections=3,
                target_rate=400.0,
                fetch_final_stats=False,
            )
            # 60 jobs at 400/s should take ≈ 0.15 s; allow generous slack
            assert report.duration_seconds >= 0.12
            return report

        run(_with_server(ServiceState(), scenario))

    def test_loadgen_rejects_empty_stream(self):
        with pytest.raises(ValueError, match="no jobs"):
            run(run_load("127.0.0.1", 1, []))


class TestServerSnapshotIntegration:
    def test_snapshot_op_and_restart_resumes(self, tiny_trace, tmp_path):
        snap = tmp_path / "svc.jsonl"
        jobs = jobs_from_trace(tiny_trace)
        half = len(jobs) // 2

        async def first_run(server):
            await run_load(
                "127.0.0.1",
                server.port,
                jobs[:half],
                connections=2,
                fetch_final_stats=False,
            )

        run(
            _with_server(
                ServiceState(), first_run, snapshot_path=str(snap)
            )
        )  # stop() writes the final snapshot
        assert snap.exists()

        async def second_run(server):
            await run_load(
                "127.0.0.1",
                server.port,
                jobs[half:],
                connections=2,
                fetch_final_stats=False,
            )
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                return await client.stats()

        stats = run(_with_server(ServiceState.restore(snap), second_run))
        assert stats["jobs_observed"] == len(jobs)
        assert stats["partition_checksum"] == offline_checksum(tiny_trace)

    def test_explicit_snapshot_op(self, tmp_path):
        target = tmp_path / "explicit.jsonl"

        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                await client.ingest([1, 2])
                receipt = await client.snapshot(str(target))
                assert receipt["n_jobs"] == 1

        run(_with_server(ServiceState(), scenario))
        assert target.exists()


class TestCliSmoke:
    def test_main_serve_and_loadgen_threads(self, tmp_path):
        """Drive the real CLI entry points: serve in a thread, loadgen
        + stats against it, then shutdown over the wire."""
        from repro.service.__main__ import main

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        server_thread = threading.Thread(
            target=main,
            args=(
                [
                    "serve",
                    "--port",
                    str(port),
                    "--policy",
                    "lru",
                    "--capacity",
                    "1GB",
                    "--snapshot",
                    str(tmp_path / "cli.jsonl"),
                ],
            ),
            daemon=True,
        )
        server_thread.start()
        # wait for the listener
        for _ in range(100):
            try:
                client = ServiceClient("127.0.0.1", port, timeout=5)
                break
            except OSError:
                time.sleep(0.05)
        else:
            pytest.fail("server did not come up")
        try:
            rc = main(
                [
                    "loadgen",
                    "--port",
                    str(port),
                    "--scale",
                    "tiny",
                    "--seed",
                    "3",
                    "--jobs",
                    "50",
                    "--connections",
                    "2",
                    "--json",
                    str(tmp_path / "load.json"),
                ]
            )
            assert rc == 0
            report = json.loads((tmp_path / "load.json").read_text())
            assert report["jobs"] == 50 and report["errors"] == 0
            assert main(["stats", "--port", str(port)]) == 0
        finally:
            client.shutdown()
            client.close()
            server_thread.join(timeout=15)
        assert not server_thread.is_alive()
        assert (tmp_path / "cli.jsonl").exists()
