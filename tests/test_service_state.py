"""State-layer tests: stream/offline equivalence, advice, crash recovery."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.identify import find_filecules
from repro.core.incremental import IncrementalFileculeIdentifier
from repro.service.state import (
    POLICY_REGISTRY,
    ServiceState,
    SnapshotError,
    partition_checksum,
)
from repro.workload.calibration import tiny_config
from repro.workload.generator import generate_trace
from tests.conftest import make_trace


def offline_groups(trace):
    return sorted(tuple(fc.file_ids.tolist()) for fc in find_filecules(trace))


def state_groups(state):
    return sorted(tuple(c["files"]) for c in state.partition()["classes"])


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(tiny_config(), seed=11)


class TestStreamOfflineEquivalence:
    def test_partition_matches_offline_at_every_checkpoint(self, tiny_trace):
        """The service's streamed partition after N jobs equals offline
        find_filecules on the same N-job prefix (acceptance criterion)."""
        state = ServiceState()
        checkpoints = sorted(
            {1, 7, tiny_trace.n_jobs // 3, tiny_trace.n_jobs}
        )
        for job_id, files in tiny_trace.iter_jobs():
            state.ingest([int(f) for f in files])
            if job_id + 1 in checkpoints:
                prefix = tiny_trace.subset_jobs(
                    np.arange(tiny_trace.n_jobs) < job_id + 1
                )
                assert state_groups(state) == offline_groups(prefix)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 12), min_size=0, max_size=6),
            min_size=1,
            max_size=25,
        )
    )
    def test_property_random_streams(self, jobs):
        state = ServiceState()
        for files in jobs:
            state.ingest(files)
        trace = make_trace([sorted(set(f)) for f in jobs], n_files=13)
        assert state_groups(state) == offline_groups(trace)
        assert state.partition()["checksum"] == partition_checksum(
            offline_groups(trace)
        )

    def test_checksum_ignores_request_counts_but_not_grouping(self):
        assert partition_checksum([[1, 2], [3]]) == partition_checksum(
            [(3,), (2, 1)]
        )
        assert partition_checksum([[1, 2], [3]]) != partition_checksum(
            [[1], [2, 3]]
        )


class TestAdvise:
    def test_hit_fetch_bypass_and_prefetch(self):
        state = ServiceState(policy="lru", capacity_bytes=100)
        # filecule {1,2} (2 jobs), filecule {3} — and 3 is huge
        state.ingest([1, 2], sizes=[10, 10])
        state.ingest([1, 2, 3], sizes=[10, 10, 500])

        plan = state.advise([1], site=0)
        by_class = {tuple(e["files"]): e for e in plan["plan"]}
        entry = by_class[(1,)]
        assert entry["action"] == "hit"  # ingest warmed the site-0 model
        assert entry["prefetch"] == [2]  # co-access prediction

        # same files at a cold site: fetch the whole filecule
        cold = state.advise([1], site=9)
        assert cold["plan"][0]["action"] == "fetch"
        assert cold["plan"][0]["bytes"] == 20
        assert cold["fetch_bytes"] == 20
        assert cold["prefetch_files"] == 1

        # file 3's filecule exceeds capacity: bypass
        over = state.advise([3], site=9)
        assert over["plan"][0]["action"] == "bypass"

    def test_unknown_files_form_provisional_group(self):
        state = ServiceState(capacity_bytes=100)
        plan = state.advise([41, 42], site=0)
        assert plan["plan"][0]["class_id"] is None
        assert plan["plan"][0]["files"] == [41, 42]
        assert plan["plan"][0]["action"] == "fetch"

    def test_advise_is_read_only(self, tiny_trace):
        state = ServiceState()
        for _, files in tiny_trace.iter_jobs():
            state.ingest([int(f) for f in files])
        before = state.partition()
        state.advise([0, 1, 2], site=3)
        assert state.partition() == before
        assert "3" not in state.stats()["sites"]  # no advisor materialized

    def test_ingest_models_site_cache(self):
        state = ServiceState(policy="lru", capacity_bytes=1000)
        state.ingest([1, 2], sizes=[10, 10], site=0)
        receipt = state.ingest([1, 2], sizes=[10, 10], site=0)
        assert receipt["site_hits"] == 2
        stats = state.stats()
        assert stats["sites"]["0"]["requests"] == 4
        assert stats["sites"]["0"]["hits"] == 2
        assert stats["sites"]["0"]["used_bytes"] == 20


class TestStatsAndConfig:
    def test_stats_shape(self, tiny_trace):
        state = ServiceState()
        for _, files in tiny_trace.iter_jobs():
            state.ingest([int(f) for f in files])
        stats = state.stats()
        assert stats["jobs_observed"] == tiny_trace.n_jobs
        assert stats["n_classes"] == len(find_filecules(tiny_trace))
        assert len(stats["top_filecules"]) == min(10, stats["n_classes"])
        requests = [fc["requests"] for fc in stats["top_filecules"]]
        assert requests == sorted(requests, reverse=True)

    def test_every_registered_policy_constructs_and_serves(self):
        for name in POLICY_REGISTRY:
            state = ServiceState(policy=name, capacity_bytes=100)
            state.ingest([1, 2, 3], sizes=[5, 5, 5])
            plan = state.advise([1])
            assert plan["plan"], name

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            ServiceState(policy="clairvoyant")
        with pytest.raises(ValueError, match="capacity"):
            ServiceState(capacity_bytes=0)
        with pytest.raises(ValueError, match="default_size"):
            ServiceState(default_size=0)


class TestSnapshotRestore:
    def _drive(self, state, trace, upto):
        for job_id, files in trace.iter_jobs():
            if job_id >= upto:
                break
            file_list = [int(f) for f in files]
            state.ingest(
                file_list, sizes=[int(trace.file_sizes[f]) for f in file_list]
            )

    def test_crash_recovery_mid_stream(self, tiny_trace, tmp_path):
        """Snapshot mid-stream, 'crash', restore, replay the rest: the
        final partition equals the uninterrupted run's, exactly."""
        half = tiny_trace.n_jobs // 2
        interrupted = ServiceState()
        self._drive(interrupted, tiny_trace, half)
        receipt = interrupted.snapshot(tmp_path / "state.jsonl")
        assert receipt["n_jobs"] == half
        del interrupted  # the crash

        resumed = ServiceState.restore(tmp_path / "state.jsonl")
        for job_id, files in tiny_trace.iter_jobs():
            if job_id < half:
                continue
            file_list = [int(f) for f in files]
            resumed.ingest(
                file_list,
                sizes=[int(tiny_trace.file_sizes[f]) for f in file_list],
            )

        uninterrupted = ServiceState()
        self._drive(uninterrupted, tiny_trace, tiny_trace.n_jobs)
        assert state_groups(resumed) == state_groups(uninterrupted)
        assert state_groups(resumed) == offline_groups(tiny_trace)
        # sizes catalog survived too: advise bytes agree
        assert (
            resumed.advise([0, 1])["fetch_bytes"]
            == uninterrupted.advise([0, 1])["fetch_bytes"]
        )

    def test_restore_preserves_config_and_counters(self, tmp_path):
        state = ServiceState(policy="gds", capacity_bytes=12345, default_size=7)
        state.ingest([1, 2], sizes=[3, 4])
        state.snapshot(tmp_path / "s.jsonl")
        restored = ServiceState.restore(tmp_path / "s.jsonl")
        assert restored.policy_name == "gds"
        assert restored.capacity_bytes == 12345
        assert restored.default_size == 7
        assert restored.stats()["jobs_observed"] == 1
        # advisors are soft state: rebuilt cold
        assert restored.stats()["sites"] == {}

    def test_snapshot_is_jsonl(self, tmp_path):
        state = ServiceState()
        state.ingest([1, 2])
        state.snapshot(tmp_path / "s.jsonl")
        lines = (tmp_path / "s.jsonl").read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert any(r["type"] == "class" for r in records)

    def test_restore_rejects_garbage(self, tmp_path):
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(SnapshotError, match="cannot read"):
            ServiceState.restore(missing)

        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        with pytest.raises(SnapshotError, match="invalid JSON"):
            ServiceState.restore(bad)

        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text('{"type": "meta", "format": "other"}\n')
        with pytest.raises(SnapshotError, match="not a repro-service-snapshot"):
            ServiceState.restore(wrong)

        corrupt = tmp_path / "corrupt.jsonl"
        state = ServiceState()
        state.ingest([1, 2])
        state.snapshot(corrupt)
        lines = corrupt.read_text().splitlines()
        class_line = next(l for l in lines if '"class"' in l)
        corrupt.write_text("\n".join(lines + [class_line]) + "\n")
        with pytest.raises(SnapshotError, match="corrupt partition"):
            ServiceState.restore(corrupt)


class TestIncrementalStateDict:
    def test_roundtrip_through_json(self, tiny_trace):
        ident = IncrementalFileculeIdentifier()
        ident.observe_trace(tiny_trace)
        payload = json.dumps(ident.state_dict())
        clone = IncrementalFileculeIdentifier.from_state_dict(json.loads(payload))
        assert clone.n_jobs_observed == ident.n_jobs_observed
        assert sorted(map(sorted, clone.classes())) == sorted(
            map(sorted, ident.classes())
        )
        for cid in ident.class_ids():
            assert clone.requests_of_class(cid) == ident.requests_of_class(cid)

    def test_validation(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1, 2])
        state = ident.state_dict()
        state["classes"][0]["id"] = 99  # beyond next_class
        with pytest.raises(ValueError, match="next_class"):
            IncrementalFileculeIdentifier.from_state_dict(state)


class TestFileculeOfJson:
    """The memoized read path serves exactly what filecule_of returns."""

    def _dumps(self, obj):
        return json.dumps(obj, separators=(",", ":")).encode()

    def test_matches_dict_api(self):
        state = ServiceState()
        state.ingest([1, 2, 3], sizes=[10, 20, 30])
        state.ingest([2, 3])
        for f in (1, 2, 3):
            assert state.filecule_of_json(f) == self._dumps(
                state.filecule_of(f)
            )

    def test_unknown_file(self):
        state = ServiceState()
        assert state.filecule_of_json(99) == self._dumps(
            {"file": 99, "filecule": None}
        )

    def test_cache_invalidated_by_split(self):
        state = ServiceState()
        state.ingest([1, 2, 3])
        before = state.filecule_of_json(2)
        state.ingest([2, 3])  # splits {1,2,3} -> {1} and {2,3}
        after = state.filecule_of_json(2)
        assert before != after
        assert after == self._dumps(state.filecule_of(2))
        # the shrunken parent class also re-renders
        assert state.filecule_of_json(1) == self._dumps(state.filecule_of(1))

    def test_cache_invalidated_by_request_count(self):
        state = ServiceState()
        state.ingest([1, 2])
        first = state.filecule_of_json(1)
        state.ingest([1, 2])  # same class touched again: requests += 1
        second = state.filecule_of_json(1)
        assert first != second
        assert b'"requests":2' in second

    def test_cache_reused_between_ingests_of_other_classes(self):
        state = ServiceState()
        state.ingest([1, 2])
        state.filecule_of_json(1)
        cached = state._filecule_json.copy()
        state.ingest([10, 11])  # disjoint class: no invalidation
        assert all(state._filecule_json[k] == v for k, v in cached.items())
