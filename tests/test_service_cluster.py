"""Process-level tests: pre-fork cluster, crash recovery, aggregation.

These fork real worker processes that accept on one shared TCP port
(SO_REUSEPORT where available, inherited parent socket otherwise), drive
them through the shared data port, and read them back through their
per-worker admin HTTP ports.  The headline assertion mirrors the
benchmark's equivalence gate: the partition merged across workers has
exactly the offline :func:`find_filecules` checksum — including after a
worker is SIGKILLed mid-run and the supervisor restarts it from its
snapshot.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.core.identify import find_filecules
from repro.service.aggregate import (
    aggregate_partition,
    aggregate_registry,
    aggregate_stats,
    fetch_json,
    worker_ports,
)
from repro.service.cluster import (
    ClusterConfig,
    ClusterServer,
    pick_free_port_block,
)
from repro.service.client import ServiceClient
from repro.service.loadgen import jobs_from_trace
from repro.service.state import partition_checksum
from repro.workload.calibration import tiny_config
from repro.workload.generator import generate_trace

pytestmark = pytest.mark.skipif(
    os.name != "posix"
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="pre-fork cluster needs POSIX fork",
)


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(tiny_config(), seed=23)


@pytest.fixture(scope="module")
def tiny_jobs(tiny_trace):
    return jobs_from_trace(tiny_trace)


def offline_checksum(trace):
    return partition_checksum(
        fc.file_ids.tolist() for fc in find_filecules(trace)
    )


def replay_jobs(port, jobs, batch=32):
    """Pipelined replay through the shared data port."""
    with ServiceClient("127.0.0.1", port) as client:
        for start in range(0, len(jobs), batch):
            client.pipeline(
                [
                    (
                        "ingest",
                        {
                            "files": job["files"],
                            "sizes": job["sizes"],
                            "site": job["site"],
                        },
                    )
                    for job in jobs[start : start + batch]
                ]
            )


def make_config(workers, tmp_path=None, **overrides):
    kwargs = dict(
        workers=workers,
        metrics_port=pick_free_port_block("127.0.0.1", workers),
        log_interval=None,
    )
    if tmp_path is not None:
        kwargs["snapshot_path"] = str(tmp_path / "cluster.jsonl")
    kwargs.update(overrides)
    return ClusterConfig(**kwargs)


class TestClusterEndToEnd:
    def test_partition_merged_across_workers_matches_offline(
        self, tiny_trace, tiny_jobs
    ):
        config = make_config(workers=2, shards=2)
        with ClusterServer(config) as cluster:
            replay_jobs(cluster.port, tiny_jobs)
            ports = worker_ports(config.metrics_port, 2)
            merged = aggregate_partition("127.0.0.1", ports)
            stats = aggregate_stats("127.0.0.1", ports)
        assert merged["checksum"] == offline_checksum(tiny_trace)
        assert stats["partition_checksum"] == merged["checksum"]
        assert stats["jobs_observed"] == len(tiny_jobs)
        assert len(stats["workers"]) == 2

    def test_per_worker_admin_endpoints(self, tiny_jobs):
        config = make_config(workers=2)
        with ClusterServer(config) as cluster:
            replay_jobs(cluster.port, tiny_jobs[:40])
            ports = worker_ports(config.metrics_port, 2)
            total_requests = 0
            for index, port in enumerate(ports):
                health = fetch_json("127.0.0.1", port, "/healthz")
                assert health["ok"] is True
                assert health["worker"] == index
                registry = fetch_json("127.0.0.1", port, "/registry")
                counters = dict(
                    ((name, tuple(map(tuple, labels))), value)
                    for name, labels, value in registry["counters"]
                )
                total_requests += counters.get(("requests", ()), 0)
            # The kernel decides the split, but nothing may be lost:
            # every data-port request was counted by exactly one worker.
            assert total_requests >= 40
            merged = aggregate_registry("127.0.0.1", ports)
            assert merged.get("requests") == total_requests

    def test_worker_pids_are_distinct_processes(self):
        config = make_config(workers=2)
        with ClusterServer(config) as cluster:
            pids = cluster.pids()
            assert len(pids) == 2
            assert len(set(pids.values())) == 2
            assert os.getpid() not in pids.values()

    def test_graceful_stop_writes_final_snapshots(self, tiny_jobs, tmp_path):
        config = make_config(workers=2, tmp_path=tmp_path)
        with ClusterServer(config) as cluster:
            replay_jobs(cluster.port, tiny_jobs[:50])
        for index in range(2):
            assert os.path.exists(config.worker_snapshot_path(index))


class TestCrashRecovery:
    def test_sigkill_worker_restart_restores_partition(
        self, tiny_trace, tiny_jobs, tmp_path
    ):
        """Kill a worker between snapshots; the cluster still converges.

        Phase 1 ingests half the stream and snapshots every worker (so
        nothing is in flight and nothing post-snapshot is lost); then one
        worker is SIGKILLed.  The supervisor restarts it from its
        snapshot, phase 2 ingests the rest, and the merged partition must
        equal the offline answer over the whole trace.
        """
        config = make_config(workers=2, shards=2, tmp_path=tmp_path)
        half = len(tiny_jobs) // 2
        with ClusterServer(config) as cluster:
            replay_jobs(cluster.port, tiny_jobs[:half])
            ports = worker_ports(config.metrics_port, 2)
            for port in ports:
                receipt = fetch_json("127.0.0.1", port, "/snapshot")
                assert receipt["ok"] is True

            victim = cluster.workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.process.join(timeout=10.0)
            assert victim.process.exitcode is not None

            # One supervision step notices the crash and restarts the
            # worker with restore=True from its snapshot.
            assert cluster.supervise_once() is True
            assert cluster.restarts == 1
            replacement = cluster.workers[0]
            assert replacement.pid != victim.pid
            health = fetch_json("127.0.0.1", ports[0], "/healthz")
            assert health["ok"] is True

            replay_jobs(cluster.port, tiny_jobs[half:])
            merged = aggregate_partition("127.0.0.1", ports)
            stats = aggregate_stats("127.0.0.1", ports)

        assert stats["jobs_observed"] == len(tiny_jobs)
        assert merged["checksum"] == offline_checksum(tiny_trace)

    def test_clean_exit_stops_cluster(self, tiny_jobs):
        config = make_config(workers=2)
        with ClusterServer(config) as cluster:
            with ServiceClient("127.0.0.1", cluster.port) as client:
                client.shutdown()
            # The worker that handled the op exits cleanly (code 0);
            # the supervisor turns that into a coordinated stop.
            deadline = time.monotonic() + 10.0
            stopped = False
            while time.monotonic() < deadline:
                if not cluster.supervise_once():
                    stopped = True
                    break
                time.sleep(0.05)
            assert stopped
