"""Unit tests for workload samplers."""

import numpy as np
import pytest

from repro.workload.distributions import (
    bounded_lognormal,
    bounded_pareto,
    daily_rate_profile,
    flattened_zipf_weights,
    sample_categorical,
)


class TestBoundedPareto:
    def test_within_bounds(self):
        x = bounded_pareto(0, alpha=1.2, lo=1.0, hi=100.0, size=10_000)
        assert x.min() >= 1.0
        assert x.max() <= 100.0

    def test_heavy_tail_present(self):
        x = bounded_pareto(0, alpha=1.0, lo=1.0, hi=1e6, size=50_000)
        assert np.quantile(x, 0.99) > 20 * np.median(x)

    def test_deterministic(self):
        a = bounded_pareto(5, 1.5, 1, 10, size=10)
        b = bounded_pareto(5, 1.5, 1, 10, size=10)
        np.testing.assert_array_equal(a, b)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            bounded_pareto(0, alpha=0, lo=1, hi=2)
        with pytest.raises(ValueError):
            bounded_pareto(0, alpha=1, lo=5, hi=2)
        with pytest.raises(ValueError):
            bounded_pareto(0, alpha=1, lo=0, hi=2)


class TestBoundedLognormal:
    def test_mean_hit(self):
        x = bounded_lognormal(0, mean=100.0, sigma=0.5, lo=1, hi=10_000, size=200_000)
        assert x.mean() == pytest.approx(100.0, rel=0.05)

    def test_clipping(self):
        x = bounded_lognormal(0, mean=10.0, sigma=2.0, lo=5.0, hi=20.0, size=1000)
        assert x.min() >= 5.0 and x.max() <= 20.0

    def test_zero_sigma_like_constant(self):
        x = bounded_lognormal(0, mean=7.0, sigma=1e-9, lo=1, hi=100, size=10)
        np.testing.assert_allclose(x, 7.0, rtol=1e-5)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            bounded_lognormal(0, mean=-1, sigma=1, lo=1, hi=2)
        with pytest.raises(ValueError):
            bounded_lognormal(0, mean=1, sigma=1, lo=3, hi=2)


class TestFlattenedZipf:
    def test_normalized_and_decreasing(self):
        w = flattened_zipf_weights(100, alpha=1.0, uniform_floor=0.2)
        assert w.sum() == pytest.approx(1.0)
        assert all(w[i] >= w[i + 1] for i in range(99))

    def test_floor_flattens(self):
        pure = flattened_zipf_weights(100, 1.0, uniform_floor=0.0)
        flat = flattened_zipf_weights(100, 1.0, uniform_floor=5.0)
        assert flat[0] / flat[-1] < pure[0] / pure[-1]

    def test_alpha_zero_uniform(self):
        w = flattened_zipf_weights(10, alpha=0.0)
        np.testing.assert_allclose(w, 0.1)

    def test_bad_params(self):
        with pytest.raises(ValueError):
            flattened_zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            flattened_zipf_weights(10, -1.0)


class TestSampleCategorical:
    def test_respects_weights(self):
        idx = sample_categorical(0, np.array([0.0, 1.0, 0.0]), 100)
        assert set(idx.tolist()) == {1}

    def test_distribution_roughly_proportional(self):
        idx = sample_categorical(0, np.array([1.0, 3.0]), 100_000)
        frac = (idx == 1).mean()
        assert frac == pytest.approx(0.75, abs=0.01)

    def test_unnormalized_ok(self):
        idx = sample_categorical(1, np.array([10, 30, 60]), 10)
        assert idx.min() >= 0 and idx.max() <= 2

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            sample_categorical(0, np.array([]), 1)
        with pytest.raises(ValueError):
            sample_categorical(0, np.array([-1.0, 2.0]), 1)
        with pytest.raises(ValueError):
            sample_categorical(0, np.array([0.0, 0.0]), 1)


class TestDailyRateProfile:
    def test_normalized(self):
        p = daily_rate_profile(0, 820)
        assert p.sum() == pytest.approx(1.0)
        assert p.min() >= 0

    def test_weekend_dip_on_average(self):
        p = daily_rate_profile(0, 7 * 200, burst_prob=0.0, noise_sigma=0.0)
        days = np.arange(len(p))
        weekday_mean = p[days % 7 < 5].mean()
        weekend_mean = p[days % 7 >= 5].mean()
        assert weekend_mean < weekday_mean

    def test_ramp(self):
        p = daily_rate_profile(0, 400, ramp=3.0, burst_prob=0.0, noise_sigma=0.0, weekly_dip=0.0)
        assert p[-50:].mean() > 2.0 * p[:50].mean()

    def test_bad_params(self):
        with pytest.raises(ValueError):
            daily_rate_profile(0, 0)
        with pytest.raises(ValueError):
            daily_rate_profile(0, 10, ramp=0.0)
