"""Site-sharded service state: routing, §6 merge exactness, snapshots.

The load-bearing invariant (paper §6): because every job is ingested
whole at exactly one shard, the meet of the per-shard partitions equals
the partition a single observer of the full stream would identify — and
the merged per-class request counts are exact, not upper bounds.  The
tests here replay real generated traces through :class:`ShardedServiceState`
at several shard counts and compare checksums against the offline
:func:`find_filecules` answer.
"""

import json

import pytest

from repro.core.identify import find_filecules
from repro.service.shard import (
    ShardedServiceState,
    merge_partition_payloads,
    restore_state,
    shard_of_site,
)
from repro.service.state import ServiceState, partition_checksum
from repro.workload.calibration import tiny_config
from repro.workload.generator import generate_trace


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(tiny_config(), seed=11)


def offline_checksum(trace):
    return partition_checksum(
        fc.file_ids.tolist() for fc in find_filecules(trace)
    )


def replay(state, trace, advise_every=0):
    sites = trace.job_sites
    for job_id, files in trace.iter_jobs():
        file_list = files.tolist()
        site = int(sites[job_id])
        if advise_every and job_id % advise_every == 0:
            state.advise(file_list, site=site)
        state.ingest(
            file_list,
            sizes=[int(trace.file_sizes[f]) for f in file_list],
            site=site,
        )


class TestRouting:
    def test_deterministic(self):
        for site in range(200):
            assert shard_of_site(site, 4) == shard_of_site(site, 4)

    def test_in_range_and_spread(self):
        n = 8
        hits = [0] * n
        for site in range(1000):
            shard = shard_of_site(site, n)
            assert 0 <= shard < n
            hits[shard] += 1
        # Fibonacci hashing spreads consecutive ids well: no empty shard
        # and no shard hoarding more than half the sites.
        assert min(hits) > 0
        assert max(hits) < 500

    def test_single_shard_is_identity(self):
        assert all(shard_of_site(s, 1) == 0 for s in range(50))

    def test_route_request(self):
        state = ShardedServiceState(n_shards=4)
        ingest = {"op": "ingest", "files": [1], "site": 3}
        assert state.route_request(ingest) == shard_of_site(3, 4)
        assert state.route_request({"op": "stats"}) == 0

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardedServiceState(n_shards=0)


class TestMergeExactness:
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
    def test_partition_matches_offline(self, tiny_trace, n_shards):
        state = ShardedServiceState(n_shards=n_shards)
        replay(state, tiny_trace)
        merged = state.partition()
        assert merged["checksum"] == offline_checksum(tiny_trace)
        assert merged["n_shards"] == n_shards

    def test_request_counts_are_exact(self, tiny_trace):
        sharded = ShardedServiceState(n_shards=4)
        single = ServiceState()
        replay(sharded, tiny_trace)
        replay(single, tiny_trace)
        by_files_sharded = {
            tuple(c["files"]): c["requests"]
            for c in sharded.partition()["classes"]
        }
        by_files_single = {
            tuple(c["files"]): c["requests"]
            for c in single.partition()["classes"]
        }
        assert by_files_sharded == by_files_single

    def test_stats_merges_shards(self, tiny_trace):
        state = ShardedServiceState(n_shards=3)
        replay(state, tiny_trace, advise_every=5)
        stats = state.stats()
        assert stats["jobs_observed"] == tiny_trace.n_jobs
        assert stats["partition_checksum"] == offline_checksum(tiny_trace)
        assert len(stats["shards"]) == 3
        assert sum(s["jobs_observed"] for s in stats["shards"]) == (
            tiny_trace.n_jobs
        )
        # Each site routes to exactly one shard, so the union is disjoint.
        assert sum(s["n_sites"] for s in stats["shards"]) == len(
            stats["sites"]
        )

    def test_filecule_of_intersects_shards(self):
        state = ShardedServiceState(n_shards=2)
        # Find two sites on different shards so the same files are
        # observed from both sides of the hash split.
        site_a = 0
        site_b = next(
            s
            for s in range(1, 64)
            if shard_of_site(s, 2) != shard_of_site(site_a, 2)
        )
        state.ingest([1, 2, 3], site=site_a)
        state.ingest([1, 2], site=site_b)
        info = state.filecule_of(1)
        assert info["filecule"]["files"] == [1, 2]
        assert info["filecule"]["requests"] == 2
        assert state.filecule_of(999)["filecule"] is None

    def test_merge_partition_payloads_counts(self):
        a = ServiceState()
        b = ServiceState()
        a.ingest([1, 2, 3])
        a.ingest([1, 2, 3])
        b.ingest([3, 4])
        merged = merge_partition_payloads([a.partition(), b.partition()])
        by_files = {
            tuple(c["files"]): c["requests"] for c in merged["classes"]
        }
        assert by_files == {(1, 2): 2, (3,): 3, (4,): 1}


class TestShardedSnapshot:
    def test_round_trip(self, tiny_trace, tmp_path):
        state = ShardedServiceState(n_shards=3)
        replay(state, tiny_trace, advise_every=7)
        path = tmp_path / "cluster.jsonl"
        receipt = state.snapshot(str(path))
        assert receipt["n_shards"] == 3
        restored = ShardedServiceState.restore(str(path))
        assert restored.n_shards == 3
        assert restored.partition() == state.partition()
        assert (
            restored.stats()["partition_checksum"]
            == state.stats()["partition_checksum"]
        )

    def test_restore_state_sniffs_format(self, tmp_path):
        plain = ServiceState()
        plain.ingest([1, 2])
        plain_path = tmp_path / "plain.jsonl"
        plain.snapshot(str(plain_path))
        assert isinstance(restore_state(str(plain_path)), ServiceState)

        sharded = ShardedServiceState(n_shards=2)
        sharded.ingest([1, 2], site=5)
        sharded_path = tmp_path / "sharded.jsonl"
        sharded.snapshot(str(sharded_path))
        restored = restore_state(str(sharded_path))
        assert isinstance(restored, ShardedServiceState)
        assert restored.n_shards == 2

    def test_manifest_is_json_lines(self, tmp_path):
        state = ShardedServiceState(n_shards=2)
        state.ingest([7, 8], site=1)
        path = tmp_path / "snap.jsonl"
        state.snapshot(str(path))
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "repro-service-sharded-snapshot"
        assert header["n_shards"] == 2

    def test_crash_recovery_from_snapshot(self, tiny_trace, tmp_path):
        """Snapshot mid-stream, 'crash', restore, finish: exact partition.

        The state-level version of what the cluster supervisor does —
        the process-level version lives in ``test_service_cluster.py``.
        """
        jobs = list(tiny_trace.iter_jobs())
        sites = tiny_trace.job_sites
        half = len(jobs) // 2

        state = ShardedServiceState(n_shards=2)
        for job_id, files in jobs[:half]:
            state.ingest(files.tolist(), site=int(sites[job_id]))
        path = tmp_path / "mid.jsonl"
        state.snapshot(str(path))
        del state  # the crash

        recovered = restore_state(str(path))
        for job_id, files in jobs[half:]:
            recovered.ingest(files.tolist(), site=int(sites[job_id]))
        assert recovered.partition()["checksum"] == offline_checksum(
            tiny_trace
        )


class TestMergePayloadEdges:
    """Degenerate inputs for :func:`merge_partition_payloads`."""

    def test_empty_payload_list(self):
        merged = merge_partition_payloads([])
        assert merged == {
            "n_classes": 0,
            "checksum": partition_checksum([]),
            "classes": [],
        }

    def test_all_none_payloads(self):
        merged = merge_partition_payloads([None, None])
        assert merged["n_classes"] == 0
        assert merged["classes"] == []

    def test_none_members_are_skipped(self):
        state = ServiceState()
        state.ingest([0, 1, 2])
        merged = merge_partition_payloads([None, state.partition(), None])
        assert merged["checksum"] == state.partition()["checksum"]

    def test_single_site_payload_is_identity(self):
        """One observer (single site / one shard): merge changes nothing."""
        state = ServiceState()
        state.ingest([0, 1, 2], sizes=[1, 1, 1])
        state.ingest([0, 1])
        state.ingest([5])
        payload = state.partition()
        merged = merge_partition_payloads([payload])
        assert merged["n_classes"] == payload["n_classes"]
        assert merged["checksum"] == payload["checksum"]
        assert [c["files"] for c in merged["classes"]] == [
            c["files"] for c in payload["classes"]
        ]
        assert [c["requests"] for c in merged["classes"]] == [
            c["requests"] for c in payload["classes"]
        ]

    def test_payload_with_no_classes(self):
        empty = ServiceState().partition()
        busy = ServiceState()
        busy.ingest([3, 4])
        merged = merge_partition_payloads([empty, busy.partition()])
        assert merged["checksum"] == busy.partition()["checksum"]
