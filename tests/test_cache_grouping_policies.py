"""Unit tests for the grouping-aware cache policies added beyond the paper:
file-bundle (Otoo-style), learned working-set prefetch (Tait&Duchamp-style)
and the filecule-granularity LFU/GDS variants."""

import numpy as np
import pytest

from repro.cache.bundle import FileBundleCache
from repro.cache.filecule_variants import FileculeGDS, FileculeLFU
from repro.cache.lru import FileLRU
from repro.cache.simulator import simulate
from repro.cache.working_set import WorkingSetPrefetchLRU
from repro.core.identify import find_filecules
from tests.conftest import make_trace


class TestFileBundleCache:
    def test_basic_hit_miss(self):
        p = FileBundleCache(100)
        p.begin_job([1, 2], 0.0)
        assert not p.request(1, 10, 0.0).hit
        assert p.request(1, 10, 0.0).hit

    def test_popular_bundle_members_survive(self):
        p = FileBundleCache(30)
        # bundle A = {1,2} requested three times -> high utility
        for t in (0.0, 1.0, 2.0):
            p.begin_job([1, 2], t)
            p.request(1, 10, t)
            p.request(2, 10, t)
        # one-shot bundle B = {3} then pressure from bundle C = {4}
        p.begin_job([3], 3.0)
        p.request(3, 10, 3.0)
        p.begin_job([4], 4.0)
        p.request(4, 10, 4.0)  # must evict: the one-shot member 3 goes
        assert 1 in p and 2 in p
        assert 3 not in p

    def test_bundle_size_learned_on_first_pass(self):
        p = FileBundleCache(1000)
        p.begin_job([1, 2, 3], 0.0)
        for f in (1, 2, 3):
            p.request(f, 10, 0.0)
        assert p._bundles[np.array([1, 2, 3], dtype=np.int64).tobytes()] == [1, 30]

    def test_empty_job_ok(self):
        p = FileBundleCache(100)
        p.begin_job([], 0.0)
        assert not p.request(1, 10, 0.0).hit

    def test_bypass(self):
        p = FileBundleCache(5)
        p.begin_job([1], 0.0)
        out = p.request(1, 10, 0.0)
        assert out.bypassed and p.used_bytes == 0

    def test_never_worse_than_blind_eviction_on_bundled_trace(self, small_trace):
        cap = max(int(0.02 * small_trace.total_bytes()), 1)
        m_lru = simulate(small_trace, lambda c: FileLRU(c), cap)
        m_bundle = simulate(small_trace, lambda c: FileBundleCache(c), cap)
        assert m_bundle.miss_rate <= m_lru.miss_rate + 0.02


class TestWorkingSetPrefetch:
    def test_learns_group_by_intersection(self):
        p = WorkingSetPrefetchLRU(1000, np.full(10, 10))
        p.begin_job([1, 2, 3], 0.0)
        assert p.predicted_group(1) == {1, 2, 3}
        p.begin_job([1, 2], 1.0)
        assert p.predicted_group(1) == {1, 2}
        assert p.predicted_group(3) == {1, 2, 3}  # 3 unseen since

    def test_prefetches_prediction(self):
        p = WorkingSetPrefetchLRU(1000, np.full(10, 10))
        p.begin_job([1, 2], 0.0)
        out = p.request(1, 10, 0.0)
        assert out.bytes_fetched == 20
        assert 2 in p

    def test_prediction_converges_to_filecule(self):
        jobs = [[0, 1, 2], [0, 1], [0, 1, 3]]
        trace = make_trace(jobs)
        p = WorkingSetPrefetchLRU(1000, trace.file_sizes)
        for job in jobs:
            p.begin_job(job, 0.0)
        partition = find_filecules(trace)
        fc01 = partition.filecule_of(0)
        assert p.predicted_group(0) == set(fc01.file_ids.tolist())

    def test_budget_respected(self):
        p = WorkingSetPrefetchLRU(100, np.full(20, 10), max_prefetch_fraction=0.3)
        p.begin_job(list(range(10)), 0.0)
        out = p.request(0, 10, 0.0)
        assert out.bytes_fetched <= 30

    def test_oversized_group_disables_learning(self):
        p = WorkingSetPrefetchLRU(
            100, np.full(100, 1), max_group_size=5
        )
        p.begin_job(list(range(50)), 0.0)
        assert p.predicted_group(0) == frozenset()

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkingSetPrefetchLRU(10, np.array([1]), max_prefetch_fraction=0)
        with pytest.raises(ValueError):
            WorkingSetPrefetchLRU(10, np.array([1]), max_group_size=0)


@pytest.fixture()
def fc_trace():
    # filecules: {0,1} (jobs 0,2,3), {2} (job 1)
    return make_trace([[0, 1], [2], [0, 1], [0, 1]], file_sizes=[10, 10, 10])


class TestFileculeVariants:
    def test_lfu_keeps_hot_filecule(self, fc_trace):
        partition = find_filecules(fc_trace)
        p = FileculeLFU(20, partition)
        p.request(0, 10, 0.0)  # {0,1} freq 1 (20 bytes fills cache)
        p.request(0, 10, 1.0)  # freq 2
        p.request(2, 10, 2.0)  # {2} freq 1: must evict {0,1}... cap 20
        # {0,1} is 20 bytes; inserting {2} (10) requires evicting {0,1}
        assert 2 in p
        assert p.used_bytes <= 20

    def test_lfu_eviction_order(self, fc_trace):
        partition = find_filecules(fc_trace)
        p = FileculeLFU(30, partition)  # fits both filecules
        p.request(0, 10, 0.0)
        p.request(0, 10, 1.0)
        p.request(2, 10, 2.0)
        # now a hypothetical third filecule would evict {2} (freq 1);
        # simulate pressure by shrinking: request again keeps both
        assert 0 in p and 2 in p

    def test_gds_whole_filecule_semantics(self, fc_trace):
        partition = find_filecules(fc_trace)
        p = FileculeGDS(30, partition)
        out = p.request(0, 10, 0.0)
        assert out.bytes_fetched == 20  # whole filecule
        assert 1 in p
        assert p.request(1, 10, 0.0).hit

    def test_gds_bypass_oversized(self, fc_trace):
        partition = find_filecules(fc_trace)
        p = FileculeGDS(15, partition)
        out = p.request(0, 10, 0.0)
        assert out.bypassed
        assert out.bytes_fetched == 10

    def test_gds_cost_modes(self, fc_trace):
        partition = find_filecules(fc_trace)
        for mode in ("uniform", "files"):
            p = FileculeGDS(30, partition, cost_mode=mode)
            p.request(0, 10, 0.0)
            assert 0 in p
        with pytest.raises(ValueError):
            FileculeGDS(30, partition, cost_mode="bytes")

    def test_unknown_file_rejected(self, fc_trace):
        t = make_trace([[0, 1], [2]], n_files=4, file_sizes=[10, 10, 10, 10])
        partition = find_filecules(t)
        p = FileculeLFU(100, partition)
        with pytest.raises(KeyError):
            p.request(3, 10, 0.0)

    def test_variants_behave_like_lru_family(self, small_trace, small_partition):
        """All filecule policies land in the same miss-rate ballpark."""
        cap = max(int(0.05 * small_trace.total_bytes()), 1)
        from repro.cache.filecule_lru import FileculeLRU

        rates = {}
        for name, factory in {
            "lru": lambda c: FileculeLRU(c, small_partition),
            "lfu": lambda c: FileculeLFU(c, small_partition),
            "gds": lambda c: FileculeGDS(c, small_partition),
        }.items():
            rates[name] = simulate(small_trace, factory, cap).miss_rate
        assert max(rates.values()) - min(rates.values()) < 0.15
