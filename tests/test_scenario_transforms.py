"""Behavioral tests for the scenario transform catalog: determinism,
composition semantics, per-transform effects, and stream equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenario import (
    compose,
    parse_composition,
    scenario_job_stream,
    scenario_names,
)


def _columns(trace):
    """The mutable-by-transforms columns, for bit-identity comparison."""
    return (
        trace.access_jobs,
        trace.access_files,
        trace.job_starts,
        trace.job_ends,
        trace.job_users,
        trace.job_nodes,
        trace.job_tiers,
        trace.job_labels,
    )


def assert_traces_identical(a, b):
    for col_a, col_b in zip(_columns(a), _columns(b)):
        np.testing.assert_array_equal(col_a, col_b)


STRESS = "popularity-drift?strength=0.8+flash-crowd?boost=0.5"


class TestDeterminism:
    @pytest.mark.parametrize("name", scenario_names())
    def test_same_seed_bit_identical(self, tiny_trace, name):
        comp = parse_composition(name)
        assert_traces_identical(
            comp.apply(tiny_trace, seed=7), comp.apply(tiny_trace, seed=7)
        )

    def test_composition_bit_identical(self, tiny_trace):
        comp = parse_composition(STRESS)
        assert_traces_identical(
            comp.apply(tiny_trace, seed=3), comp.apply(tiny_trace, seed=3)
        )

    def test_seed_changes_stochastic_transform(self, tiny_trace):
        comp = parse_composition("popularity-drift?strength=1.0")
        a = comp.apply(tiny_trace, seed=0)
        b = comp.apply(tiny_trace, seed=1)
        assert not np.array_equal(a.access_files, b.access_files)

    def test_input_never_mutated(self, tiny_trace):
        before = [col.copy() for col in _columns(tiny_trace)]
        parse_composition(STRESS).apply(tiny_trace, seed=3)
        for col, saved in zip(_columns(tiny_trace), before):
            np.testing.assert_array_equal(col, saved)


class TestTransforms:
    def test_stationary_is_identity(self, tiny_trace):
        out = parse_composition("stationary").apply(tiny_trace, seed=5)
        assert_traces_identical(out, tiny_trace)

    def test_popularity_drift_keeps_shape(self, tiny_trace):
        out = parse_composition("drift?strength=0.9").apply(tiny_trace, seed=1)
        assert out.n_jobs == tiny_trace.n_jobs
        assert out.n_files == tiny_trace.n_files
        assert not np.array_equal(out.access_files, tiny_trace.access_files)

    def test_phase_shift_preserves_early_jobs(self, tiny_trace):
        out = parse_composition("phase-shift?at=0.5").apply(tiny_trace, seed=0)
        assert out.n_jobs == tiny_trace.n_jobs
        t0, t1 = tiny_trace.time_span()
        cut = t0 + 0.5 * (t1 - t0)
        before = {j: set(f.tolist()) for j, f in tiny_trace.iter_jobs()}
        after = {j: set(f.tolist()) for j, f in out.iter_jobs()}
        changed = 0
        for job in before:
            if tiny_trace.job_starts[job] < cut:
                assert after.get(job, set()) == before[job]
            elif after.get(job, set()) != before[job]:
                changed += 1
        assert changed > 0  # the campaign actually remapped late jobs

    def test_flash_crowd_injects_hot_jobs(self, tiny_trace):
        out = parse_composition(
            "flash-crowd?boost=0.2&at=0.6&width=0.1&files=8"
        ).apply(tiny_trace, seed=2)
        n_new = max(1, round(0.2 * tiny_trace.n_jobs))
        assert out.n_jobs == tiny_trace.n_jobs + n_new
        # Injected jobs carry fresh labels and all read the same 8 files
        # inside the [0.6, 0.7) window.
        injected = np.flatnonzero(
            out.job_labels > tiny_trace.job_labels.max()
        )
        assert len(injected) == n_new
        t0, t1 = tiny_trace.time_span()
        frac = (out.job_starts[injected] - t0) / (t1 - t0)
        assert ((frac >= 0.6) & (frac < 0.7)).all()
        crowd_sets = {
            tuple(files)
            for job, files in out.iter_jobs()
            if job in set(injected.tolist())
        }
        assert len(crowd_sets) == 1
        (hot,) = crowd_sets
        assert len(hot) == 8

    def test_site_outage_moves_placement_only(self, tiny_trace):
        site = int(np.bincount(tiny_trace.job_sites).argmax())
        out = parse_composition(
            f"site-outage?site={site}&at=0.0&duration=1.1"
        ).apply(tiny_trace, seed=4)
        # Access pattern is untouched; every job left the outaged site.
        np.testing.assert_array_equal(out.access_files, tiny_trace.access_files)
        np.testing.assert_array_equal(out.access_jobs, tiny_trace.access_jobs)
        np.testing.assert_array_equal(out.job_starts, tiny_trace.job_starts)
        assert (out.job_sites != site).all()

    def test_scan_flood_injects_strided_scans(self, tiny_trace):
        out = parse_composition(
            "scan-flood?rate=0.1&files=16&stride=3"
        ).apply(tiny_trace, seed=6)
        n_new = max(1, round(0.1 * tiny_trace.n_jobs))
        assert out.n_jobs == tiny_trace.n_jobs + n_new
        injected = set(
            np.flatnonzero(out.job_labels > tiny_trace.job_labels.max()).tolist()
        )
        scans = [
            np.sort(files)
            for job, files in out.iter_jobs()
            if job in injected
        ]
        assert len(scans) == n_new
        expected = {
            tuple(
                np.sort((k * 16 * 3 + 3 * np.arange(16)) % tiny_trace.n_files)
            )
            for k in range(n_new)
        }
        assert {tuple(s) for s in scans} == expected


class TestComposition:
    def test_order_matters(self, tiny_trace):
        ab = compose("drift?strength=0.9", "flash-crowd?boost=0.3")
        ba = compose("flash-crowd?boost=0.3", "drift?strength=0.9")
        a = ab.apply(tiny_trace, seed=1)
        b = ba.apply(tiny_trace, seed=1)
        assert a.n_jobs == b.n_jobs  # same injection count either way
        assert not np.array_equal(a.access_files, b.access_files)

    def test_both_orders_produce_valid_traces(self, tiny_trace):
        for order in (
            ("scan-flood", "site-outage", "phase-shift"),
            ("phase-shift", "site-outage", "scan-flood"),
        ):
            out = compose(*order).apply(tiny_trace, seed=9)
            # The Trace constructor re-validates invariants; reaching
            # here means the stack composed cleanly.
            assert out.n_jobs >= tiny_trace.n_jobs
            assert np.diff(out.job_starts).min() >= 0.0


class TestStream:
    def test_stream_matches_offline_apply(self, tiny_trace):
        world = parse_composition(STRESS).apply(tiny_trace, seed=7)
        events = list(scenario_job_stream(tiny_trace, STRESS, seed=7))
        assert len(events) == world.n_jobs
        for (job_id, files), event in zip(world.iter_jobs(), events):
            assert event["files"] == files.tolist()
            assert event["site"] == int(world.job_sites[job_id])
            assert event["start"] == float(world.job_starts[job_id])
            assert event["sizes"] == [
                int(world.file_sizes[f]) for f in files
            ]

    def test_stream_event_shape(self, tiny_trace):
        event = next(scenario_job_stream(tiny_trace, "stationary"))
        assert sorted(event) == ["files", "site", "sizes", "start"]
