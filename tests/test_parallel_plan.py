"""Sweep dispatch planning and the auto-serial fallback.

:func:`repro.parallel.plan_sweep` decides whether a grid is worth a
process pool and how cells batch into worker chunks; ``sweep(jobs=N)``
consults it so ``--jobs`` is a ceiling, never a demand to go slower.
These tests pin the decision table, the env knobs, the chunk
arithmetic, and that the fallback is observably equivalent to the pool
path (same results, same error wrapping, same progress output).
"""

from __future__ import annotations

import io

import pytest

from repro.cache.lru import FileLRU
from repro.cache.simulator import sweep
from repro.obs.instrument import (
    MultiInstrumentation,
    ProgressReporter,
    SimStats,
)
from repro.parallel import (
    DEFAULT_MIN_ACCESSES,
    MIN_CHUNK_ACCESSES,
    SweepCellError,
    min_parallel_accesses,
    plan_sweep,
)


# ----------------------------------------------------------------------
# plan_sweep decision table
# ----------------------------------------------------------------------


def test_jobs_one_is_always_serial():
    plan = plan_sweep(100, 10**9, 1, cpus=64)
    assert not plan.use_parallel
    assert plan.reason == "jobs=1 requested"


def test_small_grid_goes_serial_even_with_cpus():
    plan = plan_sweep(14, 5_000, 4, cpus=8)
    assert not plan.use_parallel
    assert "grid too small" in plan.reason
    assert plan.total_accesses == 14 * 5_000


def test_large_grid_uses_pool():
    per_cell = DEFAULT_MIN_ACCESSES  # one cell alone clears the bar
    plan = plan_sweep(14, per_cell, 4, cpus=8)
    assert plan.use_parallel
    assert plan.workers == 4


def test_one_cpu_means_serial():
    plan = plan_sweep(14, 10**9, 8, cpus=1)
    assert not plan.use_parallel
    assert "one worker" in plan.reason


def test_oversubscribe_skips_cpu_clamp():
    plan = plan_sweep(14, 10**9, 8, cpus=1, oversubscribe=True)
    assert plan.use_parallel
    assert plan.workers == 8


def test_workers_clamped_to_cells():
    plan = plan_sweep(3, 10**9, 16, cpus=32)
    assert plan.workers == 3


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        plan_sweep(0, 1000, 2)
    with pytest.raises(ValueError):
        plan_sweep(5, 1000, 0)


# ----------------------------------------------------------------------
# chunking arithmetic
# ----------------------------------------------------------------------


def test_tiny_cells_are_batched_into_chunks():
    # 1k-access cells: ~263 cells would fit MIN_CHUNK_ACCESSES, but the
    # per-worker ceiling keeps every worker busy.
    plan = plan_sweep(1000, 1_000, 4, cpus=8, oversubscribe=True)
    want = -(-MIN_CHUNK_ACCESSES // 1_000)
    per_worker = -(-1000 // plan.workers)
    assert plan.cells_per_chunk == min(want, per_worker)
    assert plan.n_chunks == -(-1000 // plan.cells_per_chunk)


def test_big_cells_get_one_chunk_each():
    plan = plan_sweep(14, 13_000_000, 4, cpus=8)
    assert plan.cells_per_chunk == 1
    assert plan.n_chunks == 14


def test_chunks_cover_all_cells():
    for n_cells in (1, 2, 7, 14, 99, 1000):
        for per_cell in (1, 100, 5_000, 13_000_000):
            plan = plan_sweep(n_cells, per_cell, 4, cpus=8)
            covered = plan.n_chunks * plan.cells_per_chunk
            assert covered >= n_cells
            # the last chunk is the only one allowed to be short
            assert (plan.n_chunks - 1) * plan.cells_per_chunk < n_cells


# ----------------------------------------------------------------------
# env knobs
# ----------------------------------------------------------------------


def test_min_accesses_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ACCESSES", "10")
    assert min_parallel_accesses() == 10
    plan = plan_sweep(14, 5_000, 4, cpus=8)
    assert plan.use_parallel


def test_min_accesses_env_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_MIN_ACCESSES", "soon")
    with pytest.raises(ValueError, match="REPRO_PARALLEL_MIN_ACCESSES"):
        min_parallel_accesses()


def test_force_env_overrides_everything(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL_FORCE", "1")
    plan = plan_sweep(2, 10, 4, cpus=1)
    assert plan.use_parallel
    assert plan.reason == "REPRO_PARALLEL_FORCE=1"
    # jobs=1 still means serial, forced or not
    assert not plan_sweep(2, 10, 1, cpus=1).use_parallel


# ----------------------------------------------------------------------
# auto-serial fallback through sweep(jobs=N)
# ----------------------------------------------------------------------


def test_auto_serial_matches_serial(tiny_trace, monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL_FORCE", raising=False)
    caps = [tiny_trace.total_bytes() // 50, tiny_trace.total_bytes() // 5]
    factories = {"file-lru": lambda c: FileLRU(c)}
    serial = sweep(tiny_trace, factories, caps)
    # a tiny grid: the planner must refuse the pool and fall back
    auto = sweep(tiny_trace, factories, caps, jobs=4)
    assert auto.capacities == serial.capacities
    assert auto.metrics == serial.metrics


def test_auto_serial_wraps_cell_failures(tiny_trace, monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL_FORCE", raising=False)

    class Boom(FileLRU):
        def batch_kernel(self, trace):
            return None  # force the per-access path so request() runs

        def request(self, file_id, size, now):
            raise RuntimeError("kaput")

    caps = [10**9]
    with pytest.raises(SweepCellError) as err:
        sweep(tiny_trace, {"boom": lambda c: Boom(c)}, caps, jobs=2)
    assert err.value.policy == "boom"
    assert err.value.capacity == caps[0]


def test_auto_serial_keeps_instrumentation(tiny_trace, monkeypatch):
    """The fallback runs the same instrumented serial loop: SimStats sees
    every access and ProgressReporter writes the same labelled lines the
    pool's forwarded printer would."""
    monkeypatch.delenv("REPRO_PARALLEL_FORCE", raising=False)
    stats = SimStats()
    stream = io.StringIO()
    reporter = ProgressReporter(
        label="ptest", stream=stream, progress_every=1000, min_interval_s=0.0
    )
    caps = [tiny_trace.total_bytes() // 10]
    sweep(
        tiny_trace,
        {"file-lru": lambda c: FileLRU(c)},
        caps,
        instrumentation=MultiInstrumentation(stats, reporter),
        jobs=4,
    )
    assert stats.accesses == tiny_trace.n_accesses
    out = stream.getvalue()
    assert "[ptest file-lru@" in out


def test_auto_serial_rejects_unsupported_instrumentation(tiny_trace):
    """Hook validation happens before the fallback decision: a custom
    per-access hook fails at jobs=2 whether or not a pool would run."""
    from repro.obs.instrument import Instrumentation

    class Custom(Instrumentation):
        pass

    with pytest.raises(ValueError, match="unsupported instrumentation"):
        sweep(
            tiny_trace,
            {"file-lru": lambda c: FileLRU(c)},
            [10**9],
            instrumentation=Custom(),
            jobs=2,
        )
