"""Structured logging: record shape, levels, rid auto-attachment."""

import io
import json

import pytest

from repro.obs import log as obslog
from repro.obs import trace


@pytest.fixture()
def sink():
    """Capture records in a StringIO; restore defaults afterwards."""
    stream = io.StringIO()
    obslog.configure(stream=stream, min_level="debug")
    yield stream
    obslog.configure(stream=None, min_level="info")


def records(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestRecordShape:
    def test_single_json_line_with_required_keys(self, sink):
        obslog.get_logger("repro.test").info("serving", host="h", port=7401)
        (rec,) = records(sink)
        assert rec["level"] == "info"
        assert rec["logger"] == "repro.test"
        assert rec["event"] == "serving"
        assert rec["host"] == "h" and rec["port"] == 7401
        assert isinstance(rec["ts"], float)
        assert "rid" not in rec

    def test_non_serializable_fields_stringified(self, sink):
        obslog.get_logger("t").info("path", path=object())
        (rec,) = records(sink)
        assert isinstance(rec["path"], str)

    def test_rid_auto_attached_from_context(self, sink):
        logger = obslog.get_logger("t")
        with trace.bind_rid("req-42"):
            logger.info("inside")
        logger.info("outside")
        inside, outside = records(sink)
        assert inside["rid"] == "req-42"
        assert "rid" not in outside


class TestLevels:
    def test_threshold_filters(self, sink):
        obslog.configure(stream=sink, min_level="warning")
        logger = obslog.get_logger("t")
        logger.debug("d")
        logger.info("i")
        logger.warning("w")
        logger.error("e")
        assert [r["event"] for r in records(sink)] == ["w", "e"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obslog.configure(min_level="verbose")

    def test_all_convenience_methods(self, sink):
        logger = obslog.get_logger("t")
        logger.debug("a")
        logger.info("b")
        logger.warning("c")
        logger.error("d")
        assert [r["level"] for r in records(sink)] == [
            "debug",
            "info",
            "warning",
            "error",
        ]


class TestGetLogger:
    def test_cached_by_name(self):
        assert obslog.get_logger("x") is obslog.get_logger("x")
        assert obslog.get_logger("x") is not obslog.get_logger("y")
