"""Unit tests for trace statistics (Tables 1-2, Figures 1-3 data)."""

import numpy as np
import pytest

from repro.traces.records import TIER_OTHER, TIER_RECONSTRUCTED, TIER_THUMBNAIL
from repro.traces.stats import (
    daily_activity,
    domain_table,
    file_size_distribution,
    files_per_job_distribution,
    summarize,
    tier_table,
)
from repro.util.timeutil import SECONDS_PER_DAY
from tests.conftest import make_trace


@pytest.fixture()
def stats_trace():
    return make_trace(
        [[0, 1], [2], [], [0, 1, 2]],
        file_sizes=[100, 200, 400],
        job_tiers=[
            TIER_RECONSTRUCTED,
            TIER_THUMBNAIL,
            TIER_OTHER,
            TIER_RECONSTRUCTED,
        ],
        job_users=[0, 1, 1, 0],
        n_users=2,
        job_starts=[0.0, SECONDS_PER_DAY + 5.0, SECONDS_PER_DAY + 6.0, 3 * SECONDS_PER_DAY],
        job_durations=[3600.0, 7200.0, 3600.0, 3600.0],
    )


class TestSummarize:
    def test_counts(self, stats_trace):
        s = summarize(stats_trace)
        assert s.n_jobs == 4
        assert s.n_jobs_with_files == 3
        assert s.n_users == 2
        assert s.n_files_accessed == 3
        assert s.n_accesses == 6
        assert s.total_bytes_accessed == 700
        assert s.mean_files_per_job == pytest.approx(2.0)

    def test_str_smoke(self, stats_trace):
        assert "jobs" in str(summarize(stats_trace))

    def test_empty(self):
        s = summarize(make_trace([], n_files=0))
        assert s.n_jobs == 0
        assert s.mean_files_per_job == 0.0


class TestTierTable:
    def test_rows(self, stats_trace):
        rows = {r["tier"]: r for r in tier_table(stats_trace)}
        recon = rows["Reconstructed"]
        assert recon["jobs"] == 2
        assert recon["users"] == 1
        assert recon["files"] == 3
        assert recon["input_mb"] == pytest.approx((300 + 700) / 2 / (1024 * 1024))
        assert recon["hours"] == pytest.approx(1.0)
        other = rows["Other"]
        assert other["files"] is None
        assert other["input_mb"] is None
        assert rows["All"]["jobs"] == 4

    def test_empty_tier(self, stats_trace):
        rows = {r["tier"]: r for r in tier_table(stats_trace)}
        assert rows["Root-tuple"]["jobs"] == 0
        assert rows["Root-tuple"]["hours"] is None


class TestDomainTable:
    def test_rows_sorted_and_counted(self):
        t = make_trace(
            [[0], [1], [2]],
            job_nodes=[0, 1, 1],
            node_sites=[0, 1],
            node_domains=[0, 1],
            site_names=["s0", "s1"],
            domain_names=[".gov", ".de"],
        )
        rows = domain_table(t)
        assert rows[0]["domain"] == ".de"
        assert rows[0]["jobs"] == 2
        assert rows[1]["jobs"] == 1

    def test_filecule_counter_hook(self, stats_trace):
        rows = domain_table(stats_trace, filecule_counter=lambda sub: 42)
        assert rows[0]["filecules"] == 42

    def test_without_counter(self, stats_trace):
        assert domain_table(stats_trace)[0]["filecules"] is None


class TestDistributions:
    def test_files_per_job_excludes_untraced(self, stats_trace):
        values, counts = files_per_job_distribution(stats_trace)
        assert values.tolist() == [1, 2, 3]
        assert counts.tolist() == [1, 1, 1]

    def test_daily_activity(self, stats_trace):
        days, jobs, requests = daily_activity(stats_trace)
        assert len(days) == 4
        assert jobs.tolist() == [1, 2, 0, 1]
        assert requests.tolist() == [2, 1, 0, 3]

    def test_daily_activity_empty(self):
        days, jobs, requests = daily_activity(make_trace([], n_files=0))
        assert len(days) == 0

    def test_file_size_distribution_accessed_only(self):
        t = make_trace([[0]], n_files=2, file_sizes=[10, 999])
        sizes, counts = file_size_distribution(t)
        assert sizes.tolist() == [10]
        sizes_all, _ = file_size_distribution(t, accessed_only=False)
        assert sizes_all.tolist() == [10, 999]


class TestOnGeneratedTrace:
    def test_summary_consistency(self, tiny_trace):
        s = summarize(tiny_trace)
        assert s.n_jobs == tiny_trace.n_jobs
        assert s.n_accesses == tiny_trace.n_accesses
        assert 0 < s.n_files_accessed <= tiny_trace.n_files

    def test_tier_table_all_row(self, tiny_trace):
        rows = tier_table(tiny_trace)
        assert rows[-1]["tier"] == "All"
        assert rows[-1]["jobs"] == tiny_trace.n_jobs

    def test_domain_jobs_sum(self, tiny_trace):
        rows = domain_table(tiny_trace)
        assert sum(r["jobs"] for r in rows) == tiny_trace.n_jobs
