"""Property-based tests (hypothesis) for core invariants.

Strategies generate random job streams; the properties are the paper's
definitional invariants (§3), the incremental/batch equivalence, the
coarsening theorem (§6), cache occupancy safety, and the concurrency
profile's conservation laws.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.filecule_lru import FileculeLRU
from repro.cache.lru import FileLRU
from repro.cache.simulator import simulate
from repro.core.dynamics import partition_similarity
from repro.core.identify import find_filecules
from repro.core.incremental import IncrementalFileculeIdentifier
from repro.core.partial import identify_per_site, is_coarsening_of
from repro.core.properties import assert_partition_valid
from repro.transfer.concurrency import concurrency_profile
from repro.util.rng import stable_seed
from repro.workload.distributions import (
    bounded_lognormal,
    bounded_pareto,
    flattened_zipf_weights,
    sample_categorical,
)
from repro.workload.generator import _apportion
from tests.conftest import make_trace

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

job_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=14), min_size=1, max_size=8),
    min_size=1,
    max_size=16,
)


def trace_from_jobs(jobs, n_sites=1):
    n_jobs = len(jobs)
    nodes = [j % n_sites for j in range(n_jobs)]
    return make_trace(
        jobs,
        n_files=15,
        job_nodes=nodes,
        node_sites=list(range(n_sites)),
        node_domains=[0] * n_sites,
        site_names=[f"s{i}" for i in range(n_sites)],
    )


# ---------------------------------------------------------------------------
# filecule invariants
# ---------------------------------------------------------------------------


class TestFileculeInvariants:
    @given(job_lists)
    @settings(max_examples=120, deadline=None)
    def test_partition_always_valid(self, jobs):
        trace = trace_from_jobs(jobs)
        assert_partition_valid(trace, find_filecules(trace))

    @given(job_lists)
    @settings(max_examples=120, deadline=None)
    def test_incremental_equals_batch(self, jobs):
        trace = trace_from_jobs(jobs)
        ident = IncrementalFileculeIdentifier()
        for job in jobs:
            ident.observe_job(job)
        batch = sorted(
            tuple(sorted(fc.file_ids.tolist()))
            for fc in find_filecules(trace)
        )
        streaming = sorted(tuple(sorted(c)) for c in ident.classes())
        assert batch == streaming

    @given(job_lists)
    @settings(max_examples=80, deadline=None)
    def test_job_permutation_invariance(self, jobs):
        """The filecule partition is independent of job order."""
        trace_fwd = trace_from_jobs(jobs)
        trace_rev = trace_from_jobs(jobs[::-1])
        groups_fwd = sorted(
            frozenset(fc.file_ids.tolist())
            for fc in find_filecules(trace_fwd)
        )
        groups_rev = sorted(
            frozenset(fc.file_ids.tolist())
            for fc in find_filecules(trace_rev)
        )
        assert groups_fwd == groups_rev

    @given(job_lists, st.integers(min_value=2, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_local_partition_is_coarsening(self, jobs, n_sites):
        trace = trace_from_jobs(jobs, n_sites=n_sites)
        global_p = find_filecules(trace)
        for local in identify_per_site(trace).values():
            assert is_coarsening_of(local, global_p)

    @given(job_lists)
    @settings(max_examples=60, deadline=None)
    def test_self_similarity_is_perfect(self, jobs):
        p = find_filecules(trace_from_jobs(jobs))
        sim = partition_similarity(p, p)
        assert sim.exact_fraction == 1.0
        assert sim.rand_index == 1.0


# ---------------------------------------------------------------------------
# cache safety
# ---------------------------------------------------------------------------


class TestCacheProperties:
    @given(job_lists, st.integers(min_value=1, max_value=40))
    @settings(max_examples=80, deadline=None)
    def test_occupancy_bounded_and_metrics_consistent(self, jobs, capacity):
        trace = trace_from_jobs(jobs)
        metrics = simulate(trace, lambda c: FileLRU(c), capacity)
        assert metrics.requests == trace.n_accesses
        assert 0 <= metrics.hits <= metrics.requests
        assert 0.0 <= metrics.miss_rate <= 1.0
        assert 0.0 <= metrics.byte_miss_rate <= 1.0

    @given(job_lists, st.integers(min_value=1, max_value=40))
    @settings(max_examples=80, deadline=None)
    def test_filecule_lru_never_worse_than_file_lru(self, jobs, capacity):
        """With prefetch accounting, filecule-LRU dominates file-LRU...

        ...on identical-content grounds: every filecule load is exactly the
        set of files file-LRU would load for the same job, so hits can only
        be gained.  (Not a theorem for adversarial non-co-accessed traces;
        here traces are genuine job streams, where it holds.)
        """
        trace = trace_from_jobs(jobs)
        partition = find_filecules(trace)
        m_file = simulate(trace, lambda c: FileLRU(c), capacity)
        m_cule = simulate(
            trace, lambda c: FileculeLRU(c, partition), capacity
        )
        assert m_cule.hits >= m_file.hits - len(jobs)  # slack for bypasses

    @given(job_lists, st.integers(min_value=15, max_value=60))
    @settings(max_examples=60, deadline=None)
    def test_conservative_equivalence(self, jobs, capacity):
        """Holds whenever no filecule bypasses the cache: capacity >= 15
        covers the worst case (files are 1 byte, at most 15 files)."""
        trace = trace_from_jobs(jobs)
        partition = find_filecules(trace)
        m_file = simulate(trace, lambda c: FileLRU(c), capacity)
        m_cons = simulate(
            trace,
            lambda c: FileculeLRU(c, partition, intra_job_hits=False),
            capacity,
        )
        assert m_cons.hits == m_file.hits


# ---------------------------------------------------------------------------
# concurrency profile conservation
# ---------------------------------------------------------------------------

interval_lists = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=50, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


class TestConcurrencyProperties:
    @given(interval_lists)
    @settings(max_examples=120, deadline=None)
    def test_mass_conservation(self, raw):
        """Integral of the profile equals the summed interval lengths."""
        intervals = [(a, a + d) for a, d in raw]
        p = concurrency_profile(intervals)
        total_mass = float((p.counts[:-1] * np.diff(p.times)).sum())
        expected = sum(d for _, d in raw)
        assert total_mass == pytest.approx(expected, rel=1e-9, abs=1e-9)

    @given(interval_lists)
    @settings(max_examples=120, deadline=None)
    def test_max_bounded_by_interval_count(self, raw):
        intervals = [(a, a + d) for a, d in raw]
        p = concurrency_profile(intervals)
        assert 1 <= p.max_concurrency <= len(intervals)
        assert p.counts.min() >= 0


# ---------------------------------------------------------------------------
# samplers
# ---------------------------------------------------------------------------


class TestSamplerProperties:
    @given(
        st.floats(min_value=0.2, max_value=3.0),
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=1.0, max_value=100.0),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded_pareto_in_bounds(self, alpha, lo, span, seed):
        x = bounded_pareto(seed, alpha, lo, lo + span, size=64)
        assert np.all(x >= lo - 1e-12)
        assert np.all(x <= lo + span + 1e-9)

    @given(
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=0.01, max_value=3.0),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded_lognormal_in_bounds(self, mean, sigma, seed):
        lo, hi = mean / 100.0, mean * 100.0
        x = bounded_lognormal(seed, mean, sigma, lo, hi, size=64)
        assert np.all(x >= lo) and np.all(x <= hi)

    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=3.0),
        st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_zipf_weights_normalized_decreasing(self, n, alpha, floor):
        w = flattened_zipf_weights(n, alpha, floor)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) <= 1e-15)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=20
        ).filter(lambda ws: sum(ws) > 0),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_categorical_only_positive_weights(self, weights, seed):
        idx = sample_categorical(seed, np.array(weights), 32)
        assert np.all(np.asarray(weights)[idx] > 0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=12
        ).filter(lambda ws: sum(ws) > 0),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_apportion_conserves_total(self, weights, total):
        shares = _apportion(np.array(weights), total)
        assert shares.sum() == total
        assert np.all(shares >= 0)
        assert np.all(shares[np.array(weights) == 0] == 0)

    @given(st.lists(st.text(max_size=8) | st.integers(), max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_stable_seed_range(self, parts):
        s = stable_seed(*parts)
        assert 0 <= s < 2**63
        assert s == stable_seed(*parts)

