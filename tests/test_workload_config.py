"""Unit tests for workload configuration and calibration presets."""

from dataclasses import replace

import pytest

from repro.util.units import GB, MB
from repro.workload.calibration import (
    default_config,
    paper_config,
    small_config,
    tiny_config,
)
from repro.workload.config import DomainConfig, TierConfig, WorkloadConfig


def minimal_tier(**overrides):
    base = dict(
        name="thumbnail",
        n_files=100,
        n_datasets=10,
        file_size_mean=100 * MB,
        file_size_sigma=0.5,
        file_size_min=1 * MB,
        file_size_max=1 * GB,
        dataset_len_mean=5.0,
        dataset_len_sigma=1.0,
        dataset_len_max=50,
        job_weight=1.0,
        duration_hours_mean=2.0,
    )
    base.update(overrides)
    return TierConfig(**base)


class TestTierConfig:
    def test_valid(self):
        tier = minimal_tier()
        assert tier.code == 2

    def test_unknown_tier_name(self):
        with pytest.raises(ValueError):
            minimal_tier(name="bogus")

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            minimal_tier(file_size_min=0)
        with pytest.raises(ValueError):
            minimal_tier(file_size_min=2 * GB)  # min > max

    def test_negative_weight(self):
        with pytest.raises(ValueError):
            minimal_tier(job_weight=-1)

    def test_bad_duration(self):
        with pytest.raises(ValueError):
            minimal_tier(duration_hours_mean=0)


class TestDomainConfig:
    def test_valid(self):
        d = DomainConfig(".gov", n_sites=2, n_nodes=5, user_weight=10)
        assert d.activity_boost == 1.0

    def test_nodes_fewer_than_sites(self):
        with pytest.raises(ValueError):
            DomainConfig(".de", n_sites=3, n_nodes=2, user_weight=1)

    def test_bad_boost(self):
        with pytest.raises(ValueError):
            DomainConfig(".de", 1, 1, 1, activity_boost=0)


class TestWorkloadConfig:
    def test_paper_config_valid(self):
        cfg = paper_config()
        assert cfg.n_users == 561
        assert cfg.n_traced_jobs == 113_830
        # Table 1's tier rows sum to 234,792 (the paper's "All" row says
        # 233,792; the rows themselves are what we calibrate to)
        assert cfg.n_jobs == 234_792
        assert cfg.n_files == 515_677 + 60_719 + 428_610

    def test_duplicate_tiers_rejected(self):
        cfg = paper_config()
        with pytest.raises(ValueError, match="duplicate tier"):
            replace(cfg, tiers=(cfg.tiers[0], cfg.tiers[0]))

    def test_duplicate_domains_rejected(self):
        cfg = paper_config()
        with pytest.raises(ValueError, match="duplicate domain"):
            replace(cfg, domains=(cfg.domains[0], cfg.domains[0]))

    def test_bad_home_bias(self):
        with pytest.raises(ValueError):
            replace(paper_config(), home_bias=1.5)

    def test_bad_locality_boost(self):
        with pytest.raises(ValueError):
            replace(paper_config(), locality_boost=0.5)


class TestScaling:
    def test_counts_scale(self):
        cfg = paper_config().scaled(0.1)
        assert cfg.n_users == 56
        assert cfg.n_traced_jobs == 11_383
        assert 0.09 < cfg.n_files / paper_config().n_files < 0.11

    def test_intensive_quantities_preserved(self):
        cfg = paper_config().scaled(0.01)
        for orig, scaled in zip(paper_config().tiers, cfg.tiers):
            assert scaled.file_size_mean == orig.file_size_mean
            assert scaled.dataset_len_mean == orig.dataset_len_mean
            assert scaled.duration_hours_mean == orig.duration_hours_mean

    def test_minimums_kept(self):
        cfg = paper_config().scaled(1e-6)
        assert all(t.n_files >= 1 for t in cfg.tiers)
        assert all(d.n_sites >= 1 for d in cfg.domains)
        assert all(d.n_nodes >= d.n_sites for d in cfg.domains)
        assert cfg.n_users >= 1

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            paper_config().scaled(0)

    def test_name_derived(self):
        assert paper_config().scaled(0.5).name == "paper-x0.5"
        assert paper_config().scaled(0.5, name="mine").name == "mine"


class TestPresets:
    def test_preset_ordering(self):
        assert (
            tiny_config().n_traced_jobs
            < small_config().n_traced_jobs
            < default_config().n_traced_jobs
            < paper_config().n_traced_jobs
        )

    def test_presets_cached(self):
        assert default_config() is default_config()

    def test_table1_job_mix(self):
        cfg = paper_config()
        weights = {t.name: t.job_weight for t in cfg.tiers}
        assert weights["thumbnail"] > weights["reconstructed"] > weights["root-tuple"]


class TestScalingExtremes:
    def test_round_trip_is_identity_on_counts(self):
        """scaled(10).scaled(0.1) restores every population count.

        Linear counts round-trip exactly (integers scale by 10 and back);
        site/node counts scale by sqrt(factor) and may drift by one from
        double rounding.
        """
        base = paper_config()
        back = base.scaled(10).scaled(0.1)
        assert back.n_users == base.n_users
        assert back.n_traced_jobs == base.n_traced_jobs
        assert back.n_other_jobs == base.n_other_jobs
        for orig, rt in zip(base.tiers, back.tiers):
            assert rt.n_files == orig.n_files
            assert rt.n_datasets == orig.n_datasets
        for orig, rt in zip(base.domains, back.domains):
            assert abs(rt.n_sites - orig.n_sites) <= 1
            assert abs(rt.n_nodes - orig.n_nodes) <= 1
            assert rt.n_nodes >= rt.n_sites

    def test_grown_is_ten_x_paper(self):
        from repro.workload.calibration import grown_config

        grown, base = grown_config(), paper_config()
        assert grown.name == "grown"
        assert grown.n_traced_jobs == 10 * base.n_traced_jobs
        assert grown.n_files == pytest.approx(10 * base.n_files, rel=1e-6)
        assert grown.span_days == base.span_days  # intensive, not scaled

    def test_min_one_clamp_at_vanishing_factors(self):
        cfg = paper_config().scaled(1e-12)
        assert cfg.n_users == 1
        assert cfg.n_traced_jobs == 1
        for tier in cfg.tiers:
            assert tier.n_files == 1
            assert tier.n_datasets == 1
        for dom in cfg.domains:
            assert dom.n_sites == 1
            assert dom.n_nodes >= 1
        # and the config is still structurally valid / generable
        assert cfg.n_jobs >= 2

    def test_paper_tier_matches_paper_section2(self):
        """PAPER.md §2: ~234k jobs, 561 users, ~1.13M files, ~13M accesses.

        Job and user counts are pinned by Tables 1-2 and land within 5%.
        The file catalog covers the three tiers with *file-level* traces
        (Table 1 sums to ~1.005M; §2's ~1.13M counts the application-only
        tier too), so its band is wider.  The access count is a generated
        quantity with a heavy-tailed files-per-job distribution — the
        estimate is checked here, the generated count is gated in CI by
        tools/paper_smoke.py against the 11M..16M band.
        """
        cfg = paper_config()
        assert cfg.n_jobs == pytest.approx(234_000, rel=0.05)
        assert cfg.n_traced_jobs == pytest.approx(115_895, rel=0.05)
        assert cfg.n_users == 561
        assert cfg.n_files == pytest.approx(1_130_000, rel=0.15)
        assert cfg.n_files == 1_005_006  # the Table 1 catalog, exactly
        assert cfg.estimated_accesses == pytest.approx(13_000_000, rel=0.10)

    def test_estimates_scale_linearly(self):
        base = paper_config()
        ten = base.scaled(10)
        assert ten.estimated_accesses == pytest.approx(
            10 * base.estimated_accesses, rel=0.01
        )
        assert ten.estimated_total_bytes == pytest.approx(
            10 * base.estimated_total_bytes, rel=0.01
        )
