"""Instrumentation hooks: observation-only contract and collectors.

The acceptance criterion for the hooks is equivalence: an instrumented
run must produce *identical* miss rates and byte counts to an
uninstrumented one, across policies and capacities.
"""

import io

import pytest

from repro.cache.arc import AdaptiveReplacementCache
from repro.cache.filecule_lru import FileculeLRU
from repro.cache.gds import GreedyDualSize
from repro.cache.lru import FileLRU
from repro.cache.simulator import simulate, sweep
from repro.core.identify import find_filecules
from repro.obs.instrument import (
    Instrumentation,
    MultiInstrumentation,
    ProgressReporter,
    SimStats,
    progress_from_env,
)
from tests.conftest import make_trace


@pytest.fixture()
def trace():
    return make_trace(
        [[0, 1], [0, 1], [2, 3], [0, 1], [2], [4], [0, 1, 4]],
        file_sizes=[10, 10, 30, 5, 20],
    )


POLICIES = {
    "file-lru": lambda c: FileLRU(c),
    "gds": lambda c: GreedyDualSize(c),
    "arc": lambda c: AdaptiveReplacementCache(c),
}


class TestObservationOnly:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("capacity", [15, 40, 1000])
    def test_identical_results_with_and_without(
        self, trace, policy_name, capacity
    ):
        factory = POLICIES[policy_name]
        plain = simulate(trace, factory, capacity)
        observed = simulate(
            trace, factory, capacity, instrumentation=SimStats()
        )
        assert observed.miss_rate == plain.miss_rate
        assert observed.hits == plain.hits
        assert observed.misses == plain.misses
        assert observed.bytes_fetched == plain.bytes_fetched
        assert observed.bypasses == plain.bypasses

    def test_filecule_policy_identical(self, trace):
        partition = find_filecules(trace)
        factory = lambda c: FileculeLRU(c, partition)  # noqa: E731
        plain = simulate(trace, factory, 40)
        observed = simulate(trace, factory, 40, instrumentation=SimStats())
        assert observed.miss_rate == plain.miss_rate

    def test_sweep_identical(self, trace):
        caps = [20, 100]
        plain = sweep(trace, {"lru": POLICIES["file-lru"]}, caps)
        observed = sweep(
            trace,
            {"lru": POLICIES["file-lru"]},
            caps,
            instrumentation=SimStats(),
        )
        assert observed.miss_rates("lru") == plain.miss_rates("lru")

    def test_evict_listener_reset_after_run(self, trace):
        held = []
        factory = lambda c: held.append(FileLRU(c)) or held[-1]  # noqa: E731
        simulate(trace, factory, 25, instrumentation=SimStats())
        assert held[0].evict_listener is None


class TestSimStats:
    def test_totals_mirror_cache_metrics(self, trace):
        stats = SimStats()
        metrics = simulate(
            trace, POLICIES["file-lru"], 25, instrumentation=stats
        )
        assert stats.accesses == metrics.requests
        assert stats.hits == metrics.hits
        assert stats.misses == metrics.misses
        assert stats.bypasses == metrics.bypasses
        assert stats.bytes_requested == metrics.bytes_requested
        assert stats.bytes_fetched == metrics.bytes_fetched
        assert stats.hit_rate == metrics.hit_rate

    def test_eviction_volume_observed(self, trace):
        stats = SimStats()
        simulate(trace, POLICIES["file-lru"], 25, instrumentation=stats)
        # capacity 25 cannot hold the working set: something must be evicted
        assert stats.bytes_evicted > 0

    def test_no_evictions_when_everything_fits(self, trace):
        stats = SimStats()
        simulate(trace, POLICIES["file-lru"], 10_000, instrumentation=stats)
        assert stats.bytes_evicted == 0

    def test_snapshot_shape(self, trace):
        stats = SimStats()
        simulate(trace, POLICIES["file-lru"], 25, instrumentation=stats)
        snap = stats.snapshot()
        assert snap["accesses"] == stats.accesses
        assert snap["bytes_evicted"] == stats.bytes_evicted
        assert 0.0 <= snap["hit_rate"] <= 1.0

    def test_final_progress_always_fires(self, trace):
        stats = SimStats()  # progress_every == 0: only the final call
        simulate(trace, POLICIES["file-lru"], 25, instrumentation=stats)
        assert stats.progress_calls == 1


class TestProgressReporter:
    def test_periodic_lines_to_stream(self, trace):
        out = io.StringIO()
        reporter = ProgressReporter(
            "t", progress_every=3, min_interval_s=0.0, stream=out
        )
        simulate(trace, POLICIES["file-lru"], 25, instrumentation=reporter)
        lines = out.getvalue().splitlines()
        assert lines, "expected at least one progress line"
        assert "[t file-lru@25 B]" in lines[0]
        assert "hit=" in lines[0] and "eta=" in lines[0]
        assert "100.0%" in lines[-1]

    def test_throttling_suppresses_intermediate_lines(self, trace):
        out = io.StringIO()
        reporter = ProgressReporter(
            "t", progress_every=1, min_interval_s=3600.0, stream=out
        )
        simulate(trace, POLICIES["file-lru"], 25, instrumentation=reporter)
        lines = out.getvalue().splitlines()
        # first checkpoint + forced final line only
        assert len(lines) == 2

    def test_progress_every_validated(self):
        with pytest.raises(ValueError):
            ProgressReporter(progress_every=0)


class TestMultiInstrumentation:
    def test_fans_out_to_all_children(self, trace):
        a, b = SimStats(), SimStats()
        multi = MultiInstrumentation(a, b)
        simulate(trace, POLICIES["file-lru"], 25, instrumentation=multi)
        assert a.accesses == b.accesses == trace.n_accesses
        assert a.bytes_evicted == b.bytes_evicted > 0

    def test_progress_every_is_min_of_children(self):
        quiet = SimStats()
        chatty = ProgressReporter(progress_every=7, stream=io.StringIO())
        assert MultiInstrumentation(quiet, chatty).progress_every == 7
        assert MultiInstrumentation(quiet).progress_every == 0


class TestProgressFromEnv:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        assert progress_from_env("x") is None
        monkeypatch.setenv("REPRO_PROGRESS", "0")
        assert progress_from_env("x") is None

    def test_enabled_when_truthy(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        reporter = progress_from_env("x", stream=io.StringIO())
        assert isinstance(reporter, ProgressReporter)
        assert reporter.label == "x"


class TestBaseClassIsNoOp:
    def test_all_hooks_return_none(self, trace):
        inst = Instrumentation()
        metrics = simulate(
            trace, POLICIES["file-lru"], 25, instrumentation=inst
        )
        assert metrics.requests == trace.n_accesses
