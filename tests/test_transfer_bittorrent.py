"""Unit tests for the fluid swarm / client-server transfer models.

Closed-form cases: with seed upload U, peer download D and k simultaneous
peers, client-server gives each peer rate min(D, U/k); the swarm adds k
peer-uploads u, giving min(D, (U + k*u)/k).
"""

import math

import pytest

from repro.transfer.bittorrent import (
    SwarmConfig,
    simulate_client_server,
    simulate_swarm,
)

CFG = SwarmConfig(seed_up_bps=100.0, peer_up_bps=50.0, peer_down_bps=80.0)


class TestSinglePeer:
    def test_download_limited_by_peer_capacity(self):
        # alone: rate = min(80, 100) = 80
        res = simulate_client_server([0.0], 800.0, CFG)
        assert res.download_times[0] == pytest.approx(10.0)

    def test_swarm_equals_cs_for_single_peer(self):
        a = simulate_client_server([0.0], 800.0, CFG)
        b = simulate_swarm([0.0], 800.0, CFG)
        assert a.download_times == pytest.approx(b.download_times)


class TestSimultaneousPeers:
    def test_cs_shares_seed(self):
        # 4 peers: rate = min(80, 100/4) = 25 -> 40s for 1000 bytes
        res = simulate_client_server([0.0] * 4, 1000.0, CFG)
        assert res.download_times == pytest.approx((40.0,) * 4)

    def test_swarm_adds_peer_upload(self):
        # 4 peers: rate = min(80, (100 + 4*50)/4) = 75 -> 13.33s
        res = simulate_swarm([0.0] * 4, 1000.0, CFG)
        assert res.download_times == pytest.approx((1000.0 / 75.0,) * 4)

    def test_swarm_speedup_grows_with_crowd(self):
        speedups = []
        for k in (2, 8, 32):
            cs = simulate_client_server([0.0] * k, 1000.0, CFG)
            sw = simulate_swarm([0.0] * k, 1000.0, CFG)
            speedups.append(cs.mean_download_time / sw.mean_download_time)
        assert speedups[0] < speedups[1] <= speedups[2] + 1e-9


class TestStaggeredArrivals:
    def test_disjoint_arrivals_no_sharing_effect(self):
        # second peer arrives after the first finished: both run alone
        res = simulate_client_server([0.0, 100.0], 800.0, CFG)
        assert res.download_times == pytest.approx((10.0, 10.0))

    def test_rates_rebalance_on_arrival(self):
        # peer A starts alone at rate 80; B arrives at t=5 -> both at 50
        res = simulate_client_server([0.0, 5.0], 800.0, CFG)
        # A: 400 bytes done by t=5, 400 left at 50 B/s -> done t=13
        assert res.completion_times[0] == pytest.approx(13.0)
        # B: 800 bytes at 50 B/s while A active... A leaves at 13
        # B has 800 - 8*50 = 400 left, alone at 80 -> 5s more -> t=18
        assert res.completion_times[1] == pytest.approx(18.0)

    def test_arrival_order_of_result_preserved(self):
        res = simulate_client_server([5.0, 0.0], 100.0, CFG)
        assert res.arrival_times == (5.0, 0.0)
        assert res.completion_times[1] < res.completion_times[0]


class TestEdgeCases:
    def test_zero_size(self):
        res = simulate_swarm([1.0, 2.0], 0.0, CFG)
        assert res.download_times == (0.0, 0.0)

    def test_no_peers(self):
        res = simulate_swarm([], 100.0, CFG)
        assert res.mean_download_time == 0.0
        assert res.makespan == 0.0

    def test_many_identical_arrivals_terminate(self):
        res = simulate_swarm([0.0] * 200, 1e9, SwarmConfig())
        assert all(math.isfinite(t) for t in res.completion_times)

    def test_float_precision_termination(self):
        # large timestamps + small transfers: the regression case that
        # used to stall the fixed-epsilon implementation
        arrivals = [7.0e7 + i * 0.001 for i in range(50)]
        res = simulate_client_server(arrivals, 3.1e9, SwarmConfig())
        assert all(math.isfinite(t) for t in res.completion_times)

    def test_makespan(self):
        res = simulate_client_server([0.0, 100.0], 800.0, CFG)
        assert res.makespan == pytest.approx(110.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SwarmConfig(seed_up_bps=0)
        with pytest.raises(ValueError):
            SwarmConfig(peer_up_bps=-1)
        with pytest.raises(ValueError):
            simulate_swarm([0.0], -5.0, CFG)
