"""Shared fixtures: hand-built micro traces and generated workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.identify import find_filecules
from repro.traces.trace import Trace
from repro.workload.calibration import small_config, tiny_config
from repro.workload.generator import generate_trace


def make_trace(
    jobs: list[list[int]],
    n_files: int | None = None,
    file_sizes: list[int] | None = None,
    job_users: list[int] | None = None,
    job_nodes: list[int] | None = None,
    job_starts: list[float] | None = None,
    job_durations: list[float] | None = None,
    job_tiers: list[int] | None = None,
    file_tiers: list[int] | None = None,
    n_users: int | None = None,
    node_sites: list[int] | None = None,
    node_domains: list[int] | None = None,
    user_domains: list[int] | None = None,
    site_names: list[str] | None = None,
    domain_names: list[str] | None = None,
) -> Trace:
    """Build a small trace from a list of per-job file-id lists.

    Defaults: one user, one node/site/domain, unit-size files, jobs one
    hour long starting at hours 0, 1, 2, ...  Every parameter can be
    overridden for targeted scenarios.
    """
    n_jobs = len(jobs)
    if n_files is None:
        n_files = max((max(fs) for fs in jobs if fs), default=-1) + 1
    file_sizes = file_sizes if file_sizes is not None else [1] * n_files
    job_users = job_users if job_users is not None else [0] * n_jobs
    job_nodes = job_nodes if job_nodes is not None else [0] * n_jobs
    job_starts = (
        job_starts if job_starts is not None else [3600.0 * j for j in range(n_jobs)]
    )
    job_durations = (
        job_durations if job_durations is not None else [3600.0] * n_jobs
    )
    job_tiers = job_tiers if job_tiers is not None else [1] * n_jobs
    file_tiers = file_tiers if file_tiers is not None else [1] * n_files
    node_sites = node_sites if node_sites is not None else [0]
    node_domains = node_domains if node_domains is not None else [0]
    if n_users is None:
        n_users = max(job_users, default=0) + 1
    user_domains = user_domains if user_domains is not None else [0] * n_users
    site_names = (
        site_names
        if site_names is not None
        else [f"site{s}" for s in range(max(node_sites) + 1)]
    )
    domain_names = (
        domain_names
        if domain_names is not None
        else [f".d{d}" for d in range(max(max(node_domains), max(user_domains, default=0)) + 1)]
    )

    access_jobs = [j for j, files in enumerate(jobs) for _ in files]
    access_files = [f for files in jobs for f in files]
    return Trace(
        file_sizes=file_sizes,
        file_tiers=file_tiers,
        file_datasets=[0] * n_files,
        job_users=job_users,
        job_nodes=job_nodes,
        job_tiers=job_tiers,
        job_starts=job_starts,
        job_ends=[s + d for s, d in zip(job_starts, job_durations)],
        access_jobs=access_jobs,
        access_files=access_files,
        user_domains=user_domains,
        node_sites=node_sites,
        node_domains=node_domains,
        site_names=site_names,
        domain_names=domain_names,
    )


@pytest.fixture(scope="session")
def tiny_trace() -> Trace:
    """Generated tiny-scale workload (seed 3), shared per session."""
    return generate_trace(tiny_config(), seed=3)


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """Generated small-scale workload (seed 3), shared per session."""
    return generate_trace(small_config(), seed=3)


@pytest.fixture(scope="session")
def tiny_partition(tiny_trace):
    return find_filecules(tiny_trace)


@pytest.fixture(scope="session")
def small_partition(small_trace):
    return find_filecules(small_trace)


@pytest.fixture()
def classic_trace() -> Trace:
    """Five jobs over eight files with a known filecule structure.

    Signatures: files {0,1} seen by jobs {0,2,4}; {2,3} by jobs {0,1};
    {4} by jobs {1,2}; {5} by job {3}; {6,7} never accessed... except 6
    by job 4.  Expected filecules: {0,1}, {2,3}, {4}, {5}, {6}.
    """
    return make_trace(
        [
            [0, 1, 2, 3],
            [2, 3, 4],
            [0, 1, 4],
            [5],
            [0, 1, 6],
        ],
        n_files=8,
    )
