"""Deeper grid-replay scenarios: bandwidth effects, queueing, report math."""

import numpy as np
import pytest

from repro.sam.catalog import ReplicaCatalog
from repro.sam.scheduler import replay_trace
from tests.conftest import make_trace


@pytest.fixture()
def two_site_trace():
    return make_trace(
        [[0], [1], [0, 1]],
        file_sizes=[10**9, 10**9],
        job_nodes=[1, 1, 1],
        node_sites=[0, 1],
        node_domains=[0, 0],
        site_names=["hub", "edge"],
        job_starts=[0.0, 1.0, 10_000_000.0],
    )


class TestBandwidthEffects:
    def test_faster_wan_reduces_stall(self, two_site_trace):
        slow = replay_trace(
            two_site_trace, cache_capacity=10**12, wan_bandwidth_bps=1e6
        )
        fast = replay_trace(
            two_site_trace, cache_capacity=10**12, wan_bandwidth_bps=1e9
        )
        assert fast.mean_stall_seconds < slow.mean_stall_seconds

    def test_cache_warm_second_pass(self, two_site_trace):
        report = replay_trace(two_site_trace, cache_capacity=10**12)
        # the third job re-reads both files long after they were cached
        stalls = [
            s for st in report.stations for s in st.stall_seconds
        ]
        assert min(stalls) == 0.0  # the warm job stalls not at all

    def test_queueing_under_simultaneous_jobs(self):
        t = make_trace(
            [[0], [1]],
            file_sizes=[10**9, 10**9],
            job_nodes=[0, 0],
            node_sites=[0, 1],
            node_domains=[0, 0],
            site_names=["hub", "edge"],
            job_starts=[0.0, 0.0],
        )
        # both jobs at the same edge... actually node 0 -> site 0 (hub)
        report = replay_trace(t, cache_capacity=10**12)
        stalls = sorted(
            s for st in report.stations for s in st.stall_seconds
        )
        # tape FIFO: the second stage queues behind the first
        assert stalls[1] > stalls[0]


class TestReportMath:
    def test_local_fraction_with_full_catalog(self, two_site_trace):
        catalog = ReplicaCatalog(2, 2)
        for f in (0, 1):
            for s in (0, 1):
                catalog.register(f, s)
        report = replay_trace(
            two_site_trace, cache_capacity=10**12, catalog=catalog
        )
        assert report.local_byte_fraction == 1.0
        assert report.wan_bytes == 0
        assert report.tape_bytes == 0
        assert report.p95_stall_seconds == 0.0

    def test_empty_trace(self):
        t = make_trace([], n_files=0)
        report = replay_trace(t, cache_capacity=100)
        assert report.total_requested_bytes == 0
        assert report.mean_stall_seconds == 0.0

    def test_untraced_jobs_skipped(self):
        t = make_trace([[], [0]], file_sizes=[10])
        report = replay_trace(t, cache_capacity=100)
        assert sum(s.projects for s in report.stations) == 1

    def test_run_false_defers_execution(self, two_site_trace):
        report = replay_trace(two_site_trace, cache_capacity=100, run=False)
        # nothing executed: no projects recorded
        assert sum(s.projects for s in report.stations) == 0
