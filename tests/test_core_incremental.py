"""Unit tests for streaming (incremental) filecule identification."""

import numpy as np
import pytest

from repro.core.identify import find_filecules
from repro.core.incremental import IncrementalFileculeIdentifier
from tests.conftest import make_trace


def batch_groups(trace):
    return sorted(
        tuple(sorted(fc.file_ids.tolist())) for fc in find_filecules(trace)
    )


def incremental_groups(trace):
    ident = IncrementalFileculeIdentifier()
    ident.observe_trace(trace)
    return sorted(tuple(sorted(c)) for c in ident.classes())


class TestRefinementSteps:
    def test_single_job(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1, 2, 3])
        assert ident.n_classes == 1
        assert ident.classes() == [frozenset({1, 2, 3})]

    def test_subset_splits(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1, 2, 3])
        ident.observe_job([2, 3])
        assert sorted(tuple(sorted(c)) for c in ident.classes()) == [
            (1,),
            (2, 3),
        ]

    def test_full_class_request_does_not_split(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1, 2])
        ident.observe_job([1, 2])
        assert ident.n_classes == 1
        cid = ident.class_of(1)
        assert ident.requests_of_class(cid) == 2

    def test_new_and_old_files_mixed(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1, 2])
        ident.observe_job([2, 3])
        # 1 alone (seen once), 2 alone (seen twice), 3 alone (seen once)
        assert sorted(tuple(sorted(c)) for c in ident.classes()) == [
            (1,),
            (2,),
            (3,),
        ]
        assert ident.requests_of_class(ident.class_of(2)) == 2

    def test_empty_job_counts_but_changes_nothing(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1])
        ident.observe_job([])
        assert ident.n_jobs_observed == 2
        assert ident.n_classes == 1

    def test_class_of_unseen(self):
        assert IncrementalFileculeIdentifier().class_of(5) is None

    def test_classes_only_split_never_merge(self):
        ident = IncrementalFileculeIdentifier()
        rng = np.random.default_rng(0)
        previous = 0
        for _ in range(30):
            job = rng.choice(20, size=rng.integers(1, 6), replace=False)
            ident.observe_job(job.tolist())
            assert ident.n_classes >= previous
            previous = ident.n_classes


class TestEquivalenceWithBatch:
    def test_classic(self, classic_trace):
        assert batch_groups(classic_trace) == incremental_groups(classic_trace)

    def test_random_traces(self):
        rng = np.random.default_rng(12)
        for _ in range(20):
            n_files = int(rng.integers(1, 15))
            n_jobs = int(rng.integers(1, 12))
            jobs = [
                sorted(
                    rng.choice(
                        n_files,
                        size=rng.integers(1, n_files + 1),
                        replace=False,
                    ).tolist()
                )
                for _ in range(n_jobs)
            ]
            trace = make_trace(jobs, n_files=n_files)
            assert batch_groups(trace) == incremental_groups(trace)

    def test_generated_trace(self, tiny_trace):
        assert batch_groups(tiny_trace) == incremental_groups(tiny_trace)

    def test_request_counts_match(self, tiny_trace):
        ident = IncrementalFileculeIdentifier()
        ident.observe_trace(tiny_trace)
        batch = find_filecules(tiny_trace)
        by_members_batch = {
            frozenset(fc.file_ids.tolist()): fc.n_requests for fc in batch
        }
        for members in ident.classes():
            cid = ident.class_of(next(iter(members)))
            assert ident.requests_of_class(cid) == by_members_batch[members]


class TestPartitionSnapshot:
    def test_snapshot_matches_batch(self, classic_trace):
        ident = IncrementalFileculeIdentifier()
        ident.observe_trace(classic_trace)
        snap = ident.partition(
            n_files=classic_trace.n_files, sizes=classic_trace.file_sizes
        )
        batch = find_filecules(classic_trace)
        assert sorted(tuple(fc.file_ids.tolist()) for fc in snap) == sorted(
            tuple(fc.file_ids.tolist()) for fc in batch
        )
        # canonical order is popularity-descending in both
        assert [fc.n_requests for fc in snap] == [fc.n_requests for fc in batch]

    def test_snapshot_sizes(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([0, 1])
        snap = ident.partition(sizes=np.array([10, 20]))
        assert snap[0].size_bytes == 30

    def test_snapshot_without_sizes(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([0])
        assert ident.partition()[0].size_bytes == 0

    def test_incremental_growth_pattern(self):
        """Feeding a prefix then the rest equals feeding everything."""
        jobs = [[0, 1, 2, 3], [0, 1], [2], [0, 1, 2, 3, 4]]
        full = IncrementalFileculeIdentifier()
        for job in jobs:
            full.observe_job(job)
        resumed = IncrementalFileculeIdentifier()
        for job in jobs[:2]:
            resumed.observe_job(job)
        for job in jobs[2:]:
            resumed.observe_job(job)
        assert sorted(map(tuple, map(sorted, full.classes()))) == sorted(
            map(tuple, map(sorted, resumed.classes()))
        )


class TestAffectedClassIds:
    """observe_job reports exactly the classes a job created or changed."""

    def test_fresh_class_reported(self):
        ident = IncrementalFileculeIdentifier()
        assert ident.observe_job([1, 2, 3]) == {0}

    def test_split_reports_both_halves(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1, 2, 3])
        affected = ident.observe_job([2, 3])
        # parent class 0 shrank to {1}; fresh class 1 holds {2, 3}
        assert affected == {0, 1}
        assert sorted(map(sorted, ident.classes())) == [[1], [2, 3]]

    def test_whole_class_touch_reported(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1, 2])
        assert ident.observe_job([1, 2]) == {0}
        assert ident.requests_of_class(0) == 2

    def test_untouched_classes_not_reported(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1, 2])
        ident.observe_job([3, 4])
        affected = ident.observe_job([3, 4])
        assert affected == {1}

    def test_empty_job_reports_nothing(self):
        ident = IncrementalFileculeIdentifier()
        assert ident.observe_job([]) == set()
