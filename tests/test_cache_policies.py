"""Unit tests for the single-file cache replacement policies."""

import pytest

from repro.cache.base import CacheMetrics
from repro.cache.fifo import FileFIFO
from repro.cache.frequency import FileLFU
from repro.cache.gds import GreedyDualSize, Landlord
from repro.cache.lru import FileLRU
from repro.cache.size import LargestFirst

ALL_FILE_POLICIES = [FileFIFO, FileLRU, FileLFU, LargestFirst, GreedyDualSize, Landlord]


class TestCommonBehaviour:
    @pytest.mark.parametrize("policy_cls", ALL_FILE_POLICIES)
    def test_miss_then_hit(self, policy_cls):
        p = policy_cls(100)
        assert not p.request(1, 10, 0.0).hit
        assert p.request(1, 10, 1.0).hit
        assert 1 in p

    @pytest.mark.parametrize("policy_cls", ALL_FILE_POLICIES)
    def test_bypass_oversized(self, policy_cls):
        p = policy_cls(100)
        outcome = p.request(1, 1000, 0.0)
        assert not outcome.hit
        assert outcome.bypassed
        assert 1 not in p
        assert p.used_bytes == 0

    @pytest.mark.parametrize("policy_cls", ALL_FILE_POLICIES)
    def test_occupancy_never_exceeds_capacity(self, policy_cls):
        p = policy_cls(50)
        for i in range(40):
            p.request(i % 13, 7 + (i % 3), float(i))
            assert 0 <= p.used_bytes <= 50

    @pytest.mark.parametrize("policy_cls", ALL_FILE_POLICIES)
    def test_eviction_makes_room(self, policy_cls):
        p = policy_cls(20)
        p.request(1, 10, 0.0)
        p.request(2, 10, 1.0)
        p.request(3, 10, 2.0)  # must evict someone
        assert 3 in p
        assert p.used_bytes <= 20

    @pytest.mark.parametrize("policy_cls", ALL_FILE_POLICIES)
    def test_zero_capacity_rejected(self, policy_cls):
        with pytest.raises(ValueError):
            policy_cls(0)


class TestLRUOrder:
    def test_lru_victim(self):
        p = FileLRU(20)
        p.request(1, 10, 0.0)
        p.request(2, 10, 1.0)
        p.request(1, 10, 2.0)  # touch 1 -> 2 is now LRU
        p.request(3, 10, 3.0)
        assert 2 not in p
        assert 1 in p and 3 in p


class TestFIFOOrder:
    def test_fifo_ignores_touches(self):
        p = FileFIFO(20)
        p.request(1, 10, 0.0)
        p.request(2, 10, 1.0)
        p.request(1, 10, 2.0)  # hit does not reorder
        p.request(3, 10, 3.0)
        assert 1 not in p  # first in, first out
        assert 2 in p and 3 in p


class TestLFUOrder:
    def test_lfu_victim(self):
        p = FileLFU(20)
        p.request(1, 10, 0.0)
        p.request(1, 10, 1.0)
        p.request(1, 10, 2.0)
        p.request(2, 10, 3.0)
        p.request(3, 10, 4.0)  # evict 2 (freq 1) not 1 (freq 3)
        assert 1 in p and 3 in p
        assert 2 not in p

    def test_frequency_persists_across_eviction(self):
        p = FileLFU(10)
        for _ in range(5):
            p.request(1, 10, 0.0)  # freq(1)=5
        p.request(2, 10, 1.0)  # evicts 1
        assert 1 not in p
        p.request(1, 10, 2.0)  # freq(1)=6, evicts 2 (freq 1)
        p.request(3, 10, 3.0)  # candidate victims: 1(freq 6) -> evict...
        # 1 has the higher frequency, so 1 survives until 3 arrives;
        # 3 replaces whatever is least frequent at that moment
        assert p.used_bytes <= 10


class TestLargestFirst:
    def test_evicts_biggest(self):
        p = LargestFirst(100)
        p.request(1, 60, 0.0)
        p.request(2, 30, 1.0)
        p.request(3, 40, 2.0)  # evict 60 (largest), keep 30
        assert 1 not in p
        assert 2 in p and 3 in p


class TestGreedyDualSize:
    def test_small_files_preferred_under_uniform_cost(self):
        p = GreedyDualSize(100)
        p.request(1, 90, 0.0)  # H = 1/90 (small credit)
        p.request(2, 10, 1.0)  # H = 1/10
        p.request(3, 50, 2.0)  # must evict: victim is 1 (lowest credit)
        assert 1 not in p
        assert 2 in p and 3 in p

    def test_hit_refreshes_credit(self):
        p = GreedyDualSize(100)
        p.request(1, 50, 0.0)
        p.request(2, 50, 1.0)
        p.request(1, 50, 2.0)  # refresh 1
        p.request(3, 50, 3.0)  # victim should be 2
        assert 2 not in p
        assert 1 in p and 3 in p

    def test_landlord_byte_cost(self):
        # with cost = size, credit = 1 for everything: pure inflated recency
        p = Landlord(100)
        p.request(1, 60, 0.0)
        p.request(2, 40, 1.0)
        p.request(3, 60, 2.0)
        assert 3 in p
        assert p.used_bytes <= 100


class TestMetricsAccounting:
    def test_counters(self):
        m = CacheMetrics(name="x", capacity_bytes=100)
        p = FileLRU(100)
        for f, size in [(1, 10), (2, 20), (1, 10)]:
            m.record(size, p.request(f, size, 0.0))
        assert m.requests == 3
        assert m.hits == 1
        assert m.misses == 2
        assert m.miss_rate == pytest.approx(2 / 3)
        assert m.bytes_requested == 40
        assert m.bytes_hit == 10
        assert m.byte_miss_rate == pytest.approx(0.75)
        assert m.bytes_fetched == 30
        assert m.fetch_overhead == pytest.approx(1.0)

    def test_empty_metrics(self):
        m = CacheMetrics()
        assert m.miss_rate == 0.0
        assert m.byte_miss_rate == 0.0
        assert m.fetch_overhead == 0.0

    def test_as_row(self):
        m = CacheMetrics(name="p", capacity_bytes=5)
        assert m.as_row()[0] == "p"
