"""Fourth property battery: the batched ingest path.

Two equivalence contracts, driven by hypothesis over adversarial
streams:

* ``observe_jobs_batch`` is a pure reorganization of ``observe_job`` —
  identical ``state_dict`` and affected-id union for any window split,
  any half-life, and any snapshot/restore point mid-stream;
* :class:`~repro.cache.online.BatchedFileCache` is bit-identical to the
  dict-backed :class:`~repro.cache.lru.FileLRU` /
  :class:`~repro.cache.fifo.FileFIFO` — per access outcome by outcome,
  and per window through ``request_window``'s aggregate totals.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.fifo import FileFIFO
from repro.cache.lru import FileLRU
from repro.cache.online import BatchedFileCache
from repro.core.incremental import IncrementalFileculeIdentifier
from tests.test_core_incremental_batch import columnar, sequential_replay

N_FILES = 14

#: Job streams rigged for branch coverage: empty jobs, duplicates,
#: sorted and unsorted segments all occur.
job_streams = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=N_FILES - 1),
        min_size=0,
        max_size=6,
    ),
    min_size=1,
    max_size=40,
)

half_lives = st.sampled_from([math.inf, 5.0, 17.0])


def nows_for(jobs, seed):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.uniform(0.0, 4.0, size=len(jobs)))


class TestBatchedIdentifier:
    @given(job_streams, half_lives, st.integers(min_value=0, max_value=9))
    @settings(max_examples=80, deadline=None)
    def test_batched_equals_sequential(self, jobs, half_life, seed):
        nows = nows_for(jobs, seed)
        seq, seq_affected = sequential_replay(
            jobs, nows=nows, half_life=half_life
        )
        bat = IncrementalFileculeIdentifier(half_life=half_life)
        flat, offsets = columnar(jobs)
        bat_affected = bat.observe_jobs_batch(flat, offsets, now=nows)
        assert bat.state_dict() == seq.state_dict()
        assert bat_affected == seq_affected

    @given(
        job_streams,
        half_lives,
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_snapshot_restore_mid_batch(self, jobs, half_life, seed, cut):
        cut %= len(jobs) + 1
        nows = nows_for(jobs, seed)
        ref, _ = sequential_replay(jobs, nows=nows, half_life=half_life)
        ident = IncrementalFileculeIdentifier(half_life=half_life)
        if cut:
            flat, offsets = columnar(jobs[:cut])
            ident.observe_jobs_batch(flat, offsets, now=nows[:cut])
        restored = IncrementalFileculeIdentifier.from_state_dict(
            ident.state_dict()
        )
        if cut < len(jobs):
            flat, offsets = columnar(jobs[cut:])
            restored.observe_jobs_batch(flat, offsets, now=nows[cut:])
        assert restored.state_dict() == ref.state_dict()

    @given(
        job_streams,
        half_lives,
        st.integers(min_value=0, max_value=9),
        st.lists(st.integers(min_value=0, max_value=1_000_000), max_size=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_affected_union_over_any_split(self, jobs, half_life, seed, raw):
        nows = nows_for(jobs, seed)
        _, want = sequential_replay(jobs, nows=nows, half_life=half_life)
        bounds = sorted({0, len(jobs), *(r % (len(jobs) + 1) for r in raw)})
        ident = IncrementalFileculeIdentifier(half_life=half_life)
        got = set()
        for lo, hi in zip(bounds, bounds[1:]):
            flat, offsets = columnar(jobs[lo:hi])
            got |= ident.observe_jobs_batch(flat, offsets, now=nows[lo:hi])
        assert got == want


# ----------------------------------------------------------------------
# BatchedFileCache vs the dict-backed reference policies
# ----------------------------------------------------------------------
#: Per-file byte sizes (fixed per id, as the service's size catalog is).
catalogs = st.lists(
    st.integers(min_value=1, max_value=20),
    min_size=N_FILES,
    max_size=N_FILES,
)

#: Windows of deduped job segments — ``request_window``'s input contract
#: (the service dedupes each job before the advisor sees it).
dedup_windows = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=N_FILES - 1),
        min_size=0,
        max_size=6,
        unique=True,
    ),
    min_size=1,
    max_size=25,
)


def outcome_key(outcome):
    return (outcome.hit, outcome.bytes_fetched, outcome.bypassed)


class TestBatchedFileCache:
    @given(
        dedup_windows,
        catalogs,
        st.integers(min_value=8, max_value=60),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_per_access_parity_with_reference(
        self, window, sizes, capacity, touch_on_hit
    ):
        ref = (FileLRU if touch_on_hit else FileFIFO)(capacity)
        got = BatchedFileCache(capacity, touch_on_hit=touch_on_hit)
        clock = 0.0
        for job in window:
            for f in job:
                clock += 1.0
                a = ref.request(f, sizes[f], clock)
                b = got.request(f, sizes[f], clock)
                assert outcome_key(a) == outcome_key(b)
        assert got.used_bytes == ref.used_bytes
        for f in range(N_FILES):
            assert (f in got) == (f in ref)

    @given(
        dedup_windows,
        catalogs,
        st.integers(min_value=8, max_value=60),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_matches_per_access_walk(
        self, window, sizes, capacity, touch_on_hit
    ):
        ref = (FileLRU if touch_on_hit else FileFIFO)(capacity)
        want_hits, want = [], [0, 0, 0, 0, 0, 0]
        clock = 0.0
        for job in window:
            hits = 0
            for f in job:
                clock += 1.0
                outcome = ref.request(f, sizes[f], clock)
                want[0] += 1
                want[1] += outcome.hit
                want[2] += sizes[f]
                want[3] += sizes[f] if outcome.hit else 0
                want[4] += outcome.bytes_fetched
                want[5] += outcome.bypassed
                hits += outcome.hit
            want_hits.append(hits)

        got = BatchedFileCache(capacity, touch_on_hit=touch_on_hit)
        flat, offsets = columnar(window)
        seg_sizes = np.array([sizes[f] for f in flat], dtype=np.int64)
        job_hits, totals = got.request_window(flat, offsets, seg_sizes)
        assert job_hits == want_hits
        assert list(totals) == want
        assert got.used_bytes == ref.used_bytes
        for f in range(N_FILES):
            assert (f in got) == (f in ref)
