"""Round-trip and error tests for trace serialization."""

import json

import numpy as np
import pytest

from repro.traces.io import (
    TraceFormatError,
    read_trace_csv,
    read_trace_jsonl,
    write_trace_csv,
    write_trace_jsonl,
)
from tests.conftest import make_trace


def assert_traces_equal(a, b):
    assert a.n_jobs == b.n_jobs
    assert a.n_files == b.n_files
    np.testing.assert_array_equal(a.file_sizes, b.file_sizes)
    np.testing.assert_array_equal(a.file_tiers, b.file_tiers)
    np.testing.assert_array_equal(a.file_datasets, b.file_datasets)
    np.testing.assert_array_equal(a.job_users, b.job_users)
    np.testing.assert_array_equal(a.job_nodes, b.job_nodes)
    np.testing.assert_array_equal(a.job_tiers, b.job_tiers)
    np.testing.assert_array_equal(a.job_starts, b.job_starts)
    np.testing.assert_array_equal(a.job_ends, b.job_ends)
    np.testing.assert_array_equal(a.access_jobs, b.access_jobs)
    np.testing.assert_array_equal(a.access_files, b.access_files)
    np.testing.assert_array_equal(a.job_labels, b.job_labels)
    np.testing.assert_array_equal(a.user_domains, b.user_domains)
    np.testing.assert_array_equal(a.node_sites, b.node_sites)
    np.testing.assert_array_equal(a.node_domains, b.node_domains)
    assert a.site_names == b.site_names
    assert a.domain_names == b.domain_names


@pytest.fixture()
def sample_trace():
    return make_trace(
        [[0, 1], [1, 2], [], [0]],
        n_files=4,
        file_sizes=[10, 20, 30, 40],
        job_users=[0, 1, 0, 1],
        n_users=2,
        job_starts=[0.25, 100.5, 200.0, 300.125],
        site_names=["fnal"],
        domain_names=[".gov"],
    )


class TestCsvRoundTrip:
    def test_roundtrip(self, sample_trace, tmp_path):
        directory = write_trace_csv(sample_trace, tmp_path / "t")
        loaded = read_trace_csv(directory)
        assert_traces_equal(sample_trace, loaded)

    def test_roundtrip_generated(self, tiny_trace, tmp_path):
        loaded = read_trace_csv(write_trace_csv(tiny_trace, tmp_path / "g"))
        assert_traces_equal(tiny_trace, loaded)

    def test_missing_table(self, sample_trace, tmp_path):
        directory = write_trace_csv(sample_trace, tmp_path / "t")
        (directory / "jobs.csv").unlink()
        with pytest.raises(TraceFormatError, match=r"missing required table\(s\) jobs\.csv"):
            read_trace_csv(directory)

    def test_missing_several_tables_all_named(self, sample_trace, tmp_path):
        directory = write_trace_csv(sample_trace, tmp_path / "t")
        (directory / "jobs.csv").unlink()
        (directory / "users.csv").unlink()
        with pytest.raises(TraceFormatError, match=r"jobs\.csv, users\.csv"):
            read_trace_csv(directory)

    def test_malformed_meta_json(self, sample_trace, tmp_path):
        directory = write_trace_csv(sample_trace, tmp_path / "t")
        (directory / "meta.json").write_text("{not json")
        with pytest.raises(TraceFormatError, match="malformed JSON"):
            read_trace_csv(directory)

    def test_short_row_reports_file_and_line(self, sample_trace, tmp_path):
        directory = write_trace_csv(sample_trace, tmp_path / "t")
        with open(directory / "accesses.csv", "a") as fh:
            fh.write("7\n")  # file_id column missing
        with pytest.raises(
            TraceFormatError, match=r"accesses\.csv:\d+: expected 2 columns"
        ):
            read_trace_csv(directory)

    def test_bad_format_marker(self, sample_trace, tmp_path):
        directory = write_trace_csv(sample_trace, tmp_path / "t")
        meta = json.loads((directory / "meta.json").read_text())
        meta["format"] = "something-else"
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="not a repro trace"):
            read_trace_csv(directory)

    def test_bad_header(self, sample_trace, tmp_path):
        directory = write_trace_csv(sample_trace, tmp_path / "t")
        lines = (directory / "files.csv").read_text().splitlines()
        lines[0] = "wrong,header,here,now"
        (directory / "files.csv").write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="unexpected header"):
            read_trace_csv(directory)


class TestJsonlRoundTrip:
    def test_roundtrip(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl")
        loaded = read_trace_jsonl(path)
        assert_traces_equal(sample_trace, loaded)

    def test_roundtrip_generated(self, tiny_trace, tmp_path):
        path = write_trace_jsonl(tiny_trace, tmp_path / "g.jsonl")
        assert_traces_equal(tiny_trace, read_trace_jsonl(path))

    def test_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "file", "id": 0, "size": 1, "tier": 0, "dataset": 0}\n')
        with pytest.raises(ValueError, match="missing meta"):
            read_trace_jsonl(path)

    def test_unknown_record_type(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl")
        with open(path, "a") as fh:
            fh.write('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record type"):
            read_trace_jsonl(path)

    def test_non_dense_ids(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl")
        lines = [
            line
            for line in path.read_text().splitlines()
            if '"type": "file"' not in line or '"id": 0' not in line
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="not dense"):
            read_trace_jsonl(path)

    def test_malformed_line_reports_path_and_lineno(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        lines[2] = '{"type": "file", "id": 1, "size": '  # truncated mid-record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceFormatError, match=r"t\.jsonl:3: malformed JSONL line"):
            read_trace_jsonl(path)

    def test_missing_record_keys_reports_context(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl")
        with open(path, "a") as fh:
            fh.write('{"type": "job", "id": 99}\n')
        with pytest.raises(TraceFormatError, match=r"t\.jsonl:\d+: record is missing keys"):
            read_trace_jsonl(path)

    def test_non_object_line_rejected(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl")
        with open(path, "a") as fh:
            fh.write("[1, 2, 3]\n")
        with pytest.raises(TraceFormatError, match="expected a JSON object"):
            read_trace_jsonl(path)

    def test_trace_format_error_is_value_error(self):
        # callers catching the old ValueError keep working
        assert issubclass(TraceFormatError, ValueError)

    def test_blank_lines_tolerated(self, sample_trace, tmp_path):
        path = write_trace_jsonl(sample_trace, tmp_path / "t.jsonl")
        content = path.read_text().replace("\n", "\n\n", 3)
        path.write_text(content)
        assert_traces_equal(sample_trace, read_trace_jsonl(path))
