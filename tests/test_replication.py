"""Unit tests for replication planning and evaluation."""

import numpy as np
import pytest

from repro.core.identify import find_filecules
from repro.replication.evaluate import (
    compare_strategies,
    evaluate_replication,
)
from repro.replication.placement import (
    file_interest_matrix,
    interest_matrix,
    site_budgets,
)
from repro.replication.strategies import (
    FileculeReplication,
    FileGranularityReplication,
    GlobalPopularityReplication,
)
from tests.conftest import make_trace


@pytest.fixture()
def trace():
    """Two sites with disjoint interests plus one shared filecule.

    Site 0 repeatedly reads {0,1}; site 1 reads {2,3} and {4}.  Each
    site's second-half (evaluation) requests repeat exactly what it
    requested during the first-half (warmup) window.
    """
    jobs = [[0, 1], [2, 3], [4], [0, 1], [2, 3], [4]]
    return make_trace(
        jobs,
        file_sizes=[10, 10, 10, 10, 10],
        job_nodes=[0, 1, 1, 0, 1, 1],
        node_sites=[0, 1],
        node_domains=[0, 1],
        site_names=["s0", "s1"],
        domain_names=[".a", ".b"],
        job_starts=[0.0, 1.0, 2.0, 100.0, 101.0, 102.0],
        job_durations=[1.0] * 6,  # keep the time span close to the starts
    )


class TestPlacementMatrices:
    def test_interest_matrix(self, trace):
        partition = find_filecules(trace)
        m = interest_matrix(trace, partition)
        assert m.shape == (2, len(partition))
        # the {0,1} filecule is requested twice from site 0, never from 1
        label = int(partition.labels[0])
        assert m[0, label] == 2
        assert m[1, label] == 0

    def test_file_interest_matrix(self, trace):
        m = file_interest_matrix(trace)
        assert m[0, 0] == 2
        assert m[1, 2] == 2
        assert m[0, 4] == 0 and m[1, 4] == 2

    def test_site_budgets_uniform(self, trace):
        b = site_budgets(trace, 100)
        assert b.tolist() == [100, 100]

    def test_site_budgets_weighted(self, trace):
        b = site_budgets(trace, 100, weight_by_activity=True)
        assert b.sum() == pytest.approx(200, abs=2)

    def test_negative_budget(self, trace):
        with pytest.raises(ValueError):
            site_budgets(trace, -1)


class TestStrategies:
    def test_file_plan_respects_budget(self, trace):
        partition = find_filecules(trace)
        plan = FileGranularityReplication().plan(
            trace, partition, np.array([25, 25])
        )
        assert all(b <= 25 for b in plan.site_bytes)

    def test_filecule_plan_ships_whole_groups(self, trace):
        partition = find_filecules(trace)
        plan = FileculeReplication().plan(trace, partition, np.array([100, 0]))
        pushed = set(plan.site_files[0].tolist())
        for fc in partition:
            members = set(fc.file_ids.tolist())
            # all or nothing
            assert members <= pushed or not (members & pushed)

    def test_filecule_plan_skips_oversized(self, trace):
        partition = find_filecules(trace)
        # budget of 15 cannot hold the 20-byte filecules, only {4}:
        # site 1 gets its 10-byte {4}; site 0 wants only {0,1} (20 bytes)
        plan = FileculeReplication().plan(trace, partition, np.array([15, 15]))
        assert plan.site_files[0].tolist() == []
        assert plan.site_files[1].tolist() == [4]

    def test_interest_aware_plans_local(self, trace):
        partition = find_filecules(trace)
        plan = FileculeReplication().plan(trace, partition, np.array([20, 20]))
        assert set(plan.site_files[0].tolist()) <= {0, 1, 4}
        assert set(plan.site_files[1].tolist()) <= {2, 3, 4}

    def test_global_plan_same_everywhere(self, trace):
        partition = find_filecules(trace)
        plan = GlobalPopularityReplication().plan(
            trace, partition, np.array([30, 30])
        )
        assert plan.site_files[0].tolist() == plan.site_files[1].tolist()

    def test_budget_length_checked(self, trace):
        partition = find_filecules(trace)
        with pytest.raises(ValueError):
            FileculeReplication().plan(trace, partition, np.array([10]))


class TestEvaluation:
    def test_perfect_plan_scores_one(self, trace):
        out = evaluate_replication(
            trace,
            FileculeReplication(),
            budget_bytes_per_site=1000,
            warmup_fraction=0.5,
        )
        # warmup jobs cover exactly the files requested later at each site
        assert out.local_byte_fraction == pytest.approx(1.0)
        assert out.job_complete_fraction == pytest.approx(1.0)
        assert out.used_fraction == pytest.approx(1.0)

    def test_zero_budget(self, trace):
        out = evaluate_replication(
            trace, FileculeReplication(), budget_bytes_per_site=0
        )
        assert out.push_bytes == 0
        assert out.local_byte_fraction == 0.0
        assert out.used_fraction == 0.0

    def test_bad_warmup_fraction(self, trace):
        with pytest.raises(ValueError):
            evaluate_replication(
                trace, FileculeReplication(), 10, warmup_fraction=1.5
            )

    def test_compare_strategies_shared_split(self, trace):
        outs = compare_strategies(
            trace,
            [FileGranularityReplication(), FileculeReplication()],
            budget_bytes_per_site=1000,
        )
        assert [o.strategy for o in outs] == [
            "file-rank",
            "filecule-rank",
        ]
        assert outs[0].eval_jobs == outs[1].eval_jobs

    def test_grid_replay_attached(self, trace):
        out = evaluate_replication(
            trace,
            FileculeReplication(),
            budget_bytes_per_site=1000,
            with_grid_replay=True,
        )
        assert out.grid_report is not None
        assert out.grid_report.local_byte_fraction == pytest.approx(1.0)

    def test_generated_trace_ordering(self, small_trace):
        outs = compare_strategies(
            small_trace,
            [FileculeReplication(), GlobalPopularityReplication()],
            budget_bytes_per_site=int(0.02 * small_trace.total_bytes()),
        )
        for o in outs:
            assert 0.0 <= o.local_byte_fraction <= 1.0
            assert 0.0 <= o.used_fraction <= 1.0
            assert o.eval_jobs > 0
