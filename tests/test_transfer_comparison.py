"""Unit tests for the BitTorrent feasibility assessment."""

import pytest

from repro.core.identify import find_filecules
from repro.transfer.comparison import bittorrent_feasibility
from tests.conftest import make_trace


@pytest.fixture()
def trace():
    return make_trace(
        [[0, 1], [0, 1], [0, 1], [2], [2]],
        job_users=[0, 1, 2, 0, 0],
        n_users=3,
        file_sizes=[10**9, 10**9, 10**9],
        job_starts=[0.0, 3600.0, 7200.0, 0.0, 50.0],
    )


class TestFeasibility:
    def test_rows_ranked_by_sharing(self, trace):
        rows = bittorrent_feasibility(trace, find_filecules(trace), top_k=2)
        assert len(rows) == 2
        assert rows[0].n_users >= rows[1].n_users

    def test_row_fields(self, trace):
        row = bittorrent_feasibility(trace, find_filecules(trace), top_k=1)[0]
        assert row.n_files == 2
        assert row.size_bytes == 2 * 10**9
        assert row.n_jobs == 3
        assert row.n_users == 3
        assert row.speedup >= 1.0 - 1e-9

    def test_spread_arrivals_no_speedup(self, trace):
        row = bittorrent_feasibility(trace, find_filecules(trace), top_k=1)[0]
        # hour-apart arrivals with sub-hour transfers: no concurrency
        assert row.speedup == pytest.approx(1.0, abs=0.05)

    def test_top_k_capped_by_partition(self, trace):
        rows = bittorrent_feasibility(trace, find_filecules(trace), top_k=100)
        assert len(rows) == len(find_filecules(trace))

    def test_bad_top_k(self, trace):
        with pytest.raises(ValueError):
            bittorrent_feasibility(trace, find_filecules(trace), top_k=0)

    def test_generated_workload_verdict(self, tiny_trace, tiny_partition):
        rows = bittorrent_feasibility(tiny_trace, tiny_partition, top_k=3)
        assert all(r.speedup < 1.5 for r in rows)
