"""Unit tests for job input-set overlap diagnostics."""

import numpy as np
import pytest

from repro.analysis.overlap import (
    job_set_reuse,
    pairwise_jaccard_sample,
)
from tests.conftest import make_trace


class TestJobSetReuse:
    def test_counts(self):
        t = make_trace([[0, 1], [0, 1], [2], []])
        reuse = job_set_reuse(t)
        assert reuse.n_traced_jobs == 3
        assert reuse.n_distinct_sets == 2
        assert reuse.reuse_fraction == pytest.approx(1 / 3)
        assert reuse.max_set_requests == 2
        assert reuse.mean_requests_per_set == pytest.approx(1.5)

    def test_no_traced_jobs(self):
        t = make_trace([[], []], n_files=1)
        reuse = job_set_reuse(t)
        assert reuse.n_traced_jobs == 0
        assert reuse.reuse_fraction == 0.0

    def test_all_identical(self):
        t = make_trace([[0, 1]] * 5)
        reuse = job_set_reuse(t)
        assert reuse.n_distinct_sets == 1
        assert reuse.reuse_fraction == pytest.approx(0.8)

    def test_generated_workload_has_reuse(self, tiny_trace):
        """The dataset model guarantees recurring input sets."""
        reuse = job_set_reuse(tiny_trace)
        assert reuse.reuse_fraction > 0.3
        assert reuse.max_set_requests >= 2


class TestPairwiseJaccard:
    def test_identical_pair_is_one(self):
        t = make_trace([[0, 1], [0, 1]])
        sample = pairwise_jaccard_sample(t, n_pairs=100, seed=0)
        assert sample.identical_fraction == 1.0

    def test_disjoint_pair_is_zero(self):
        t = make_trace([[0], [1]])
        sample = pairwise_jaccard_sample(t, n_pairs=200, seed=0)
        # pairs of the same job score 1; distinct jobs score 0
        assert sample.disjoint_fraction + sample.identical_fraction == 1.0
        assert sample.partial_fraction == 0.0

    def test_partial_overlap_detected(self):
        t = make_trace([[0, 1, 2], [1, 2, 3]])
        sample = pairwise_jaccard_sample(t, n_pairs=400, seed=0)
        assert sample.partial_fraction > 0.0
        # J({0,1,2},{1,2,3}) = 2/4
        partial = sample.jaccards[(sample.jaccards > 0) & (sample.jaccards < 1)]
        assert np.allclose(partial, 0.5)

    def test_deterministic(self, tiny_trace):
        a = pairwise_jaccard_sample(tiny_trace, n_pairs=50, seed=9)
        b = pairwise_jaccard_sample(tiny_trace, n_pairs=50, seed=9)
        np.testing.assert_array_equal(a.jaccards, b.jaccards)

    def test_degenerate_inputs(self):
        t = make_trace([[0]])
        assert pairwise_jaccard_sample(t, n_pairs=10).n_pairs == 0
        t2 = make_trace([[0], [1]])
        assert pairwise_jaccard_sample(t2, n_pairs=0).n_pairs == 0
        with pytest.raises(ValueError):
            pairwise_jaccard_sample(t2, n_pairs=-1)

    def test_generated_workload_has_partial_overlap(self, tiny_trace):
        """Partial overlaps are what create sub-dataset filecules."""
        sample = pairwise_jaccard_sample(tiny_trace, n_pairs=500, seed=1)
        assert sample.partial_fraction > 0.0
        assert 0.0 <= sample.mean_nonzero_jaccard <= 1.0
