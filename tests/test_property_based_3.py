"""Third property battery: trace algebra (subset/filter/split) and
generator locality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.identify import find_filecules
from repro.traces.filters import filter_by_time, split_epochs
from repro.traces.combine import concat_traces, subsample_jobs
from tests.conftest import make_trace

job_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=5),
    min_size=1,
    max_size=10,
)


def build(jobs):
    return make_trace(jobs, n_files=10)


class TestTraceAlgebra:
    @given(job_lists, st.integers(min_value=1, max_value=5))
    @settings(max_examples=80, deadline=None)
    def test_epoch_split_conserves_jobs_and_accesses(self, jobs, n_epochs):
        trace = build(jobs)
        epochs = split_epochs(trace, n_epochs)
        assert sum(e.n_jobs for e in epochs) == trace.n_jobs
        assert sum(e.n_accesses for e in epochs) == trace.n_accesses

    @given(job_lists, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_split_concat_identity_for_identification(self, jobs, n_epochs):
        trace = build(jobs)
        rebuilt = concat_traces(split_epochs(trace, n_epochs))
        a = sorted(tuple(fc.file_ids.tolist()) for fc in find_filecules(trace))
        b = sorted(
            tuple(fc.file_ids.tolist()) for fc in find_filecules(rebuilt)
        )
        assert a == b

    @given(job_lists)
    @settings(max_examples=60, deadline=None)
    def test_subset_masks_compose(self, jobs):
        trace = build(jobs)
        rng = np.random.default_rng(0)
        m1 = rng.random(trace.n_jobs) < 0.7
        sub1 = trace.subset_jobs(m1)
        m2 = rng.random(sub1.n_jobs) < 0.7
        sub2 = sub1.subset_jobs(m2)
        # composing subsets keeps provenance through job_labels
        direct = trace.subset_jobs(
            np.isin(np.arange(trace.n_jobs), sub2.job_labels)
        )
        assert sub2.n_jobs == direct.n_jobs
        np.testing.assert_array_equal(
            np.sort(sub2.job_labels), np.sort(direct.job_labels)
        )

    @given(job_lists, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_subsample_bounds(self, jobs, fraction):
        trace = build(jobs)
        sub = subsample_jobs(trace, fraction, seed=1)
        assert 0 <= sub.n_jobs <= trace.n_jobs

    @given(job_lists)
    @settings(max_examples=60, deadline=None)
    def test_time_window_filters_partition_the_jobs(self, jobs):
        trace = build(jobs)
        t_lo, t_hi = trace.time_span()
        mid = (t_lo + t_hi) / 2.0
        early = filter_by_time(trace, t_lo, mid)
        late = filter_by_time(trace, mid, t_hi + 1.0)
        assert early.n_jobs + late.n_jobs == trace.n_jobs


class TestGeneratorLocality:
    def test_locality_boost_shapes_interest(self):
        """Users request datasets homed in their own domain far more often
        than the uniform baseline would predict."""
        from repro.workload.calibration import small_config
        from repro.workload.datasets import build_population
        from repro.workload.generator import generate_trace
        from repro.util.rng import spawn_children, as_generator

        cfg = small_config()
        trace = generate_trace(cfg, seed=11)
        # rebuild the same population to recover dataset home domains
        master = as_generator(11)
        rng_pop = spawn_children(master, 6)[0]
        population, catalog = build_population(cfg, rng_pop)

        # map each traced job's first file to its covering dataset's home:
        # approximate via the job's file range midpoint
        hits = 0
        total = 0
        ptr = trace.job_access_ptr
        for j in range(trace.n_jobs):
            files = trace.access_files[ptr[j] : ptr[j + 1]]
            if len(files) == 0:
                continue
            mid = int(files[len(files) // 2])
            covering = np.flatnonzero(
                (catalog.starts <= mid)
                & (mid < catalog.starts + catalog.lengths)
            )
            if len(covering) == 0:
                continue
            homes = set(catalog.home_domains[covering].tolist())
            user_domain = int(trace.user_domains[trace.job_users[j]])
            total += 1
            if user_domain in homes:
                hits += 1
        assert total > 0
        # with 12 domains a locality-blind picker would land near the
        # domain-weight mass; the boost must push well above chance
        assert hits / total > 0.5
