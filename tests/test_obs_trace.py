"""Tracing: spans, rid binding, ring-buffer recorder, JSONL export."""

import json

import pytest

from repro.obs import trace


@pytest.fixture()
def recorder():
    return trace.SpanRecorder(capacity=8)


class TestSpanContextManager:
    def test_span_records_name_fields_and_duration(self, recorder):
        with trace.span("advise", recorder=recorder, site=3) as fields:
            fields["n_entries"] = 2
        (span,) = recorder.spans()
        assert span.name == "advise"
        assert span.status == "ok"
        assert span.duration_s >= 0.0
        assert span.fields == {"site": 3, "n_entries": 2}

    def test_span_error_status_and_propagation(self, recorder):
        with pytest.raises(RuntimeError):
            with trace.span("boom", recorder=recorder):
                raise RuntimeError("nope")
        (span,) = recorder.spans()
        assert span.status == "error"

    def test_explicit_rid_wins(self, recorder):
        with trace.bind_rid("ctx-1"):
            with trace.span("x", recorder=recorder, rid="explicit"):
                pass
        assert recorder.spans()[0].rid == "explicit"

    def test_rid_defaults_to_bound_context(self, recorder):
        with trace.bind_rid("ctx-2"):
            with trace.span("x", recorder=recorder):
                pass
        with trace.span("y", recorder=recorder):
            pass
        rids = [s.rid for s in recorder.spans()]
        assert rids == ["ctx-2", None]


class TestRidBinding:
    def test_bind_and_restore(self):
        assert trace.current_rid() is None
        with trace.bind_rid("abc"):
            assert trace.current_rid() == "abc"
            with trace.bind_rid("nested"):
                assert trace.current_rid() == "nested"
            assert trace.current_rid() == "abc"
        assert trace.current_rid() is None

    def test_new_rid_unique_and_prefixed(self):
        a, b = trace.new_rid("load"), trace.new_rid("load")
        assert a != b
        assert a.startswith("load") and b.startswith("load")


class TestSpanRecorder:
    def test_ring_eviction_counts_dropped(self):
        rec = trace.SpanRecorder(capacity=3)
        for i in range(5):
            with trace.span(f"s{i}", recorder=rec):
                pass
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [s.name for s in rec.spans()] == ["s2", "s3", "s4"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            trace.SpanRecorder(capacity=0)

    def test_clear(self, recorder):
        with trace.span("a", recorder=recorder):
            pass
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0

    def test_jsonl_export_round_trips(self, recorder, tmp_path):
        with trace.bind_rid("req-9"):
            with trace.span("op.ingest", recorder=recorder, site=0) as f:
                f["n_files"] = 4
        path = tmp_path / "sub" / "spans.jsonl"
        n = recorder.export_jsonl(path)  # creates parent dirs
        assert n == 1
        lines = path.read_text().splitlines()
        record = json.loads(lines[0])
        assert record["name"] == "op.ingest"
        assert record["rid"] == "req-9"
        assert record["status"] == "ok"
        assert record["n_files"] == 4
        assert record["site"] == 0
        assert record["duration_ms"] >= 0.0
        assert record == json.loads(recorder.to_jsonl().splitlines()[0])

    def test_global_recorder_swap(self):
        mine = trace.SpanRecorder(capacity=4)
        previous = trace.set_recorder(mine)
        try:
            with trace.span("global"):
                pass
            assert [s.name for s in mine.spans()] == ["global"]
        finally:
            trace.set_recorder(previous)
