"""Unit tests for Filecule and FileculePartition containers."""

import numpy as np
import pytest

from repro.core.filecule import Filecule, FileculePartition
from repro.core.identify import find_filecules
from tests.conftest import make_trace


class TestFilecule:
    def test_sorted_and_frozen(self):
        fc = Filecule(0, np.array([3, 1, 2]), n_requests=1, size_bytes=6)
        assert fc.file_ids.tolist() == [1, 2, 3]
        with pytest.raises(ValueError):
            fc.file_ids[0] = 9

    def test_contains(self):
        fc = Filecule(0, np.array([1, 5, 9]), 1, 3)
        assert 5 in fc
        assert 4 not in fc
        assert 10 not in fc

    def test_len_and_monatomic(self):
        assert len(Filecule(0, np.array([1]), 1, 1)) == 1
        assert Filecule(0, np.array([1]), 1, 1).is_monatomic
        assert not Filecule(0, np.array([1, 2]), 1, 2).is_monatomic

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one file"):
            Filecule(0, np.array([], dtype=np.int64), 0, 0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Filecule(0, np.array([1]), -1, 0)
        with pytest.raises(ValueError):
            Filecule(0, np.array([1]), 0, -5)

    def test_str(self):
        s = str(Filecule(3, np.array([1, 2]), 7, 2048))
        assert "#3" in s and "2 files" in s and "7 requests" in s


class TestPartitionConstruction:
    def test_overlap_rejected(self):
        a = Filecule(0, np.array([0, 1]), 1, 2)
        b = Filecule(1, np.array([1, 2]), 1, 2)
        with pytest.raises(ValueError, match="overlaps"):
            FileculePartition([a, b], n_files=3)

    def test_out_of_range_rejected(self):
        a = Filecule(0, np.array([5]), 1, 1)
        with pytest.raises(ValueError, match="beyond"):
            FileculePartition([a], n_files=3)

    def test_labels(self):
        a = Filecule(0, np.array([0, 2]), 1, 2)
        b = Filecule(1, np.array([1]), 1, 1)
        p = FileculePartition([a, b], n_files=4)
        assert p.labels.tolist() == [0, 1, 0, -1]
        assert p.n_covered_files == 3


class TestPartitionStats:
    def test_vector_columns(self, classic_trace):
        p = find_filecules(classic_trace)
        assert p.files_per_filecule.sum() == 7
        assert len(p.sizes_bytes) == len(p)
        assert len(p.requests) == len(p)

    def test_filecules_per_job(self, classic_trace):
        p = find_filecules(classic_trace)
        per_job = p.filecules_per_job(classic_trace)
        # job 0: {0,1},{2,3} -> 2; job 1: {2,3},{4} -> 2; job 2: {0,1},{4} -> 2
        # job 3: {5} -> 1; job 4: {0,1},{6} -> 2
        assert per_job.tolist() == [2, 2, 2, 1, 2]

    def test_filecules_per_job_wrong_trace(self, classic_trace):
        p = find_filecules(classic_trace)
        other = make_trace([[0]], n_files=2)
        with pytest.raises(ValueError):
            p.filecules_per_job(other)

    def test_users_per_filecule(self):
        t = make_trace(
            [[0, 1], [0, 1], [2]],
            job_users=[0, 1, 1],
            n_users=2,
        )
        p = find_filecules(t)
        users = p.users_per_filecule(t)
        by_group = {
            tuple(fc.file_ids.tolist()): int(users[fc.filecule_id]) for fc in p
        }
        assert by_group == {(0, 1): 2, (2,): 1}

    def test_sites_per_filecule(self):
        t = make_trace(
            [[0], [0]],
            job_nodes=[0, 1],
            node_sites=[0, 1],
            node_domains=[0, 0],
            site_names=["s0", "s1"],
        )
        p = find_filecules(t)
        assert p.sites_per_filecule(t).tolist() == [2]

    def test_dominant_tiers(self):
        t = make_trace([[0, 1]], file_tiers=[2, 2])
        p = find_filecules(t)
        assert p.dominant_tiers(t).tolist() == [2]

    def test_representative_files(self, classic_trace):
        p = find_filecules(classic_trace)
        reps = p.representative_files()
        for fc, rep in zip(p, reps):
            assert rep == fc.file_ids[0]
