"""Unit tests for the discrete-event simulation core."""

import pytest

from repro.sam.events import Simulation


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        log = []
        sim.at(5.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_ties_break_by_schedule_order(self):
        sim = Simulation()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(1.0, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_after_relative(self):
        sim = Simulation(start_time=10.0)
        log = []
        sim.after(5.0, lambda: log.append(sim.now))
        sim.run()
        assert log == [15.0]

    def test_past_scheduling_rejected(self):
        sim = Simulation(start_time=10.0)
        with pytest.raises(ValueError):
            sim.at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda: None)

    def test_callbacks_can_schedule(self):
        sim = Simulation()
        log = []

        def chain():
            log.append(sim.now)
            if sim.now < 3.0:
                sim.after(1.0, chain)

        sim.at(1.0, chain)
        sim.run()
        assert log == [1.0, 2.0, 3.0]

    def test_cancel(self):
        sim = Simulation()
        log = []
        event = sim.at(1.0, lambda: log.append("x"))
        event.cancel()
        sim.run()
        assert log == []
        assert sim.processed == 0

    def test_run_until(self):
        sim = Simulation()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(5.0, lambda: log.append(5))
        sim.run(until=3.0)
        assert log == [1]
        assert sim.now == 3.0
        sim.run()
        assert log == [1, 5]

    def test_max_events_guard(self):
        sim = Simulation()

        def forever():
            sim.after(1.0, forever)

        sim.at(0.0, forever)
        with pytest.raises(RuntimeError, match="scheduling loop"):
            sim.run(max_events=100)

    def test_step(self):
        sim = Simulation()
        sim.at(2.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False
