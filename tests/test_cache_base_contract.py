"""Contract tests for the policy base class and simulator driving."""

import numpy as np
import pytest

from repro.cache.base import ReplacementPolicy, RequestOutcome
from repro.cache.simulator import simulate
from tests.conftest import make_trace


class RecordingPolicy(ReplacementPolicy):
    """Caches nothing; records the begin_job/request call sequence."""

    name = "recording"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self.calls: list[tuple] = []

    def begin_job(self, file_ids, now: float) -> None:
        self.calls.append(("job", tuple(int(f) for f in file_ids), now))

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        self.calls.append(("req", file_id, now))
        return RequestOutcome(hit=False, bytes_fetched=size)

    def __contains__(self, file_id: int) -> bool:
        return False


class TestSimulatorDriving:
    def test_begin_job_once_per_job_before_its_requests(self):
        trace = make_trace([[0, 1], [2], [0]])
        policy_holder: list[RecordingPolicy] = []

        def factory(capacity):
            policy = RecordingPolicy(capacity)
            policy_holder.append(policy)
            return policy

        simulate(trace, factory, capacity=100)
        calls = policy_holder[0].calls
        job_calls = [c for c in calls if c[0] == "job"]
        assert [c[1] for c in job_calls] == [(0, 1), (2,), (0,)]
        # the announcement precedes the job's first request
        first_job_idx = calls.index(("job", (0, 1), 0.0))
        first_req_idx = calls.index(("req", 0, 0.0))
        assert first_job_idx < first_req_idx

    def test_every_access_becomes_exactly_one_request(self):
        trace = make_trace([[0, 1, 2], [1]])
        holder: list[RecordingPolicy] = []

        def factory(capacity):
            policy = RecordingPolicy(capacity)
            holder.append(policy)
            return policy

        metrics = simulate(trace, factory, capacity=100)
        reqs = [c for c in holder[0].calls if c[0] == "req"]
        assert len(reqs) == trace.n_accesses == metrics.requests

    def test_request_timestamp_is_job_start(self):
        trace = make_trace([[0]], job_starts=[123.0])
        holder: list[RecordingPolicy] = []

        def factory(capacity):
            policy = RecordingPolicy(capacity)
            holder.append(policy)
            return policy

        simulate(trace, factory, capacity=100)
        assert holder[0].calls[-1] == ("req", 0, 123.0)


class TestCapacityGuards:
    def test_overcharge_detected(self):
        class BrokenPolicy(ReplacementPolicy):
            name = "broken"

            def request(self, file_id, size, now):
                self._charge(size)  # never evicts
                return RequestOutcome(hit=False, bytes_fetched=size)

            def __contains__(self, file_id):
                return False

        p = BrokenPolicy(10)
        p.request(0, 10, 0.0)
        with pytest.raises(RuntimeError, match="eviction logic is broken"):
            p.request(1, 10, 0.0)

    def test_negative_release_detected(self):
        class Leaky(ReplacementPolicy):
            name = "leaky"

            def request(self, file_id, size, now):  # pragma: no cover
                return RequestOutcome(hit=True)

            def __contains__(self, file_id):  # pragma: no cover
                return False

        p = Leaky(10)
        with pytest.raises(RuntimeError, match="negative occupancy"):
            p._release(5)

    def test_free_bytes(self):
        class Noop(ReplacementPolicy):
            name = "noop"

            def request(self, file_id, size, now):  # pragma: no cover
                return RequestOutcome(hit=True)

            def __contains__(self, file_id):  # pragma: no cover
                return False

        p = Noop(100)
        assert p.free_bytes == 100
        p._charge(30)
        assert p.free_bytes == 70
