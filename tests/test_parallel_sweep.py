"""Process-parallel sweep engine: equivalence, failure and leak hygiene.

The central contract of :mod:`repro.parallel` is that ``sweep(jobs=N)``
is *bit-identical* to the serial path — same :class:`CacheMetrics`
dataclasses, field for field — for every policy in the repository, since
each worker runs the very same :func:`~repro.cache.simulator.simulate`
over byte-identical shared-memory columns.
"""

from __future__ import annotations

import io
import os
from pathlib import Path

import numpy as np
import pytest

from repro.cache.arc import AdaptiveReplacementCache
from repro.cache.belady import BeladyMIN, FileculeBeladyMIN
from repro.cache.bundle import FileBundleCache
from repro.cache.fifo import FileFIFO
from repro.cache.filecule_lru import FileculeLRU
from repro.cache.filecule_variants import FileculeGDS, FileculeLFU
from repro.cache.frequency import FileLFU
from repro.cache.gds import GreedyDualSize, Landlord
from repro.cache.lru import FileLRU
from repro.cache.prefetch import GroupPrefetchLRU
from repro.cache.simulator import sweep
from repro.cache.size import LargestFirst
from repro.cache.working_set import WorkingSetPrefetchLRU
from repro.experiments.fig10 import capacities_for
from repro.obs.instrument import Instrumentation, ProgressReporter, SimStats
from repro.parallel import (
    SEGMENT_PREFIX,
    ParallelSweepRunner,
    SharedTraceBuffers,
    SweepCellError,
    attach_trace,
)

SHM_DIR = Path("/dev/shm")


@pytest.fixture(autouse=True)
def _force_parallel(monkeypatch):
    """Keep ``jobs>1`` tests on the pool even on small hosts.

    ``parallel_sweep`` auto-serializes when the plan says a pool cannot
    win (one CPU, tiny grid).  These tests exist to exercise the pool
    machinery itself, so force the parallel path regardless of host
    shape; the auto-serial decision is covered by its own suite.
    """
    monkeypatch.setenv("REPRO_PARALLEL_FORCE", "1")


def _leaked_segments() -> list[str]:
    if not SHM_DIR.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in SHM_DIR.glob(f"{SEGMENT_PREFIX}*"))


def all_policy_factories(trace, partition) -> dict:
    """One factory per replacement policy shipped in the repository."""
    return {
        "file-fifo": lambda c: FileFIFO(c),
        "file-lru": lambda c: FileLRU(c),
        "file-lfu": lambda c: FileLFU(c),
        "largest-first": lambda c: LargestFirst(c),
        "greedy-dual-size": lambda c: GreedyDualSize(c),
        "landlord": lambda c: Landlord(c),
        "arc": lambda c: AdaptiveReplacementCache(c),
        "file-bundle": lambda c: FileBundleCache(c),
        "group-prefetch-lru": lambda c: GroupPrefetchLRU(
            c, trace.file_datasets.astype("int64"), trace.file_sizes
        ),
        "working-set-prefetch": lambda c: WorkingSetPrefetchLRU(
            c, trace.file_sizes
        ),
        "file-belady-min": lambda c: BeladyMIN(c, trace),
        "filecule-lru": lambda c: FileculeLRU(c, partition),
        "filecule-lfu": lambda c: FileculeLFU(c, partition),
        "filecule-gds": lambda c: FileculeGDS(c, partition),
        "filecule-belady-min": lambda c: FileculeBeladyMIN(
            c, trace, partition
        ),
    }


def assert_results_identical(serial, parallel) -> None:
    assert parallel.capacities == serial.capacities
    assert set(parallel.metrics) == set(serial.metrics)
    for name, cells in serial.metrics.items():
        for ref, got in zip(cells, parallel.metrics[name]):
            assert got == ref, f"{name}@{ref.capacity_bytes} diverged"


class TestEquivalence:
    def test_every_policy_bit_identical(self, tiny_trace, tiny_partition):
        factories = all_policy_factories(tiny_trace, tiny_partition)
        total = tiny_trace.total_bytes()
        caps = [max(int(f * total), 1) for f in (0.01, 0.05)]
        serial = sweep(tiny_trace, factories, caps)
        parallel = sweep(tiny_trace, factories, caps, jobs=2)
        assert_results_identical(serial, parallel)

    def test_fig10_grid_bit_identical(self, tiny_trace, tiny_partition):
        factories = {
            "file-lru": lambda c: FileLRU(c),
            "filecule-lru": lambda c: FileculeLRU(c, tiny_partition),
        }
        caps = capacities_for(tiny_trace.total_bytes())
        serial = sweep(tiny_trace, factories, caps)
        for jobs in (2, 4):
            assert_results_identical(
                serial, sweep(tiny_trace, factories, caps, jobs=jobs)
            )

    def test_instrumented_parallel_matches_uninstrumented_serial(
        self, tiny_trace
    ):
        factories = {"file-lru": lambda c: FileLRU(c)}
        caps = [tiny_trace.total_bytes() // 50]
        serial = sweep(tiny_trace, factories, caps)
        parallel = sweep(
            tiny_trace, factories, caps, instrumentation=SimStats(), jobs=2
        )
        assert_results_identical(serial, parallel)


class TestSpecDispatch:
    """Registry spec strings as the worker wire format (no closures)."""

    def test_spec_grid_matches_factory_grid_in_parallel(
        self, tiny_trace, tiny_partition
    ):
        total = tiny_trace.total_bytes()
        caps = [max(int(f * total), 1) for f in (0.01, 0.05)]
        factories = all_policy_factories(tiny_trace, tiny_partition)
        by_factory = sweep(tiny_trace, factories, caps, jobs=2)
        by_spec = sweep(
            tiny_trace,
            {name: name for name in factories},
            caps,
            jobs=2,
            partition=tiny_partition,
        )
        assert_results_identical(by_factory, by_spec)

    def test_spec_grid_ships_names_not_closures(
        self, tiny_trace, tiny_partition, monkeypatch
    ):
        """Spec-mode initargs are plain picklable data: the worker table
        is ``{display name: spec string}``, never factory callables."""
        import multiprocessing
        import pickle

        from repro.parallel import runner as runner_mod

        captured = {}

        class SpyingContext:
            """Parent-side wrapper recording the Pool initargs."""

            def __init__(self, real):
                self._real = real

            def Pool(self, processes, initializer=None, initargs=()):
                captured["initargs"] = initargs
                return self._real.Pool(
                    processes, initializer=initializer, initargs=initargs
                )

            def __getattr__(self, name):
                return getattr(self._real, name)

        runner = runner_mod.ParallelSweepRunner(1)
        monkeypatch.setattr(
            runner,
            "_pick_context",
            lambda spec_mode: SpyingContext(
                multiprocessing.get_context("fork")
            ),
        )
        runner.run(
            tiny_trace,
            ("file-lru", "filecule-lru?intra_job_hits=false"),
            [tiny_trace.total_bytes() // 100],
            partition=tiny_partition,
        )
        _spec, policy_defs, _progress, _stats = captured["initargs"]
        pickle.dumps(policy_defs)  # plain data: survives any start method
        mode, table, _partition = policy_defs
        assert mode == "specs"
        assert table == {
            "file-lru": "file-lru",
            "filecule-lru?intra_job_hits=false": (
                "filecule-lru?intra_job_hits=false"
            ),
        }
        for value in table.values():
            assert isinstance(value, str)

    def test_unknown_spec_rejected_in_parent_before_any_worker(
        self, tiny_trace
    ):
        from repro.registry import UnknownPolicyError

        before = _leaked_segments()
        with pytest.raises(UnknownPolicyError, match="unknown policy"):
            sweep(tiny_trace, ("definitely-not-a-policy",), [100], jobs=2)
        assert _leaked_segments() == before


class TestFailureAndLeaks:
    def test_worker_exception_names_the_cell(self, tiny_trace):
        def exploding(capacity):
            raise RuntimeError("policy construction exploded")

        capacity = tiny_trace.total_bytes() // 100
        with pytest.raises(
            SweepCellError, match=r"policy 'boom' at capacity \d+"
        ) as excinfo:
            sweep(
                tiny_trace,
                {"file-lru": lambda c: FileLRU(c), "boom": exploding},
                [capacity],
                jobs=2,
            )
        assert excinfo.value.policy == "boom"
        assert excinfo.value.capacity == capacity

    def test_shm_unlinked_even_on_failure(self, tiny_trace):
        before = _leaked_segments()

        def exploding(capacity):
            raise RuntimeError("boom")

        with pytest.raises(SweepCellError):
            sweep(
                tiny_trace,
                {"boom": exploding},
                [tiny_trace.total_bytes() // 100],
                jobs=2,
            )
        assert _leaked_segments() == before

    def test_shm_unlinked_on_success(self, tiny_trace):
        before = _leaked_segments()
        sweep(
            tiny_trace,
            {"file-lru": lambda c: FileLRU(c)},
            [tiny_trace.total_bytes() // 100],
            jobs=2,
        )
        assert _leaked_segments() == before


class TestSharedTrace:
    def test_roundtrip_is_zero_copy_and_equal(self, tiny_trace):
        with SharedTraceBuffers(tiny_trace) as buffers:
            rebuilt, shm = attach_trace(buffers.spec)
            try:
                assert rebuilt.n_jobs == tiny_trace.n_jobs
                assert rebuilt.n_files == tiny_trace.n_files
                assert rebuilt.n_accesses == tiny_trace.n_accesses
                np.testing.assert_array_equal(
                    rebuilt.access_files, tiny_trace.access_files
                )
                np.testing.assert_array_equal(
                    rebuilt.access_jobs, tiny_trace.access_jobs
                )
                np.testing.assert_array_equal(
                    rebuilt.file_sizes, tiny_trace.file_sizes
                )
                np.testing.assert_array_equal(
                    rebuilt.job_access_ptr, tiny_trace.job_access_ptr
                )
                assert rebuilt.site_names == tiny_trace.site_names
                # Views into the segment, not copies.
                assert not rebuilt.access_files.flags["OWNDATA"]
                assert not rebuilt.file_sizes.flags["OWNDATA"]
            finally:
                shm.close()


class TestObservability:
    def test_progress_forwarded_from_workers(self, tiny_trace):
        stream = io.StringIO()
        reporter = ProgressReporter(
            "ptest", progress_every=512, min_interval_s=0.0, stream=stream
        )
        sweep(
            tiny_trace,
            {"file-lru": lambda c: FileLRU(c)},
            [tiny_trace.total_bytes() // 50],
            instrumentation=reporter,
            jobs=2,
        )
        out = stream.getvalue()
        assert "[ptest file-lru@" in out
        assert f"{tiny_trace.n_accesses}/{tiny_trace.n_accesses}" in out

    def test_simstats_merged_across_workers(self, tiny_trace):
        caps = [tiny_trace.total_bytes() // 100, tiny_trace.total_bytes() // 10]
        factories = {"file-lru": lambda c: FileLRU(c)}
        serial_stats = SimStats()
        sweep(tiny_trace, factories, caps, instrumentation=serial_stats)
        parallel_stats = SimStats()
        sweep(
            tiny_trace,
            factories,
            caps,
            instrumentation=parallel_stats,
            jobs=2,
        )
        assert parallel_stats.accesses == serial_stats.accesses
        assert parallel_stats.hits == serial_stats.hits
        assert parallel_stats.misses == serial_stats.misses
        assert parallel_stats.bytes_fetched == serial_stats.bytes_fetched
        assert parallel_stats.bytes_evicted == serial_stats.bytes_evicted

    def test_worker_registries_merged(self, tiny_trace):
        runner = ParallelSweepRunner(2)
        caps = [tiny_trace.total_bytes() // 100, tiny_trace.total_bytes() // 10]
        runner.run(
            tiny_trace, {"file-lru": lambda c: FileLRU(c)}, caps
        )
        assert runner.registry.get("sweep_cells", policy="file-lru") == len(caps)
        assert (
            runner.registry.get("sweep_accesses", policy="file-lru")
            == tiny_trace.n_accesses * len(caps)
        )
        exposition = runner.registry.expose()
        assert "repro_sweep_cells_total" in exposition
        assert "repro_sweep_cell_seconds" in exposition


class TestValidationAndClamping:
    def test_jobs_must_be_positive(self, tiny_trace):
        with pytest.raises(ValueError, match="jobs"):
            sweep(
                tiny_trace, {"file-lru": lambda c: FileLRU(c)}, [100], jobs=0
            )
        with pytest.raises(ValueError, match="jobs"):
            ParallelSweepRunner(0)

    def test_unsupported_instrumentation_rejected(self, tiny_trace):
        class PerAccessHook(Instrumentation):
            pass

        with pytest.raises(ValueError, match="unsupported instrumentation"):
            sweep(
                tiny_trace,
                {"file-lru": lambda c: FileLRU(c)},
                [100],
                instrumentation=PerAccessHook(),
                jobs=2,
            )

    def test_pool_clamped_to_cpus_unless_oversubscribed(self, tiny_trace):
        factories = {"file-lru": lambda c: FileLRU(c)}
        caps = [tiny_trace.total_bytes() // 100, tiny_trace.total_bytes() // 10]
        clamped = ParallelSweepRunner(64)
        clamped.run(tiny_trace, factories, caps)
        assert clamped.effective_jobs == min(len(caps), os.cpu_count() or 64)
        forced = ParallelSweepRunner(64, oversubscribe=True)
        forced.run(tiny_trace, factories, caps)
        assert forced.effective_jobs == len(caps)  # cell count still caps
