"""Metrics: histogram quantile semantics, labels, merge, exposition.

Includes the regression for ``percentile(0.0)`` — with data recorded, it
previously returned the bucket-0 upper bound (1 µs) regardless of where
the observations actually landed, because rank 0 satisfied the
cumulative walk at the first (empty) bucket.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    FIRST_BOUND,
    GROWTH,
    LatencyHistogram,
    MetricsRegistry,
)


class TestLatencyHistogram:
    def test_percentile_zero_regression(self):
        """q=0 must report the latency floor, not the 1 µs bucket bound."""
        h = LatencyHistogram()
        h.record(0.5)  # a single 500 ms observation
        p0 = h.percentile(0.0)
        assert p0 >= 0.4, f"q=0 returned {p0} — the old bucket-0 bug"
        assert p0 >= h.min

    def test_percentile_zero_first_nonempty_bucket(self):
        h = LatencyHistogram()
        for v in (0.010, 0.200, 0.900):
            h.record(v)
        # the floor is the 10 ms observation's bucket, not 1 µs
        assert 0.010 <= h.percentile(0.0) <= 0.010 * GROWTH

    def test_min_tracked_and_in_snapshot(self):
        h = LatencyHistogram()
        assert h.min == 0.0  # empty
        h.record(0.03)
        h.record(0.001)
        h.record(2.0)
        assert h.min == 0.001
        snap = h.snapshot()
        assert snap["min_ms"] == pytest.approx(1.0)
        assert snap["max_ms"] == pytest.approx(2000.0)

    def test_empty_percentiles_are_zero(self):
        h = LatencyHistogram()
        assert h.percentile(0.0) == 0.0
        assert h.percentile(0.5) == 0.0
        assert h.percentile(1.0) == 0.0

    def test_percentile_rejects_out_of_range(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.percentile(1.5)
        with pytest.raises(ValueError):
            h.percentile(-0.1)

    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=1e-7, max_value=100.0), min_size=1, max_size=60
        ),
        q1=st.floats(min_value=0.0, max_value=1.0),
        q2=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_percentile_monotone_and_bounded(self, samples, q1, q2):
        h = LatencyHistogram()
        for s in samples:
            h.record(s)
        lo, hi = min(q1, q2), max(q1, q2)
        p_lo, p_hi = h.percentile(lo), h.percentile(hi)
        assert p_lo <= p_hi, f"percentile not monotone: q{lo}->{p_lo} q{hi}->{p_hi}"
        for p in (p_lo, p_hi):
            assert h.min <= p <= h.max

    @settings(max_examples=100, deadline=None)
    @given(
        a=st.lists(st.floats(min_value=0, max_value=10.0), max_size=30),
        b=st.lists(st.floats(min_value=0, max_value=10.0), max_size=30),
    )
    def test_merge_equals_recording_everything_in_one(self, a, b):
        merged, reference = LatencyHistogram(), LatencyHistogram()
        other = LatencyHistogram()
        for s in a:
            merged.record(s)
            reference.record(s)
        for s in b:
            other.record(s)
            reference.record(s)
        merged.merge(other)
        assert merged.count == reference.count
        assert merged.total == pytest.approx(reference.total)
        assert merged.max == reference.max
        assert merged.min == reference.min
        assert merged._buckets == reference._buckets


class TestRegistryLabelsAndMerge:
    def test_labeled_counters_are_distinct(self):
        r = MetricsRegistry()
        r.inc("site_requests", site=0)
        r.inc("site_requests", 2, site=1)
        r.inc("requests")
        assert r.get("site_requests", site=0) == 1
        assert r.get("site_requests", site=1) == 2
        assert r.get("requests") == 1
        assert r.get("site_requests") == 0  # unlabeled is a different series

    def test_gauges(self):
        r = MetricsRegistry()
        r.set_gauge("hit_rate", 0.75, site=3)
        assert r.gauge("hit_rate", site=3) == 0.75
        assert r.gauge("hit_rate", site=4) == 0.0

    def test_snapshot_keys_backward_compatible(self):
        r = MetricsRegistry()
        r.inc("requests", 5)
        r.observe("op.ingest", 0.001)
        snap = r.snapshot()
        assert snap["counters"]["requests"] == 5
        assert snap["latency"]["op.ingest"]["count"] == 1
        assert "min_ms" in snap["latency"]["op.ingest"]

    def test_merge_combines_parallel_workers(self):
        workers = []
        for w in range(3):
            r = MetricsRegistry()
            r.inc("requests", 10)
            r.inc("errors", w)
            r.set_gauge("inflight", 2.0)
            r.observe("op.ingest", 0.001 * (w + 1))
            workers.append(r)
        total = MetricsRegistry()
        total.merge(*workers)
        assert total.get("requests") == 30
        assert total.get("errors") == 0 + 1 + 2
        assert total.gauge("inflight") == 6.0
        hist = total.histogram("op.ingest")
        assert hist.count == 3
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.003)

    def test_format_log_line_mentions_counters(self):
        r = MetricsRegistry()
        r.inc("requests", 2)
        line = r.format_log_line()
        assert line.startswith("metrics ")
        assert "requests=2" in line


class TestPrometheusExposition:
    def test_exact_counter_and_gauge_lines(self):
        r = MetricsRegistry(clock=lambda: 0.0)
        r.inc("requests", 7)
        r.set_gauge("site_hit_rate", 0.25, site=2)
        text = r.expose()
        lines = text.splitlines()
        assert "# TYPE repro_requests_total counter" in lines
        assert "repro_requests_total 7" in lines
        assert "# TYPE repro_site_hit_rate gauge" in lines
        assert 'repro_site_hit_rate{site="2"} 0.25' in lines
        assert "# TYPE repro_uptime_seconds gauge" in lines
        assert "repro_uptime_seconds 0" in lines
        assert text.endswith("\n")

    def test_histogram_lines_are_cumulative_and_terminated(self):
        r = MetricsRegistry()
        h = r.histogram("op.ingest")
        for v in (0.001, 0.001, 0.5):
            h.record(v)
        lines = r.expose().splitlines()
        assert "# TYPE repro_op_ingest_seconds histogram" in lines
        buckets = [
            line for line in lines if line.startswith("repro_op_ingest_seconds_bucket")
        ]
        assert buckets[-1] == 'repro_op_ingest_seconds_bucket{le="+Inf"} 3'
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert "repro_op_ingest_seconds_count 3" in lines
        assert any(
            line.startswith("repro_op_ingest_seconds_sum ") for line in lines
        )

    def test_names_are_sanitized(self):
        r = MetricsRegistry()
        r.inc("op.advise-plan")
        assert "repro_op_advise_plan_total 1" in r.expose()

    def test_label_values_escaped(self):
        r = MetricsRegistry()
        r.inc("weird", path='a"b\\c')
        text = r.expose()
        assert 'path="a\\"b\\\\c"' in text

    def test_every_sample_line_is_well_formed(self):
        r = MetricsRegistry()
        r.inc("requests", 3)
        r.inc("site_requests", 4, site=1)
        r.set_gauge("x", 1.5)
        r.observe("op.stats", 0.02)
        for line in r.expose().splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part.startswith("repro_")
            if value != "+Inf":
                float(value)  # parseable sample value

    def test_overflow_bucket_maps_to_inf_only(self):
        h = LatencyHistogram()
        h.record(1e9)  # far beyond the last finite bucket
        bounds = list(h.bucket_bounds())
        assert bounds == [(math.inf, 1)]

    def test_bucket_bounds_follow_geometry(self):
        h = LatencyHistogram()
        h.record(FIRST_BOUND / 2)  # bucket 0
        bounds = list(h.bucket_bounds())
        assert bounds[0] == (FIRST_BOUND, 1)
        assert bounds[-1] == (math.inf, 1)


class TestServiceImportPathRemoved:
    def test_old_shim_module_is_gone(self):
        with pytest.raises(ModuleNotFoundError):
            import repro.service.metrics  # noqa: F401

    def test_service_package_reexports_obs_metrics(self):
        import repro.service as svc
        from repro.obs import metrics as obs_metrics

        assert svc.MetricsRegistry is obs_metrics.MetricsRegistry
        assert svc.LatencyHistogram is obs_metrics.LatencyHistogram

    def test_snapshot_json_serializable(self):
        r = MetricsRegistry()
        r.inc("a", site=1)
        r.observe("op.x", 0.1)
        r.set_gauge("g", 2.5)
        json.dumps(r.snapshot())


def _histograms(min_count=0):
    return st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=min_count,
        max_size=30,
    ).map(
        lambda samples: (
            lambda h: ([h.record(s) for s in samples], h)[1]
        )(LatencyHistogram())
    )


class TestEmptyHistogramSafety:
    """Never-observed histograms stay finite through merge and export.

    Regression territory: a histogram that has recorded nothing carries
    ``_min = inf`` internally; merging it, serializing it, or quoting
    its min/percentiles must never leak ``inf``/``NaN`` outward.
    """

    def test_empty_reads_as_zero(self):
        h = LatencyHistogram()
        assert h.min == 0.0 and h.max == 0.0 and h.mean == 0.0
        assert h.percentile(0.5) == 0.0

    def test_empty_state_dict_round_trips_without_inf(self):
        state = json.loads(json.dumps(LatencyHistogram().state_dict()))
        assert state["min"] is None
        clone = LatencyHistogram.from_state_dict(state)
        assert clone.min == 0.0 and clone.count == 0
        assert math.isinf(clone._min)  # sentinel restored, never exposed

    def test_merging_empty_into_populated_keeps_min(self):
        h = LatencyHistogram()
        h.record(0.25)
        h.merge(LatencyHistogram())
        assert h.min == 0.25 and h.count == 1

    def test_merging_populated_into_empty_adopts_min(self):
        h = LatencyHistogram()
        other = LatencyHistogram()
        other.record(0.25)
        h.merge(other)
        assert h.min == 0.25 and math.isfinite(h._min)

    def test_legacy_state_without_min_derives_finite_floor(self):
        source = LatencyHistogram()
        source.record(0.003)
        source.record(0.7)
        state = source.state_dict()
        del state["min"]
        clone = LatencyHistogram.from_state_dict(state)
        assert math.isfinite(clone.min)
        assert 0.0 < clone.min <= 0.003
        assert clone.percentile(0.0) >= clone.min

    @given(parts=st.lists(_histograms(), min_size=1, max_size=5))
    @settings(max_examples=120, deadline=None)
    def test_merge_chain_always_finite(self, parts):
        merged = parts[0]
        for other in parts[1:]:
            merged.merge(other)
        for value in (
            merged.min,
            merged.max,
            merged.mean,
            merged.percentile(0.0),
            merged.percentile(0.5),
            merged.percentile(0.99),
            merged.percentile(1.0),
        ):
            assert math.isfinite(value)
        assert merged.min <= merged.percentile(0.5) <= merged.max or (
            merged.count == 0
        )
        # export stays JSON-clean (None, not Infinity)
        encoded = json.dumps(merged.state_dict())
        assert "Infinity" not in encoded and "NaN" not in encoded
        clone = LatencyHistogram.from_state_dict(json.loads(encoded))
        assert clone.min == merged.min and clone.max == merged.max

    @given(parts=st.lists(_histograms(), min_size=2, max_size=4))
    @settings(max_examples=80, deadline=None)
    def test_merge_min_matches_global_min(self, parts):
        merged = LatencyHistogram()
        for part in parts:
            merged.merge(
                LatencyHistogram.from_state_dict(
                    json.loads(json.dumps(part.state_dict()))
                )
            )
        populated = [p for p in parts if p.count]
        if populated:
            assert merged.min == min(p.min for p in populated)
        else:
            assert merged.min == 0.0
