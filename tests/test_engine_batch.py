"""The vectorized batch replay kernel: equivalence, contract, memory.

The batch kernel (:mod:`repro.cache.batch`) must be invisible to every
consumer: ``simulate(batch=None)`` silently routes batch-capable
policies through it, and the results are *bit-identical* — every
:class:`~repro.cache.base.CacheMetrics` field — to the per-access path,
for every registered policy spec, including the degenerate capacities
(1 byte, everything-fits).
"""

from __future__ import annotations

import pytest

from repro import registry
from repro.engine import simulate
from repro.obs.instrument import SimStats

#: Capacity fractions covering eviction-dominated, mixed and
#: no-eviction regimes, plus the degenerate extremes below.
FRACTIONS = (0.001, 0.05, 0.5)


def _factory(spec, trace, partition):
    return lambda c: registry.build(
        spec.name, c, trace=trace, partition=partition
    )


def _caps(trace):
    total = trace.total_bytes()
    return [1, *[max(1, int(f * total)) for f in FRACTIONS], total]


def test_every_spec_bit_identical_to_per_access(tiny_trace, tiny_partition):
    """batch=None (auto) equals batch=False for all 15 registered specs."""
    for spec in registry.list_specs():
        factory = _factory(spec, tiny_trace, tiny_partition)
        for cap in _caps(tiny_trace):
            auto = simulate(tiny_trace, factory, cap, name=spec.name)
            serial = simulate(
                tiny_trace, factory, cap, name=spec.name, batch=False
            )
            assert auto == serial, (spec.name, cap)


def test_supports_batch_flag_matches_kernel_offer(tiny_trace, tiny_partition):
    """The registry flag and the instance contract agree, per spec."""
    for spec in registry.list_specs():
        policy = registry.build(
            spec.name, 10**9, trace=tiny_trace, partition=tiny_partition
        )
        kernel = policy.batch_kernel(tiny_trace)
        if spec.supports_batch:
            assert kernel is not None, spec.name
        else:
            assert kernel is None, spec.name


def test_batch_true_demands_a_kernel(tiny_trace):
    with pytest.raises(ValueError, match="no.*batch kernel"):
        simulate(tiny_trace, "file-lfu", 10**9, batch=True)


def test_filecule_lru_without_intra_job_hits_declines(
    tiny_trace, tiny_partition
):
    """The intra_job_hits=False variant has per-job-timestamp state the
    kernel does not model: it must decline batching (and batch=True must
    refuse loudly rather than silently fall back)."""
    policy = registry.build(
        "filecule-lru?intra_job_hits=false",
        10**9,
        partition=tiny_partition,
    )
    assert policy.batch_kernel(tiny_trace) is None
    with pytest.raises(ValueError, match="no.*batch kernel"):
        simulate(
            tiny_trace,
            "filecule-lru?intra_job_hits=false",
            10**9,
            partition=tiny_partition,
            batch=True,
        )
    # And the auto path still matches per-access replay exactly.
    auto = simulate(
        tiny_trace,
        "filecule-lru?intra_job_hits=false",
        10**9,
        partition=tiny_partition,
    )
    serial = simulate(
        tiny_trace,
        "filecule-lru?intra_job_hits=false",
        10**9,
        partition=tiny_partition,
        batch=False,
    )
    assert auto == serial


def test_batch_incompatible_with_instrumentation(tiny_trace):
    with pytest.raises(ValueError, match="instrumentation"):
        simulate(
            tiny_trace,
            "file-lru",
            10**9,
            instrumentation=SimStats(),
            batch=True,
        )


def test_instrumented_replay_falls_back_and_matches(tiny_trace):
    """batch=None with instrumentation uses the per-access path (hooks
    see every access) and produces identical metrics."""
    stats = SimStats()
    cap = max(1, tiny_trace.total_bytes() // 20)
    instrumented = simulate(
        tiny_trace, "file-lru", cap, instrumentation=stats
    )
    plain = simulate(tiny_trace, "file-lru", cap)
    assert instrumented == plain
    assert stats.accesses == tiny_trace.n_accesses


def test_kernel_is_single_use(tiny_trace):
    policy = registry.build("file-lru", 10**9)
    kernel = policy.batch_kernel(tiny_trace)
    from repro.cache.base import CacheMetrics

    kernel(CacheMetrics(name="x", capacity_bytes=10**9))
    with pytest.raises(RuntimeError):
        kernel(CacheMetrics(name="x", capacity_bytes=10**9))


def test_partition_mismatch_keyerror_parity(tiny_trace, small_trace):
    """A partition that doesn't cover the trace raises the same KeyError
    on both paths (the kernel window-checks instead of per-access)."""
    from repro.core.identify import find_filecules

    foreign = find_filecules(small_trace)
    cap = 10**12
    for batch in (False, True):
        with pytest.raises(KeyError, match="has no filecule"):
            simulate(
                tiny_trace,
                "filecule-lru",
                cap,
                partition=foreign,
                batch=batch,
            )


def test_batch_path_does_not_materialize_replay_columns(
    tiny_trace, tiny_partition
):
    """The memory satellite: batch replay must not build the ~40 B/access
    list cache, and releasing it is safe and reversible."""
    tiny_trace.release_replay_columns()
    assert "replay_columns" not in tiny_trace.__dict__
    simulate(tiny_trace, "file-lru", 10**9, batch=True)
    simulate(
        tiny_trace,
        "filecule-lru",
        10**9,
        partition=tiny_partition,
        batch=True,
    )
    assert "replay_columns" not in tiny_trace.__dict__

    # The per-access path builds it, release drops it, replay recovers.
    before = simulate(tiny_trace, "file-lru", 10**9, batch=False)
    assert "replay_columns" in tiny_trace.__dict__
    tiny_trace.release_replay_columns()
    assert "replay_columns" not in tiny_trace.__dict__
    after = simulate(tiny_trace, "file-lru", 10**9, batch=False)
    assert before == after
