"""End-to-end observability: metrics op, rid propagation, HTTP scrape.

In-process daemon on an ephemeral loopback port, real clients — the
same pattern as test_service_server.py, focused on the observability
surface: the ``metrics`` protocol op, rid echo + span capture, the
optional HTTP exposition endpoint, span-log export and slow-op logging.
"""

import asyncio
import io
import json
import urllib.error
import urllib.request

import pytest

from repro.obs import log as obslog
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.service import AsyncServiceClient, FileculeServer, ServiceState


def run(coro):
    return asyncio.run(coro)


async def _with_server(state, fn, **server_kwargs):
    server = FileculeServer(state, **server_kwargs)
    await server.start()
    try:
        return await fn(server)
    finally:
        await server.stop()


class TestMetricsOp:
    def test_prometheus_text_over_the_protocol(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                await client.ingest([1, 2], sizes=[10, 20], site=1)
                await client.advise([1, 2], site=1)
                payload = await client.request("metrics")
                assert payload["content_type"] == PROMETHEUS_CONTENT_TYPE
                body = payload["body"]
                lines = body.splitlines()
                assert any(
                    line.startswith("repro_requests_total ") for line in lines
                )
                # per-op latency histograms for the ops we just exercised
                assert "# TYPE repro_op_ingest_seconds histogram" in lines
                assert "# TYPE repro_op_advise_seconds histogram" in lines
                # per-site gauges carry the site label
                assert any(
                    line.startswith('repro_site_hit_rate{site="1"} ')
                    for line in lines
                )
                # every sample line parses: name{labels} value
                for line in lines:
                    if not line or line.startswith("#"):
                        continue
                    _, value = line.rsplit(" ", 1)
                    if value != "+Inf":
                        float(value)

        run(_with_server(ServiceState(), scenario))


class TestRidPropagation:
    def test_rid_echoed_and_in_span_log(self, tmp_path):
        span_log = tmp_path / "spans.jsonl"

        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                receipt = await client.ingest(
                    [7, 8], sizes=[5, 5], rid="trace-me-42"
                )
                assert receipt["n_files"] == 2
                plain = await client.ping()
                assert plain["pong"] is True
            return server

        server = run(
            _with_server(
                ServiceState(), scenario, span_log_path=str(span_log)
            )
        )
        # after stop(): spans exported to JSONL
        records = [
            json.loads(line) for line in span_log.read_text().splitlines()
        ]
        by_rid = {r.get("rid"): r for r in records}
        assert "trace-me-42" in by_rid
        assert by_rid["trace-me-42"]["name"] == "op.ingest"
        assert by_rid["trace-me-42"]["status"] == "ok"
        # the un-tagged ping produced a span without a rid
        assert any(r["name"] == "op.ping" and "rid" not in r for r in records)
        # and the live recorder held it too
        assert any(s.rid == "trace-me-42" for s in server.spans.spans())

    def test_rid_echoed_in_raw_response(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(
                    json.dumps(
                        {"v": 1, "op": "ping", "id": 1, "rid": "raw-1"}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is True
                assert response["rid"] == "raw-1"
                # a request without a rid gets a response without one
                writer.write(b'{"v": 1, "op": "ping", "id": 2}\n')
                await writer.drain()
                response = json.loads(await reader.readline())
                assert "rid" not in response
            finally:
                writer.close()
                await writer.wait_closed()

        run(_with_server(ServiceState(), scenario))

    def test_bad_rid_rejected(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(
                    json.dumps(
                        {"v": 1, "op": "ping", "id": 1, "rid": "x" * 200}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                response = json.loads(await reader.readline())
                assert response["ok"] is False
                assert response["error"]["code"] == "bad-request"
            finally:
                writer.close()
                await writer.wait_closed()

        run(_with_server(ServiceState(), scenario))


class TestHttpExposition:
    def test_scrape_over_http(self):
        async def scenario(server):
            assert server.metrics_port not in (None, 0)
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                await client.ingest([1], sizes=[10])
            url = f"http://127.0.0.1:{server.metrics_port}/metrics"
            body, content_type = await asyncio.to_thread(_http_get, url)
            assert content_type == PROMETHEUS_CONTENT_TYPE
            assert "repro_requests_total" in body
            assert body.endswith("\n")

        run(_with_server(ServiceState(), scenario, metrics_port=0))

    def test_unknown_path_404(self):
        async def scenario(server):
            url = f"http://127.0.0.1:{server.metrics_port}/nope"
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                await asyncio.to_thread(_http_get, url)
            assert exc_info.value.code == 404

        run(_with_server(ServiceState(), scenario, metrics_port=0))

    def test_no_http_listener_by_default(self):
        async def scenario(server):
            assert server.metrics_port is None

        run(_with_server(ServiceState(), scenario))


def _http_get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.read().decode(),
            response.headers.get("Content-Type"),
        )


class TestSlowOpLogging:
    def test_slow_op_emits_structured_warning_with_rid(self, tmp_path):
        sink = io.StringIO()
        obslog.configure(stream=sink, min_level="debug")
        try:

            async def scenario(server):
                async with await AsyncServiceClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.ingest([1], sizes=[10], rid="slowpoke")

            # threshold 0: every op counts as slow
            run(
                _with_server(
                    ServiceState(), scenario, slow_op_seconds=0.0
                )
            )
        finally:
            obslog.configure(stream=None, min_level="info")
        records = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        slow = [r for r in records if r["event"] == "slow-op"]
        assert slow, "expected at least one slow-op record"
        tagged = [r for r in slow if r.get("rid") == "slowpoke"]
        assert tagged and tagged[0]["op"] == "ingest"
        assert tagged[0]["duration_ms"] >= 0.0
