"""Tiered hierarchy: spec wire format, miss-through replay, sweeps, metrics.

The two load-bearing guarantees of :mod:`repro.hierarchy`:

* **canonical round-trip** — ``parse_hierarchy(str(spec)) == spec`` for
  every constructible spec (hypothesis sweeps adversarial floats, where
  ``%g`` exponents would otherwise collide with the ``+`` delimiter);
* **flat collapse** — a single-tier hierarchy is bit-identical to
  :func:`~repro.engine.simulate` for *every* registry policy, so the
  hierarchical engine is a strict generalization, not a parallel
  implementation that can drift.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import registry
from repro.engine import simulate
from repro.hierarchy import (
    HierarchyResult,
    HierarchySpec,
    HierarchySpecError,
    TierCapacity,
    TierSpec,
    estimate_transfer_seconds,
    fold_hierarchy_metrics,
    hierarchy_sweep,
    parse_hierarchy,
    simulate_hierarchy,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRecorder
from repro.transfer import LINK_PRESETS, LinkModel, default_tier_links

# ---------------------------------------------------------------------------
# spec model and wire format
# ---------------------------------------------------------------------------


class TestSpecModel:
    def test_wire_round_trip_example(self):
        text = "site:file-lru@10%+regional:filecule-lru@5%+origin"
        spec = parse_hierarchy(text)
        assert str(spec) == text
        assert parse_hierarchy(str(spec)) == spec
        assert spec.tier_names == ("site", "regional")
        assert spec.origin == "origin"

    def test_aliases_canonicalize(self):
        spec = parse_hierarchy("site:lru@10%+origin")
        assert str(spec) == "site:file-lru@10%+origin"

    def test_absolute_capacity_and_link_cost(self):
        spec = parse_hierarchy("a:fifo@1000^2.5+b:file-lru@50%^0.5+o")
        assert spec.tiers[0].capacity.capacity_bytes(10**9) == 1000
        assert spec.tiers[1].capacity.capacity_bytes(1000) == 500
        assert spec.tiers[0].link_cost == 2.5
        # "fifo" is an alias; the wire form canonicalizes it
        assert str(spec) == "a:file-fifo@1000^2.5+b:file-lru@50%^0.5+o"

    def test_unit_link_cost_omitted(self):
        spec = HierarchySpec(
            (TierSpec("a", "file-lru", TierCapacity(10.0, relative=True)),)
        )
        assert "^" not in str(spec)
        assert parse_hierarchy(str(spec)) == spec

    def test_parse_accepts_spec_instance(self):
        spec = parse_hierarchy("site:file-lru@10%+origin")
        assert parse_hierarchy(spec) is spec

    @pytest.mark.parametrize(
        "bad",
        [
            "",  # no tiers
            "origin",  # no caching tier
            "site:file-lru@10%",  # trailing segment is a tier, not origin
            "site:file-lru@10%+more:fifo@5",  # ditto (has ':' / '@')
            "site:file-lru@10%+site",  # duplicate name with origin
            "a:file-lru@10%+a:fifo@5%+o",  # duplicate tier names
            "1a:file-lru@10%+o",  # bad tier name
            "a:no-such-policy@10%+o",  # unknown policy spec
            "a:file-lru@0%+o",  # non-positive capacity
            "a:file-lru@-5+o",  # negative absolute capacity
            "a:file-lru@1.5+o",  # fractional absolute bytes
            "a:file-lru@10%^-1+o",  # negative link cost
            "a:file-lru@10%^inf+o",  # non-finite link cost
            "a:file-lru+o",  # missing capacity
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises((HierarchySpecError, ValueError)):
            parse_hierarchy(bad)

    def test_exponent_capacity_survives_the_plus_delimiter(self):
        # repr(1e22) is "1e+22"; a naive formatter would split the wire
        # string at the exponent's '+'.
        spec = HierarchySpec(
            (TierSpec("a", "file-lru", TierCapacity(1e22, relative=True)),)
        )
        assert "+origin" in str(spec)
        assert parse_hierarchy(str(spec)) == spec


_names = st.from_regex(r"[A-Za-z][A-Za-z0-9_-]{0,11}", fullmatch=True)
_policies = st.sampled_from(
    ["file-lru", "filecule-lru", "fifo", "lru", "file-lfu"]
)
_caps = st.one_of(
    st.integers(min_value=1, max_value=10**18).map(TierCapacity),
    st.floats(
        min_value=1e-12,
        max_value=1e24,
        allow_nan=False,
        allow_infinity=False,
        exclude_min=True,
    ).map(lambda v: TierCapacity(v, relative=True)),
)
_link_costs = st.one_of(
    st.just(1.0),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
)


@st.composite
def hierarchy_specs(draw):
    names = draw(
        st.lists(_names, min_size=2, max_size=5, unique_by=str.lower)
    )
    *tier_names, origin = names
    tiers = tuple(
        TierSpec(name, draw(_policies), draw(_caps), draw(_link_costs))
        for name in tier_names
    )
    return HierarchySpec(tiers, origin=origin)


class TestSpecRoundTripProperty:
    @given(spec=hierarchy_specs())
    @settings(max_examples=60, deadline=None)
    def test_parse_of_str_is_identity(self, spec):
        wire = str(spec)
        again = parse_hierarchy(wire)
        assert again == spec
        assert str(again) == wire


# ---------------------------------------------------------------------------
# flat collapse: single tier == simulate(), bit for bit
# ---------------------------------------------------------------------------


class TestFlatCollapse:
    @pytest.mark.parametrize("policy", registry.policy_names())
    @pytest.mark.parametrize("fraction", [0.01, 0.1])
    def test_single_tier_bit_identical(
        self, policy, fraction, tiny_trace, tiny_partition
    ):
        cap = max(int(fraction * tiny_trace.total_bytes()), 1)
        flat = simulate(tiny_trace, policy, cap, partition=tiny_partition)
        res = simulate_hierarchy(
            tiny_trace,
            f"site:{policy}@{cap}+origin",
            partition=tiny_partition,
        )
        assert len(res.tiers) == 1
        assert res.tiers[0].metrics == flat
        assert res.origin_requests == flat.misses
        assert res.origin_demand_bytes == flat.bytes_requested - flat.bytes_hit
        assert res.origin_fetched_bytes == flat.bytes_fetched


# ---------------------------------------------------------------------------
# multi-tier invariants
# ---------------------------------------------------------------------------

TWO_TIER = "site:file-lru@1%+regional:filecule-lru@5%+origin"


class TestMissThrough:
    @pytest.fixture(scope="class")
    def result(self, tiny_trace, tiny_partition) -> HierarchyResult:
        return simulate_hierarchy(
            tiny_trace, TWO_TIER, partition=tiny_partition
        )

    def test_conservation_law(self, result):
        for upper, lower in zip(result.tiers, result.tiers[1:]):
            assert lower.metrics.requests == upper.metrics.misses
            assert (
                lower.metrics.bytes_requested
                == upper.metrics.bytes_requested - upper.metrics.bytes_hit
            )
        last = result.tiers[-1].metrics
        assert result.origin_requests == last.misses
        assert (
            result.origin_demand_bytes
            == last.bytes_requested - last.bytes_hit
        )

    def test_demand_totals_are_tier_zero(self, result, tiny_trace):
        assert result.demand_requests == tiny_trace.n_accesses
        assert result.hit_requests == sum(
            t.metrics.hits for t in result.tiers
        )
        assert 0.0 <= result.request_hit_rate <= 1.0
        assert 0.0 <= result.origin_byte_hit_rate <= 1.0
        assert result.origin_offload == result.origin_byte_hit_rate

    def test_outer_tier_matches_flat_replay(self, result, tiny_trace):
        cap = result.tiers[0].capacity_bytes
        flat = simulate(tiny_trace, "file-lru", cap)
        assert result.tiers[0].metrics == flat

    def test_batch_and_per_access_agree(self, tiny_trace, tiny_partition):
        fast = simulate_hierarchy(
            tiny_trace, TWO_TIER, partition=tiny_partition, batch=True
        )
        slow = simulate_hierarchy(
            tiny_trace, TWO_TIER, partition=tiny_partition, batch=False
        )
        assert [t.metrics for t in fast.tiers] == [
            t.metrics for t in slow.tiers
        ]
        assert fast.origin_requests == slow.origin_requests
        assert fast.origin_demand_bytes == slow.origin_demand_bytes

    def test_weighted_link_bytes(self, tiny_trace, tiny_partition):
        res = simulate_hierarchy(
            tiny_trace,
            "site:file-lru@1%^3.0+regional:filecule-lru@5%^0.5+origin",
            partition=tiny_partition,
        )
        expect = (
            3.0 * res.tiers[0].link_bytes + 0.5 * res.tiers[1].link_bytes
        )
        assert res.weighted_link_bytes == pytest.approx(expect)

    def test_filecule_tier_beats_file_tier_at_origin(
        self, tiny_trace, tiny_partition
    ):
        cule = simulate_hierarchy(
            tiny_trace,
            "site:file-lru@1%+regional:filecule-lru@5%+origin",
            partition=tiny_partition,
        )
        file = simulate_hierarchy(
            tiny_trace,
            "site:file-lru@1%+regional:file-lru@5%+origin",
            partition=tiny_partition,
        )
        assert cule.origin_byte_hit_rate >= file.origin_byte_hit_rate


class TestSubsetAccesses:
    def test_mask_partition_conserves_accesses(self, tiny_trace):
        rng = np.random.default_rng(11)
        mask = rng.random(tiny_trace.n_accesses) < 0.4
        kept = tiny_trace.subset_accesses(mask)
        dropped = tiny_trace.subset_accesses(~mask)
        assert kept.n_accesses + dropped.n_accesses == tiny_trace.n_accesses
        # catalogs and job rows are preserved, so ids stay comparable
        assert kept.n_files == tiny_trace.n_files
        assert kept.n_jobs == tiny_trace.n_jobs
        assert np.array_equal(kept.job_starts, tiny_trace.job_starts)
        assert np.array_equal(
            kept.access_files, tiny_trace.access_files[mask]
        )
        assert np.array_equal(kept.access_jobs, tiny_trace.access_jobs[mask])

    def test_empty_and_full_masks(self, tiny_trace):
        none = tiny_trace.subset_accesses(
            np.zeros(tiny_trace.n_accesses, dtype=bool)
        )
        assert none.n_accesses == 0
        full = tiny_trace.subset_accesses(
            np.ones(tiny_trace.n_accesses, dtype=bool)
        )
        assert np.array_equal(full.access_files, tiny_trace.access_files)

    def test_wrong_length_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="mask length"):
            tiny_trace.subset_accesses(np.zeros(3, dtype=bool))


# ---------------------------------------------------------------------------
# sweeps
# ---------------------------------------------------------------------------


class TestHierarchySweep:
    HIERARCHIES = (
        "site:file-lru@1%+origin",
        "site:filecule-lru@1%+origin",
        TWO_TIER,
    )

    def test_serial_matches_loop(self, tiny_trace, tiny_partition):
        swept = hierarchy_sweep(
            tiny_trace, self.HIERARCHIES, partition=tiny_partition
        )
        for text in self.HIERARCHIES:
            solo = simulate_hierarchy(
                tiny_trace, text, partition=tiny_partition
            )
            assert swept[str(parse_hierarchy(text))] == solo

    def test_parallel_matches_serial(
        self, tiny_trace, tiny_partition, monkeypatch
    ):
        serial = hierarchy_sweep(
            tiny_trace, self.HIERARCHIES, partition=tiny_partition
        )
        monkeypatch.setenv("REPRO_PARALLEL_FORCE", "1")
        parallel = hierarchy_sweep(
            tiny_trace, self.HIERARCHIES, jobs=2, partition=tiny_partition
        )
        assert parallel == serial

    def test_duplicate_hierarchies_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="duplicate"):
            hierarchy_sweep(
                tiny_trace,
                ["site:file-lru@1%+origin", "site:lru@1%+origin"],
            )

    def test_empty_sweep(self, tiny_trace):
        assert hierarchy_sweep(tiny_trace, []) == {}


# ---------------------------------------------------------------------------
# metrics, links, flight recorder
# ---------------------------------------------------------------------------


class TestHierarchyMetrics:
    def test_fold_counters(self, tiny_trace, tiny_partition):
        res = simulate_hierarchy(
            tiny_trace, TWO_TIER, partition=tiny_partition
        )
        metrics = fold_hierarchy_metrics(res, MetricsRegistry())
        assert metrics.get("hier_replays") == 1
        assert metrics.get("hier_demand_requests") == res.demand_requests
        assert metrics.get("hier_demand_bytes") == res.demand_bytes
        for tier in res.tiers:
            assert (
                metrics.get("hier_requests", tier=tier.tier)
                == tier.metrics.requests
            )
            assert (
                metrics.get("hier_hits", tier=tier.tier)
                == tier.metrics.hits
            )
            assert (
                metrics.get("hier_link_bytes", tier=tier.tier)
                == tier.link_bytes
            )
        assert metrics.get("hier_origin_requests") == res.origin_requests
        assert metrics.get("hier_origin_bytes") == res.origin_demand_bytes

    def test_link_model_pricing(self):
        lan = LINK_PRESETS["lan"]
        # 1 GB over 100 Gbit/s: 0.08 s wire time + one setup
        assert lan.transfer_seconds(10**9) == pytest.approx(
            0.08 + lan.setup_s
        )
        assert lan.transfer_seconds(0, transfers=0) == 0.0
        with pytest.raises(ValueError):
            LinkModel("bad", bandwidth_bps=0.0)

    def test_default_tier_links_positions(self):
        links = default_tier_links(["site", "regional", "campus"])
        assert links["campus"] is LINK_PRESETS["wan"]
        assert links["regional"] is LINK_PRESETS["regional"]
        assert links["site"] is LINK_PRESETS["lan"]

    def test_estimate_transfer_seconds(self, tiny_trace, tiny_partition):
        res = simulate_hierarchy(
            tiny_trace, TWO_TIER, partition=tiny_partition
        )
        times = estimate_transfer_seconds(res)
        assert set(times) == {"site", "regional"}
        assert all(t >= 0.0 for t in times.values())
        with pytest.raises(KeyError):
            estimate_transfer_seconds(
                res, links={"site": LINK_PRESETS["lan"]}
            )

    def test_derived_origin_offload_series(self, tiny_trace, tiny_partition):
        res = simulate_hierarchy(
            tiny_trace, TWO_TIER, partition=tiny_partition
        )
        registry_ = MetricsRegistry()
        recorder = TimeSeriesRecorder(interval=1.0)
        recorder.sample(registry_, 0.0)
        fold_hierarchy_metrics(res, registry_)
        recorder.sample(registry_, 1.0)
        series = recorder.get("derived:origin_offload")
        assert series.agg == "mean"
        ((_, value, weight),) = series.points()
        assert value == pytest.approx(res.origin_byte_hit_rate)
        assert weight == pytest.approx(res.demand_bytes)
