"""Repository-level consistency: registry <-> benchmarks <-> documentation."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.base import all_experiment_ids

REPO = Path(__file__).parent.parent

#: Benchmarks of whole subsystems rather than paper experiments; exempt
#: from the experiment-registry pairing below.
NON_EXPERIMENT_BENCHMARKS = {"service", "sweep", "hierarchy"}


class TestBenchmarkCoverage:
    def test_every_experiment_has_a_benchmark(self):
        missing = [
            eid
            for eid in all_experiment_ids()
            if not (REPO / "benchmarks" / f"bench_{eid}.py").exists()
        ]
        assert not missing, f"experiments without benchmarks: {missing}"

    def test_every_benchmark_has_an_experiment(self):
        ids = set(all_experiment_ids())
        stray = [
            p.name
            for p in (REPO / "benchmarks").glob("bench_*.py")
            if p.stem.removeprefix("bench_") not in ids
            and p.stem.removeprefix("bench_") not in NON_EXPERIMENT_BENCHMARKS
        ]
        assert not stray, f"benchmarks without experiments: {stray}"

    def test_benchmarks_reference_their_experiment(self):
        for eid in all_experiment_ids():
            text = (REPO / "benchmarks" / f"bench_{eid}.py").read_text()
            assert f'"{eid}"' in text


class TestDocumentationCoverage:
    def test_design_md_indexes_every_experiment(self):
        design = (REPO / "DESIGN.md").read_text()
        missing = [
            eid for eid in all_experiment_ids() if f"`{eid}`" not in design
        ]
        assert not missing, f"experiments missing from DESIGN.md: {missing}"

    def test_experiments_md_covers_every_table_and_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ["Table 1", "Table 2"] + [
            f"Figure {i}" for i in range(1, 13)
        ]:
            assert artifact in text, f"{artifact} missing from EXPERIMENTS.md"

    def test_readme_lists_every_example(self):
        readme = (REPO / "README.md").read_text()
        for example in (REPO / "examples").glob("*.py"):
            assert example.name in readme, (
                f"examples/{example.name} missing from README"
            )


class TestExampleHygiene:
    def test_examples_have_docstrings_and_main(self):
        for example in (REPO / "examples").glob("*.py"):
            text = example.read_text()
            assert text.startswith("#!/usr/bin/env python"), example.name
            assert '"""' in text, f"{example.name} lacks a docstring"
            assert 'if __name__ == "__main__":' in text, example.name


class TestRemovedCompatShims:
    #: Files allowed to *mention* the old path: this scanner, and the
    #: test asserting the import now raises ModuleNotFoundError.
    ALLOWED = {"tests/test_repo_consistency.py", "tests/test_obs_metrics.py"}

    def test_no_module_imports_the_old_service_metrics_path(self):
        """The repro.service.metrics shim is gone — nothing may import it."""
        offenders = []
        for root in ("src", "tests", "benchmarks", "examples", "tools"):
            base = REPO / root
            if not base.is_dir():
                continue
            for path in base.rglob("*.py"):
                if str(path.relative_to(REPO)) in self.ALLOWED:
                    continue
                text = path.read_text()
                if (
                    "from repro.service.metrics" in text
                    or "import repro.service.metrics" in text
                    or "from repro.service import metrics" in text
                ):
                    offenders.append(str(path.relative_to(REPO)))
        assert not offenders, (
            f"modules still importing the removed repro.service.metrics "
            f"shim: {offenders}"
        )

    def test_shim_file_is_gone(self):
        assert not (REPO / "src" / "repro" / "service" / "metrics.py").exists()


class TestImportLayering:
    def test_no_upward_module_top_level_imports(self):
        """tools/check_layering.py passes over src/ (also a CI job)."""
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_layering.py"),
             str(REPO / "src")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_checker_flags_a_synthetic_violation(self, tmp_path):
        """The guard guards: a planted upward import must fail the check."""
        pkg = tmp_path / "src" / "repro"
        for sub in ("", "cache", "service"):
            d = pkg / sub if sub else pkg
            d.mkdir(parents=True, exist_ok=True)
            (d / "__init__.py").write_text("")
        (pkg / "cache" / "bad.py").write_text("import repro.service\n")
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_layering.py"),
             str(tmp_path / "src")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "repro.cache.bad" in proc.stdout
        assert "repro.service" in proc.stdout


class TestTraceability:
    def test_traceability_doc_references_valid_experiments(self):
        import re

        text = (REPO / "docs" / "TRACEABILITY.md").read_text()
        ids = set(all_experiment_ids())
        referenced = set(re.findall(r"`([a-z0-9_]+)`", text)) & {
            token for token in re.findall(r"`([a-z0-9_]+)`", text)
        }
        # every backticked token that looks like an experiment id must be one
        known_non_experiments = {
            "python",
            "repro",
        }
        for token in referenced:
            if token in ids or token in known_non_experiments:
                continue
            if token.startswith("examples") or "." in token:
                continue
            # tolerate API references like FileculeLRU(...)
            if not token.islower():
                continue
            assert token in ids or "_" not in token, (
                f"TRACEABILITY.md references unknown experiment-like id "
                f"{token!r}"
            )

    def test_traceability_covers_every_experiment(self):
        text = (REPO / "docs" / "TRACEABILITY.md").read_text()
        missing = [
            eid for eid in all_experiment_ids() if f"`{eid}`" not in text
        ]
        assert not missing, f"experiments missing from TRACEABILITY.md: {missing}"
