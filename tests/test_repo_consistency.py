"""Repository-level consistency: registry <-> benchmarks <-> documentation."""

from pathlib import Path

import pytest

from repro.experiments.base import all_experiment_ids

REPO = Path(__file__).parent.parent

#: Benchmarks of whole subsystems rather than paper experiments; exempt
#: from the experiment-registry pairing below.
NON_EXPERIMENT_BENCHMARKS = {"service", "sweep"}


class TestBenchmarkCoverage:
    def test_every_experiment_has_a_benchmark(self):
        missing = [
            eid
            for eid in all_experiment_ids()
            if not (REPO / "benchmarks" / f"bench_{eid}.py").exists()
        ]
        assert not missing, f"experiments without benchmarks: {missing}"

    def test_every_benchmark_has_an_experiment(self):
        ids = set(all_experiment_ids())
        stray = [
            p.name
            for p in (REPO / "benchmarks").glob("bench_*.py")
            if p.stem.removeprefix("bench_") not in ids
            and p.stem.removeprefix("bench_") not in NON_EXPERIMENT_BENCHMARKS
        ]
        assert not stray, f"benchmarks without experiments: {stray}"

    def test_benchmarks_reference_their_experiment(self):
        for eid in all_experiment_ids():
            text = (REPO / "benchmarks" / f"bench_{eid}.py").read_text()
            assert f'"{eid}"' in text


class TestDocumentationCoverage:
    def test_design_md_indexes_every_experiment(self):
        design = (REPO / "DESIGN.md").read_text()
        missing = [
            eid for eid in all_experiment_ids() if f"`{eid}`" not in design
        ]
        assert not missing, f"experiments missing from DESIGN.md: {missing}"

    def test_experiments_md_covers_every_table_and_figure(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ["Table 1", "Table 2"] + [
            f"Figure {i}" for i in range(1, 13)
        ]:
            assert artifact in text, f"{artifact} missing from EXPERIMENTS.md"

    def test_readme_lists_every_example(self):
        readme = (REPO / "README.md").read_text()
        for example in (REPO / "examples").glob("*.py"):
            assert example.name in readme, (
                f"examples/{example.name} missing from README"
            )


class TestExampleHygiene:
    def test_examples_have_docstrings_and_main(self):
        for example in (REPO / "examples").glob("*.py"):
            text = example.read_text()
            assert text.startswith("#!/usr/bin/env python"), example.name
            assert '"""' in text, f"{example.name} lacks a docstring"
            assert 'if __name__ == "__main__":' in text, example.name


class TestTraceability:
    def test_traceability_doc_references_valid_experiments(self):
        import re

        text = (REPO / "docs" / "TRACEABILITY.md").read_text()
        ids = set(all_experiment_ids())
        referenced = set(re.findall(r"`([a-z0-9_]+)`", text)) & {
            token for token in re.findall(r"`([a-z0-9_]+)`", text)
        }
        # every backticked token that looks like an experiment id must be one
        known_non_experiments = {
            "python",
            "repro",
        }
        for token in referenced:
            if token in ids or token in known_non_experiments:
                continue
            if token.startswith("examples") or "." in token:
                continue
            # tolerate API references like FileculeLRU(...)
            if not token.islower():
                continue
            assert token in ids or "_" not in token, (
                f"TRACEABILITY.md references unknown experiment-like id "
                f"{token!r}"
            )

    def test_traceability_covers_every_experiment(self):
        text = (REPO / "docs" / "TRACEABILITY.md").read_text()
        missing = [
            eid for eid in all_experiment_ids() if f"`{eid}`" not in text
        ]
        assert not missing, f"experiments missing from TRACEABILITY.md: {missing}"
