"""Unit tests for filecule-granularity LRU, including the accounting
equivalence theorem (conservative filecule-LRU == file-LRU)."""

import numpy as np
import pytest

from repro.cache.filecule_lru import FileculeLRU
from repro.cache.lru import FileLRU
from repro.cache.prefetch import GroupPrefetchLRU
from repro.cache.simulator import simulate
from repro.core.identify import find_filecules
from tests.conftest import make_trace


@pytest.fixture()
def trace():
    # filecules: {0,1} (jobs 0,2), {2} (job 0), {3} (job 1); file 4 unused
    return make_trace(
        [[0, 1, 2], [3], [0, 1]],
        n_files=5,
        file_sizes=[10, 10, 10, 10, 10],
    )


@pytest.fixture()
def partition(trace):
    return find_filecules(trace)


class TestFileculeLoadAndEvict:
    def test_miss_fetches_whole_filecule(self, trace, partition):
        p = FileculeLRU(100, partition)
        outcome = p.request(0, 10, 0.0)
        assert not outcome.hit
        assert outcome.bytes_fetched == 20  # files 0 and 1
        assert 1 in p  # sibling loaded too

    def test_sibling_hit(self, trace, partition):
        p = FileculeLRU(100, partition)
        p.request(0, 10, 0.0)
        assert p.request(1, 10, 0.0).hit  # intra-job prefetch hit (default)

    def test_eviction_at_filecule_granularity(self, trace, partition):
        p = FileculeLRU(30, partition)
        p.request(0, 10, 0.0)  # load {0,1} -> 20 bytes
        p.request(2, 10, 1.0)  # load {2} -> 30 bytes total
        p.request(3, 10, 2.0)  # load {3}: evict LRU filecule {0,1}
        assert 0 not in p and 1 not in p
        assert 2 in p and 3 in p

    def test_bypass_oversized_filecule(self, trace, partition):
        p = FileculeLRU(15, partition)  # {0,1} is 20 bytes > 15
        outcome = p.request(0, 10, 0.0)
        assert not outcome.hit and outcome.bypassed
        assert outcome.bytes_fetched == 10  # streams only the file
        assert p.used_bytes == 0

    def test_unpartitioned_file_rejected(self, trace, partition):
        p = FileculeLRU(100, partition)
        with pytest.raises(KeyError, match="no filecule"):
            p.request(4, 10, 0.0)  # file 4 was never accessed

    def test_cached_filecules_order(self, trace, partition):
        p = FileculeLRU(100, partition)
        p.request(0, 10, 0.0)
        p.request(3, 10, 1.0)
        p.request(0, 10, 2.0)  # touch {0,1} again
        order = p.cached_filecules()
        assert order[-1] == int(partition.labels[0])  # most recent last


class TestConservativeAccounting:
    def test_same_job_member_counts_as_miss(self, trace, partition):
        p = FileculeLRU(100, partition, intra_job_hits=False)
        first = p.request(0, 10, 0.0)
        second = p.request(1, 10, 0.0)  # same timestamp = same job
        assert not first.hit and not second.hit
        assert second.bytes_fetched == 0  # no double fetch

    def test_next_job_hits(self, trace, partition):
        p = FileculeLRU(100, partition, intra_job_hits=False)
        p.request(0, 10, 0.0)
        assert p.request(0, 10, 5.0).hit
        assert p.request(1, 10, 5.0).hit

    def test_equivalence_theorem(self, small_trace, small_partition):
        """Conservative filecule-LRU has exactly file-LRU's miss rate.

        Members of a filecule are always co-requested, so the residency
        sets of the two policies coincide on every trace; the only
        difference — intra-job prefetch hits — is switched off here.
        """
        capacity = max(int(0.01 * small_trace.total_bytes()), 1)
        m_file = simulate(small_trace, lambda c: FileLRU(c), capacity)
        m_cons = simulate(
            small_trace,
            lambda c: FileculeLRU(c, small_partition, intra_job_hits=False),
            capacity,
        )
        assert m_cons.misses == pytest.approx(m_file.misses, rel=0.01)

    def test_optimistic_strictly_better(self, small_trace, small_partition):
        capacity = max(int(0.05 * small_trace.total_bytes()), 1)
        m_file = simulate(small_trace, lambda c: FileLRU(c), capacity)
        m_opt = simulate(
            small_trace, lambda c: FileculeLRU(c, small_partition), capacity
        )
        assert m_opt.miss_rate < m_file.miss_rate


class TestGroupPrefetchLRU:
    def test_prefetches_group(self):
        labels = np.array([0, 0, 1])
        sizes = np.array([10, 10, 10])
        p = GroupPrefetchLRU(100, labels, sizes)
        outcome = p.request(0, 10, 0.0)
        assert outcome.bytes_fetched == 20
        assert 1 in p

    def test_prefetch_respects_budget(self):
        labels = np.zeros(10, dtype=np.int64)
        sizes = np.full(10, 10)
        p = GroupPrefetchLRU(100, labels, sizes, max_prefetch_fraction=0.3)
        outcome = p.request(0, 10, 0.0)
        assert outcome.bytes_fetched <= 30

    def test_file_granularity_eviction(self):
        labels = np.array([0, 0, 1])
        sizes = np.array([10, 10, 15])
        p = GroupPrefetchLRU(25, labels, sizes)
        p.request(0, 10, 0.0)  # loads 0 and prefetches 1
        p.request(2, 15, 1.0)  # evicts file 0 only (LRU head)
        assert p.used_bytes <= 25
        assert 2 in p

    def test_ungrouped_file(self):
        labels = np.array([-1, 0])
        sizes = np.array([10, 10])
        p = GroupPrefetchLRU(100, labels, sizes)
        outcome = p.request(0, 10, 0.0)
        assert outcome.bytes_fetched == 10  # nothing to prefetch

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            GroupPrefetchLRU(10, np.array([0]), np.array([1]), max_prefetch_fraction=0)
