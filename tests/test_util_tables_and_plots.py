"""Unit tests for table rendering and ASCII plots."""

import pytest

from repro.util.ascii_plot import ascii_histogram, ascii_intervals, ascii_series
from repro.util.tables import render_table
from repro.util.timeutil import SECONDS_PER_DAY, day_index, span_days


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(
            ["name", "count"], [["alpha", 1], ["b", 22]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "count" in lines[1]
        assert lines[2].startswith("|-")
        # right-aligned numbers share the column's right edge
        assert lines[3].index("1 |") == lines[4].index("2 |") + 1 or "22" in lines[4]

    def test_none_and_nan_render_na(self):
        out = render_table(["a", "b"], [[None, float("nan")]])
        assert out.count("N/A") == 2

    def test_float_formatting(self):
        out = render_table(["x", "y"], [["r", 0.123456], ["s", 123456.7]])
        assert "0.12" in out
        assert "1.235e+05" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="row 0 has"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestAsciiHistogram:
    def test_bars_scale(self):
        out = ascii_histogram(["x", "y"], [1, 10], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert 1 <= lines[0].count("#") <= 2

    def test_nonzero_never_empty_bar(self):
        out = ascii_histogram(["a", "b"], [1, 10_000], width=10)
        assert out.splitlines()[0].count("#") >= 1

    def test_empty(self):
        assert "(empty)" in ascii_histogram([], [], title="t")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_histogram(["a"], [1, 2])


class TestAsciiSeries:
    def test_contains_glyphs_and_legend(self):
        out = ascii_series([0, 1, 2], {"s1": [1, 2, 3], "s2": [3, 2, 1]})
        assert "legend" in out
        assert "*" in out and "o" in out

    def test_logy(self):
        out = ascii_series([0, 1], {"s": [1, 1000]}, logy=True)
        assert "log scale" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_series([0, 1], {"s": [1]})

    def test_requires_series(self):
        with pytest.raises(ValueError):
            ascii_series([0], {})


class TestAsciiIntervals:
    def test_bars_span(self):
        out = ascii_intervals([("a", 0.0, 10.0), ("b", 5.0, 10.0)], width=20)
        lines = out.splitlines()
        assert lines[0].count("=") > lines[1].count("=")
        assert "[" in lines[0] and "]" in lines[0]

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            ascii_intervals([("a", 5.0, 1.0)])

    def test_empty(self):
        assert "(no intervals)" in ascii_intervals([])


class TestTimeutil:
    def test_day_index_scalar(self):
        assert day_index(0.0) == 0
        assert day_index(SECONDS_PER_DAY * 2.5) == 2

    def test_day_index_array(self):
        import numpy as np

        out = day_index(np.array([0.0, SECONDS_PER_DAY, SECONDS_PER_DAY * 3 - 1]))
        assert out.tolist() == [0, 1, 2]

    def test_span_days(self):
        assert span_days(0.0, SECONDS_PER_DAY * 3) == 3.0

    def test_span_rejects_reversed(self):
        with pytest.raises(ValueError):
            span_days(10.0, 0.0)
