"""Unit tests for distributed partition merging (meet of partitions)."""

import numpy as np
import pytest

from repro.core.dynamics import partition_similarity
from repro.core.identify import find_filecules
from repro.core.merge import (
    merge_accuracy_curve,
    merge_all,
    merge_partitions,
)
from repro.core.partial import identify_per_site
from tests.conftest import make_trace


@pytest.fixture()
def two_site_trace():
    """Site 0 sees jobs 0,1; site 1 sees job 2 (see test_core_partial)."""
    return make_trace(
        [[0, 1, 2], [3], [0, 1]],
        job_nodes=[0, 0, 1],
        node_sites=[0, 1],
        node_domains=[0, 1],
        site_names=["s0", "s1"],
        domain_names=[".a", ".b"],
    )


def groups_of(partition):
    return sorted(tuple(fc.file_ids.tolist()) for fc in partition)


class TestMergeTwo:
    def test_meet_refines_both(self, two_site_trace):
        locals_ = identify_per_site(two_site_trace)
        merged = merge_partitions(locals_[0], locals_[1])
        # s0: {0,1,2},{3}; s1: {0,1} -> meet: {0,1},{2},{3}
        assert groups_of(merged) == [(0, 1), (2,), (3,)]

    def test_meet_of_all_sites_is_global(self, two_site_trace):
        locals_ = identify_per_site(two_site_trace)
        merged = merge_all(list(locals_.values()))
        global_p = find_filecules(two_site_trace)
        assert groups_of(merged) == groups_of(global_p)

    def test_commutative(self, two_site_trace):
        locals_ = identify_per_site(two_site_trace)
        ab = merge_partitions(locals_[0], locals_[1])
        ba = merge_partitions(locals_[1], locals_[0])
        assert groups_of(ab) == groups_of(ba)

    def test_idempotent(self, two_site_trace):
        p = find_filecules(two_site_trace)
        merged = merge_partitions(p, p)
        assert groups_of(merged) == groups_of(p)

    def test_observed_by_one_side_only(self):
        a = find_filecules(make_trace([[0, 1]], n_files=4))
        b = find_filecules(make_trace([[2, 3]], n_files=4))
        merged = merge_partitions(a, b)
        assert groups_of(merged) == [(0, 1), (2, 3)]

    def test_empty_partitions(self):
        a = find_filecules(make_trace([], n_files=3))
        merged = merge_partitions(a, a)
        assert len(merged) == 0

    def test_size_mismatch_rejected(self):
        a = find_filecules(make_trace([[0]], n_files=1))
        b = find_filecules(make_trace([[0]], n_files=2))
        with pytest.raises(ValueError):
            merge_partitions(a, b)

    def test_merge_all_requires_input(self):
        with pytest.raises(ValueError):
            merge_all([])


class TestMergeTheorem:
    def test_global_recovery_on_generated_trace(self, tiny_trace, tiny_partition):
        locals_ = identify_per_site(tiny_trace)
        merged = merge_all(list(locals_.values()))
        sim = partition_similarity(merged, tiny_partition)
        assert sim.exact_fraction == 1.0
        assert sim.rand_index == 1.0

    def test_random_traces(self):
        rng = np.random.default_rng(5)
        for _ in range(15):
            n_sites = int(rng.integers(2, 5))
            jobs = [
                sorted(
                    rng.choice(12, size=rng.integers(1, 6), replace=False).tolist()
                )
                for _ in range(int(rng.integers(2, 10)))
            ]
            trace = make_trace(
                jobs,
                n_files=12,
                job_nodes=[j % n_sites for j in range(len(jobs))],
                node_sites=list(range(n_sites)),
                node_domains=[0] * n_sites,
                site_names=[f"s{i}" for i in range(n_sites)],
            )
            locals_ = identify_per_site(trace)
            merged = merge_all(list(locals_.values()))
            assert groups_of(merged) == groups_of(find_filecules(trace))


class TestAccuracyCurve:
    def test_monotone_and_complete(self, tiny_trace, tiny_partition):
        points = merge_accuracy_curve(tiny_trace, tiny_partition)
        exact = [p.exact_fraction for p in points]
        assert all(a <= b + 1e-12 for a, b in zip(exact, exact[1:]))
        assert exact[-1] == 1.0
        assert points[-1].rand_index == 1.0

    def test_ordered_by_activity(self, tiny_trace):
        points = merge_accuracy_curve(tiny_trace)
        assert points[0].n_observers == 1
        # the first observer is the busiest site (hub)
        assert points[0].observer.startswith("gov")

    def test_coverage_grows(self, tiny_trace, tiny_partition):
        points = merge_accuracy_curve(tiny_trace, tiny_partition)
        covered = [p.n_files_covered for p in points]
        assert all(a <= b for a, b in zip(covered, covered[1:]))
