"""Flight-recorder time series: rings, rates, derivation, merging.

Unit tests for :mod:`repro.obs.timeseries` — series semantics (slot
alignment, aggregation modes, constant memory), registry sampling
(counter deltas, cumulative gauges, quantile-of-interval, derived hit
rate), and the property-based cross-worker merge laws the cluster
aggregation path relies on.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_CAPACITY,
    Series,
    TimeSeriesRecorder,
)


class TestSeries:
    def test_slot_alignment_combines_same_interval_samples(self):
        s = Series("x", "sum", interval=1.0)
        s.add(10.1, 2.0)
        s.add(9.9, 3.0)  # rounds to the same slot
        assert s.points() == [(10, 5.0, 2.0)]
        assert s.times() == [10.0]

    def test_capacity_bounds_memory(self):
        s = Series("x", "sum", interval=1.0, capacity=8)
        for t in range(100):
            s.add(float(t), 1.0)
        assert len(s) == 8
        assert s.times() == [92.0 + k for k in range(8)]

    def test_mean_aggregation_is_weighted(self):
        s = Series("x", "mean", interval=1.0)
        s.add(5.0, 1.0, weight=1.0)
        s.add(5.0, 0.0, weight=3.0)
        # (1*1 + 0*3) / 4
        assert s.values() == [0.25]

    def test_max_aggregation(self):
        s = Series("x", "max", interval=1.0)
        s.add(5.0, 2.0)
        s.add(5.0, 7.0)
        s.add(5.0, 1.0)
        assert s.values() == [7.0]

    def test_zero_weight_points_ignored(self):
        s = Series("x", "mean", interval=1.0)
        s.add(1.0, 5.0, weight=0.0)
        assert len(s) == 0

    def test_ewma_smooths_and_preserves_length(self):
        s = Series("x", "sum", interval=1.0)
        for t, v in enumerate([0.0, 10.0, 10.0, 10.0]):
            s.add(float(t), v)
        smoothed = s.ewma(alpha=0.5)
        assert len(smoothed) == 4
        assert smoothed[0] == 0.0
        assert smoothed[1] == 5.0
        assert smoothed[-1] < 10.0  # still converging
        assert smoothed == sorted(smoothed)  # monotone toward the level

    def test_ewma_alpha_validated(self):
        with pytest.raises(ValueError):
            Series("x").ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Series("x").ewma(alpha=1.5)

    def test_window_aggregate(self):
        s = Series("x", "sum", interval=1.0)
        for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            s.add(float(t), v)
        w = s.window(2)
        assert w == {"count": 2, "mean": 3.5, "min": 3.0, "max": 4.0, "last": 4.0}
        assert s.window(100)["count"] == 4
        assert Series("y").window(3)["count"] == 0
        with pytest.raises(ValueError):
            s.window(0)

    def test_merge_rejects_mismatched_interval_and_agg(self):
        a = Series("x", "sum", interval=1.0)
        with pytest.raises(ValueError, match="agg"):
            a.merge(Series("x", "mean", interval=1.0))
        with pytest.raises(ValueError, match="interval"):
            a.merge(Series("x", "sum", interval=0.5))

    def test_state_dict_round_trip(self):
        s = Series("p99:op", "mean", interval=0.25, capacity=16)
        s.add(1.0, 3.0, weight=2.0)
        s.add(2.0, 5.0, weight=1.0)
        clone = Series.from_state_dict(json.loads(json.dumps(s.state_dict())))
        assert clone.name == s.name and clone.agg == s.agg
        assert clone.interval == s.interval and clone.capacity == s.capacity
        assert clone.points() == s.points()

    def test_validation(self):
        with pytest.raises(ValueError):
            Series("x", "median")
        with pytest.raises(ValueError):
            Series("x", interval=0.0)
        with pytest.raises(ValueError):
            Series("x", capacity=0)


def _point_lists():
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=30),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.floats(min_value=0.1, max_value=10, allow_nan=False),
        ),
        max_size=20,
    )


def _series_from(points, agg):
    s = Series("x", agg, interval=1.0, capacity=DEFAULT_CAPACITY)
    for slot, value, weight in points:
        s.add(float(slot), value, weight=weight)
    return s


class TestMergeLaws:
    """The cluster-aggregation algebra: merge is associative + commutative."""

    @given(
        agg=st.sampled_from(["sum", "mean", "max"]),
        a=_point_lists(),
        b=_point_lists(),
        c=_point_lists(),
    )
    @settings(max_examples=120, deadline=None)
    def test_merge_associative_and_commutative(self, agg, a, b, c):
        def merged(*groups):
            out = _series_from(groups[0], agg)
            for g in groups[1:]:
                out.merge(_series_from(g, agg))
            return out.points()

        left = merged(a, b, c)  # (a+b)+c
        right = _series_from(a, agg)
        right.merge(_series_from(b, agg).merge(_series_from(c, agg)))
        assert _close(left, right.points())  # a+(b+c)
        assert _close(merged(a, b), merged(b, a))

    @given(agg=st.sampled_from(["sum", "mean", "max"]), a=_point_lists())
    @settings(max_examples=60, deadline=None)
    def test_empty_is_identity(self, agg, a):
        s = _series_from(a, agg)
        before = s.points()
        s.merge(Series("x", agg, interval=1.0))
        assert s.points() == before


def _close(a, b):
    if len(a) != len(b):
        return False
    return all(
        sa == sb and abs(va - vb) < 1e-9 and abs(wa - wb) < 1e-9
        for (sa, va, wa), (sb, vb, wb) in zip(a, b)
    )


class TestRecorderSampling:
    def test_counter_rates(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(interval=1.0)
        registry.inc("requests", 10)
        recorder.sample(registry, 0.0)  # baseline only
        assert recorder.samples == 0
        registry.inc("requests", 30)
        recorder.sample(registry, 2.0)
        assert recorder.samples == 1
        (rate,) = recorder.get("rate:requests").values()
        assert rate == pytest.approx(15.0)  # 30 new over 2 s

    def test_counter_reset_does_not_go_negative(self):
        recorder = TimeSeriesRecorder(interval=1.0)
        old = MetricsRegistry()
        old.inc("requests", 100)
        recorder.sample(old, 0.0)
        replaced = MetricsRegistry()  # daemon swapped its registry
        replaced.inc("requests", 5)
        recorder.sample(replaced, 1.0)
        (rate,) = recorder.get("rate:requests").values()
        assert rate == pytest.approx(5.0)

    def test_cumulative_gauges_become_rates(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(interval=1.0)
        registry.set_gauge("jobs_observed", 100)
        registry.set_gauge("site_requests", 1000, site=0)
        recorder.sample(registry, 0.0)
        registry.set_gauge("jobs_observed", 104)
        registry.set_gauge("site_requests", 1040, site=0)
        recorder.sample(registry, 1.0)
        assert recorder.get("rate:jobs_observed").values() == [4.0]
        assert recorder.get('rate:site_requests{site="0"}').values() == [40.0]
        # no gauge: series for cumulative gauges
        assert recorder.get("gauge:jobs_observed") is None

    def test_level_gauges_snapshot(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(interval=1.0)
        registry.set_gauge("span_buffer_spans", 7)
        registry.set_gauge("site_hit_rate", 0.5, site=0)
        recorder.sample(registry, 0.0)
        assert recorder.get("gauge:span_buffer_spans").values() == [7.0]
        hit = recorder.get('gauge:site_hit_rate{site="0"}')
        assert hit.agg == "mean"  # *_rate gauges average across workers
        assert hit.values() == [0.5]

    def test_derived_hit_rate_weighted_by_requests(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(interval=1.0)
        registry.set_gauge("site_requests", 0, site=0)
        registry.set_gauge("site_hits", 0, site=0)
        recorder.sample(registry, 0.0)
        registry.set_gauge("site_requests", 200, site=0)
        registry.set_gauge("site_hits", 50, site=0)
        recorder.sample(registry, 1.0)
        series = recorder.get("derived:hit_rate")
        assert series.agg == "mean"
        assert series.points() == [(1, 0.25, 200.0)]

    def test_histogram_interval_quantiles(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(interval=1.0)
        recorder.sample(registry, 0.0)
        for _ in range(100):
            registry.observe("op.ingest", 0.001)
        recorder.sample(registry, 1.0)
        assert recorder.get("rate:op.ingest.count").values() == [100.0]
        p99 = recorder.get("p99:op.ingest").values()
        assert len(p99) == 1 and 0.0005 < p99[0] < 0.01
        # second interval has no new observations: throughput 0, no quantile
        recorder.sample(registry, 2.0)
        assert recorder.get("rate:op.ingest.count").values() == [100.0, 0.0]
        assert len(recorder.get("p99:op.ingest")) == 1

    def test_constant_memory_under_long_sampling(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(interval=1.0, capacity=32)
        for t in range(500):
            registry.inc("requests")
            recorder.sample(registry, float(t))
        series = recorder.get("rate:requests")
        assert len(series) == 32
        assert all(len(s) <= 32 for s in map(recorder.get, recorder.names()))

    def test_recorder_merge_matches_single_recorder_view(self):
        """Two workers' recorders merge into the global per-slot truth."""
        registries = [MetricsRegistry(), MetricsRegistry()]
        recorders = [TimeSeriesRecorder(interval=1.0) for _ in registries]
        for reg, rec in zip(registries, recorders):
            rec.sample(reg, 0.0)
        registries[0].inc("requests", 10)
        registries[1].inc("requests", 30)
        registries[0].set_gauge("site_hits", 5, site=0)
        registries[0].set_gauge("site_requests", 10, site=0)
        registries[1].set_gauge("site_hits", 0, site=1)
        registries[1].set_gauge("site_requests", 30, site=1)
        for reg, rec in zip(registries, recorders):
            rec.sample(reg, 1.0)
        merged = recorders[0].merge(recorders[1])
        assert merged.get("rate:requests").values() == [40.0]
        # weighted mean over 40 requests: (5 + 0) / (10 + 30)
        assert merged.get("derived:hit_rate").points() == [(1, 0.125, 40.0)]
        assert merged.samples == 2

    def test_recorder_merge_rejects_interval_mismatch(self):
        with pytest.raises(ValueError, match="interval"):
            TimeSeriesRecorder(interval=1.0).merge(TimeSeriesRecorder(interval=0.5))

    def test_state_dict_round_trip_and_payload_cap(self):
        registry = MetricsRegistry()
        recorder = TimeSeriesRecorder(interval=0.5, capacity=64)
        recorder.sample(registry, 0.0)
        for t in range(1, 10):
            registry.inc("requests", t)
            recorder.sample(registry, t * 0.5)
        clone = TimeSeriesRecorder.from_state_dict(
            json.loads(json.dumps(recorder.state_dict()))
        )
        assert clone.interval == recorder.interval
        assert clone.samples == recorder.samples
        assert clone.names() == recorder.names()
        for name in recorder.names():
            assert clone.get(name).points() == recorder.get(name).points()
        capped = recorder.payload(last=3)
        assert all(len(s["points"]) <= 3 for s in capped["series"])
        # payload is a state_dict superset: it round-trips too
        assert TimeSeriesRecorder.from_state_dict(capped).names() == recorder.names()

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(interval=0.0)
        with pytest.raises(ValueError):
            TimeSeriesRecorder(capacity=0)
