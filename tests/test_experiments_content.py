"""Content-level tests of experiment outputs (beyond "checks pass").

These pin down the *semantics* of each experiment's rows so refactors of
the rendering/registry cannot silently change what is reported.
"""

import numpy as np
import pytest

from repro.experiments.base import get_context, run_experiment
from repro.experiments.fig10 import CAPACITY_FRACTIONS, capacities_for


@pytest.fixture(scope="module")
def ctx():
    return get_context("small", seed=7)


class TestTable1Content:
    def test_row_order_and_all_row(self, ctx):
        result = run_experiment("table1", ctx)
        tiers = [row[0] for row in result.rows]
        assert tiers == [
            "Reconstructed",
            "Root-tuple",
            "Thumbnail",
            "Other",
            "All",
        ]
        all_row = result.rows[-1]
        assert all_row[2] == ctx.trace.n_jobs  # jobs column

    def test_other_tier_has_na_files(self, ctx):
        result = run_experiment("table1", ctx)
        other = result.rows[3]
        assert other[3] is None and other[4] is None


class TestTable2Content:
    def test_sorted_by_jobs_descending(self, ctx):
        result = run_experiment("table2", ctx)
        jobs = [row[1] for row in result.rows]
        assert jobs == sorted(jobs, reverse=True)

    def test_job_totals_match_trace(self, ctx):
        result = run_experiment("table2", ctx)
        assert sum(row[1] for row in result.rows) == ctx.trace.n_jobs

    def test_filecule_counts_positive_where_files(self, ctx):
        result = run_experiment("table2", ctx)
        for row in result.rows:
            if row[6]:  # files
                assert row[5] >= 1  # filecules


class TestFig10Content:
    def test_capacities_cover_seven_points(self, ctx):
        result = run_experiment("fig10", ctx)
        assert len(result.rows) == len(CAPACITY_FRACTIONS) == 7

    def test_factor_column_consistent(self, ctx):
        result = run_experiment("fig10", ctx)
        for row in result.rows:
            _, _, file_mr, cule_mr, factor = row
            if cule_mr > 0:
                assert factor == pytest.approx(file_mr / cule_mr, rel=1e-6)

    def test_capacities_helper(self):
        caps = capacities_for(1000)
        assert len(caps) == 7
        assert caps == sorted(caps)
        assert caps[0] >= 1


class TestFig4Fig5Content:
    def test_fig4_counts_sum_to_filecules(self, ctx):
        result = run_experiment("fig4", ctx)
        assert sum(row[1] for row in result.rows) == len(ctx.partition)

    def test_fig5_counts_sum_to_traced_jobs(self, ctx):
        result = run_experiment("fig5", ctx)
        traced = int((ctx.trace.files_per_job > 0).sum())
        assert sum(row[1] for row in result.rows) == traced


class TestFig9Content:
    def test_bucket_sum(self, ctx):
        result = run_experiment("fig9", ctx)
        assert sum(row[1] for row in result.rows) == len(ctx.partition)


class TestFig11Fig12Content:
    def test_fig11_job_totals_match_requests(self, ctx):
        result = run_experiment("fig11", ctx)
        from repro.transfer.intervals import select_hot_filecule

        fc = select_hot_filecule(ctx.trace, ctx.partition)
        assert sum(row[3] for row in result.rows) == fc.n_requests

    def test_fig12_covers_all_users_of_the_filecule(self, ctx):
        result = run_experiment("fig12", ctx)
        from repro.transfer.intervals import select_hot_filecule

        fc = select_hot_filecule(ctx.trace, ctx.partition)
        users = ctx.partition.users_per_filecule(ctx.trace)
        assert len(result.rows) == int(users[fc.filecule_id])


class TestPartialContent:
    def test_rows_sorted_by_activity(self, ctx):
        result = run_experiment("partial", ctx)
        jobs = [row[1] for row in result.rows]
        assert jobs == sorted(jobs, reverse=True)

    def test_inflation_consistency(self, ctx):
        result = run_experiment("partial", ctx)
        for row in result.rows:
            _, _, _, n_local, n_true, _, inflation = row
            if n_local:
                assert inflation == pytest.approx(n_true / n_local, rel=1e-6)


class TestMergeKnowledgeContent:
    def test_one_row_per_active_site(self, ctx):
        result = run_experiment("merge_knowledge", ctx)
        active_sites = len(np.unique(ctx.trace.job_sites))
        assert len(result.rows) == active_sites

    def test_final_row_exact(self, ctx):
        result = run_experiment("merge_knowledge", ctx)
        assert result.rows[-1][4] == 1.0  # exact fraction
        assert result.rows[-1][5] == 1.0  # rand index


class TestSwarmContent:
    def test_speedups_at_least_one(self, ctx):
        result = run_experiment("swarm", ctx)
        for row in result.rows:
            assert row[-1] >= 1.0 - 1e-9


class TestRenderingStability:
    @pytest.mark.parametrize(
        "experiment_id", ["table1", "fig10", "partial", "swarm"]
    )
    def test_render_contains_all_headers(self, experiment_id, ctx):
        result = run_experiment(experiment_id, ctx)
        rendered = result.render()
        for header in result.headers:
            assert header in rendered
