"""Unit tests for exact filecule identification."""

import numpy as np
import pytest

from repro.core.identify import find_filecules, signature_of_file
from repro.core.properties import assert_partition_valid
from tests.conftest import make_trace


class TestClassicExample:
    def test_expected_partition(self, classic_trace):
        partition = find_filecules(classic_trace)
        groups = sorted(
            tuple(fc.file_ids.tolist()) for fc in partition
        )
        assert groups == [(0, 1), (2, 3), (4,), (5,), (6,)]

    def test_unaccessed_file_has_no_label(self, classic_trace):
        partition = find_filecules(classic_trace)
        assert partition.labels[7] == -1
        assert partition.filecule_of(7) is None

    def test_requests_match_definition(self, classic_trace):
        partition = find_filecules(classic_trace)
        fc01 = partition.filecule_of(0)
        assert fc01.n_requests == 3  # jobs 0, 2, 4
        fc4 = partition.filecule_of(4)
        assert fc4.n_requests == 2  # jobs 1, 2

    def test_partition_order_by_popularity(self, classic_trace):
        partition = find_filecules(classic_trace)
        requests = partition.requests
        assert all(requests[i] >= requests[i + 1] for i in range(len(requests) - 1))

    def test_valid(self, classic_trace):
        assert_partition_valid(classic_trace, find_filecules(classic_trace))


class TestEdgeCases:
    def test_empty_trace(self):
        partition = find_filecules(make_trace([], n_files=3))
        assert len(partition) == 0
        assert partition.labels.tolist() == [-1, -1, -1]

    def test_single_job_single_filecule(self):
        partition = find_filecules(make_trace([[0, 1, 2]]))
        assert len(partition) == 1
        assert partition[0].n_files == 3
        assert partition[0].n_requests == 1

    def test_identical_jobs_do_not_split(self):
        partition = find_filecules(make_trace([[0, 1], [0, 1], [0, 1]]))
        assert len(partition) == 1
        assert partition[0].n_requests == 3

    def test_disjoint_jobs(self):
        partition = find_filecules(make_trace([[0], [1], [2]]))
        assert len(partition) == 3

    def test_nested_jobs_split(self):
        # job 1 requests a subset of job 0 -> split
        partition = find_filecules(make_trace([[0, 1, 2], [0, 1]]))
        groups = sorted(tuple(fc.file_ids.tolist()) for fc in partition)
        assert groups == [(0, 1), (2,)]

    def test_chain_of_overlaps(self):
        # sliding windows produce per-file signatures all distinct except ends
        partition = find_filecules(
            make_trace([[0, 1, 2], [1, 2, 3], [2, 3, 4]])
        )
        groups = sorted(tuple(fc.file_ids.tolist()) for fc in partition)
        assert groups == [(0,), (1,), (2,), (3,), (4,)]

    def test_sizes_accumulated(self):
        partition = find_filecules(
            make_trace([[0, 1]], file_sizes=[10, 30])
        )
        assert partition[0].size_bytes == 40


class TestSignature:
    def test_signature_of_file(self, classic_trace):
        assert signature_of_file(classic_trace, 0) == (0, 2, 4)
        assert signature_of_file(classic_trace, 5) == (3,)
        assert signature_of_file(classic_trace, 7) == ()

    def test_same_filecule_iff_same_signature(self, classic_trace):
        partition = find_filecules(classic_trace)
        files = classic_trace.accessed_file_ids
        for a in files:
            for b in files:
                same_sig = signature_of_file(classic_trace, int(a)) == (
                    signature_of_file(classic_trace, int(b))
                )
                same_fc = partition.labels[a] == partition.labels[b]
                assert same_sig == same_fc


class TestGeneratedTrace:
    def test_valid_on_generated(self, tiny_trace, tiny_partition):
        assert_partition_valid(tiny_trace, tiny_partition)

    def test_covers_exactly_accessed_files(self, tiny_trace, tiny_partition):
        covered = np.flatnonzero(tiny_partition.labels >= 0)
        np.testing.assert_array_equal(covered, tiny_trace.accessed_file_ids)

    def test_popularity_equals_member_popularity(self, tiny_trace, tiny_partition):
        pop = tiny_trace.file_popularity
        for fc in tiny_partition:
            member_pops = pop[fc.file_ids]
            assert np.all(member_pops == fc.n_requests)

    def test_deterministic(self, tiny_trace):
        p1 = find_filecules(tiny_trace)
        p2 = find_filecules(tiny_trace)
        np.testing.assert_array_equal(p1.labels, p2.labels)


class TestTierPurity:
    def test_generated_filecules_are_tier_pure(self, tiny_trace, tiny_partition):
        """Datasets never span tiers, so neither can filecules.

        This justifies computing the per-tier Figures 6-8 by grouping the
        full-trace partition by dominant tier rather than re-identifying
        per tier.
        """
        for fc in tiny_partition:
            tiers = set(tiny_trace.file_tiers[fc.file_ids].tolist())
            assert len(tiers) == 1, (
                f"filecule #{fc.filecule_id} spans tiers {tiers}"
            )

    def test_per_tier_identification_matches_grouping(self, tiny_trace, tiny_partition):
        """Identifying on a tier-filtered trace yields a coarsening of the
        full partition restricted to that tier (tier sub-traces drop the
        cross-tier jobs, but jobs are tier-pure, so it is in fact equal)."""
        from repro.core.identify import find_filecules
        from repro.traces.filters import filter_by_tier
        from repro.traces.records import TIER_THUMBNAIL

        sub = filter_by_tier(tiny_trace, TIER_THUMBNAIL)
        sub_partition = find_filecules(sub)
        sub_groups = sorted(
            tuple(fc.file_ids.tolist()) for fc in sub_partition
        )
        tiers = tiny_partition.dominant_tiers(tiny_trace)
        full_groups = sorted(
            tuple(fc.file_ids.tolist())
            for fc in tiny_partition
            if tiers[fc.filecule_id] == TIER_THUMBNAIL
        )
        assert sub_groups == full_groups
