"""Tests for the --report CLI flag and the analyze-trace adoption path."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.__main__ import main as experiments_main

REPO = Path(__file__).parent.parent


class TestReportFlag:
    def test_report_written(self, tmp_path, capsys):
        report = tmp_path / "r.md"
        code = experiments_main(
            ["fig3", "--scale", "small", "--seed", "7", "--report", str(report)]
        )
        assert code == 0
        text = report.read_text()
        assert "# Reproduction report" in text
        assert "## fig3" in text
        out = capsys.readouterr().out
        assert "wrote report to" in out


class TestAnalyzeTraceExample:
    def test_end_to_end_on_exported_trace(self, tmp_path, tiny_trace):
        from repro.traces.io import write_trace_jsonl

        path = write_trace_jsonl(tiny_trace, tmp_path / "t.jsonl")
        proc = subprocess.run(
            [sys.executable, str(REPO / "examples" / "analyze_trace.py"), str(path)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "filecules over" in proc.stdout
        assert "per-tier characteristics" in proc.stdout
        assert "cache check" in proc.stdout

    def test_usage_message_without_args(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "examples" / "analyze_trace.py")],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 2
        assert "Usage" in proc.stdout or "usage" in proc.stdout
