"""Protocol fast path: client pipelining and multi-process loadgen.

Covers the PR's throughput levers end to end against a real in-process
server: batched sync/async pipelines (responses paired by id, errors
surfaced in order), the pipelined load generator, multi-process
generation with bucket-exact histogram merging, and the equivalence
guarantee that none of it changes the partition the server identifies.
"""

import asyncio
import multiprocessing
import os

import pytest

from repro.core.identify import find_filecules
from repro.obs.metrics import LatencyHistogram
from repro.service import (
    AsyncServiceClient,
    FileculeServer,
    ServiceClient,
    ServiceError,
    ServiceState,
    jobs_from_trace,
    run_load,
)
from repro.service.loadgen import (
    LoadReport,
    merge_reports,
    run_load_procs,
)
from repro.service.state import partition_checksum
from repro.workload.calibration import tiny_config
from repro.workload.generator import generate_trace

HAS_FORK = (
    os.name == "posix"
    and "fork" in multiprocessing.get_all_start_methods()
)


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(tiny_config(), seed=31)


def offline_checksum(trace):
    return partition_checksum(
        fc.file_ids.tolist() for fc in find_filecules(trace)
    )


def run(coro):
    return asyncio.run(coro)


async def _with_server(fn, **server_kwargs):
    server = FileculeServer(ServiceState(), **server_kwargs)
    await server.start()
    try:
        return await fn(server)
    finally:
        await server.stop()


class TestAsyncPipeline:
    def test_batch_matches_sequential_results(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                results = await client.pipeline(
                    [
                        ("ingest", {"files": [1, 2, 3]}),
                        ("ingest", {"files": [2, 3]}),
                        ("filecule_of", {"file": 2}),
                        ("stats", {}),
                    ]
                )
            assert results[0]["job_seq"] == 1
            assert results[1]["job_seq"] == 2
            assert results[2]["filecule"]["files"] == [2, 3]
            assert results[3]["n_classes"] == 2
            return None

        run(_with_server(scenario))

    def test_manual_send_flush_read(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                ids = [
                    client.send_nowait("ingest", files=[k, k + 1])
                    for k in range(0, 20, 2)
                ]
                await client.flush()
                for k, request_id in enumerate(ids):
                    receipt = await client.read_response(request_id)
                    assert receipt["job_seq"] == k + 1
            return None

        run(_with_server(scenario))

    def test_error_in_batch_raises_in_order(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                good = client.send_nowait("ingest", files=[1])
                bad = client.send_nowait("ingest", files=["not-an-int"])
                after = client.send_nowait("ingest", files=[2])
                await client.flush()
                assert (await client.read_response(good))["job_seq"] == 1
                with pytest.raises(ServiceError):
                    await client.read_response(bad)
                # The stream stays usable after a failed request.
                assert (await client.read_response(after))["job_seq"] == 2
            return None

        run(_with_server(scenario))


class TestSyncPipeline:
    def test_pipeline_round_trip(self):
        async def scenario(server):
            def blocking():
                with ServiceClient("127.0.0.1", server.port) as client:
                    results = client.pipeline(
                        [
                            ("ingest", {"files": [4, 5]}),
                            ("ingest", {"files": [4, 5]}),
                            ("stats", {}),
                        ]
                    )
                assert results[0]["job_seq"] == 1
                assert results[2]["jobs_observed"] == 2

            await asyncio.to_thread(blocking)
            return None

        run(_with_server(scenario))


class TestPipelinedLoadgen:
    def test_pipelined_run_preserves_partition(self, tiny_trace):
        jobs = jobs_from_trace(tiny_trace)

        async def scenario(server):
            return await run_load(
                "127.0.0.1",
                server.port,
                jobs,
                connections=3,
                pipeline_depth=16,
                advise_every=10,
            )

        report = run(_with_server(scenario))
        assert report.errors == 0
        assert report.jobs == len(jobs)
        assert report.final_stats["partition_checksum"] == offline_checksum(
            tiny_trace
        )
        assert "ingest" in report.latencies_ms
        assert "ingest" in report.histograms

    def test_rejects_bad_depth(self, tiny_trace):
        with pytest.raises(ValueError):
            run(
                run_load(
                    "127.0.0.1", 1, jobs_from_trace(tiny_trace), pipeline_depth=0
                )
            )


class TestMergeReports:
    def _report(self, samples_ms, jobs=5):
        hist = LatencyHistogram()
        for ms in samples_ms:
            hist.record(ms / 1e3)
        return LoadReport(
            jobs=jobs,
            requests=len(samples_ms),
            errors=0,
            duration_seconds=1.0,
            histograms={"ingest": hist.state_dict()},
        )

    def test_counts_sum_and_histograms_merge(self):
        a = self._report([1.0, 2.0, 3.0])
        b = self._report([10.0, 20.0], jobs=2)
        merged = merge_reports([a, b])
        assert merged.jobs == 7
        assert merged.requests == 5
        assert merged.latencies_ms["ingest"]["count"] == 5
        # max survives the merge exactly (not bucket-rounded)
        assert merged.latencies_ms["ingest"]["max"] == pytest.approx(20.0)

    def test_percentiles_come_from_merged_buckets(self):
        # 90 fast samples in one report, 10 slow in the other: the merged
        # p99 must land in the slow tail that the fast report never saw.
        fast = self._report([1.0] * 90, jobs=90)
        slow = self._report([500.0] * 10, jobs=10)
        merged = merge_reports([fast, slow])
        assert merged.latencies_ms["ingest"]["p99"] > 100.0
        assert merged.latencies_ms["ingest"]["p50"] < 10.0

    def test_empty_is_an_error(self):
        with pytest.raises(ValueError):
            merge_reports([])


@pytest.mark.skipif(not HAS_FORK, reason="needs POSIX fork")
class TestMultiProcessLoadgen:
    def test_procs_preserve_partition_and_merge_latency(self, tiny_trace):
        jobs = jobs_from_trace(tiny_trace)

        async def scenario(server):
            # run_load_procs blocks; keep the server loop responsive.
            return await asyncio.to_thread(
                run_load_procs,
                "127.0.0.1",
                server.port,
                jobs,
                procs=2,
                connections=2,
                pipeline_depth=8,
            )

        report = run(_with_server(scenario))
        assert report.errors == 0
        assert report.jobs == len(jobs)
        assert report.requests == len(jobs)
        assert report.final_stats["partition_checksum"] == offline_checksum(
            tiny_trace
        )
        assert report.latencies_ms["ingest"]["count"] == len(jobs)

    def test_procs_one_is_plain_run(self, tiny_trace):
        jobs = jobs_from_trace(tiny_trace)[:30]

        async def scenario(server):
            return await asyncio.to_thread(
                run_load_procs,
                "127.0.0.1",
                server.port,
                jobs,
                procs=1,
                connections=2,
            )

        report = run(_with_server(scenario))
        assert report.jobs == 30
        assert report.errors == 0

    def test_rejects_bad_procs(self):
        with pytest.raises(ValueError):
            run_load_procs("127.0.0.1", 1, [{"files": [1]}], procs=0)
