"""BatchedFileCache: the array-backed advisor twin, deterministically.

The hypothesis battery (``test_property_based_4``) sweeps random
streams; these tests pin the constructed edge cases — bulk-prefix hit
attribution across job boundaries, mid-window eviction flipping a later
access, LRU/FIFO touch divergence, bypass accounting, log compaction,
eviction exhaustion, and the factory's eligibility rules.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro import registry
from repro.cache.lru import FileLRU
from repro.cache.online import _CHUNK, BatchedFileCache, batched_policy_for


def window(cache, jobs, sizes_by_file):
    flat = np.array([f for job in jobs for f in job], dtype=np.int64)
    offsets = np.zeros(len(jobs) + 1, dtype=np.int64)
    np.cumsum([len(j) for j in jobs], out=offsets[1:])
    sizes = np.array([sizes_by_file[f] for f in flat], dtype=np.int64)
    return cache.request_window(flat, offsets, sizes)


class TestRequestWindow:
    def test_bulk_prefix_attribution_across_job_boundary(self):
        cache = BatchedFileCache(1000)
        for f in (1, 2, 3, 4, 5):
            cache.request(f, 10, float(f))
        sizes = dict.fromkeys(range(10), 10)
        # Jobs [1,2] and [3] are all hits; the first miss (9) lands
        # mid-job, so job 1 gets bulk credit for its leading hit only.
        job_hits, totals = window(cache, [[1, 2], [3, 9], [4, 5]], sizes)
        assert job_hits == [2, 1, 2]
        assert totals == (6, 5, 60, 50, 10, 0)

    def test_mid_window_eviction_flips_later_access(self):
        sizes = dict.fromkeys(range(10), 10)
        cache = BatchedFileCache(20)
        # 1, 2 fill the cache; 3 evicts 1; the final job's 1 is a miss
        # again — residency must be evaluated in access order.
        job_hits, totals = window(cache, [[1], [2], [3], [1]], sizes)
        assert job_hits == [0, 0, 0, 0]
        assert totals == (4, 0, 40, 0, 40, 0)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_lru_touch_changes_victim_fifo_does_not(self):
        sizes = dict.fromkeys(range(10), 10)
        lru = BatchedFileCache(20, touch_on_hit=True)
        assert window(lru, [[1], [2], [1], [3], [1]], sizes)[0] == [
            0, 0, 1, 0, 1,
        ]
        fifo = BatchedFileCache(20, touch_on_hit=False)
        assert window(fifo, [[1], [2], [1], [3], [1]], sizes)[0] == [
            0, 0, 1, 0, 0,
        ]

    def test_bypass_oversized_file_mid_window(self):
        cache = BatchedFileCache(50)
        job_hits, totals = window(
            cache, [[1, 2], [3]], {1: 10, 2: 80, 3: 10}
        )
        assert job_hits == [0, 0]
        # The 80-byte file exceeds capacity outright: fetched but never
        # cached, counted as a bypass, and evicting nothing.
        assert totals == (3, 0, 100, 0, 100, 1)
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_empty_window_and_empty_jobs(self):
        cache = BatchedFileCache(100)
        job_hits, totals = window(cache, [[], []], {})
        assert job_hits == [0, 0]
        assert totals == (0, 0, 0, 0, 0, 0)


class TestLogMaintenance:
    def test_compaction_preserves_reference_behavior(self):
        # Hammer hits until the lazy-deletion log compacts (> 4x
        # resident + chunk), then check eviction order against the
        # dict-backed reference.
        cap = 40
        cache = BatchedFileCache(cap)
        ref = FileLRU(cap)
        clock = 0.0
        for f in (0, 1, 2, 3):
            clock += 1
            cache.request(f, 10, clock)
            ref.request(f, 10, clock)
        for i in range(_CHUNK + 4 * 4 + 50):
            clock += 1
            f = i % 3  # touch 0,1,2 — 3 stays least-recent
            cache.request(f, 10, clock)
            ref.request(f, 10, clock)
        for f in (7, 8, 9):
            clock += 1
            a = ref.request(f, 10, clock)
            b = cache.request(f, 10, clock)
            assert (a.hit, a.bytes_fetched) == (b.hit, b.bytes_fetched)
        for f in range(10):
            assert (f in cache) == (f in ref)

    def test_eviction_exhaustion_raises(self):
        cache = BatchedFileCache(100)
        with pytest.raises(RuntimeError, match="nothing left to evict"):
            cache._evict_until(101)


class TestFactory:
    def test_plain_lru_and_fifo_are_eligible(self):
        lru = batched_policy_for(registry.parse("lru"))(64)
        assert isinstance(lru, BatchedFileCache) and lru.touch_on_hit
        fifo = batched_policy_for(registry.parse("file-fifo"))(64)
        assert isinstance(fifo, BatchedFileCache) and not fifo.touch_on_hit

    def test_other_policies_and_params_are_not(self):
        assert batched_policy_for(registry.parse("gds")) is None
        assert (
            batched_policy_for(
                SimpleNamespace(name="file-lru", params=(("alpha", 1.0),))
            )
            is None
        )
