"""Integration tests: every experiment runs and its qualitative checks hold.

These run on the 'small' scale (≈ 600 traced jobs) so the whole module
stays under a minute; the benchmark harness exercises the default scale.
"""

import pytest

from repro.experiments.base import (
    ExperimentResult,
    all_experiment_ids,
    get_context,
    get_experiment,
    run_experiment,
)

#: Checks that need default-scale statistics and are allowed to be
#: flaky at 'small' scale (3 users / 12 sites only).
SCALE_SENSITIVE = {
    ("fig9", "a hot head exists (max >= 10x median requests)"),
    ("fig4", "significant multi-user sharing (max users >= 5)"),
    ("fig12", "several users share the filecule"),
    (
        "fig12",
        "more activity visible than in the per-site view "
        "(paper: 'periods when 10 users might store copies')",
    ),
    ("table2", "hub dominates (>5x the next domain)"),
    ("fig10", "large-cache factor reaches the paper's 4-5x (band 4x-9x)"),
    ("null_model", "null filecules collapse toward single files (mean < 1.2)"),
    ("fig6", "root-tuple has multi-file-scale filecules"),
    ("fig6", "every tier contributes filecules"),
    ("table1", "Reconstructed input/job within 2x of paper"),
    ("table1", "Root-tuple input/job within 2x of paper"),
    ("table1", "Thumbnail input/job within 2x of paper"),
    (
        "replication",
        "at the largest budget, interest-aware matches >=85% of the "
        "global plan's locality at a fraction of the push cost",
    ),
}


@pytest.fixture(scope="module")
def ctx():
    return get_context("small", seed=7)


class TestRegistry:
    def test_known_ids(self):
        ids = all_experiment_ids()
        for required in (
            "table1",
            "table2",
            *(f"fig{i}" for i in range(1, 13)),
            "partial",
            "swarm",
            "replication",
            "ablation_policies",
            "ablation_dynamics",
        ):
            assert required in ids

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_context("galactic")


@pytest.mark.parametrize("experiment_id", all_experiment_ids())
class TestEveryExperiment:
    def test_runs_and_renders(self, experiment_id, ctx):
        result = run_experiment(experiment_id, ctx)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == experiment_id
        assert result.rows, f"{experiment_id} produced no rows"
        rendered = result.render()
        assert experiment_id in rendered
        assert result.title in rendered

    def test_checks_hold(self, experiment_id, ctx):
        result = run_experiment(experiment_id, ctx)
        failing = [
            name
            for name, ok in result.checks.items()
            if not ok and (experiment_id, name) not in SCALE_SENSITIVE
        ]
        assert not failing, f"{experiment_id}: failing checks {failing}"


class TestContextSharing:
    def test_context_cached(self):
        assert get_context("small", seed=7) is get_context("small", seed=7)

    def test_partition_matches_trace(self, ctx):
        assert ctx.partition.n_files == ctx.trace.n_files


class TestCli:
    def test_main_single_experiment(self, capsys):
        from repro.experiments.__main__ import main

        code = main(["fig3", "--scale", "small", "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig3" in out
        assert "workload:" in out

    def test_main_unknown_id(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig99"])
