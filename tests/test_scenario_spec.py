"""Spec-grammar tests for ``repro.scenario``: canonicalization, errors,
composition round-trips — including the hypothesis-tested
``parse_scenario(str(spec)) == spec`` canonicalizer property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario import (
    Composition,
    ScenarioSpec,
    ScenarioSpecError,
    UnknownScenarioError,
    bound_params,
    compose,
    get_transform,
    list_transforms,
    parse_composition,
    parse_scenario,
    scenario_names,
)

CANONICAL = (
    "flash-crowd",
    "phase-shift",
    "popularity-drift",
    "scan-flood",
    "site-outage",
    "stationary",
)


def _value_strategy(default: object) -> st.SearchStrategy:
    """Values of the default's type (the coercion rule's type driver)."""
    if isinstance(default, bool):
        return st.booleans()
    if isinstance(default, int):
        return st.integers(min_value=-(10**6), max_value=10**6)
    if isinstance(default, float):
        return st.floats(allow_nan=False, allow_infinity=False)
    raise AssertionError(f"unexpected default type: {default!r}")


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    transform = draw(st.sampled_from(list_transforms()))
    keys = draw(
        st.lists(st.sampled_from(sorted(transform.defaults) or [""]), unique=True)
        if transform.defaults
        else st.just([])
    )
    params = tuple(
        sorted((k, draw(_value_strategy(transform.defaults[k]))) for k in keys)
    )
    return ScenarioSpec(name=transform.name, params=params)


class TestCatalog:
    def test_canonical_names(self):
        assert tuple(scenario_names()) == CANONICAL

    def test_aliases_resolve(self):
        assert get_transform("drift").name == "popularity-drift"
        assert get_transform("reprocessing").name == "phase-shift"
        assert get_transform("crowd").name == "flash-crowd"
        assert get_transform("outage").name == "site-outage"
        assert get_transform("scan").name == "scan-flood"

    def test_names_with_aliases_superset(self):
        with_aliases = scenario_names(include_aliases=True)
        assert set(CANONICAL) < set(with_aliases)
        assert "drift" in with_aliases


class TestParse:
    def test_plain_name(self):
        assert parse_scenario("stationary") == ScenarioSpec("stationary")

    def test_alias_canonicalizes(self):
        spec = parse_scenario("drift?strength=0.25")
        assert spec == ScenarioSpec(
            "popularity-drift", (("strength", 0.25),)
        )
        assert str(spec) == "popularity-drift?strength=0.25"

    def test_param_coercion_types(self):
        spec = parse_scenario("flash-crowd?files=16&boost=0.5")
        params = dict(spec.params)
        assert params["files"] == 16 and isinstance(params["files"], int)
        assert params["boost"] == 0.5 and isinstance(params["boost"], float)

    def test_params_sorted(self):
        a = parse_scenario("flash-crowd?boost=0.5&files=16")
        b = parse_scenario("flash-crowd?files=16&boost=0.5")
        assert a == b

    def test_spec_passthrough_validates(self):
        spec = ScenarioSpec("stationary")
        assert parse_scenario(spec) is spec
        with pytest.raises(UnknownScenarioError):
            parse_scenario(ScenarioSpec("no-such-scenario"))

    def test_unknown_name(self):
        with pytest.raises(UnknownScenarioError, match="known scenarios"):
            parse_scenario("meteor-strike")

    def test_unknown_param(self):
        with pytest.raises(ScenarioSpecError, match="valid parameters"):
            parse_scenario("popularity-drift?speed=2")

    def test_malformed_pair(self):
        with pytest.raises(ScenarioSpecError, match="param=value"):
            parse_scenario("popularity-drift?strength")

    def test_bad_value(self):
        with pytest.raises(ScenarioSpecError, match="bad value"):
            parse_scenario("popularity-drift?strength=lots")

    def test_composition_string_rejected(self):
        with pytest.raises(ScenarioSpecError, match="parse_composition"):
            parse_scenario("stationary+flash-crowd")

    @settings(max_examples=200)
    @given(spec=scenario_specs())
    def test_parse_str_round_trip(self, spec):
        assert parse_scenario(str(spec)) == spec


class TestBoundParams:
    def test_defaults_plus_overrides(self):
        merged = bound_params(parse_scenario("flash-crowd?boost=0.5"))
        assert merged["boost"] == 0.5
        assert merged["at"] == 0.6  # untouched default

    def test_unknown_override_rejected(self):
        with pytest.raises(ScenarioSpecError, match="valid parameters"):
            bound_params(ScenarioSpec("stationary", (("x", 1),)))


class TestComposition:
    def test_compose_order_preserved(self):
        comp = compose("drift?strength=0.8", "flash-crowd")
        assert isinstance(comp, Composition)
        assert str(comp) == "popularity-drift?strength=0.8+flash-crowd"
        assert len(comp) == 2

    def test_parse_composition_round_trip(self):
        text = "popularity-drift?strength=0.8+flash-crowd?boost=0.5"
        comp = parse_composition(text)
        assert parse_composition(str(comp)) == comp

    def test_single_member(self):
        comp = parse_composition("stationary")
        assert len(comp) == 1
        assert comp.specs[0] == ScenarioSpec("stationary")

    def test_accepts_spec_and_composition(self):
        spec = parse_scenario("stationary")
        assert parse_composition(spec).specs == (spec,)
        comp = compose(spec)
        assert parse_composition(comp) is comp

    def test_empty_member_rejected(self):
        with pytest.raises(ScenarioSpecError):
            parse_composition("stationary++flash-crowd")

    @settings(max_examples=100)
    @given(specs=st.lists(scenario_specs(), min_size=1, max_size=4))
    def test_composition_str_round_trip(self, specs):
        comp = compose(*specs)
        assert parse_composition(str(comp)) == comp
