"""Unit tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_children, stable_seed


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_generator(rng) is rng

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(9)
        a = as_generator(np.random.SeedSequence(9)).random(3)
        b = as_generator(seq).random(3)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_fresh_stream(self):
        # two fresh streams should (overwhelmingly) differ
        a = as_generator(None).random(8)
        b = as_generator(None).random(8)
        assert not np.array_equal(a, b)


class TestSpawnChildren:
    def test_children_are_independent_of_sibling_usage(self):
        kids1 = spawn_children(7, 3)
        _ = kids1[0].random(1000)  # heavy use of child 0
        after_use = kids1[1].random(5)

        kids2 = spawn_children(7, 3)
        fresh = kids2[1].random(5)
        np.testing.assert_array_equal(after_use, fresh)

    def test_children_differ_from_each_other(self):
        kids = spawn_children(7, 2)
        assert not np.array_equal(kids[0].random(8), kids[1].random(8))

    def test_from_generator(self):
        kids = spawn_children(np.random.default_rng(5), 2)
        assert len(kids) == 2

    def test_zero_children(self):
        assert spawn_children(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(1, -1)


class TestStableSeed:
    def test_deterministic_across_calls(self):
        assert stable_seed("fig10", "lru", 5) == stable_seed("fig10", "lru", 5)

    def test_distinct_for_distinct_parts(self):
        seen = {stable_seed("a"), stable_seed("b"), stable_seed("a", "b")}
        assert len(seen) == 3

    def test_fits_in_63_bits(self):
        for part in ("x", 123, ("t", 1)):
            assert 0 <= stable_seed(part) < 2**63

    def test_usable_as_numpy_seed(self):
        rng = np.random.default_rng(stable_seed("experiment", 1))
        assert 0.0 <= rng.random() < 1.0
