"""Unit tests for partial-knowledge identification (§6)."""

import numpy as np
import pytest

from repro.core.identify import find_filecules
from repro.core.partial import (
    coarsening_report,
    identify_per_domain,
    identify_per_site,
    is_coarsening_of,
)
from tests.conftest import make_trace


@pytest.fixture()
def two_site_trace():
    """Site 0 sees jobs {0,1}; site 1 sees job {2}.

    Global filecules: {0,1} (jobs 0,2), {2} (job 0), {3} (job 1).
    Site 1 alone sees only job 2 = [0,1] -> one class {0,1}.
    Site 0 alone sees jobs [0,1,2],[3] -> classes {0,1,2},{3} — coarser!
    """
    return make_trace(
        [[0, 1, 2], [3], [0, 1]],
        job_nodes=[0, 0, 1],
        node_sites=[0, 1],
        node_domains=[0, 1],
        site_names=["s0", "s1"],
        domain_names=[".a", ".b"],
    )


class TestPerSiteIdentification:
    def test_partitions_per_site(self, two_site_trace):
        locals_ = identify_per_site(two_site_trace)
        assert set(locals_) == {0, 1}
        s0 = sorted(tuple(fc.file_ids.tolist()) for fc in locals_[0])
        assert s0 == [(0, 1, 2), (3,)]
        s1 = sorted(tuple(fc.file_ids.tolist()) for fc in locals_[1])
        assert s1 == [(0, 1)]

    def test_per_domain(self, two_site_trace):
        locals_ = identify_per_domain(two_site_trace)
        assert set(locals_) == {0, 1}


class TestCoarseningTheorem:
    def test_local_is_coarsening(self, two_site_trace):
        global_p = find_filecules(two_site_trace)
        for local in identify_per_site(two_site_trace).values():
            assert is_coarsening_of(local, global_p)

    def test_non_coarsening_detected(self, two_site_trace):
        global_p = find_filecules(two_site_trace)
        # a partition separating files 0 and 1 contradicts the global {0,1}
        fake = find_filecules(make_trace([[0], [1, 2], [3]]))
        assert not is_coarsening_of(global_p, fake)

    def test_trivial_when_no_overlap(self):
        a = find_filecules(make_trace([[0]], n_files=2))
        b = find_filecules(make_trace([[1]], n_files=2))
        assert is_coarsening_of(a, b)

    def test_generated_trace_theorem(self, tiny_trace, tiny_partition):
        for local in identify_per_site(tiny_trace).values():
            assert is_coarsening_of(local, tiny_partition)


class TestCoarseningReport:
    def test_report_rows(self, two_site_trace):
        reports = coarsening_report(two_site_trace, group_by="site")
        assert [r.group for r in reports] == ["s0", "s1"]
        s0, s1 = reports
        # site 0: locally {0,1,2} and {3}; truth restricted: {0,1},{2},{3}
        assert s0.n_local_filecules == 2
        assert s0.n_true_filecules == 3
        assert s0.n_exact == 1  # only {3} exact
        assert s0.inflation == pytest.approx(1.5)
        # site 1: locally {0,1}; truth restricted: {0,1} -> exact
        assert s1.n_local_filecules == 1
        assert s1.n_exact == 1
        assert s1.exact_fraction == 1.0
        assert s1.inflation == pytest.approx(1.0)

    def test_inflation_at_least_one(self, tiny_trace):
        for r in coarsening_report(tiny_trace, group_by="domain"):
            assert r.inflation >= 1.0 - 1e-12

    def test_bad_group_by(self, two_site_trace):
        with pytest.raises(ValueError):
            coarsening_report(two_site_trace, group_by="country")

    def test_accepts_precomputed_global(self, two_site_trace):
        global_p = find_filecules(two_site_trace)
        reports = coarsening_report(
            two_site_trace, global_partition=global_p
        )
        assert len(reports) == 2

    def test_mismatched_global_rejected(self, two_site_trace):
        foreign = find_filecules(make_trace([[0]], n_files=4))
        with pytest.raises(ValueError, match="same underlying trace"):
            coarsening_report(two_site_trace, global_partition=foreign)
