"""Unit tests for stack-distance / temporal-locality analysis."""

import numpy as np
import pytest

from repro.analysis.temporal import (
    file_vs_filecule_reuse,
    reuse_report,
    stack_distances,
)
from repro.core.identify import find_filecules
from tests.conftest import make_trace


class TestStackDistances:
    def test_first_references(self):
        assert stack_distances([7, 8, 9]).tolist() == [-1, -1, -1]

    def test_immediate_rereference(self):
        assert stack_distances([5, 5, 5]).tolist() == [-1, 0, 0]

    def test_classic_pattern(self):
        # a b c a : distance of final a is 2 (b and c in between)
        assert stack_distances([0, 1, 2, 0]).tolist() == [-1, -1, -1, 2]

    def test_repeats_between_do_not_double_count(self):
        # a b b a : only ONE distinct unit between the two a's
        assert stack_distances([0, 1, 1, 0]).tolist() == [-1, -1, 0, 1]

    def test_interleaved(self):
        assert stack_distances([0, 1, 0, 1]).tolist() == [-1, -1, 1, 1]

    def test_empty(self):
        assert len(stack_distances([])) == 0

    def test_against_naive_reference(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 12, size=200)
        fast = stack_distances(stream)
        last_seen: dict[int, int] = {}
        for i, unit in enumerate(stream):
            unit = int(unit)
            if unit in last_seen:
                expected = len(set(stream[last_seen[unit] + 1 : i].tolist()))
                assert fast[i] == expected, f"position {i}"
            else:
                assert fast[i] == -1
            last_seen[unit] = i


class TestReuseReport:
    def test_fields(self):
        report = reuse_report(np.array([0, 1, 0, 1, 0]), ks=(1, 2))
        assert report.n_requests == 5
        assert report.n_units == 2
        assert report.cold_fraction == pytest.approx(0.4)
        # warm distances are all 1 -> below k=2 but not k=1
        assert report.hit_rate_at[2] == pytest.approx(3 / 5)
        assert report.hit_rate_at[1] == 0.0

    def test_mattson_property_matches_lru_simulation(self):
        """P[distance < k] equals the hit rate of a k-unit LRU."""
        rng = np.random.default_rng(1)
        stream = rng.integers(0, 10, size=500)
        for k in (2, 4, 8):
            report = reuse_report(stream, ks=(k,))
            # simulate a unit-count LRU of capacity k
            from collections import OrderedDict

            cache: OrderedDict[int, None] = OrderedDict()
            hits = 0
            for unit in stream:
                unit = int(unit)
                if unit in cache:
                    hits += 1
                    cache.move_to_end(unit)
                else:
                    if len(cache) >= k:
                        cache.popitem(last=False)
                    cache[unit] = None
            assert report.hit_rate_at[k] == pytest.approx(hits / len(stream))

    def test_empty_stream(self):
        report = reuse_report(np.array([]))
        assert report.n_requests == 0
        assert np.isnan(report.median_distance)


class TestFileVsFilecule:
    def test_filecule_stream_shorter_distances(self, small_trace, small_partition):
        file_report, cule_report = file_vs_filecule_reuse(
            small_trace, small_partition
        )
        assert cule_report.n_units < file_report.n_units
        assert cule_report.median_distance <= file_report.median_distance

    def test_mismatched_partition_rejected(self):
        # the partition does not cover file 2, which the trace accesses
        t = make_trace([[0, 1], [2]], n_files=3)
        p_partial = find_filecules(make_trace([[0, 1]], n_files=3))
        with pytest.raises(ValueError):
            file_vs_filecule_reuse(t, p_partial)
