"""Unit tests for calibration validation."""

import json

import pytest

from repro.core.identify import find_filecules
from repro.workload.validate import (
    CalibrationTarget,
    paper_targets,
    validate_calibration,
)
from tests.conftest import make_trace


class TestCalibrationTarget:
    def test_within_band(self):
        target = CalibrationTarget("x", 100.0, 0.1, lambda t, p: 105.0)
        result = target.evaluate(None, None)
        assert result.ok
        assert result.deviation == pytest.approx(0.05)

    def test_outside_band(self):
        target = CalibrationTarget("x", 100.0, 0.1, lambda t, p: 120.0)
        assert not target.evaluate(None, None).ok

    def test_zero_expected(self):
        target = CalibrationTarget("x", 0.0, 0.1, lambda t, p: 0.0)
        result = target.evaluate(None, None)
        assert result.ok
        assert result.deviation == 0.0


class TestPaperTargets:
    def test_scale_invariant_targets_hold_at_small_scale(
        self, small_trace, small_partition
    ):
        """Only structurally-determined targets are stable at small scale
        (3 users); population-skew targets are exercised at default scale
        by the experiment suite and benchmarks."""
        results = {
            r.name: r
            for r in validate_calibration(small_trace, small_partition)
        }
        assert results["traced job fraction (Table 1: 113830/234792)"].ok
        assert results["mean files per job (paper: 108)"].ok
        assert results["filecules / accessed files (Table 2: ~0.10)"].ok

    def test_all_targets_evaluated(self, tiny_trace, tiny_partition):
        results = validate_calibration(tiny_trace, tiny_partition)
        assert len(results) == len(paper_targets())
        for r in results:
            assert isinstance(r.ok, bool)
            assert r.measured == r.measured  # not NaN

    def test_partition_computed_if_missing(self, tiny_trace):
        results = validate_calibration(tiny_trace)
        assert len(results) == len(paper_targets())

    def test_custom_targets(self):
        t = make_trace([[0, 1]])
        p = find_filecules(t)
        targets = [
            CalibrationTarget(
                "accesses", 2.0, 0.0, lambda tr, pa: tr.n_accesses
            )
        ]
        (result,) = validate_calibration(t, p, targets)
        assert result.ok

    def test_degenerate_trace(self):
        t = make_trace([], n_files=0)
        results = validate_calibration(t, find_filecules(t))
        # nothing crashes; most targets are simply out of band
        assert len(results) == len(paper_targets())


class TestValidateCli:
    """The ``--validate`` flag: exit 3 + JSON report when out of band."""

    def test_tiny_scale_fails_with_structured_report(self, tmp_path, capsys):
        from repro.workload.__main__ import EXIT_CALIBRATION_FAILED, main

        out = tmp_path / "t.jsonl"
        code = main(
            ["--scale", "tiny", "--seed", "3", "--out", str(out), "--validate"]
        )
        # tiny scale misses the population-skew targets by design, so
        # the flag must surface that as a machine-readable failure.
        assert code == EXIT_CALIBRATION_FAILED == 3
        assert out.exists()  # the trace is still written
        captured = capsys.readouterr()
        assert "targets in band" in captured.out
        report = json.loads(captured.err)
        assert report["error"] == "calibration-check-failed"
        assert report["scale"] == "tiny"
        assert report["seed"] == 3
        assert report["n_failed"] == len(report["failures"]) > 0
        assert report["n_targets"] == len(paper_targets())
        for failure in report["failures"]:
            assert failure["deviation"] > failure["rel_tolerance"]
            assert set(failure) == {
                "target",
                "expected",
                "measured",
                "rel_tolerance",
                "deviation",
            }

    def test_without_flag_exits_zero(self, tmp_path, capsys):
        from repro.workload.__main__ import main

        out = tmp_path / "t.jsonl"
        code = main(["--scale", "tiny", "--seed", "3", "--out", str(out)])
        assert code == 0
        assert capsys.readouterr().err == ""
