"""Unit tests for the Trace container."""

import numpy as np
import pytest

from repro.traces.trace import Trace, TraceValidationError
from tests.conftest import make_trace


class TestConstruction:
    def test_basic_shape(self, classic_trace):
        t = classic_trace
        assert t.n_jobs == 5
        assert t.n_files == 8
        assert t.n_accesses == 4 + 3 + 3 + 1 + 3

    def test_duplicate_accesses_merged(self):
        t = make_trace([[0, 0, 1]])
        assert t.n_accesses == 2
        assert t.job_files(0).tolist() == [0, 1]

    def test_access_canonical_order(self):
        t = make_trace([[3, 1, 2], [0]])
        assert t.access_jobs.tolist() == [0, 0, 0, 1]
        assert t.access_files.tolist() == [1, 2, 3, 0]

    def test_columns_are_read_only(self, classic_trace):
        with pytest.raises(ValueError):
            classic_trace.file_sizes[0] = 99

    def test_empty_trace(self):
        t = make_trace([], n_files=0)
        assert t.n_jobs == 0
        assert t.n_accesses == 0
        assert t.time_span() == (0.0, 0.0)


class TestValidation:
    def test_bad_access_file_id(self):
        with pytest.raises(TraceValidationError, match="out of range"):
            make_trace([[5]], n_files=2)

    def test_job_end_before_start(self):
        with pytest.raises(TraceValidationError, match="ends before"):
            make_trace([[0]], job_durations=[-10.0])

    def test_negative_file_size(self):
        with pytest.raises(TraceValidationError, match="negative"):
            make_trace([[0]], file_sizes=[-1])

    def test_bad_user_code(self):
        with pytest.raises(TraceValidationError):
            make_trace([[0]], job_users=[3], n_users=1)

    def test_mismatched_access_columns(self):
        with pytest.raises(TraceValidationError, match="differ in length"):
            Trace(
                file_sizes=[1],
                file_tiers=[1],
                file_datasets=[0],
                job_users=[0],
                job_nodes=[0],
                job_tiers=[1],
                job_starts=[0.0],
                job_ends=[1.0],
                access_jobs=[0, 0],
                access_files=[0],
                user_domains=[0],
                node_sites=[0],
                node_domains=[0],
                site_names=["s"],
                domain_names=[".d"],
            )

    def test_2d_column_rejected(self):
        with pytest.raises(TraceValidationError, match="1-D"):
            make_trace([[0]], file_sizes=[[1]])


class TestDerived:
    def test_files_per_job(self, classic_trace):
        assert classic_trace.files_per_job.tolist() == [4, 3, 3, 1, 3]

    def test_file_popularity(self, classic_trace):
        pop = classic_trace.file_popularity
        assert pop.tolist() == [3, 3, 2, 2, 2, 1, 1, 0]

    def test_job_files_and_file_jobs_are_inverse(self, classic_trace):
        t = classic_trace
        for j in range(t.n_jobs):
            for f in t.job_files(j):
                assert j in t.file_jobs(int(f)).tolist()
        for f in range(t.n_files):
            for j in t.file_jobs(f):
                assert f in t.job_files(int(j)).tolist()

    def test_job_input_bytes(self):
        t = make_trace([[0, 1], [1]], file_sizes=[10, 100])
        assert t.job_input_bytes.tolist() == [110, 100]

    def test_accessed_file_ids(self, classic_trace):
        assert classic_trace.accessed_file_ids.tolist() == [0, 1, 2, 3, 4, 5, 6]

    def test_iter_jobs(self, classic_trace):
        jobs = dict(classic_trace.iter_jobs())
        assert len(jobs) == 5
        assert jobs[0].tolist() == [0, 1, 2, 3]

    def test_total_bytes_default_accessed_only(self):
        t = make_trace([[0]], n_files=3, file_sizes=[5, 7, 9])
        assert t.total_bytes() == 5
        assert t.total_bytes([0, 1, 2]) == 21

    def test_job_sites_and_domains(self):
        t = make_trace(
            [[0], [0]],
            job_nodes=[0, 1],
            node_sites=[0, 1],
            node_domains=[0, 1],
            site_names=["s0", "s1"],
            domain_names=[".a", ".b"],
        )
        assert t.job_sites.tolist() == [0, 1]
        assert t.job_domains.tolist() == [0, 1]


class TestMeta:
    def test_file_meta(self, classic_trace):
        meta = classic_trace.file_meta(0)
        assert meta.file_id == 0
        assert meta.size_bytes == 1
        assert meta.tier_label == "reconstructed"

    def test_job_meta(self, classic_trace):
        meta = classic_trace.job_meta(1)
        assert meta.file_ids == (2, 3, 4)
        assert meta.duration_hours == pytest.approx(1.0)


class TestSubsetJobs:
    def test_subset_keeps_file_catalog(self, classic_trace):
        sub = classic_trace.subset_jobs(
            np.array([True, False, True, False, False])
        )
        assert sub.n_files == classic_trace.n_files
        assert sub.n_jobs == 2
        assert sub.job_files(0).tolist() == [0, 1, 2, 3]
        assert sub.job_files(1).tolist() == [0, 1, 4]

    def test_subset_preserves_labels(self, classic_trace):
        sub = classic_trace.subset_jobs(
            np.array([False, True, False, True, False])
        )
        assert sub.job_labels.tolist() == [1, 3]

    def test_subset_of_subset(self, classic_trace):
        sub = classic_trace.subset_jobs(np.ones(5, dtype=bool))
        sub2 = sub.subset_jobs(np.array([True] + [False] * 4))
        assert sub2.n_jobs == 1
        assert sub2.job_labels.tolist() == [0]

    def test_mask_length_checked(self, classic_trace):
        with pytest.raises(ValueError, match="mask length"):
            classic_trace.subset_jobs(np.array([True]))

    def test_empty_subset(self, classic_trace):
        sub = classic_trace.subset_jobs(np.zeros(5, dtype=bool))
        assert sub.n_jobs == 0
        assert sub.n_accesses == 0
