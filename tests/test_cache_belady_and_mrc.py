"""Unit tests for Belady MIN and Mattson miss-rate curves."""

import numpy as np
import pytest

from repro.analysis.mrc import granularity_mrcs, lru_miss_rate_curve
from repro.cache.belady import (
    NEVER,
    BeladyMIN,
    FileculeBeladyMIN,
    next_use_positions,
)
from repro.cache.lru import FileLRU
from repro.cache.filecule_lru import FileculeLRU
from repro.cache.simulator import simulate
from repro.core.identify import find_filecules
from tests.conftest import make_trace


class TestNextUsePositions:
    def test_basic(self):
        nxt = next_use_positions([0, 1, 0, 1, 0])
        assert nxt.tolist() == [2, 3, 4, NEVER, NEVER]

    def test_no_repeats(self):
        assert (next_use_positions([5, 6, 7]) == NEVER).all()

    def test_empty(self):
        assert len(next_use_positions([])) == 0


class TestBeladyMIN:
    def test_classic_optimality_example(self):
        # stream: 0 1 2 0 1 2 with capacity 2 units (unit-size files)
        # LRU misses everything (cyclic); MIN keeps 0 then 1 smartly
        t = make_trace([[0, 1, 2], [0, 1, 2]], file_sizes=[1, 1, 1])
        m_lru = simulate(t, lambda c: FileLRU(c), 2)
        m_min = simulate(t, lambda c: BeladyMIN(c, t), 2)
        assert m_min.misses <= m_lru.misses
        assert m_min.misses < m_lru.misses  # strictly better on this cycle

    def test_never_worse_than_lru_on_random_traces(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            jobs = [
                sorted(rng.choice(15, size=rng.integers(1, 6), replace=False).tolist())
                for _ in range(20)
            ]
            t = make_trace(jobs, n_files=15)
            for capacity in (3, 7, 12):
                m_lru = simulate(t, lambda c: FileLRU(c), capacity)
                m_min = simulate(t, lambda c: BeladyMIN(c, t), capacity)
                assert m_min.misses <= m_lru.misses

    def test_diverged_stream_detected(self):
        t = make_trace([[0, 1]])
        policy = BeladyMIN(10, t)
        policy.request(0, 1, 0.0)
        with pytest.raises(RuntimeError, match="diverged"):
            policy.request(0, 1, 0.0)  # expected file 1 next

    def test_overrun_detected(self):
        t = make_trace([[0]])
        policy = BeladyMIN(10, t)
        policy.request(0, 1, 0.0)
        with pytest.raises(RuntimeError, match="more requests"):
            policy.request(0, 1, 0.0)

    def test_never_reused_files_bypass(self):
        t = make_trace([[0], [1]], file_sizes=[1, 1])
        policy = BeladyMIN(10, t)
        out = policy.request(0, 1, 0.0)
        assert out.bypassed  # 0 never comes back
        assert policy.used_bytes == 0

    def test_contains(self):
        t = make_trace([[0], [0]], file_sizes=[1])
        policy = BeladyMIN(10, t)
        policy.request(0, 1, 0.0)
        assert 0 in policy


class TestFileculeBeladyMIN:
    def test_beats_or_matches_filecule_lru(self, small_trace, small_partition):
        cap = max(int(0.02 * small_trace.total_bytes()), 1)
        m_lru = simulate(
            small_trace, lambda c: FileculeLRU(c, small_partition), cap
        )
        m_min = simulate(
            small_trace,
            lambda c: FileculeBeladyMIN(c, small_trace, small_partition),
            cap,
        )
        assert m_min.misses <= m_lru.misses

    def test_partition_mismatch_rejected(self):
        t = make_trace([[0, 1], [2]], n_files=3)
        foreign = find_filecules(make_trace([[0, 1]], n_files=3))
        with pytest.raises(ValueError):
            FileculeBeladyMIN(10, t, foreign)


class TestMissRateCurve:
    def test_matches_simulation_at_unit_sizes(self):
        rng = np.random.default_rng(2)
        jobs = [
            sorted(rng.choice(25, size=rng.integers(1, 7), replace=False).tolist())
            for _ in range(30)
        ]
        t = make_trace(jobs, n_files=25)  # all files are 1 byte
        curve = lru_miss_rate_curve(t.access_files)
        for k in (1, 5, 12, 25):
            simulated = simulate(t, lambda c: FileLRU(c), k)
            assert curve.hit_rate(k) == pytest.approx(simulated.hit_rate)

    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(3)
        curve = lru_miss_rate_curve(rng.integers(0, 20, size=300))
        assert np.all(np.diff(curve.hit_rates) >= -1e-12)

    def test_full_capacity_leaves_only_cold_misses(self):
        stream = np.array([0, 1, 0, 1, 2])
        curve = lru_miss_rate_curve(stream)
        assert curve.hit_rate(curve.n_units) == pytest.approx(2 / 5)

    def test_zero_capacity_no_hits(self):
        curve = lru_miss_rate_curve(np.array([0, 0, 0]))
        assert curve.hit_rate(0) == 0.0

    def test_capacity_for_hit_rate(self):
        stream = np.array([0, 1, 0, 1])
        curve = lru_miss_rate_curve(stream)
        assert curve.capacity_for_hit_rate(0.5) == 2
        # unreachable target returns n_units
        assert curve.capacity_for_hit_rate(0.99) == curve.n_units

    def test_empty_stream(self):
        curve = lru_miss_rate_curve(np.array([]))
        assert curve.n_requests == 0
        assert curve.hit_rate(5) == 0.0

    def test_validation(self):
        curve = lru_miss_rate_curve(np.array([0, 0]))
        with pytest.raises(ValueError):
            curve.hit_rate(-1)
        with pytest.raises(ValueError):
            curve.capacity_for_hit_rate(1.5)


class TestGranularityMrcs:
    def test_filecule_curve_dominates(self, small_trace, small_partition):
        file_curve, cule_curve = granularity_mrcs(small_trace, small_partition)
        # at equal unit counts the filecule curve is at least as high
        k = min(file_curve.n_units, cule_curve.n_units) // 2
        assert cule_curve.hit_rate(k) >= file_curve.hit_rate(k)

    def test_mismatch_rejected(self):
        t = make_trace([[0, 1], [2]], n_files=3)
        partial = find_filecules(make_trace([[0, 1]], n_files=3))
        with pytest.raises(ValueError):
            granularity_mrcs(t, partial)
