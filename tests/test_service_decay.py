"""Decay-aware service state: ``--decay-half-life`` wiring, dissolution
through ingest, and decay-preserving snapshot/restore."""

from __future__ import annotations

import json
import math

from repro.service.shard import ShardedServiceState, restore_state
from repro.service.state import ServiceState


def weld_then_quiet(state):
    """Crowd welds {0,1,2}; 200 unrelated jobs let the weld go stale."""
    for _ in range(3):
        state.ingest([0, 1, 2], sizes=[10, 10, 10])
    for _ in range(200):
        state.ingest([7, 8], sizes=[5, 5])
    return [tuple(c["files"]) for c in state.partition()["classes"]]


class TestDecayedIngest:
    def test_stale_filecule_dissolves(self):
        groups = weld_then_quiet(ServiceState(decay_half_life=5.0))
        assert (0, 1, 2) not in groups
        assert {(0,), (1,), (2,)} <= set(groups)
        assert (7, 8) in groups

    def test_default_keeps_append_only_semantics(self):
        groups = weld_then_quiet(ServiceState())
        assert (0, 1, 2) in groups

    def test_lookup_cache_invalidated_on_dissolution(self):
        state = ServiceState(decay_half_life=5.0)
        state.ingest([0, 1, 2], sizes=[10, 10, 10])
        cached = json.loads(state.filecule_of_json(0))
        assert cached["filecule"]["n_files"] == 3
        for _ in range(200):
            state.ingest([7, 8], sizes=[5, 5])
        fresh = json.loads(state.filecule_of_json(0))
        assert fresh["filecule"]["files"] == [0]

    def test_sharded_passthrough(self):
        state = ShardedServiceState(n_shards=2, decay_half_life=4.0)
        assert all(s.decay_half_life == 4.0 for s in state.shards)


class TestDecaySnapshots:
    def test_restore_preserves_decay_and_continues_identically(self, tmp_path):
        state = ServiceState(decay_half_life=5.0)
        for _ in range(3):
            state.ingest([0, 1, 2], sizes=[10, 10, 10])
        path = tmp_path / "snap.jsonl"
        state.snapshot(path)

        restored = restore_state(path)
        assert isinstance(restored, ServiceState)
        assert restored.decay_half_life == 5.0
        assert restored.partition() == state.partition()
        # Restore-and-continue equals never-restarted, through the
        # dissolution the quiet stream triggers.
        for s in (state, restored):
            for _ in range(200):
                s.ingest([7, 8], sizes=[5, 5])
        assert restored.partition() == state.partition()

    def test_inf_snapshot_has_no_decay_fields(self, tmp_path):
        state = ServiceState()
        state.ingest([1, 2, 3])
        path = tmp_path / "snap.jsonl"
        state.snapshot(path)
        meta = json.loads(path.read_text().splitlines()[0])
        assert "decay_half_life" not in meta
        restored = restore_state(path)
        assert restored.decay_half_life == math.inf

    def test_sharded_manifest_round_trip(self, tmp_path):
        state = ShardedServiceState(n_shards=2, decay_half_life=4.0)
        for k in range(50):
            state.ingest([k % 5, 100], site=k % 3)
        path = tmp_path / "manifest.json"
        state.snapshot(path)
        restored = restore_state(path)
        assert isinstance(restored, ShardedServiceState)
        assert restored.decay_half_life == 4.0
        assert all(s.decay_half_life == 4.0 for s in restored.shards)
        assert restored.partition() == state.partition()
