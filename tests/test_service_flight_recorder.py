"""Flight recorder end to end: history/spans ops, sampler task,
cluster-wide merging, paced loadgen timelines, and the CLI surfaces.

Same in-process daemon pattern as test_service_observability.py, plus
fork-gated cluster tests for :func:`aggregate_history` /
:func:`aggregate_spans` and a subprocess-free exercise of the
``repro-serve spans`` subcommand against a live server.
"""

import asyncio
import json
import multiprocessing
import os
import time

import pytest

from repro.service import (
    AsyncServiceClient,
    FileculeServer,
    ServiceClient,
    ServiceState,
    run_load,
)
from repro.service.loadgen import jobs_from_trace
from repro.workload.calibration import tiny_config
from repro.workload.generator import generate_trace

HAS_FORK = (
    os.name == "posix"
    and "fork" in multiprocessing.get_all_start_methods()
)


def run(coro):
    return asyncio.run(coro)


async def _with_server(fn, state=None, **server_kwargs):
    server = FileculeServer(state or ServiceState(), **server_kwargs)
    await server.start()
    try:
        return await fn(server)
    finally:
        await server.stop()


@pytest.fixture(scope="module")
def tiny_trace():
    return generate_trace(tiny_config(), seed=47)


class TestHistoryOp:
    def test_history_serves_series_and_health(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                for batch in range(4):
                    await client.ingest(
                        [batch * 2, batch * 2 + 1], sizes=[10, 10], site=0
                    )
                    server.sample_once(now=batch * 60.0)
                payload = await client.request("history")
            assert payload["enabled"] is True
            assert payload["health"]["enabled"] is True
            names = {s["name"] for s in payload["series"]}
            assert "rate:requests" in names
            assert "gauge:jobs_observed" not in names  # cumulative -> rate
            assert "rate:jobs_observed" in names
            rates = next(
                s for s in payload["series"] if s["name"] == "rate:requests"
            )
            # 3 emitting samples after the baseline tick
            assert len(rates["points"]) == 3
            # the payload is a recorder state_dict superset
            from repro.obs.timeseries import TimeSeriesRecorder

            clone = TimeSeriesRecorder.from_state_dict(payload)
            assert clone.samples == payload["samples"] == 3

        run(_with_server(scenario, sample_interval=60.0, health=True))

    def test_last_caps_points_per_series(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                for tick in range(8):
                    await client.ingest([tick], sizes=[5])
                    server.sample_once(now=tick * 60.0)
                capped = await client.request("history", last=2)
            assert all(len(s["points"]) <= 2 for s in capped["series"])

        run(_with_server(scenario, sample_interval=60.0))

    def test_sampler_task_ticks_on_its_own(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                await client.ingest([1, 2], sizes=[10, 10])
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    payload = await client.request("history")
                    if payload["samples"] >= 2:
                        return payload
                    await asyncio.sleep(0.02)
                raise AssertionError("sampler task never ticked")

        payload = run(_with_server(scenario, sample_interval=0.05))
        assert payload["interval"] == 0.05

    def test_health_log_exported_on_stop(self, tmp_path):
        path = tmp_path / "health.jsonl"

        async def scenario(server):
            # Hand-feed an anomaly the hit-rate detector must flag.
            hit = server.recorder.series("derived:hit_rate", "mean")
            for t in range(12):
                hit.add(t * 60.0, 0.5, weight=100.0)
            for t in range(12, 18):
                hit.add(t * 60.0, 0.95, weight=100.0)
            assert server.health.observe()

        run(
            _with_server(
                scenario,
                sample_interval=60.0,
                health=True,
                health_log_path=str(path),
            )
        )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records
        assert all(r["detector"] == "hit-rate-divergence" for r in records)


class TestSpansOp:
    def test_spans_ring_over_the_protocol(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                for i in range(5):
                    await client.ingest([i], sizes=[5], rid=f"req-{i}")
                payload = await client.request("spans")
                assert payload["count"] >= 5
                names = {s["name"] for s in payload["spans"]}
                assert "op.ingest" in names
                rids = {s.get("rid") for s in payload["spans"]}
                assert "req-0" in rids and "req-4" in rids
                tail = await client.request("spans", last=2)
                assert tail["count"] == 2
                # newest spans, still time-ordered
                assert tail["spans"][0]["ts"] <= tail["spans"][-1]["ts"]

        run(_with_server(scenario))

    def test_bad_last_rejected(self):
        async def scenario(server):
            async with await AsyncServiceClient.connect(
                "127.0.0.1", server.port
            ) as client:
                from repro.service import ServiceError

                with pytest.raises(ServiceError):
                    await client.request("spans", last=0)
                with pytest.raises(ServiceError):
                    await client.request("history", last=-3)

        run(_with_server(scenario))


class TestLoadgenPacingAndTimeline:
    def test_offsets_pace_the_replay(self, tiny_trace):
        jobs = jobs_from_trace(tiny_trace)[:30]
        offsets = [i * 0.02 for i in range(len(jobs))]

        async def scenario(server):
            return await run_load(
                "127.0.0.1",
                server.port,
                jobs,
                connections=2,
                offsets=offsets,
                timeline_interval=0.1,
                fetch_final_stats=False,
            )

        report = run(_with_server(scenario))
        assert report.jobs == len(jobs)
        assert report.errors == 0
        # the schedule stretches the replay to ~the last offset
        assert report.duration_seconds >= offsets[-1]
        summary = report.timeline_summary()
        assert len(summary) >= 3
        assert sum(b["requests"] for b in summary) == report.requests
        assert all(b["p99_ms"] >= 0.0 for b in summary)
        assert [b["t"] for b in summary] == sorted(b["t"] for b in summary)

    def test_offsets_must_match_job_count(self, tiny_trace):
        jobs = jobs_from_trace(tiny_trace)[:5]

        async def scenario(server):
            with pytest.raises(ValueError, match="offsets"):
                await run_load(
                    "127.0.0.1", server.port, jobs, offsets=[0.0, 1.0]
                )

        run(_with_server(scenario))


class TestSpansSubcommand:
    def test_jsonl_to_stdout_and_file(self, tmp_path, capsys):
        from repro.service.__main__ import main as service_main

        server = FileculeServer(ServiceState(), port=0)

        async def run_against_live():
            await server.start()
            try:
                async with await AsyncServiceClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    for i in range(4):
                        await client.ingest([i], sizes=[5], rid=f"cli-{i}")
                out_path = tmp_path / "spans.jsonl"
                code = await asyncio.to_thread(
                    service_main,
                    [
                        "spans",
                        "--port",
                        str(server.port),
                        "--last",
                        "3",
                        "--out",
                        str(out_path),
                    ],
                )
                assert code == 0
                return [
                    json.loads(line)
                    for line in out_path.read_text().splitlines()
                ]
            finally:
                await server.stop()

        records = run(run_against_live())
        assert len(records) == 3
        assert all(r["name"] == "op.ingest" for r in records)
        assert records[-1]["rid"] == "cli-3"


@pytest.mark.skipif(not HAS_FORK, reason="pre-fork cluster needs POSIX fork")
class TestClusterFlightRecorder:
    def test_history_and_spans_merge_across_workers(self, tiny_trace):
        from repro.service.aggregate import (
            aggregate_history,
            aggregate_spans,
            worker_ports,
        )
        from repro.service.cluster import (
            ClusterConfig,
            ClusterServer,
            pick_free_port_block,
        )

        jobs = jobs_from_trace(tiny_trace)[:60]
        config = ClusterConfig(
            workers=2,
            metrics_port=pick_free_port_block("127.0.0.1", 2),
            log_interval=None,
            sample_interval=0.05,
            health=True,
        )
        with ClusterServer(config) as cluster:
            with ServiceClient("127.0.0.1", cluster.port) as client:
                for job in jobs:
                    client.ingest(
                        job["files"], sizes=job["sizes"], site=job["site"]
                    )
            time.sleep(0.3)  # a few sampler ticks on every worker
            ports = worker_ports(config.metrics_port, 2)
            history = aggregate_history("127.0.0.1", ports)
            spans = aggregate_spans("127.0.0.1", ports)

        assert history["workers"] == 2
        assert history["enabled"] is True and history["health"]["enabled"]
        merged = {s["name"]: s for s in history["series"]}
        assert "rate:requests" in merged
        # cluster-total request rate integrates back to ~the job count
        total = sum(
            acc * history["interval"]
            for _, acc, _ in merged["rate:requests"]["points"]
        )
        assert total == pytest.approx(len(jobs), rel=0.35)

        assert spans["workers"] == 2
        assert spans["count"] == len(spans["spans"]) >= len(jobs)
        # Every span is worker-tagged; the kernel decides the connection
        # split, so one connection may land entirely on one worker.
        assert {s["worker"] for s in spans["spans"]} <= {0, 1}
        timestamps = [s["ts"] for s in spans["spans"]]
        assert timestamps == sorted(timestamps)
