"""Execute the library's docstring examples as tests."""

import doctest

import pytest

import repro.core.incremental
import repro.util.units

MODULES_WITH_DOCTESTS = [
    repro.util.units,
    repro.core.incremental,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0


def test_readme_quickstart_snippet():
    """The README's quickstart block must stay runnable (on tiny scale)."""
    from repro import tiny_config, generate_trace, find_filecules
    from repro.cache import FileLRU, FileculeLRU, simulate

    trace = generate_trace(tiny_config(), seed=42)
    filecules = find_filecules(trace)
    assert len(filecules) > 0

    capacity = max(int(0.05 * trace.total_bytes()), 1)
    file_lru = simulate(trace, lambda c: FileLRU(c), capacity)
    cule_lru = simulate(trace, lambda c: FileculeLRU(c, filecules), capacity)
    assert cule_lru.miss_rate <= file_lru.miss_rate
