"""The robustness-matrix driver: full policy x scenario coverage,
serial/parallel equivalence and the ``--matrix-json`` artifact."""

from __future__ import annotations

import json
import math

import pytest

from repro import registry
from repro.experiments.base import get_context, run_experiment
from repro.experiments.robustness_matrix import (
    BASELINE,
    DEFAULT_SCENARIOS,
    build_matrix,
    write_matrix_json,
)


@pytest.fixture(scope="module")
def matrix():
    return build_matrix(get_context("tiny", seed=11))


class TestMatrix:
    def test_complete_and_covers_every_policy(self, matrix):
        assert matrix.complete
        assert matrix.policies == tuple(registry.policy_names())
        assert matrix.scenarios == tuple(DEFAULT_SCENARIOS)

    def test_at_least_five_scenarios_beyond_baseline(self, matrix):
        assert matrix.baseline == BASELINE
        assert len([s for s in matrix.scenarios if s != matrix.baseline]) >= 5

    def test_baseline_degradation_is_zero(self, matrix):
        for policy in matrix.policies:
            assert matrix.degradation(matrix.baseline, policy) == 0.0

    def test_cells_are_finite_miss_rates(self, matrix):
        for scenario in matrix.scenarios:
            for policy in matrix.policies:
                value = matrix.score(scenario, policy)
                assert math.isfinite(value)
                assert 0.0 <= value <= 1.0

    def test_serial_equals_parallel(self):
        serial = build_matrix(get_context("tiny", seed=11, jobs=1))
        parallel = build_matrix(get_context("tiny", seed=11, jobs=2))
        assert serial.scores == parallel.scores
        assert serial.capacity_bytes == parallel.capacity_bytes


class TestArtifact:
    def test_matrix_json_round_trips(self, matrix, tmp_path):
        path = write_matrix_json(tmp_path / "matrix.json", matrix)
        data = json.loads(path.read_text())
        assert sorted(data) == [
            "baseline",
            "capacity_bytes",
            "degradation",
            "policies",
            "scenarios",
            "scores",
            "seed",
        ]
        assert data["baseline"] == BASELINE
        assert data["policies"] == list(matrix.policies)
        names = [entry["name"] for entry in data["scenarios"]]
        assert names == list(matrix.scenarios)
        for entry in data["scenarios"]:
            assert entry["composition"] == matrix.compositions[entry["name"]]
        for scenario in names:
            for policy in data["policies"]:
                assert data["scores"][scenario][policy] == matrix.score(
                    scenario, policy
                )
                assert data["degradation"][scenario][policy] == pytest.approx(
                    matrix.degradation(scenario, policy)
                )


class TestDriver:
    def test_all_checks_pass(self):
        result = run_experiment(
            "robustness-matrix", get_context("tiny", seed=11)
        )
        assert result.experiment_id == "robustness-matrix"
        for check, ok in result.checks.items():
            assert ok, check
        assert len(result.rows) == len(registry.policy_names())
