"""Decayed co-access in the incremental identifier: inf-half-life
bit-compatibility, stale-class dissolution, and state round-trips."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.incremental import IncrementalFileculeIdentifier
from tests.conftest import make_trace


def flash_then_quiet(ident):
    """A crowd welds {0..4}; then a long-running unrelated stream."""
    for t in range(5):
        ident.observe_job([0, 1, 2, 3, 4], now=float(t))
    for t in range(200, 260):
        ident.observe_job([10, 11], now=float(t))
    return sorted(tuple(sorted(c)) for c in ident.classes())


class TestInfCompatibility:
    def test_inf_is_bit_identical_to_default(self):
        jobs = [[0, 1, 2], [0, 1], [3, 4], [2, 3], [0, 4, 5], [5]]
        plain = IncrementalFileculeIdentifier()
        inf = IncrementalFileculeIdentifier(half_life=math.inf)
        for job in jobs:
            assert plain.observe_job(job) == inf.observe_job(job)
        assert plain.state_dict() == inf.state_dict()
        assert json.dumps(plain.state_dict()) == json.dumps(inf.state_dict())

    def test_inf_ignores_now_values(self):
        a = IncrementalFileculeIdentifier()
        b = IncrementalFileculeIdentifier()
        jobs = [[0, 1, 2], [0, 1], [3], [1, 3]]
        for i, job in enumerate(jobs):
            a.observe_job(job)
            b.observe_job(job, now=1e9 * i)
        assert a.classes() == b.classes()
        assert a.state_dict() == b.state_dict()

    def test_inf_state_dict_has_no_decay_keys(self):
        ident = IncrementalFileculeIdentifier()
        ident.observe_job([1, 2])
        state = ident.state_dict()
        assert "half_life" not in state
        assert all("weight" not in entry for entry in state["classes"])

    def test_huge_half_life_same_partition(self):
        jobs = [[0, 1, 2], [0, 1], [3, 4], [2, 3]]
        plain = IncrementalFileculeIdentifier()
        huge = IncrementalFileculeIdentifier(half_life=1e18)
        for job in jobs:
            plain.observe_job(job)
            huge.observe_job(job)
        assert plain.classes() == huge.classes()


class TestDissolution:
    def test_flash_crowd_splits_under_decay_only(self):
        decayed = IncrementalFileculeIdentifier(half_life=10.0)
        plain = IncrementalFileculeIdentifier()
        assert flash_then_quiet(decayed) == [
            (0,), (1,), (2,), (3,), (4,), (10, 11),
        ]
        assert flash_then_quiet(plain) == [(0, 1, 2, 3, 4), (10, 11)]

    def test_dissolution_reports_affected_classes(self):
        ident = IncrementalFileculeIdentifier(half_life=5.0)
        ident.observe_job([0, 1], now=0.0)
        cid = ident.class_of(0)
        affected = ident.observe_job([7], now=1000.0)
        # The stale class and its singleton remnants are all reported,
        # which is what the service's read-cache invalidation keys on.
        assert cid in affected
        assert ident.class_of(0) in affected
        assert ident.class_of(1) in affected
        assert ident.classes().count(frozenset({0, 1})) == 0

    def test_active_class_survives(self):
        ident = IncrementalFileculeIdentifier(half_life=10.0)
        for t in range(0, 100, 5):
            ident.observe_job([0, 1], now=float(t))
        assert frozenset({0, 1}) in ident.classes()

    def test_dissolution_is_a_refinement(self):
        ident = IncrementalFileculeIdentifier(half_life=5.0)
        ident.observe_job([0, 1, 2], now=0.0)
        before = ident.classes()
        ident.observe_job([9], now=500.0)
        after = ident.classes()
        for cls in after:
            assert any(cls <= old for old in before) or cls == frozenset({9})

    def test_clock_is_monotonic(self):
        ident = IncrementalFileculeIdentifier(half_life=10.0)
        ident.observe_job([0, 1], now=100.0)
        # A job arriving with an earlier timestamp clamps forward rather
        # than rewinding decay time.
        ident.observe_job([0, 1], now=0.0)
        assert frozenset({0, 1}) in ident.classes()

    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalFileculeIdentifier(half_life=0.0)
        with pytest.raises(ValueError):
            IncrementalFileculeIdentifier(half_life=-1.0)
        with pytest.raises(ValueError):
            IncrementalFileculeIdentifier(half_life=10.0, stale_threshold=0.0)


class TestRoundTrip:
    def test_state_dict_round_trip_under_decay(self):
        ident = IncrementalFileculeIdentifier(half_life=10.0)
        for t in range(5):
            ident.observe_job([0, 1, 2, 3, 4], now=float(t))
        state = json.loads(json.dumps(ident.state_dict()))
        restored = IncrementalFileculeIdentifier.from_state_dict(state)
        assert restored.half_life == 10.0
        assert restored.classes() == ident.classes()
        # Restore-and-continue equals never-restarted: the quiet stream
        # dissolves the crowd class in both.
        for t in range(200, 260):
            ident.observe_job([10, 11], now=float(t))
            restored.observe_job([10, 11], now=float(t))
        assert restored.classes() == ident.classes()
        assert restored.state_dict() == ident.state_dict()

    def test_observe_trace_uses_trace_time(self):
        trace = make_trace(
            [[0, 1], [0, 1], [2]],
            job_starts=[0.0, 1.0, 10_000.0],
            job_durations=[1.0, 1.0, 1.0],
        )
        decayed = IncrementalFileculeIdentifier(half_life=100.0)
        decayed.observe_trace(trace)
        assert sorted(tuple(sorted(c)) for c in decayed.classes()) == [
            (0,), (1,), (2,),
        ]
        plain = IncrementalFileculeIdentifier()
        plain.observe_trace(trace)
        assert frozenset({0, 1}) in plain.classes()
