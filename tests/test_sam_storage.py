"""Unit tests for links, tape archive and the transfer model."""

import pytest

from repro.sam.events import Simulation
from repro.sam.storage import Link, TapeArchive, TransferModel


class TestLink:
    def test_service_time(self):
        link = Link(Simulation(), bandwidth_bps=100.0, latency_s=1.0)
        assert link.service_time(200) == pytest.approx(3.0)

    def test_fifo_queueing(self):
        sim = Simulation()
        link = Link(sim, bandwidth_bps=100.0, latency_s=0.0)
        first = link.enqueue(100)  # 1s
        second = link.enqueue(100)  # queues behind
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)
        assert link.queue_delay == pytest.approx(2.0)

    def test_idle_restart(self):
        sim = Simulation()
        link = Link(sim, bandwidth_bps=100.0)
        link.enqueue(100)
        sim.now = 100.0  # long idle
        done = link.enqueue(100)
        assert done == pytest.approx(100.0 + link.service_time(100))

    def test_counters(self):
        link = Link(Simulation(), 100.0)
        link.enqueue(10)
        link.enqueue(20)
        assert link.bytes_moved == 30
        assert link.transfers == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Link(Simulation(), 0.0)
        with pytest.raises(ValueError):
            Link(Simulation(), 10.0, latency_s=-1)
        link = Link(Simulation(), 10.0)
        with pytest.raises(ValueError):
            link.enqueue(-1)


class TestTapeArchive:
    def test_mount_latency_dominates_small_reads(self):
        sim = Simulation()
        tape = TapeArchive(sim, bandwidth_bps=1e9, mount_latency_s=90.0)
        assert tape.stage(1) >= 90.0
        assert tape.mounts == 1

    def test_stage_accounts_bytes(self):
        tape = TapeArchive(Simulation())
        tape.stage(1000)
        assert tape.bytes_staged == 1000


class TestTransferModel:
    def test_intra_site_free(self):
        sim = Simulation()
        model = TransferModel(sim, n_sites=3)
        assert model.transfer(1, 1, 10**9) == sim.now

    def test_cross_site_bottleneck(self):
        sim = Simulation()
        model = TransferModel(
            sim,
            n_sites=2,
            hub_site=0,
            wan_bandwidth_bps=100.0,
            hub_bandwidth_bps=1000.0,
            latency_s=0.0,
        )
        done = model.transfer(0, 1, 100)
        # spoke link (100 B/s) is the bottleneck: 1s
        assert done == pytest.approx(1.0)

    def test_wan_bytes_counts_both_endpoints(self):
        sim = Simulation()
        model = TransferModel(sim, n_sites=2)
        model.transfer(0, 1, 50)
        assert model.wan_bytes() == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferModel(Simulation(), n_sites=0)
        with pytest.raises(ValueError):
            TransferModel(Simulation(), n_sites=2, hub_site=5)
