"""repro-top dashboard rendering (pure-function tests, no server)."""

from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.top import (
    SPARK_CHARS,
    count_exposition_samples,
    render_dashboard,
    sparkline,
)


def sample_stats():
    return {
        "policy": "filecule-lru",
        "capacity_bytes": 10**9,
        "jobs_observed": 1200,
        "files_observed": 340,
        "n_classes": 17,
        "top_filecules": [
            {"class_id": 3, "n_files": 12, "requests": 900, "bytes": 5 * 10**8},
            {"class_id": 1, "n_files": 4, "requests": 420, "bytes": 10**7},
        ],
        "sites": {
            "0": {
                "requests": 800,
                "hit_rate": 0.75,
                "byte_miss_rate": 0.3,
                "used_bytes": 6 * 10**8,
            },
            "2": {
                "requests": 100,
                "hit_rate": 0.5,
                "byte_miss_rate": 0.6,
                "used_bytes": 10**8,
            },
        },
        "server": {
            "uptime_seconds": 61.0,
            "counters": {"requests": 1000, "errors": 2},
            "latency": {
                "op.ingest": {
                    "count": 900,
                    "min_ms": 0.1,
                    "p50_ms": 0.4,
                    "p99_ms": 3.2,
                    "max_ms": 9.9,
                },
            },
        },
    }


class TestRenderDashboard:
    def test_header_and_totals(self):
        frame = render_dashboard(sample_stats(), endpoint="h:7401")
        assert "repro-top — h:7401" in frame
        assert "policy=filecule-lru" in frame
        assert "jobs 1,200" in frame
        assert "filecules 17" in frame
        assert "requests 1,000" in frame
        assert "errors 2" in frame

    def test_latency_table(self):
        frame = render_dashboard(sample_stats())
        assert "op.ingest" in frame
        assert "min ms" in frame and "p99 ms" in frame
        assert "0.10" in frame and "3.20" in frame

    def test_site_table_sorted_numerically(self):
        frame = render_dashboard(sample_stats())
        lines = frame.splitlines()
        site_lines = [
            line for line in lines if line.startswith(("0 ", "2 "))
        ]
        assert len(site_lines) == 2
        assert site_lines[0].startswith("0")
        assert "75.0%" in site_lines[0]

    def test_rate_from_previous_snapshot(self):
        stats = sample_stats()
        previous = {"counters": {"requests": 500}}
        frame = render_dashboard(stats, previous=previous, interval=2.0)
        assert "(250/s)" in frame
        # no previous snapshot -> rate reads zero
        assert "(0/s)" in render_dashboard(stats)

    def test_rate_never_negative(self):
        stats = sample_stats()
        previous = {"counters": {"requests": 5000}}  # restarted daemon
        frame = render_dashboard(stats, previous=previous, interval=2.0)
        assert "(0/s)" in frame

    def test_top_filecules_capped_at_five(self):
        stats = sample_stats()
        stats["top_filecules"] = [
            {"class_id": i, "n_files": 1, "requests": 1, "bytes": 1}
            for i in range(9)
        ]
        frame = render_dashboard(stats)
        shown = [
            line
            for line in frame.splitlines()
            if line and line.split()[0].isdigit() and "files" not in line
        ]
        # 2 site rows + 5 filecule rows
        assert len([l for l in shown if len(l.split()) == 4]) <= 5

    def test_exposition_sample_count_line(self):
        frame = render_dashboard(sample_stats(), exposition_samples=42)
        assert "exposition: 42 Prometheus samples" in frame

    def test_minimal_stats_do_not_crash(self):
        frame = render_dashboard({})
        assert "repro-top" in frame


def sample_history():
    """A ``history`` payload with the headline series and one event."""
    recorder = TimeSeriesRecorder(interval=1.0)
    rates = recorder.series("rate:requests", "sum")
    p99 = recorder.series("p99:op.ingest", "mean")
    hit = recorder.series("derived:hit_rate", "mean")
    for t in range(10):
        rates.add(float(t), 100.0 + 10 * t)
        p99.add(float(t), 0.002)
        hit.add(float(t), 0.5 + 0.01 * t, weight=100.0)
    recorder.samples = 10
    payload = recorder.payload()
    payload["health"] = {
        "enabled": True,
        "events": [
            {
                "detector": "hit-rate-divergence",
                "severity": "warning",
                "ts": 7.0,
                "value": 0.9,
                "message": "hit rate diverged above baseline",
                "evidence": {},
            }
        ],
    }
    return payload


class TestSparkline:
    def test_maps_range_onto_block_ramp(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == SPARK_CHARS[0]
        assert line[-1] == SPARK_CHARS[-1]

    def test_flat_series_renders_low(self):
        assert sparkline([5.0, 5.0, 5.0]) == SPARK_CHARS[0] * 3

    def test_window_caps_width(self):
        assert len(sparkline(list(range(100)), width=40)) == 40

    def test_empty(self):
        assert sparkline([]) == ""


class TestHistoryPanels:
    def test_sparkline_panel_with_series_and_events(self):
        frame = render_dashboard(sample_stats(), history=sample_history())
        assert "flight recorder — 10 samples every 1s" in frame
        assert "req/s" in frame and "p99 ms" in frame and "hit rate" in frame
        assert any(ch in frame for ch in SPARK_CHARS)
        assert "health events (1 buffered)" in frame
        assert "hit-rate-divergence: hit rate diverged above baseline" in frame
        assert "[warning " in frame

    def test_absent_history_renders_no_panel(self):
        frame = render_dashboard(sample_stats())
        assert "flight recorder" not in frame
        assert "health events" not in frame

    def test_empty_history_renders_no_panel(self):
        empty = TimeSeriesRecorder().payload()
        empty["health"] = {"enabled": True, "events": []}
        frame = render_dashboard(sample_stats(), history=empty)
        assert "flight recorder" not in frame

    def test_event_tail_capped(self):
        history = sample_history()
        history["health"]["events"] = [
            {
                "detector": "churn-spike",
                "severity": "warning",
                "ts": float(t),
                "value": 1.0,
                "message": f"event {t}",
                "evidence": {},
            }
            for t in range(12)
        ]
        frame = render_dashboard(sample_stats(), history=history)
        assert "health events (12 buffered)" in frame
        assert "event 11" in frame and "event 0" not in frame


class TestCountExpositionSamples:
    def test_counts_only_sample_lines(self):
        body = (
            "# HELP repro_requests_total x\n"
            "# TYPE repro_requests_total counter\n"
            "repro_requests_total 5\n"
            "\n"
            'repro_site_hit_rate{site="0"} 0.5\n'
        )
        assert count_exposition_samples(body) == 2

    def test_empty(self):
        assert count_exposition_samples("") == 0
