"""Unit tests for the analysis toolkit (histograms, Zipf fit, correlation)."""

import numpy as np
import pytest

from repro.analysis.correlation import popularity_size_correlation
from repro.analysis.histograms import (
    cdf_points,
    ccdf_points,
    log_bins,
    quantiles,
    summarize_distribution,
)
from repro.analysis.popularity import (
    fit_zipf,
    popularity_by_tier,
    top_k_by_requests,
)
from repro.core.identify import find_filecules
from tests.conftest import make_trace


class TestLogBins:
    def test_covers_range(self):
        edges = log_bins(1, 1000, per_decade=3)
        assert edges[0] == pytest.approx(1.0)
        assert edges[-1] >= 1000

    def test_monotone(self):
        edges = log_bins(0.5, 500)
        assert np.all(np.diff(edges) > 0)

    def test_degenerate_range(self):
        edges = log_bins(10, 10)
        assert len(edges) >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            log_bins(0, 10)
        with pytest.raises(ValueError):
            log_bins(10, 1)
        with pytest.raises(ValueError):
            log_bins(1, 10, per_decade=0)


class TestCdfCcdf:
    def test_cdf_reaches_one(self):
        x, y = cdf_points(np.array([1, 2, 2, 3]))
        assert x.tolist() == [1, 2, 3]
        assert y[-1] == pytest.approx(1.0)
        assert y.tolist() == pytest.approx([0.25, 0.75, 1.0])

    def test_ccdf_starts_at_one(self):
        x, y = ccdf_points(np.array([1, 2, 2, 3]))
        assert y[0] == pytest.approx(1.0)
        assert y.tolist() == pytest.approx([1.0, 0.75, 0.25])

    def test_empty(self):
        assert len(cdf_points(np.array([]))[0]) == 0
        assert len(ccdf_points(np.array([]))[0]) == 0


class TestSummaries:
    def test_summary_fields(self):
        s = summarize_distribution(np.arange(1, 101))
        assert s.n == 100
        assert s.mean == pytest.approx(50.5)
        assert s.median == pytest.approx(50.5)
        assert s.minimum == 1 and s.maximum == 100

    def test_empty_summary_nan(self):
        s = summarize_distribution(np.array([]))
        assert s.n == 0
        assert np.isnan(s.mean)

    def test_quantiles(self):
        q = quantiles(np.arange(101), qs=(0.5,))
        assert q[0.5] == pytest.approx(50.0)

    def test_quantiles_empty(self):
        q = quantiles(np.array([]), qs=(0.5,))
        assert np.isnan(q[0.5])

    def test_row_shape(self):
        assert len(summarize_distribution(np.array([1.0])).row()) == 8


class TestZipfFit:
    def test_pure_zipf_detected(self):
        ranks = np.arange(1, 2001)
        freqs = 1e6 / ranks  # alpha = 1 exactly
        fit = fit_zipf(freqs)
        assert fit.alpha == pytest.approx(1.0, abs=0.02)
        assert fit.r_squared > 0.999
        assert fit.is_zipf_like

    def test_flattened_head_not_zipf(self):
        ranks = np.arange(1, 2001)
        freqs = 1e6 / ranks + 5e3  # uniform floor flattens everything
        fit = fit_zipf(freqs)
        assert not fit.is_zipf_like

    def test_uniform_not_zipf(self):
        fit = fit_zipf(np.full(100, 7.0))
        assert fit.alpha == pytest.approx(0.0, abs=1e-6)
        assert not fit.is_zipf_like

    def test_too_few_points(self):
        fit = fit_zipf(np.array([5.0, 3.0]))
        assert np.isnan(fit.alpha)

    def test_zeros_ignored(self):
        fit = fit_zipf(np.array([100.0, 10.0, 1.0, 0.0, 0.0]))
        assert fit.n_ranks == 3


class TestPopularityHelpers:
    def test_popularity_by_tier(self):
        t = make_trace(
            [[0, 1], [2]],
            file_tiers=[1, 1, 2],
        )
        p = find_filecules(t)
        by_tier = popularity_by_tier(t, p)
        assert set(by_tier) == {1, 2}
        assert by_tier[1].tolist() == [1]
        assert by_tier[2].tolist() == [1]

    def test_top_k(self):
        t = make_trace([[0], [0], [1]])
        p = find_filecules(t)
        top = top_k_by_requests(p, k=1)
        assert p[int(top[0])].n_requests == 2

    def test_top_k_validation(self):
        t = make_trace([[0]])
        with pytest.raises(ValueError):
            top_k_by_requests(find_filecules(t), k=-1)


class TestCorrelation:
    def test_uncorrelated(self):
        rng = np.random.default_rng(0)
        t = make_trace(
            [
                sorted(rng.choice(50, size=5, replace=False).tolist())
                for _ in range(60)
            ],
            n_files=50,
            file_sizes=rng.integers(1, 100, size=50).tolist(),
        )
        report = popularity_size_correlation(find_filecules(t))
        assert abs(report.pearson_r) < 0.5

    def test_degenerate_returns_zero(self):
        t = make_trace([[0], [1]])
        report = popularity_size_correlation(find_filecules(t))
        assert report.pearson_r == 0.0
        assert report.is_negligible

    def test_strong_correlation_detected(self):
        # popularity == size by construction
        jobs = []
        for f in range(20):
            jobs.extend([[f]] * (f + 1))
        t = make_trace(jobs, file_sizes=[(f + 1) * 10 for f in range(20)])
        report = popularity_size_correlation(find_filecules(t))
        assert report.pearson_r > 0.95
        assert not report.is_negligible
