#!/usr/bin/env python
"""Service ingest smoke check: a paper-tier slice through a live daemon.

CI runs this (the ``service-ingest-smoke`` job) to catch write-path
regressions where they matter — the online service ingesting the
paper-scale workload — without paying for the full service benchmark.
It:

1. obtains the ``paper``-tier trace through the on-disk trace store
   (warm CI runs restore the artifact from the actions cache and skip
   generation entirely);
2. replays the first ``SLICE_JOBS`` jobs as an ingest-only stream over
   one pipelined connection against a live single-worker
   :class:`~repro.service.server.FileculeServer` with writer coalescing
   on (the default stack: ``observe_jobs_batch`` + ``request_window``);
3. gates ingest throughput against the floor below, and checks the
   actor actually coalesced (mean writer batch well above one job);
4. replays the same slice through the per-job state path
   (``ingest_kernel=False``) and requires the identical partition
   checksum and per-site advisor statistics;
5. writes ``benchmarks/output/service_ingest_smoke.json`` with host
   info and per-phase timings.

Exit status is non-zero on any failed gate.  Run locally with::

    PYTHONPATH=src python tools/service_ingest_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service import FileculeServer, ServiceState, jobs_from_trace  # noqa: E402
from repro.service.protocol import encode_request  # noqa: E402
from repro.util.host import host_info  # noqa: E402
from repro.workload import cached_trace, paper_config  # noqa: E402

SEED = 7
SLICE_JOBS = 20_000
PIPELINE_DEPTH = 100  # stay inside the server's backpressure window

#: Ingest throughput floor, jobs per second, single worker, one
#: pipelined connection.  The measured rate on a single 2020s CPU core
#: is ~5k jobs/s; the floor is loose enough for slow CI runners but
#: tight enough that losing the coalesced kernel path (or reintroducing
#: a quadratic in the refinement core) fails loudly.
MIN_JOBS_PER_S = 1_200

#: The actor must genuinely coalesce under a pipelined ingest stream.
MIN_MEAN_JOBS_PER_BATCH = 2.0

OUTPUT = REPO_ROOT / "benchmarks" / "output" / "service_ingest_smoke.json"


def _blast(port: int, lines: list[bytes]) -> float:
    """Pipelined single-connection replay; returns the duration."""
    sock = socket.create_connection(("127.0.0.1", port))
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    rfile = sock.makefile("rb")
    t0 = time.perf_counter()
    for i in range(0, len(lines), PIPELINE_DEPTH):
        chunk = lines[i : i + PIPELINE_DEPTH]
        sock.sendall(b"".join(chunk))
        for _ in chunk:
            rfile.readline()
    duration = time.perf_counter() - t0
    rfile.close()
    sock.close()
    return duration


async def _serve_slice(lines: list[bytes], capacity: int) -> tuple[dict, dict, float]:
    state = ServiceState(policy="lru", capacity_bytes=capacity)
    server = FileculeServer(state, log_interval=None)
    await server.start()
    try:
        duration = await asyncio.to_thread(_blast, server.port, lines)
        snapshot = server.metrics.snapshot()
    finally:
        await server.stop()
    return state.stats(), snapshot, duration


def main() -> int:
    timings: dict[str, float] = {}
    t0 = time.perf_counter()
    trace = cached_trace(paper_config(), seed=SEED, on_event=print)
    timings["trace_s"] = round(time.perf_counter() - t0, 3)

    t1 = time.perf_counter()
    jobs = jobs_from_trace(trace)[:SLICE_JOBS]
    capacity = max(1, int(trace.file_sizes.sum()) // 10)
    lines = [
        encode_request(
            "ingest", i, files=j["files"], sizes=j["sizes"], site=j["site"]
        )
        for i, j in enumerate(jobs)
    ]
    timings["encode_s"] = round(time.perf_counter() - t1, 3)

    t2 = time.perf_counter()
    stats, snapshot, duration = asyncio.run(_serve_slice(lines, capacity))
    timings["replay_s"] = round(time.perf_counter() - t2, 3)
    jobs_per_s = len(jobs) / duration
    batches = snapshot["counters"].get("ingest_batches", 0)
    mean_batch = len(jobs) / batches if batches else 0.0

    t3 = time.perf_counter()
    reference = ServiceState(
        policy="lru", capacity_bytes=capacity, ingest_kernel=False
    )
    for job in jobs:
        reference.ingest(job["files"], job["sizes"], job["site"])
    ref_stats = reference.stats()
    timings["reference_s"] = round(time.perf_counter() - t3, 3)

    failures = []
    if stats["jobs_observed"] != len(jobs):
        failures.append(
            f"served {stats['jobs_observed']} jobs, expected {len(jobs)}"
        )
    if stats["partition_checksum"] != ref_stats["partition_checksum"]:
        failures.append("served partition diverged from the per-job path")
    if stats["sites"] != ref_stats["sites"]:
        failures.append("advisor site statistics diverged from the per-job path")
    if jobs_per_s < MIN_JOBS_PER_S:
        failures.append(
            f"ingest throughput {jobs_per_s:,.0f} jobs/s "
            f"below floor {MIN_JOBS_PER_S:,}"
        )
    if mean_batch < MIN_MEAN_JOBS_PER_BATCH:
        failures.append(
            f"mean writer batch {mean_batch:.2f} jobs — actor not coalescing"
        )

    payload = {
        "smoke": "service-ingest",
        "seed": SEED,
        "host": host_info(),
        "slice_jobs": len(jobs),
        "slice_accesses": sum(len(j["files"]) for j in jobs),
        "capacity_bytes": capacity,
        "jobs_per_second": round(jobs_per_s, 2),
        "min_jobs_per_second": MIN_JOBS_PER_S,
        "writer_batches": batches,
        "mean_jobs_per_batch": round(mean_batch, 2),
        "partition_checksum": stats["partition_checksum"],
        "partition_checksum_matches_per_job": stats["partition_checksum"]
        == ref_stats["partition_checksum"],
        "n_classes": stats["n_classes"],
        "timings": timings,
        "failures": failures,
    }
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"service ingest smoke: {len(jobs)} jobs at {jobs_per_s:,.0f} jobs/s "
        f"(floor {MIN_JOBS_PER_S:,}), mean batch {mean_batch:.1f} jobs, "
        f"checksum {'ok' if payload['partition_checksum_matches_per_job'] else 'DIVERGED'}"
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
