#!/usr/bin/env python
"""Import-layering check: no package may import a package above it.

The repository is layered (see ``docs/ARCHITECTURE.md``)::

    util < traces < core < obs < obs.timeseries < obs.health
         < cache.base < engine < cache < registry
         < {parallel, analysis, sam, scenario, transfer, workload}
         < replication < hierarchy < service < experiments

Only **module-top-level** imports are checked: lazy function-level
imports are the sanctioned mechanism for the engine's upcalls into the
registry and the parallel runner (documented where they occur), and for
CLI glue.  Anything importing *upward* at module load time would make
the layer map a lie — ``repro.cache`` or ``repro.core`` pulling in
``repro.service`` or ``repro.experiments`` is exactly the class of
regression this guard exists to stop.

Exceptions are explicit and few: ``repro.obs.top`` is the operational
dashboard CLI (a leaf executable that happens to live in ``repro.obs``)
and may import the service client.

Usage: ``python tools/check_layering.py [src-root]`` — exits non-zero
listing every violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Package (or module) prefix -> rank.  Longest-prefix match wins, so
#: ``repro.cache.base`` (the policy interface, below the engine) is
#: ranked separately from the rest of ``repro.cache`` (the policy
#: implementations and the simulator façade, above the engine).
RANKS: dict[str, int] = {
    "repro.util": 0,
    "repro.traces": 1,
    "repro.core": 2,
    "repro.obs": 3,
    "repro.obs.timeseries": 4,
    "repro.obs.health": 5,
    "repro.cache.base": 6,
    "repro.engine": 7,
    "repro.cache": 8,
    "repro.registry": 9,
    "repro.parallel": 10,
    "repro.analysis": 10,
    "repro.sam": 10,
    "repro.scenario": 10,
    "repro.transfer": 10,
    "repro.workload": 10,
    "repro.replication": 11,
    "repro.hierarchy": 12,
    "repro.service": 13,
    "repro.experiments": 14,
}

#: (importer module prefix, imported module prefix) pairs allowed to
#: cross layers upward at module top level.
EXCEPTIONS: frozenset[tuple[str, str]] = frozenset(
    {
        # The repro-top dashboard: an operational CLI leaf that lives in
        # obs but drives the service's admin endpoints.
        ("repro.obs.top", "repro.service"),
        # The obs package façade re-exports the flight-recorder layers
        # (timeseries, health) that rank above the base metrics layer.
        ("repro.obs", "repro.obs.timeseries"),
        ("repro.obs", "repro.obs.health"),
    }
)

#: Modules whose own top-level imports are not ranked.  The root
#: package is the public façade and deliberately imports from several
#: layers to assemble its namespace.
UNRANKED: frozenset[str] = frozenset({"repro", "repro.py"})


def rank_of(module: str) -> tuple[str, int] | None:
    """Longest-prefix rank lookup; None for unranked modules."""
    best: tuple[str, int] | None = None
    for prefix, rank in RANKS.items():
        if module == prefix or module.startswith(prefix + "."):
            if best is None or len(prefix) > len(best[0]):
                best = (prefix, rank)
    return best


def module_name(path: Path, src_root: Path) -> str:
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def top_level_imports(tree: ast.Module, module: str) -> list[str]:
    """Absolute names imported at module top level (``repro.*`` only)."""
    found: list[str] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            found.extend(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Resolve relative imports against this module's package.
                package = module.split(".")
                if node.level > len(package):
                    continue
                base = package[: len(package) - node.level + 1]
                # ``from . import x`` in a module (not __init__) backs up
                # one more component.
                stem = ".".join(base)
                target = f"{stem}.{node.module}" if node.module else stem
            else:
                target = node.module or ""
            if not target:
                continue
            # ``from repro import registry`` names the subpackage, not
            # the root — resolve each alias to its full module path when
            # the "module" is itself an unranked package.
            if target in UNRANKED or rank_of(target) is None:
                found.extend(f"{target}.{alias.name}" for alias in node.names)
            else:
                found.append(target)
    return [name for name in found if name == "repro" or name.startswith("repro.")]


def check(src_root: Path) -> list[str]:
    violations: list[str] = []
    for path in sorted(src_root.rglob("*.py")):
        module = module_name(path, src_root)
        ranked = rank_of(module)
        if ranked is None:
            continue  # the root package façade, py.typed companions, ...
        own_prefix, own_rank = ranked
        tree = ast.parse(path.read_text(), filename=str(path))
        for imported in top_level_imports(tree, module):
            target = rank_of(imported)
            if target is None:
                continue
            target_prefix, target_rank = target
            if target_prefix == own_prefix:
                continue  # intra-layer imports are free
            if target_rank < own_rank:
                continue
            if any(
                (module == imp or module.startswith(imp + "."))
                and (imported == tgt or imported.startswith(tgt + "."))
                for imp, tgt in EXCEPTIONS
            ):
                continue
            direction = "sideways" if target_rank == own_rank else "upward"
            violations.append(
                f"{module} (layer {own_rank}: {own_prefix}) imports "
                f"{direction} {imported} (layer {target_rank}: "
                f"{target_prefix}) at module top level"
            )
    return violations


def main(argv: list[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    if not (src_root / "repro").is_dir():
        print(f"error: {src_root}/repro not found", file=sys.stderr)
        return 2
    violations = check(src_root)
    if violations:
        print(f"{len(violations)} layering violation(s):")
        for v in violations:
            print(f"  {v}")
        return 1
    print("layering ok: no upward module-top-level imports")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
