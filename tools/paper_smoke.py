#!/usr/bin/env python
"""Paper-scale smoke check: one sweep cell at DZero size, on a budget.

CI runs this (the ``paper-scale-smoke`` job) to catch throughput
regressions where they matter — at the ~13M-access scale the paper
characterizes — without paying for the full benchmark matrix.  It:

1. obtains the ``paper``-tier trace through the on-disk trace store
   (cold: generates and caches; warm CI runs restore the artifact from
   the actions cache and skip generation entirely);
2. asserts the generated access count lands inside the documented band
   around the paper's ~13M file accesses (PAPER.md §2) — a drift here
   means the calibration, not the engine, changed;
3. identifies filecules and replays one file-LRU cell (capacity =
   total/10, the mixed-pressure regime) through the batch kernel,
   gating its throughput against the floor below (bit-identity to the
   per-access path is the benchmark suite's job, not the smoke check's);
4. writes ``benchmarks/output/paper_smoke.json`` with host info and
   per-phase timings.

Exit status is non-zero on any failed gate.  Run locally with::

    PYTHONPATH=src python tools/paper_smoke.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import find_filecules  # noqa: E402
from repro.engine import simulate  # noqa: E402
from repro.util.host import host_info  # noqa: E402
from repro.util.units import format_bytes  # noqa: E402
from repro.workload import cached_trace, paper_config  # noqa: E402

SEED = 7

#: Documented band around the paper's ~13M accesses (PAPER.md §2); the
#: calibrated generator lands near 12.9M at seed 7.
ACCESS_BAND = (11_000_000, 16_000_000)

#: Replay throughput floor for the batch-kernel cell, in accesses per
#: second.  The measured rate on a single 2020s CPU core is ~1.8M/s;
#: the floor is set loose enough for slow CI runners but tight enough
#: that an accidental fall back to per-access replay (~0.7M/s) fails.
MIN_BATCH_ACCESSES_PER_S = 900_000

OUTPUT = REPO_ROOT / "benchmarks" / "output" / "paper_smoke.json"


def main() -> int:
    timings: dict[str, float] = {}
    t0 = time.perf_counter()
    config = paper_config()
    trace = cached_trace(config, seed=SEED, on_event=print)
    timings["trace_s"] = round(time.perf_counter() - t0, 2)

    n = trace.n_accesses
    lo, hi = ACCESS_BAND
    print(
        f"paper trace: {n:,} accesses, {trace.n_files:,} files, "
        f"{format_bytes(trace.total_bytes(), 1)} "
        f"(documented band {lo:,}..{hi:,})"
    )
    if not lo <= n <= hi:
        print(
            f"FAIL: access count {n:,} outside the documented band "
            f"{lo:,}..{hi:,} — workload calibration drifted",
            file=sys.stderr,
        )
        return 1

    t0 = time.perf_counter()
    partition = find_filecules(trace)
    timings["partition_s"] = round(time.perf_counter() - t0, 2)
    print(f"filecules: {len(partition):,} ({timings['partition_s']}s)")

    capacity = trace.total_bytes() // 10
    t0 = time.perf_counter()
    metrics = simulate(trace, "file-lru", capacity, batch=True)
    cell_s = time.perf_counter() - t0
    timings["batch_cell_s"] = round(cell_s, 2)
    rate = n / cell_s
    print(
        f"file-lru@{format_bytes(capacity, 1)} (batch): {cell_s:.2f}s, "
        f"{rate:,.0f} accesses/s, miss rate {metrics.miss_rate:.4f}"
    )

    ok = rate >= MIN_BATCH_ACCESSES_PER_S
    if not ok:
        print(
            f"FAIL: batch replay {rate:,.0f} accesses/s < floor "
            f"{MIN_BATCH_ACCESSES_PER_S:,} — throughput regression",
            file=sys.stderr,
        )

    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(
        json.dumps(
            {
                "check": "paper-scale-smoke",
                "host": host_info(),
                "seed": SEED,
                "accesses": n,
                "files": trace.n_files,
                "total_bytes": trace.total_bytes(),
                "filecules": len(partition),
                "capacity": capacity,
                "miss_rate": round(metrics.miss_rate, 6),
                "batch_accesses_per_s": round(rate, 1),
                "floor_accesses_per_s": MIN_BATCH_ACCESSES_PER_S,
                "timings": timings,
                "ok": ok,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {OUTPUT}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
