"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs bdist_wheel; offline boxes
that lack `wheel` can instead run `python setup.py develop`.
"""
from setuptools import setup

setup()
