"""SIZE baseline: evict the largest cached file first.

A classic web-caching policy (favor keeping many small objects).  On
DZero-like workloads it is a useful foil: file sizes are narrowly
distributed within a tier, so SIZE degenerates and recency-based policies
win — evidence for the paper's point that correlation structure, not size,
is what matters here.
"""

from __future__ import annotations

import heapq

from repro.cache.base import ReplacementPolicy, RequestOutcome


class LargestFirst(ReplacementPolicy):
    """Evict the largest resident file; ties broken oldest-first."""

    name = "largest-first"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._sizes: dict[int, int] = {}
        self._heap: list[tuple[int, int, int]] = []  # (-size, seq, file)
        self._seq = 0

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._sizes

    def _evict_one(self) -> None:
        while self._heap:
            neg_size, _, file_id = heapq.heappop(self._heap)
            size = self._sizes.get(file_id)
            if size is not None and size == -neg_size:
                del self._sizes[file_id]
                self._release(size)
                return
        raise RuntimeError("largest-first: occupancy positive but heap empty")

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        if file_id in self._sizes:
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_one()
        self._sizes[file_id] = size
        heapq.heappush(self._heap, (-size, self._seq, file_id))
        self._seq += 1
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)
