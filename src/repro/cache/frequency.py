"""File-granularity LFU baseline.

Otoo et al. (cited in §4/§7) observe that popularity-only policies are
inefficient when jobs request many files simultaneously; this
implementation lets the reproduction quantify that observation against
filecule-LRU.  Frequency counts persist across evictions ("perfect LFU"),
with least-recent insertion as tie-breaker.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.cache.base import ReplacementPolicy, RequestOutcome


class FileLFU(ReplacementPolicy):
    """Evict the least-frequently-used resident file (perfect LFU)."""

    name = "file-lfu"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._sizes: dict[int, int] = {}
        self._freq: dict[int, int] = defaultdict(int)
        # heap of (freq-at-push, seq, file); stale entries skipped lazily
        self._heap: list[tuple[int, int, int]] = []
        self._seq = 0

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._sizes

    def _push(self, file_id: int) -> None:
        heapq.heappush(self._heap, (self._freq[file_id], self._seq, file_id))
        self._seq += 1

    def _evict_one(self) -> None:
        while self._heap:
            freq, _, file_id = heapq.heappop(self._heap)
            size = self._sizes.get(file_id)
            if size is not None and freq == self._freq[file_id]:
                del self._sizes[file_id]
                self._release(size)
                return
        raise RuntimeError("lfu: occupancy positive but heap empty")

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        self._freq[file_id] += 1
        if file_id in self._sizes:
            self._push(file_id)  # refresh heap position lazily
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_one()
        self._sizes[file_id] = size
        self._push(file_id)
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)
