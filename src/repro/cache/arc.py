"""ARC — Adaptive Replacement Cache (Megiddo & Modha, FAST'03).

The strongest classical *adaptive* file-granularity policy: ARC balances
recency (list T1) against frequency (list T2) using ghost lists (B1, B2)
of recently evicted keys to learn, online, how much capacity each side
deserves.  Including it in the ablation makes the paper's point as hard
as possible for single-file policies: even a policy that self-tunes its
recency/frequency mix cannot recover the co-access structure filecules
expose.

This is the standard algorithm adapted to byte capacities: the learned
target ``p`` is tracked in bytes, and REPLACE evicts from T1 while its
byte occupancy exceeds ``p`` (from T2 otherwise).  Ghost lists are
bounded to the cache's byte size each, evicting oldest-first.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import ReplacementPolicy, RequestOutcome


class _ByteList:
    """An ordered (LRU -> MRU) set of file ids with byte accounting."""

    __slots__ = ("entries", "bytes")

    def __init__(self) -> None:
        self.entries: OrderedDict[int, int] = OrderedDict()  # file -> size
        self.bytes = 0

    def __contains__(self, file_id: int) -> bool:
        return file_id in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def add_mru(self, file_id: int, size: int) -> None:
        self.entries[file_id] = size
        self.bytes += size

    def remove(self, file_id: int) -> int:
        size = self.entries.pop(file_id)
        self.bytes -= size
        return size

    def pop_lru(self) -> tuple[int, int]:
        file_id, size = self.entries.popitem(last=False)
        self.bytes -= size
        return file_id, size


class AdaptiveReplacementCache(ReplacementPolicy):
    """Byte-capacity ARC at single-file granularity."""

    name = "arc"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._t1 = _ByteList()  # resident, seen once recently
        self._t2 = _ByteList()  # resident, seen at least twice
        self._b1 = _ByteList()  # ghost of T1
        self._b2 = _ByteList()  # ghost of T2
        self._p = 0.0  # target byte size of T1

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._t1 or file_id in self._t2

    # ------------------------------------------------------------------
    def _replace(self, file_id: int) -> None:
        """Evict one resident file per the ARC REPLACE rule."""
        from_t1 = len(self._t1) > 0 and (
            self._t1.bytes > self._p
            or (file_id in self._b2 and self._t1.bytes == self._p)
            or len(self._t2) == 0
        )
        if from_t1:
            victim, size = self._t1.pop_lru()
            self._b1.add_mru(victim, size)
        else:
            victim, size = self._t2.pop_lru()
            self._b2.add_mru(victim, size)
        self._release(size)
        # bound ghost lists to one cache's worth of bytes each
        while self._b1.bytes > self.capacity_bytes:
            self._b1.pop_lru()
        while self._b2.bytes > self.capacity_bytes:
            self._b2.pop_lru()

    def _make_room(self, size: int, file_id: int) -> None:
        while self.used_bytes + size > self.capacity_bytes:
            self._replace(file_id)

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        # case I: hit in T1 or T2 -> promote to T2 MRU
        if file_id in self._t1:
            self._t1.remove(file_id)
            self._t2.add_mru(file_id, size)
            return RequestOutcome(hit=True)
        if file_id in self._t2:
            self._t2.remove(file_id)
            self._t2.add_mru(file_id, size)
            return RequestOutcome(hit=True)

        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)

        # case II: ghost hit in B1 -> favour recency (grow p)
        if file_id in self._b1:
            ratio = max(self._b2.bytes / max(self._b1.bytes, 1), 1.0)
            self._p = min(self._p + ratio * size, float(self.capacity_bytes))
            self._b1.remove(file_id)
            self._make_room(size, file_id)
            self._t2.add_mru(file_id, size)
            self._charge(size)
            return RequestOutcome(hit=False, bytes_fetched=size)

        # case III: ghost hit in B2 -> favour frequency (shrink p)
        if file_id in self._b2:
            ratio = max(self._b1.bytes / max(self._b2.bytes, 1), 1.0)
            self._p = max(self._p - ratio * size, 0.0)
            self._b2.remove(file_id)
            self._make_room(size, file_id)
            self._t2.add_mru(file_id, size)
            self._charge(size)
            return RequestOutcome(hit=False, bytes_fetched=size)

        # case IV: brand new key -> insert at T1 MRU
        self._make_room(size, file_id)
        self._t1.add_mru(file_id, size)
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)
