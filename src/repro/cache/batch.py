"""Vectorized whole-trace replay for batch-capable policies.

:class:`GroupedReplayKernel` replays an entire trace against the three
policies whose request semantics reduce to *group residency* — file-LRU
(group = file), file-FIFO (group = file, no recency touch) and
filecule-LRU (group = filecule label).  For these policies a request's
outcome depends only on whether its group is resident, so the stream
can be resolved window-at-a-time with numpy doing the heavy indexing
and a tight all-Python loop (no numpy scalar boxing) handling whatever
actually mutates state.

Per window of ``WINDOW`` accesses:

1. **Probe** (numpy): gather each access's group and its residency.
   In filecule mode, adjacent accesses to the same filecule are first
   collapsed into *runs* (a job's files within one filecule have
   contiguous ids, so the mean run covers ~7 accesses at paper scale);
   the walk then costs per run, not per access.
2. **Bulk** (numpy): a fully-hit window, or the leading hit-run up to
   the first probed miss, is accounted with prefix-sum arithmetic
   (:attr:`~repro.traces.trace.Trace.access_size_cumsum`) and one fancy
   recency assignment — numpy's last-write-wins on duplicate indices
   matches "latest touch wins".
3. **Walk** (Python): the remainder runs on plain lists and dict
   *overlays*: ``ores`` (residency changes since the probe) and
   ``olast`` (recency touches this window).  Truth for an access is
   ``ores.get(group, probed_hint)`` — every post-probe insert and
   eviction is in ``ores``, so the probed hint is exact for untouched
   groups.  In LRU modes every walked item consumes one sequence
   number (even bypasses, which are never resident, so stamping them
   is harmless): the window's recency flush is then just one fancy
   assignment from the probe's own group array, with no per-access
   list building.  Counters fall out by subtraction — the loop books
   only the minority side (hits in the LRU walk, where eviction-bound
   windows are mostly misses; misses in the FIFO walk) plus bypasses.

Eviction is lazy-deletion LRU over a log of (group array, base
sequence) chunks.  When a chunk reaches the eviction cursor, one numpy
pass filters it down to the entries that were still the group's latest
touch; the surviving few are consumed one by one.  The kernel keeps the
invariant that the numpy state arrays (``last``/``resident``) only
change together with a re-scan of that pending buffer, so consuming an
entry needs *only* overlay dict lookups — a pending entry can be stale
only if this window's ``olast``/``ores`` says so.  When the log runs
dry mid-window (caches smaller than a window's working set), the
evictor walks the current window's in-flight items directly.

The kernel is bit-identical to per-access replay (the test suite gates
all policies), accounts bypasses exactly like the per-access policies
(group larger than the cache: stream the requested file, cache
nothing), and never materializes :attr:`Trace.replay_columns`, so a
batch run keeps paper-scale memory at the numpy columns alone.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cache.base import CacheMetrics

#: Accesses probed per numpy window.  Large enough to amortize the
#: probe gathers to ~10 ns/access, small enough that a window's walk
#: overlays stay cache-friendly.
WINDOW = 16384

#: Minimum leading hit-run (in walk items) worth resolving with numpy
#: bulk ops — below this the fixed cost of arange/fancy-assign exceeds
#: the Python walk.
MIN_BULK_RUN = 48

#: Minimum probed-hit run (in walk items) worth consuming with one
#: C-level ``dict.update`` instead of the per-item loop — below this
#: the slice/isdisjoint fixed costs exceed the loop.
MIN_DICT_RUN = 8


class GroupedReplayKernel:
    """One-shot vectorized replay of ``trace`` against a grouped policy.

    Parameters
    ----------
    trace:
        The trace to replay (all of it, in canonical access order).
    capacity:
        Cache capacity in bytes.
    group_sizes:
        Plain-list size of each group in bytes (for file granularity,
        the trace's file sizes; for filecules, the partition's sizes).
    labels:
        Optional numpy file-id → group-id map.  ``None`` means file
        granularity (the access's file id *is* its group).  Negative
        labels raise ``KeyError`` exactly like
        :class:`~repro.cache.filecule_lru.FileculeLRU`.
    touch_on_hit:
        ``True`` for LRU recency semantics, ``False`` for FIFO
        (insertion order only).
    hit_out:
        Optional writable boolean array of length ``trace.n_accesses``.
        When given, the kernel marks ``hit_out[k] = True`` for every
        access ``k`` that hits (misses and bypasses are left untouched)
        — the per-access outcome mask the hierarchical replay
        (:mod:`repro.engine.hierarchy`) uses to derive the next tier's
        demand stream.  Recording rides the existing accounting sites,
        so the mask is exactly the outcome per-access replay would
        produce; counters are unchanged either way.
    """

    def __init__(
        self,
        trace,
        *,
        capacity: int,
        group_sizes: list,
        labels=None,
        touch_on_hit: bool = True,
        hit_out=None,
    ) -> None:
        if hit_out is not None:
            if len(hit_out) != trace.n_accesses:
                raise ValueError(
                    f"hit_out length {len(hit_out)} != trace accesses "
                    f"{trace.n_accesses}"
                )
            if hit_out.dtype != np.bool_:
                raise ValueError(f"hit_out must be bool, got {hit_out.dtype}")
        self._trace = trace
        self._capacity = int(capacity)
        self._group_sizes = group_sizes
        self._labels = labels
        self._touch_on_hit = touch_on_hit
        self._hit_out = hit_out
        self._spent = False

    def __call__(self, metrics: CacheMetrics) -> None:
        if self._spent:
            raise RuntimeError("batch kernels are single-use; build a new one")
        self._spent = True

        trace = self._trace
        af = trace.access_files
        n = len(af)
        csum = trace.access_size_cumsum
        sizes_np = trace.file_sizes
        labels = self._labels
        gsizes = self._group_sizes
        capacity = self._capacity
        touch = self._touch_on_hit
        ho = self._hit_out
        n_groups = len(gsizes)

        resident = np.zeros(n_groups, dtype=bool)
        last = np.full(n_groups, -1, dtype=np.int64)

        # Touch log: ``[group_array, base_seq]`` chunks in global
        # sequence order (the k-th entry has sequence ``base_seq + k``).
        # The eviction path scans a chunk once with numpy, keeping only
        # still-latest entries as the parallel lists ``(scan_g, scan_s)``.
        # Both are stored *reversed* so consuming the next candidate is
        # a pair of C-level ``list.pop()`` calls — no cursor arithmetic
        # on the hottest branch of the eviction loop.
        log: deque = deque()
        scan_g: list = []
        scan_s: list = []

        hits = 0
        bytes_hit = 0
        fetched = 0
        bypasses = 0
        used = 0
        seq = 0

        # Per-window walk overlays (cleared, not rebound, so the
        # closures below can bind the lookup methods once).
        ores: dict = {}
        olast: dict = {}
        ores_get = ores.get
        olast_get = olast.get
        # A probed-hit run may be bulk-consumed only if none of its
        # groups were touched by this window's residency overlay —
        # evicted groups sit in ``ores`` as ``False``, so a keys-view
        # disjointness test is a conservative (and allocation-free)
        # poisoning check.
        ores_keys_disjoint = ores.keys().isdisjoint
        flight: list = []  # current window's walk items, for the evictor
        wbase = 0
        wcur = 0

        arange = np.arange
        asarray = np.asarray
        flatnonzero = np.flatnonzero

        def rescan() -> None:
            # Re-validate the pending scanned buffer.  Called after
            # every write to ``last``/``resident``, restoring the
            # invariant that a pending entry can only be invalidated by
            # this window's overlays — which is what lets the consume
            # paths below get away with dict lookups alone.
            nonlocal scan_g, scan_s
            if scan_g:
                # The buffer is stored reversed; flip to sequence order
                # for validation, then back for pop() consumption.
                sg = asarray(scan_g, dtype=np.int64)[::-1]
                ss = asarray(scan_s, dtype=np.int64)[::-1]
                vpos = flatnonzero((last[sg] == ss) & resident[sg])
                scan_g = sg[vpos][::-1].tolist()
                scan_s = ss[vpos][::-1].tolist()

        # The eviction loop below exists twice: as this closure (used by
        # the FIFO and filecule walks) and inlined in the file-LRU walk,
        # its hottest caller — keep the two in sync.  Candidate validity
        # needs *no* numpy reads: a scanned entry is latest-and-resident
        # as of the last rescan, so only this window's overlays can
        # invalidate it; an in-flight item with no ``olast`` entry is a
        # bypass (never resident); and any other candidate with an
        # untouched residency overlay was resident when touched (hits
        # imply residency, inserts record ``ores``) and still is.
        def evict_until_fits(gsize: int) -> None:
            nonlocal used, scan_g, scan_s, wcur
            while used + gsize > capacity:
                # Next candidate in global sequence order: the scanned
                # buffer, then the next log chunk (scan it), then this
                # window's in-flight items.
                while True:
                    if scan_g:
                        g2 = scan_g.pop()
                        s2 = scan_s.pop()
                        infl = False
                        break
                    if log:
                        cg, cbase = log.popleft()
                        seqs = cbase + arange(len(cg))
                        vpos = flatnonzero((last[cg] == seqs) & resident[cg])
                        if not len(vpos):
                            continue
                        scan_g = cg[vpos][::-1].tolist()
                        scan_s = (cbase + vpos)[::-1].tolist()
                        continue
                    # Every resident group's latest touch is in the log
                    # or in flight, so the cursor cannot run off the end
                    # while anything remains to evict.
                    g2 = flight[wcur]
                    s2 = wbase + wcur
                    wcur += 1
                    infl = True
                    break
                # Re-validate against the overlays: a later touch
                # supersedes, an earlier eviction deduplicates.
                l2 = olast_get(g2)
                if l2 is None:
                    if infl:
                        continue
                elif l2 != s2:
                    continue
                if ores_get(g2) is False:
                    continue
                ores[g2] = False
                used -= gsizes[g2]

        i = 0
        while i < n:
            j = min(i + WINDOW, n)
            win = af[i:j]
            end = j - i

            # ---------------- probe (numpy) --------------------------
            if labels is None:
                # File granularity: every access is its own walk item.
                items = win
                starts = ends = None
                mask = resident[items]
            else:
                gwin = labels[win]
                if gwin.min() < 0:
                    p = int(np.argmax(gwin < 0))
                    raise KeyError(
                        f"file {int(win[p])} has no filecule; partition "
                        f"does not match the replayed trace"
                    )
                # Collapse adjacent same-filecule accesses into runs:
                # one walk item per run.
                change = flatnonzero(gwin[1:] != gwin[:-1]) + 1
                starts = np.concatenate(([0], change))
                ends = np.concatenate((change, [end]))
                items = gwin[starts]
                mask = resident[items]
            n_items = len(items)

            first = int(mask.argmin())  # first probed-miss item
            if mask[first]:
                # No probed miss: the whole window hits in bulk.
                hits += end
                bytes_hit += int(csum[j] - csum[i])
                if ho is not None:
                    ho[i:j] = True
                if touch:
                    last[items] = arange(seq, seq + n_items)
                    log.append([items, seq])
                    seq += n_items
                    rescan()
                i = j
                continue
            if first >= MIN_BULK_RUN:
                # Bulk the leading hit-run; sound because no state has
                # changed since the probe.
                facc = first if starts is None else int(starts[first])
                hits += facc
                bytes_hit += int(csum[i + facc] - csum[i])
                if ho is not None:
                    ho[i : i + facc] = True
                if touch:
                    seg = items[:first]
                    last[seg] = arange(seq, seq + first)
                    log.append([seg, seq])
                    seq += first
                    rescan()
            else:
                first = 0

            # ---------------- walk (Python) --------------------------
            gl = items[first:].tolist()
            ml = mask[first:].tolist()
            wbase = seq
            wcur = 0
            wn = 0  # touch-log length this window
            garr = None
            if labels is None:
                szl = sizes_np[win[first:]].tolist()
                mc = mb = bp = bpb = 0
                if touch:
                    # LRU: every item consumes a sequence number, so
                    # the flush reuses the probe's own array and the
                    # loop books only hits (misses fall out of the
                    # subtraction below — in eviction-bound windows
                    # misses are the majority, so they carry no counter
                    # ops at all).  Access streams are bursty — hit
                    # runs average ~100 accesses at paper scale — so
                    # probed-hit runs untouched by this window's
                    # evictions are consumed with one C-level
                    # ``dict.update`` each, and only misses (plus the
                    # rare poisoned run) pay the per-item loop.  The
                    # eviction loop is the inlined twin of
                    # ``evict_until_fits`` — this is the kernel's
                    # hottest path by far.
                    flight = gl
                    wn = end - first
                    hc = hb = 0
                    cb0 = i + first
                    hoff = cb0 - wbase  # access index of seq = hoff + seq
                    wm = mask[first:]
                    # Hit runs long enough to bulk; everything between
                    # two bulked runs — miss runs and short hit runs
                    # alike — is one contiguous per-item block, so a
                    # low-hit-rate window degenerates to the plain loop
                    # instead of thousands of tiny slices.
                    pad = np.zeros(wn + 2, dtype=np.int8)
                    pad[1:-1] = wm
                    d = pad[1:] - pad[:-1]
                    rs = flatnonzero(d == 1)
                    re_ = flatnonzero(d == -1)
                    long = flatnonzero(re_ - rs >= MIN_DICT_RUN)
                    blocks = []
                    pos = 0
                    for p in long.tolist():
                        a, b = int(rs[p]), int(re_[p])
                        if pos < a:
                            blocks.append((pos, a, False))
                        blocks.append((a, b, True))
                        pos = b
                    if pos < wn:
                        blocks.append((pos, wn, False))
                    for a, b, bulk in blocks:
                        if bulk and ores_keys_disjoint(seg := gl[a:b]):
                            olast.update(
                                zip(seg, range(wbase + a, wbase + b))
                            )
                            hc += b - a
                            hb += int(csum[cb0 + b] - csum[cb0 + a])
                            if ho is not None:
                                ho[cb0 + a : cb0 + b] = True
                            continue
                        seq = wbase + a
                        for g, r0, s in zip(gl[a:b], ml[a:b], szl[a:b]):
                            if ores_get(g, r0):
                                olast[g] = seq
                                hc += 1
                                hb += s
                                if ho is not None:
                                    ho[hoff + seq] = True
                            elif s > capacity:
                                # Larger than the whole cache: stream
                                # the file without caching (bypass).
                                bp += 1
                                bpb += s
                            else:
                                while used + s > capacity:
                                    while True:
                                        if scan_g:
                                            g2 = scan_g.pop()
                                            s2 = scan_s.pop()
                                            infl = False
                                            break
                                        if log:
                                            cg, cbase = log.popleft()
                                            seqs = cbase + arange(len(cg))
                                            vpos = flatnonzero(
                                                (last[cg] == seqs)
                                                & resident[cg]
                                            )
                                            if not len(vpos):
                                                continue
                                            scan_g = cg[vpos][
                                                ::-1
                                            ].tolist()
                                            scan_s = (cbase + vpos)[
                                                ::-1
                                            ].tolist()
                                            continue
                                        g2 = flight[wcur]
                                        s2 = wbase + wcur
                                        wcur += 1
                                        infl = True
                                        break
                                    l2 = olast_get(g2)
                                    if l2 is None:
                                        if infl:
                                            continue
                                    elif l2 != s2:
                                        continue
                                    if ores_get(g2) is False:
                                        continue
                                    ores[g2] = False
                                    used -= gsizes[g2]
                                ores[g] = True
                                olast[g] = seq
                                used += s
                            seq += 1
                    seq = wbase + wn
                    mc = wn - hc - bp
                    mb = int(csum[j] - csum[cb0]) - hb - bpb
                    garr = items[first:]
                else:
                    # FIFO: hits do not touch; only inserts enter the
                    # log, collected in a side list.  The mask-recording
                    # twin below differs only in the enumerate index and
                    # the hit write — keep the two in sync.
                    wg: list = []
                    wappend = wg.append
                    flight = wg
                    if ho is None:
                        for g, r0, s in zip(gl, ml, szl):
                            if ores_get(g, r0):
                                pass
                            elif s > capacity:
                                bp += 1
                                bpb += s
                            else:
                                if used + s > capacity:
                                    evict_until_fits(s)
                                ores[g] = True
                                olast[g] = seq
                                wappend(g)
                                seq += 1
                                used += s
                                mc += 1
                                mb += s
                    else:
                        cb0 = i + first
                        for k, (g, r0, s) in enumerate(zip(gl, ml, szl)):
                            if ores_get(g, r0):
                                ho[cb0 + k] = True
                            elif s > capacity:
                                bp += 1
                                bpb += s
                            else:
                                if used + s > capacity:
                                    evict_until_fits(s)
                                ores[g] = True
                                olast[g] = seq
                                wappend(g)
                                seq += 1
                                used += s
                                mc += 1
                                mb += s
                    wn = len(wg)
                    if wn:
                        garr = asarray(wg, dtype=np.int64)
                walk_acc = end - first
                hits += walk_acc - mc - bp
                bytes_hit += int(csum[j] - csum[i + first]) - mb - bpb
                fetched += mb + bpb
                bypasses += bp
            else:
                rs = starts[first:]
                bl = (csum[i + ends[first:]] - csum[i + rs]).tolist()
                ll = (ends[first:] - rs).tolist()
                fs = sizes_np[win[rs]].tolist()
                flight = gl
                if ho is None:
                    for g, r0, rb, rl, rf in zip(gl, ml, bl, ll, fs):
                        if ores_get(g, r0):
                            # Whole run hits (the filecule is resident).
                            hits += rl
                            bytes_hit += rb
                            olast[g] = seq
                        else:
                            gsize = gsizes[g]
                            if gsize > capacity:
                                # Every access of the run bypasses:
                                # stream each requested file, cache
                                # nothing.
                                fetched += rb
                                bypasses += rl
                            else:
                                if used + gsize > capacity:
                                    evict_until_fits(gsize)
                                ores[g] = True
                                olast[g] = seq
                                used += gsize
                                # The run's first access misses and
                                # fetches the whole filecule; the rest
                                # of the run hits.
                                fetched += gsize
                                hits += rl - 1
                                bytes_hit += rb - rf
                        seq += 1
                else:
                    # Mask-recording twin: each run carries its absolute
                    # access bounds so hit spans land as slice writes.
                    # Keep the accounting in sync with the loop above.
                    ral = (i + rs).tolist()
                    rzl = (i + ends[first:]).tolist()
                    for g, r0, rb, rl, rf, ra, rz in zip(
                        gl, ml, bl, ll, fs, ral, rzl
                    ):
                        if ores_get(g, r0):
                            hits += rl
                            bytes_hit += rb
                            olast[g] = seq
                            ho[ra:rz] = True
                        else:
                            gsize = gsizes[g]
                            if gsize > capacity:
                                fetched += rb
                                bypasses += rl
                            else:
                                if used + gsize > capacity:
                                    evict_until_fits(gsize)
                                ores[g] = True
                                olast[g] = seq
                                used += gsize
                                fetched += gsize
                                hits += rl - 1
                                bytes_hit += rb - rf
                                # First access of the run misses; the
                                # rest hit from the fresh load.
                                ho[ra + 1 : rz] = True
                        seq += 1
                wn = n_items - first
                garr = items[first:]

            # ------------- flush overlays into numpy state -----------
            if wn:
                # Duplicate indices: numpy keeps the last write — the
                # group's latest touch, exactly what ``last`` means.
                last[garr] = arange(wbase, wbase + wn)
                log.append([garr, wbase])
            if ores:
                no = len(ores)
                okeys = np.fromiter(ores.keys(), dtype=np.int64, count=no)
                ovals = np.fromiter(ores.values(), dtype=bool, count=no)
                resident[okeys] = ovals
            if wn or ores:
                rescan()
            ores.clear()
            olast.clear()
            flight = []
            i = j

        metrics.record_totals(
            requests=n,
            hits=hits,
            bytes_requested=int(csum[n] - csum[0]),
            bytes_hit=bytes_hit,
            bytes_fetched=fetched,
            bypasses=bypasses,
        )
