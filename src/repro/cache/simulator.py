"""Trace replay and capacity sweeps.

:func:`simulate` replays a trace's file requests — each traced job issues
its input files at its start time, in job order — against one policy
instance and returns :class:`CacheMetrics`.  :func:`sweep` runs a grid of
policies × capacities (Figure 10 is a two-policy, seven-capacity sweep).

Both accept an optional :class:`~repro.obs.instrument.Instrumentation`:
observation-only callbacks per access/hit/miss/eviction plus periodic
progress checkpoints, so multi-million-access runs report live hit
rates, evicted bytes and ETA instead of executing as black boxes.  With
``instrumentation=None`` the original tight loop runs — zero overhead —
and the instrumented path is guaranteed (and tested) to produce
identical miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.cache.base import CacheMetrics, ReplacementPolicy
from repro.obs.instrument import Instrumentation
from repro.traces.trace import Trace

#: A factory building a fresh policy instance for a given capacity.
PolicyFactory = Callable[[int], ReplacementPolicy]


def simulate(
    trace: Trace,
    policy_factory: PolicyFactory,
    capacity: int,
    name: str | None = None,
    instrumentation: Instrumentation | None = None,
) -> CacheMetrics:
    """Replay ``trace`` against a fresh policy of the given capacity.

    The request stream is the canonical access order: jobs in
    chronological (id) order, each job's files in ascending file-id order
    at the job's start time.  Every policy sees the identical stream, so
    miss rates are directly comparable.

    ``instrumentation`` hooks observe the replay without affecting it;
    see :mod:`repro.obs.instrument`.
    """
    policy = policy_factory(capacity)
    metrics = CacheMetrics(
        name=name or policy.name, capacity_bytes=int(capacity)
    )
    sizes = trace.file_sizes
    starts = trace.job_starts
    access_jobs = trace.access_jobs
    access_files = trace.access_files
    record = metrics.record
    request = policy.request
    begin_job = policy.begin_job
    ptr = trace.job_access_ptr
    current_job = -1
    if instrumentation is None:
        for i in range(len(access_jobs)):
            j = int(access_jobs[i])
            if j != current_job:
                begin_job(
                    trace.access_files[ptr[j] : ptr[j + 1]], float(starts[j])
                )
                current_job = j
            f = int(access_files[i])
            size = int(sizes[f])
            record(size, request(f, size, float(starts[j])))
        return metrics

    inst = instrumentation
    total = len(access_jobs)
    progress_every = inst.progress_every
    inst.on_run_start(metrics.name, int(capacity), total)
    policy.evict_listener = inst.on_evict
    try:
        for i in range(total):
            j = int(access_jobs[i])
            if j != current_job:
                begin_job(
                    trace.access_files[ptr[j] : ptr[j + 1]], float(starts[j])
                )
                current_job = j
            f = int(access_files[i])
            size = int(sizes[f])
            now = float(starts[j])
            inst.on_access(f, size, now)
            outcome = request(f, size, now)
            record(size, outcome)
            if outcome.hit:
                inst.on_hit(f, size)
            else:
                inst.on_miss(f, size, outcome.bytes_fetched, outcome.bypassed)
            done = i + 1
            if progress_every and done < total and done % progress_every == 0:
                inst.on_progress(done, total, metrics)
        inst.on_progress(total, total, metrics)  # exactly one done == total call
    finally:
        policy.evict_listener = None
    return metrics


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Outcome grid of a policies × capacities sweep."""

    capacities: tuple[int, ...]
    metrics: dict[str, tuple[CacheMetrics, ...]]  # policy name -> per capacity

    def miss_rates(self, policy: str) -> list[float]:
        return [m.miss_rate for m in self.metrics[policy]]

    def byte_miss_rates(self, policy: str) -> list[float]:
        return [m.byte_miss_rate for m in self.metrics[policy]]

    def improvement_factor(
        self, baseline: str, contender: str
    ) -> list[float]:
        """Per-capacity ratio baseline miss rate / contender miss rate.

        The paper's headline is a 4–5× factor of file-LRU over
        filecule-LRU at large caches.  Capacities where the contender has
        a zero miss rate report ``inf``.
        """
        out = []
        for b, c in zip(self.metrics[baseline], self.metrics[contender]):
            out.append(b.miss_rate / c.miss_rate if c.miss_rate > 0 else float("inf"))
        return out


def sweep(
    trace: Trace,
    factories: dict[str, PolicyFactory],
    capacities: Sequence[int],
    instrumentation: Instrumentation | None = None,
) -> SweepResult:
    """Run every (policy, capacity) combination over the same trace.

    A single ``instrumentation`` instance observes every run in turn —
    :meth:`~repro.obs.instrument.Instrumentation.on_run_start` announces
    each (policy, capacity) cell, so a progress reporter labels its
    output per run while a stats collector aggregates the whole grid.
    """
    if not factories:
        raise ValueError("need at least one policy factory")
    caps = tuple(int(c) for c in capacities)
    if not caps:
        raise ValueError("need at least one capacity")
    metrics: dict[str, tuple[CacheMetrics, ...]] = {}
    for name, factory in factories.items():
        metrics[name] = tuple(
            simulate(trace, factory, cap, name=name, instrumentation=instrumentation)
            for cap in caps
        )
    return SweepResult(capacities=caps, metrics=metrics)
