"""Trace replay and capacity sweeps — façade over :mod:`repro.engine`.

Historically this module *was* the replay engine; the implementation now
lives in :mod:`repro.engine` (:mod:`repro.engine.replay` for the
single-run loop, :mod:`repro.engine.sweep` for the grid runner and
:class:`SweepResult`) so the serial path, the process-parallel runner
and the online service share one core.  This module remains the stable
import path (``from repro.cache.simulator import simulate, sweep``) and
re-exports the engine API unchanged.

Policies are selected either by factory callables (legacy) or by
:mod:`repro.registry` spec strings — e.g.::

    from repro.cache import sweep

    result = sweep(
        trace,
        ("file-lru", "filecule-lru"),
        capacities,
        partition=partition,
        jobs=4,
    )

See :mod:`repro.engine` for the replay-loop and parallel-dispatch
contracts, and ``docs/ARCHITECTURE.md`` for the layer map.
"""

from repro.engine.replay import PolicyFactory, simulate
from repro.engine.sweep import SweepResult, resolve_policies, sweep

__all__ = [
    "PolicyFactory",
    "SweepResult",
    "resolve_policies",
    "simulate",
    "sweep",
]
