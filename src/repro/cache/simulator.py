"""Trace replay and capacity sweeps.

:func:`simulate` replays a trace's file requests — each traced job issues
its input files at its start time, in job order — against one policy
instance and returns :class:`CacheMetrics`.  :func:`sweep` runs a grid of
policies × capacities (Figure 10 is a two-policy, seven-capacity sweep);
with ``jobs=N`` the grid fans out over a process pool
(:mod:`repro.parallel`) with the trace shipped zero-copy through shared
memory, and the result is guaranteed identical to the serial path.

Both accept an optional :class:`~repro.obs.instrument.Instrumentation`:
observation-only callbacks per access/hit/miss/eviction plus periodic
progress checkpoints, so multi-million-access runs report live hit
rates, evicted bytes and ETA instead of executing as black boxes.  With
``instrumentation=None`` a tight fast path runs: the trace's columns are
read as plain Python lists (:attr:`~repro.traces.trace.Trace.replay_columns`,
converted once per trace, not per run), per-job values are hoisted out
of the per-access loop, and metrics counters accumulate in locals that
are folded into :class:`CacheMetrics` once at the end.  The instrumented
path updates metrics per access (hooks observe live state) and is
guaranteed (and tested) to produce identical miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.cache.base import CacheMetrics, ReplacementPolicy
from repro.obs.instrument import Instrumentation
from repro.traces.trace import Trace

#: A factory building a fresh policy instance for a given capacity.
PolicyFactory = Callable[[int], ReplacementPolicy]


def simulate(
    trace: Trace,
    policy_factory: PolicyFactory,
    capacity: int,
    name: str | None = None,
    instrumentation: Instrumentation | None = None,
) -> CacheMetrics:
    """Replay ``trace`` against a fresh policy of the given capacity.

    The request stream is the canonical access order: jobs in
    chronological (id) order, each job's files in ascending file-id order
    at the job's start time.  Every policy sees the identical stream, so
    miss rates are directly comparable.

    ``instrumentation`` hooks observe the replay without affecting it;
    see :mod:`repro.obs.instrument`.
    """
    policy = policy_factory(capacity)
    metrics = CacheMetrics(
        name=name or policy.name, capacity_bytes=int(capacity)
    )
    access_files = trace.access_files
    ptr_list, files, sizes, starts = trace.replay_columns
    request = policy.request
    begin_job = policy.begin_job
    if instrumentation is None:
        # Fast path: per-job outer loop (job id and timestamp hoisted out
        # of the access loop), list columns (no numpy scalar boxing) and
        # local counters folded into the metrics once at the end.  Job
        # order and per-job file order are the canonical access order,
        # so the request stream is identical to the instrumented path.
        requests = hits = 0
        bytes_requested = bytes_hit = bytes_fetched = bypasses = 0
        for job in range(trace.n_jobs):
            lo = ptr_list[job]
            hi = ptr_list[job + 1]
            if lo == hi:
                continue
            now = starts[job]
            begin_job(access_files[lo:hi], now)
            for f in files[lo:hi]:
                size = sizes[f]
                outcome = request(f, size, now)
                requests += 1
                bytes_requested += size
                if outcome.hit:
                    hits += 1
                    bytes_hit += size
                else:
                    fetched = outcome.bytes_fetched
                    if fetched:
                        bytes_fetched += fetched
                    if outcome.bypassed:
                        bypasses += 1
        metrics.requests = requests
        metrics.hits = hits
        metrics.bytes_requested = bytes_requested
        metrics.bytes_hit = bytes_hit
        metrics.bytes_fetched = bytes_fetched
        metrics.bypasses = bypasses
        return metrics

    inst = instrumentation
    total = len(files)
    progress_every = inst.progress_every
    inst.on_run_start(metrics.name, int(capacity), total)
    policy.evict_listener = inst.on_evict
    record = metrics.record
    access_jobs = trace.access_jobs
    current_job = -1
    now = 0.0
    try:
        for i in range(total):
            j = int(access_jobs[i])
            if j != current_job:
                now = starts[j]
                begin_job(access_files[ptr_list[j] : ptr_list[j + 1]], now)
                current_job = j
            f = files[i]
            size = sizes[f]
            inst.on_access(f, size, now)
            outcome = request(f, size, now)
            record(size, outcome)
            if outcome.hit:
                inst.on_hit(f, size)
            else:
                inst.on_miss(f, size, outcome.bytes_fetched, outcome.bypassed)
            done = i + 1
            if progress_every and done < total and done % progress_every == 0:
                inst.on_progress(done, total, metrics)
        inst.on_progress(total, total, metrics)  # exactly one done == total call
    finally:
        policy.evict_listener = None
    return metrics


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Outcome grid of a policies × capacities sweep."""

    capacities: tuple[int, ...]
    metrics: dict[str, tuple[CacheMetrics, ...]]  # policy name -> per capacity

    def miss_rates(self, policy: str) -> list[float]:
        return [m.miss_rate for m in self.metrics[policy]]

    def byte_miss_rates(self, policy: str) -> list[float]:
        return [m.byte_miss_rate for m in self.metrics[policy]]

    def improvement_factor(
        self, baseline: str, contender: str
    ) -> list[float]:
        """Per-capacity ratio baseline miss rate / contender miss rate.

        The paper's headline is a 4–5× factor of file-LRU over
        filecule-LRU at large caches.  Capacities where only the
        contender has a zero miss rate report ``inf``; where *both*
        policies have zero miss rate (e.g. an empty or fully-cached
        cell) the factor is undefined and reports ``nan`` so downstream
        tables don't render a spurious ``inf×``.
        """
        out = []
        for b, c in zip(self.metrics[baseline], self.metrics[contender]):
            if c.miss_rate > 0:
                out.append(b.miss_rate / c.miss_rate)
            elif b.miss_rate > 0:
                out.append(float("inf"))
            else:
                out.append(float("nan"))
        return out


def sweep(
    trace: Trace,
    factories: dict[str, PolicyFactory],
    capacities: Sequence[int],
    instrumentation: Instrumentation | None = None,
    jobs: int = 1,
) -> SweepResult:
    """Run every (policy, capacity) combination over the same trace.

    A single ``instrumentation`` instance observes every run in turn —
    :meth:`~repro.obs.instrument.Instrumentation.on_run_start` announces
    each (policy, capacity) cell, so a progress reporter labels its
    output per run while a stats collector aggregates the whole grid.

    ``jobs > 1`` dispatches the grid to
    :class:`repro.parallel.ParallelSweepRunner`: each cell replays the
    identical immutable trace in a worker process (columns shared via
    :mod:`multiprocessing.shared_memory`, reconstructed once per worker)
    and the per-cell metrics are merged into a :class:`SweepResult`
    identical to the serial one.  ``jobs`` is a ceiling — the pool is
    clamped to the cell count and the machine's CPU count (the replay is
    CPU-bound; oversubscribing cores only slows it down).  Per-access hooks cannot cross process
    boundaries, so only ``None``, :class:`~repro.obs.instrument.SimStats`,
    :class:`~repro.obs.instrument.ProgressReporter` (progress checkpoints
    forwarded over a queue) and combinations of those are supported in
    parallel mode.
    """
    if not factories:
        raise ValueError("need at least one policy factory")
    caps = tuple(int(c) for c in capacities)
    if not caps:
        raise ValueError("need at least one capacity")
    if jobs is None:
        jobs = 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs > 1:
        from repro.parallel.runner import parallel_sweep

        return parallel_sweep(
            trace, factories, caps, jobs=jobs, instrumentation=instrumentation
        )
    metrics: dict[str, tuple[CacheMetrics, ...]] = {}
    for name, factory in factories.items():
        metrics[name] = tuple(
            simulate(trace, factory, cap, name=name, instrumentation=instrumentation)
            for cap in caps
        )
    return SweepResult(capacities=caps, metrics=metrics)
