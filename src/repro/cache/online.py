"""Array-backed online cache advisor for the service ingest hot path.

:class:`BatchedFileCache` is a drop-in for :class:`~repro.cache.lru.FileLRU`
(and, with ``touch_on_hit=False``, :class:`~repro.cache.fifo.FileFIFO`)
that keeps residency, stored sizes, and recency in flat numpy arrays
instead of an ``OrderedDict``.  The payoff is :meth:`request_window`:
the service's coalesced ingest path hands it a whole window of deduped
job segments in columnar form and the kernel answers with per-job hit
counts plus aggregate outcome totals — probing residency with one
vector gather and accounting the (dominant) leading all-hit run in bulk,
instead of one ``request`` call per access.

The per-access :meth:`request` stays available and exact, so mixed
traffic — coalesced ingest windows interleaved with single-job ingests —
sees one consistent cache model.  Semantics are bit-identical to the
dict-backed policies, including the subtle bits:

* a hit never updates the stored size (the size charged at insertion
  sticks until eviction, exactly like ``FileLRU``);
* misses larger than the whole cache bypass (streamed uncached);
* eviction order is least-recently-*touched* (LRU) or insertion order
  (FIFO), implemented as a lazy-deletion touch log: stale log entries
  (re-touched or already-evicted files) are skipped by validating each
  candidate's logged sequence number against the live recency array —
  the same idiom :class:`~repro.cache.batch.GroupedReplayKernel` uses
  for offline replay, made incremental.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cache.base import HIT, ReplacementPolicy, RequestOutcome

#: Touch-log entries are flushed into immutable chunks at this size.
_CHUNK = 32768


class BatchedFileCache(ReplacementPolicy):
    """File-granularity LRU/FIFO over flat arrays with a windowed API.

    Parameters
    ----------
    capacity_bytes:
        Modelled cache capacity.
    touch_on_hit:
        ``True`` for LRU semantics (hits refresh recency), ``False`` for
        FIFO (eviction strictly by insertion order).
    """

    def __init__(self, capacity_bytes: int, touch_on_hit: bool = True) -> None:
        super().__init__(capacity_bytes)
        self.name = "file-lru" if touch_on_hit else "file-fifo"
        self.touch_on_hit = touch_on_hit
        n = 1024
        self._resident = np.zeros(n, dtype=bool)
        self._stored = np.zeros(n, dtype=np.int64)
        # No "never touched" sentinel needed: eviction validity always
        # checks residency too, and a resident file has been touched at
        # least once — so zero-fill is safe and keeps growth calloc-cheap.
        self._last = np.zeros(n, dtype=np.int64)
        self._seq = 0
        self._n_resident = 0
        # Lazy-deletion touch log: (ids, base_seq) chunks in seq order;
        # entry k of a chunk was touched at base_seq + k.  _tail is the
        # mutable chunk being appended; _head_pos indexes the next
        # eviction candidate within the oldest chunk.
        self._log: deque = deque()
        self._tail: list[int] = []
        self._tail_base = 0
        self._head_pos = 0
        self._logged = 0  # live-entry upper bound, for compaction

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _grow(self, n: int) -> None:
        size = self._resident.size
        if n <= size:
            return
        size = max(n, 2 * size)
        # np.zeros is calloc-backed: the kernel hands over lazily-zeroed
        # pages, so growing to a multi-million-file catalog costs one
        # small memcpy instead of a full-array fill (np.full here was
        # ~40 ms per site at paper scale, paid per advisor).
        for attr in ("_resident", "_stored", "_last"):
            old = getattr(self, attr)
            new = np.zeros(size, dtype=old.dtype)
            new[: old.size] = old
            setattr(self, attr, new)

    def _push_tail(self, file_id: int) -> None:
        tail = self._tail
        if not tail:
            self._tail_base = self._seq
        tail.append(file_id)
        if len(tail) >= _CHUNK:
            self._log.append((tail, self._tail_base))
            self._tail = []

    def _touch(self, file_id: int) -> None:
        self._last[file_id] = self._seq
        self._push_tail(file_id)
        self._seq += 1
        self._logged += 1

    def _compact(self) -> None:
        """Rebuild the log from live recency when stale entries dominate.

        Reassigns dense sequence numbers in the existing recency order
        (argsort of unique ``_last`` values), which preserves eviction
        order exactly while bounding log memory to O(resident files).
        """
        ids = np.flatnonzero(self._resident)
        order = np.argsort(self._last[ids], kind="stable")
        ids = ids[order]
        self._last[ids] = np.arange(ids.size, dtype=np.int64)
        self._seq = int(ids.size)
        self._log = deque([(ids, 0)]) if ids.size else deque()
        self._tail = []
        self._head_pos = 0
        self._logged = int(ids.size)

    def _evict_until(self, need: int) -> None:
        """Evict in log order until ``need`` bytes fit."""
        resident = self._resident
        stored = self._stored
        last = self._last
        used = self.used_bytes
        capacity = self.capacity_bytes
        listener = self.evict_listener
        log = self._log
        pos = self._head_pos
        while used + need > capacity:
            while not log:
                if not self._tail:
                    raise RuntimeError(
                        f"{self.name}: nothing left to evict "
                        f"(used={used}, need={need})"
                    )
                log.append((self._tail, self._tail_base))
                self._tail = []
            chunk, base = log[0]
            if pos >= len(chunk):
                log.popleft()
                pos = 0
                continue
            f = int(chunk[pos])
            seq = base + pos
            pos += 1
            self._logged -= 1
            # Lazy deletion: only the *latest* touch of a still-resident
            # file is a valid candidate.
            if last[f] != seq or not resident[f]:
                continue
            size = int(stored[f])
            resident[f] = False
            self._n_resident -= 1
            used -= size
            if listener is not None:
                listener(size)
        self._head_pos = pos
        self.used_bytes = used

    # ------------------------------------------------------------------
    # per-access API (bit-identical to FileLRU / FileFIFO)
    # ------------------------------------------------------------------
    def __contains__(self, file_id: int) -> bool:
        f = int(file_id)
        return 0 <= f < self._resident.size and bool(self._resident[f])

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        f = int(file_id)
        if f < self._resident.size and self._resident[f]:
            if self.touch_on_hit:
                self._touch(f)
            return HIT
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        if self.used_bytes + size > self.capacity_bytes:
            self._evict_until(size)
        self._grow(f + 1)
        self._resident[f] = True
        self._stored[f] = size
        self._n_resident += 1
        self._touch(f)
        self.used_bytes += size
        if self._logged > 4 * self._n_resident + _CHUNK:
            self._compact()
        return RequestOutcome(hit=False, bytes_fetched=size)

    # ------------------------------------------------------------------
    # windowed API (the coalesced ingest path)
    # ------------------------------------------------------------------
    def request_window(
        self, flat: np.ndarray, offsets: np.ndarray, sizes: np.ndarray
    ) -> tuple[list[int], tuple[int, int, int, int, int, int]]:
        """Process a window of deduped job segments in access order.

        ``flat``/``offsets`` are the CSR-shaped unique file ids of the
        window's jobs; ``sizes`` the aligned request sizes.  Returns
        ``(per-job hit counts, (requests, hits, bytes_requested,
        bytes_hit, bytes_fetched, bypasses))`` — the exact outcome
        aggregates :meth:`request` called per access would produce.

        The leading run of accesses that are *all* hits (the dominant
        shape once the modelled cache is warm) is accounted in bulk: one
        residency gather finds the first miss, one fancy assignment
        applies the LRU touches.  From the first miss on, accesses are
        walked individually — evictions may change residency mid-window,
        so the scalar path is the only exact one there.
        """
        n_jobs = offsets.size - 1
        total = int(flat.size)
        job_hits = [0] * n_jobs
        if total == 0:
            return job_hits, (0, 0, 0, 0, 0, 0)
        self._grow(int(flat.max()) + 1)
        res = self._resident[flat]
        first_miss = total if bool(res.all()) else int(np.argmin(res))
        if first_miss:
            prefix = flat[:first_miss]
            if self.touch_on_hit:
                base = self._seq
                # Duplicate ids across jobs: later assignment wins, which
                # is exactly the touch order of the sequential walk.
                self._last[prefix] = np.arange(
                    base, base + first_miss, dtype=np.int64
                )
                if self._tail:
                    self._log.append((self._tail, self._tail_base))
                    self._tail = []
                self._log.append((np.array(prefix), base))
                self._seq = base + first_miss
                self._logged += first_miss
        requests = total
        hits = first_miss
        bytes_requested = int(sizes.sum())
        bytes_hit = int(sizes[:first_miss].sum())
        bytes_fetched = 0
        bypasses = 0
        offs = offsets.tolist()
        # Per-job hit credit for the bulk prefix.
        j = 0
        while j < n_jobs and offs[j + 1] <= first_miss:
            job_hits[j] = offs[j + 1] - offs[j]
            j += 1
        if j < n_jobs and first_miss > offs[j]:
            job_hits[j] = first_miss - offs[j]
        if first_miss < total:
            # Scalar walk of the remainder, attributing hits per job.
            # ``_touch``/``_push_tail`` are inlined on local mirrors of
            # the log state (seq, logged, tail, used) — the walk is the
            # advisor hot loop under eviction pressure, and the
            # attribute round-trips per access are its dominant cost.
            # The mirrors are synced to ``self`` around ``_evict_until``
            # (which flushes the tail and decrements ``_logged``) and
            # written back once at the end.
            ids = flat[first_miss:].tolist()
            szs = sizes[first_miss:].tolist()
            resident = self._resident
            stored = self._stored
            last = self._last
            log = self._log
            capacity = self.capacity_bytes
            touch = self.touch_on_hit
            seq = self._seq
            logged = self._logged
            tail = self._tail
            tail_append = tail.append
            used = self.used_bytes
            n_resident = self._n_resident
            k = first_miss
            for f, size in zip(ids, szs):
                while offs[j + 1] <= k:
                    j += 1
                k += 1
                if resident[f]:
                    hits += 1
                    bytes_hit += size
                    job_hits[j] += 1
                    if not touch:
                        continue
                else:
                    bytes_fetched += size
                    if size > capacity:
                        bypasses += 1
                        continue
                    if used + size > capacity:
                        self._seq = seq
                        self._logged = logged
                        self.used_bytes = used
                        self._n_resident = n_resident
                        self._evict_until(size)
                        logged = self._logged
                        used = self.used_bytes
                        n_resident = self._n_resident
                        tail = self._tail
                        tail_append = tail.append
                    resident[f] = True
                    stored[f] = size
                    n_resident += 1
                    used += size
                # inlined _touch(f)
                last[f] = seq
                if not tail:
                    self._tail_base = seq
                tail_append(f)
                seq += 1
                logged += 1
                if len(tail) >= _CHUNK:
                    log.append((tail, self._tail_base))
                    tail = []
                    tail_append = tail.append
                    self._tail = tail
            self._seq = seq
            self._logged = logged
            self._tail = tail
            self.used_bytes = used
            self._n_resident = n_resident
        if self._logged > 4 * self._n_resident + _CHUNK:
            self._compact()
        return job_hits, (
            requests,
            hits,
            bytes_requested,
            bytes_hit,
            bytes_fetched,
            bypasses,
        )


def batched_policy_for(spec) -> "BatchedFileCache | None":
    """A :class:`BatchedFileCache` factory for eligible policy specs.

    Returns a constructor taking ``capacity_bytes`` when ``spec`` (a
    :class:`~repro.registry.spec.BoundSpec`) names a plain ``file-lru``
    or ``file-fifo`` with no parameter overrides — the two policies
    whose semantics the kernel replicates bit-for-bit — else ``None``
    (callers keep the registry-built policy and the per-access path).
    """
    if getattr(spec, "params", ()):
        return None
    name = getattr(spec, "name", None)
    if name == "file-lru":
        return lambda capacity: BatchedFileCache(capacity, touch_on_hit=True)
    if name == "file-fifo":
        return lambda capacity: BatchedFileCache(capacity, touch_on_hit=False)
    return None
