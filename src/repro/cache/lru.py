"""File-granularity LRU — the paper's baseline policy.

"In LRU, to make room for more data, the file with the oldest timestamp
(that is, the least recently used) is evicted" (§4).  FermiLab's
production disk caches used exactly this, which is why the paper picked it.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import ReplacementPolicy, RequestOutcome


class FileLRU(ReplacementPolicy):
    """Least-recently-used eviction at single-file granularity."""

    name = "file-lru"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._entries: OrderedDict[int, int] = OrderedDict()  # file -> size

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        entry = self._entries.get(file_id)
        if entry is not None:
            self._entries.move_to_end(file_id)
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            # Larger than the whole cache: stream without caching.
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + size > self.capacity_bytes:
            _, evicted_size = self._entries.popitem(last=False)
            self._release(evicted_size)
        self._entries[file_id] = size
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)
