"""File-granularity LRU — the paper's baseline policy.

"In LRU, to make room for more data, the file with the oldest timestamp
(that is, the least recently used) is evicted" (§4).  FermiLab's
production disk caches used exactly this, which is why the paper picked it.

``request`` is the replay hot path (one call per access, ~13M accesses at
paper scale), so it avoids per-call allocations: hits return the shared
:data:`~repro.cache.base.HIT` singleton and miss outcomes are memoized
per file — a file's size (and hence its fetch/bypass outcome) never
changes within a run, so the frozen outcome object is reused.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import HIT, ReplacementPolicy, RequestOutcome
from repro.cache.batch import GroupedReplayKernel


class FileLRU(ReplacementPolicy):
    """Least-recently-used eviction at single-file granularity."""

    name = "file-lru"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._entries: OrderedDict[int, int] = OrderedDict()  # file -> size
        self._miss_outcomes: dict[int, RequestOutcome] = {}

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def batch_kernel(self, trace, hit_out=None):
        """Vectorized replay: group = file, LRU recency (see batch.py)."""
        if self._entries or self.used_bytes or self.evict_listener is not None:
            return None
        return GroupedReplayKernel(
            trace,
            capacity=self.capacity_bytes,
            group_sizes=trace.file_size_list,
            touch_on_hit=True,
            hit_out=hit_out,
        )

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        entries = self._entries
        if entries.get(file_id) is not None:
            entries.move_to_end(file_id)
            return HIT
        outcome = self._miss_outcomes.get(file_id)
        if outcome is None or outcome.bytes_fetched != size:
            outcome = RequestOutcome(
                hit=False,
                bytes_fetched=size,
                bypassed=size > self.capacity_bytes,
            )
            self._miss_outcomes[file_id] = outcome
        if outcome.bypassed:
            # Larger than the whole cache: stream without caching.
            return outcome
        # Inlined _release/_charge: a full cache evicts on nearly every
        # miss, so the accounting runs on locals and writes occupancy
        # back once.  The negative-occupancy guard is impossible here
        # (we only subtract sizes we previously charged); the capacity
        # guard is kept verbatim.
        capacity = self.capacity_bytes
        used = self.used_bytes
        if used + size > capacity:
            popitem = entries.popitem
            listener = self.evict_listener
            while used + size > capacity:
                _, evicted_size = popitem(last=False)
                used -= evicted_size
                if listener is not None:
                    listener(evicted_size)
        entries[file_id] = size
        used += size
        if used > capacity:
            raise RuntimeError(
                f"{self.name}: used {used} exceeds capacity "
                f"{capacity} — eviction logic is broken"
            )
        self.used_bytes = used
        return outcome
