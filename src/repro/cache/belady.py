"""Belady's MIN: the clairvoyant replacement reference.

Evicting the resident object whose *next use* is farthest in the future
is optimal for unit-size objects (Belady/Mattson); with variable sizes it
remains the standard clairvoyant reference.  Comparing filecule-LRU
against MIN bounds how much of the remaining miss rate any online policy
could still recover — the strongest context for the paper's Figure 10.

The policies here are *stream-bound*: they are built from a trace's
canonical replay order (each job's files in ascending id at the job's
start, jobs in id order — exactly what :func:`repro.cache.simulate`
replays) and keep an internal position cursor.  Feeding them a different
stream is a usage error and is detected by checking the requested file
against the expected stream entry.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.cache.base import ReplacementPolicy, RequestOutcome
from repro.core.filecule import FileculePartition
from repro.traces.trace import Trace

#: Sentinel next-use position for "never used again".
NEVER = np.iinfo(np.int64).max


def next_use_positions(stream: np.ndarray) -> np.ndarray:
    """For each position i, the next position referencing ``stream[i]``.

    Positions with no later reference get :data:`NEVER`.  One backward
    pass, O(N).
    """
    stream = np.asarray(stream, dtype=np.int64)
    out = np.full(len(stream), NEVER, dtype=np.int64)
    last: dict[int, int] = {}
    for i in range(len(stream) - 1, -1, -1):
        unit = int(stream[i])
        nxt = last.get(unit)
        if nxt is not None:
            out[i] = nxt
        last[unit] = i
    return out


class _StreamBoundMIN(ReplacementPolicy):
    """Shared MIN machinery over a precomputed unit stream."""

    def __init__(
        self,
        capacity_bytes: int,
        unit_stream: np.ndarray,
        unit_sizes_of: np.ndarray,
    ) -> None:
        """``unit_stream[i]`` is the unit referenced by request i;
        ``unit_sizes_of[u]`` the byte size of unit u."""
        super().__init__(capacity_bytes)
        self._stream = np.asarray(unit_stream, dtype=np.int64)
        self._next_use = next_use_positions(self._stream)
        self._unit_sizes = np.asarray(unit_sizes_of, dtype=np.int64)
        self._pos = 0
        self._resident: dict[int, int] = {}  # unit -> size
        self._unit_next: dict[int, int] = {}  # unit -> its next use position
        self._heap: list[tuple[int, int]] = []  # (-next_use, unit)

    def __contains__(self, file_id: int) -> bool:  # pragma: no cover - abstract-ish
        raise NotImplementedError

    def _unit_resident(self, unit: int) -> bool:
        return unit in self._resident

    def _evict_one(self) -> None:
        while self._heap:
            neg_next, unit = heapq.heappop(self._heap)
            if unit in self._resident and self._unit_next.get(unit) == -neg_next:
                self._release(self._resident.pop(unit))
                del self._unit_next[unit]
                return
        raise RuntimeError("belady: occupancy positive but heap empty")

    def _request_unit(self, unit: int, charge_size: int) -> RequestOutcome:
        if self._pos >= len(self._stream):
            raise RuntimeError(
                "belady: more requests than the bound stream contains"
            )
        if int(self._stream[self._pos]) != unit:
            raise RuntimeError(
                f"belady: request stream diverged at position {self._pos} "
                f"(expected unit {int(self._stream[self._pos])}, got {unit})"
            )
        next_use = int(self._next_use[self._pos])
        self._pos += 1

        if unit in self._resident:
            self._unit_next[unit] = next_use
            heapq.heappush(self._heap, (-next_use, unit))
            return RequestOutcome(hit=True)

        size = int(self._unit_sizes[unit])
        if size > self.capacity_bytes:
            return RequestOutcome(
                hit=False, bytes_fetched=charge_size, bypassed=True
            )
        if next_use == NEVER:
            # never used again: stream just the requested bytes without
            # caching (MIN would never keep it over anything useful)
            return RequestOutcome(
                hit=False, bytes_fetched=charge_size, bypassed=True
            )
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_one()
        self._resident[unit] = size
        self._unit_next[unit] = next_use
        heapq.heappush(self._heap, (-next_use, unit))
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)


class BeladyMIN(_StreamBoundMIN):
    """Clairvoyant MIN at file granularity, bound to one trace."""

    name = "belady-min"

    def __init__(self, capacity_bytes: int, trace: Trace) -> None:
        super().__init__(
            capacity_bytes, trace.access_files, trace.file_sizes
        )

    def __contains__(self, file_id: int) -> bool:
        return self._unit_resident(int(file_id))

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        return self._request_unit(int(file_id), size)


class FileculeBeladyMIN(_StreamBoundMIN):
    """Clairvoyant MIN at filecule granularity, bound to one trace.

    Every file request maps to its filecule label, so once a filecule is
    loaded its sibling requests within the same job hit — the same
    optimistic accounting as :class:`~repro.cache.FileculeLRU`.
    """

    name = "filecule-belady-min"

    def __init__(
        self,
        capacity_bytes: int,
        trace: Trace,
        partition: FileculePartition,
    ) -> None:
        labels = partition.labels[trace.access_files]
        if np.any(labels < 0):
            raise ValueError(
                "trace accesses files outside the partition; identify "
                "filecules on the same trace"
            )
        super().__init__(capacity_bytes, labels, partition.sizes_bytes)
        self._labels_by_file = partition.labels

    def __contains__(self, file_id: int) -> bool:
        label = int(self._labels_by_file[file_id])
        return label >= 0 and self._unit_resident(label)

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        label = int(self._labels_by_file[file_id])
        if label < 0:
            raise KeyError(
                f"file {file_id} has no filecule; partition does not match "
                f"the replayed trace"
            )
        return self._request_unit(label, size)
