"""Filecule-aware replacement beyond LRU (§8 future work).

The paper closes with: "We plan to design and carefully investigate the
costs and benefits of filecule-aware cache replacement policies."  These
are the natural candidates: the classic frequency- and cost-aware
policies lifted to filecule granularity.  Loading/eviction is all-or-
nothing per filecule, like :class:`~repro.cache.FileculeLRU`.
"""

from __future__ import annotations

import heapq

from repro.cache.base import ReplacementPolicy, RequestOutcome
from repro.core.filecule import FileculePartition


class _FileculePolicyBase(ReplacementPolicy):
    """Shared machinery: label resolution, whole-filecule load/evict via
    a lazy min-heap over per-filecule priorities."""

    def __init__(self, capacity_bytes: int, partition: FileculePartition) -> None:
        super().__init__(capacity_bytes)
        self._partition = partition
        self._labels = partition.labels
        self._fc_sizes = partition.sizes_bytes
        self._resident: dict[int, int] = {}  # label -> size
        self._priority: dict[int, float] = {}
        self._entry_seq: dict[int, int] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0

    def __contains__(self, file_id: int) -> bool:
        label = int(self._labels[file_id])
        return label >= 0 and label in self._resident

    def _label_of(self, file_id: int) -> int:
        label = int(self._labels[file_id])
        if label < 0:
            raise KeyError(
                f"file {file_id} has no filecule; partition does not match "
                f"the replayed trace"
            )
        return label

    def _push(self, label: int) -> None:
        heapq.heappush(self._heap, (self._priority[label], self._seq, label))
        self._entry_seq[label] = self._seq
        self._seq += 1

    def _evict_one(self) -> None:
        while self._heap:
            priority, seq, label = heapq.heappop(self._heap)
            if (
                label in self._resident
                and self._priority.get(label) == priority
                and self._entry_seq.get(label) == seq
            ):
                self._on_evict(label, priority)
                self._release(self._resident.pop(label))
                del self._priority[label]
                del self._entry_seq[label]
                return
        raise RuntimeError(f"{self.name}: occupancy positive but heap empty")

    # subclass hooks -----------------------------------------------------
    def _fresh_priority(self, label: int) -> float:
        raise NotImplementedError

    def _on_evict(self, label: int, priority: float) -> None:
        """Called when a victim is chosen (GDS inflation hook)."""

    # ---------------------------------------------------------------------
    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        label = self._label_of(file_id)
        if label in self._resident:
            self._priority[label] = self._fresh_priority(label)
            self._push(label)
            return RequestOutcome(hit=True)
        fc_size = int(self._fc_sizes[label])
        if fc_size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + fc_size > self.capacity_bytes:
            self._evict_one()
        self._resident[label] = fc_size
        self._priority[label] = self._fresh_priority(label)
        self._push(label)
        self._charge(fc_size)
        return RequestOutcome(hit=False, bytes_fetched=fc_size)


class FileculeLFU(_FileculePolicyBase):
    """Evict the least-frequently-requested resident filecule.

    Frequency counts accumulate across evictions (perfect LFU), matching
    :class:`~repro.cache.FileLFU` at the coarser granularity.
    """

    name = "filecule-lfu"

    def __init__(self, capacity_bytes: int, partition: FileculePartition) -> None:
        super().__init__(capacity_bytes, partition)
        self._freq: dict[int, int] = {}

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        label = self._label_of(file_id)
        self._freq[label] = self._freq.get(label, 0) + 1
        return super().request(file_id, size, now)

    def _fresh_priority(self, label: int) -> float:
        return float(self._freq.get(label, 0))


class FileculeGDS(_FileculePolicyBase):
    """Greedy-Dual-Size over filecules.

    Credit ``H = L + cost/size`` with the filecule's byte size as the
    denominator; ``cost_mode`` picks the numerator: ``"uniform"`` (one
    miss penalty per filecule — optimizes filecule miss rate) or
    ``"files"`` (one penalty per member file — optimizes the paper's
    per-request miss rate, since a filecule miss costs one miss per
    member request).
    """

    name = "filecule-gds"

    def __init__(
        self,
        capacity_bytes: int,
        partition: FileculePartition,
        cost_mode: str = "files",
    ) -> None:
        super().__init__(capacity_bytes, partition)
        if cost_mode not in ("uniform", "files"):
            raise ValueError(
                f"cost_mode must be 'uniform' or 'files', got {cost_mode!r}"
            )
        self._cost_mode = cost_mode
        self._inflation = 0.0
        self._n_files = partition.files_per_filecule

    def _fresh_priority(self, label: int) -> float:
        if self._cost_mode == "uniform":
            cost = 1.0
        else:
            cost = float(self._n_files[label])
        return self._inflation + cost / max(int(self._fc_sizes[label]), 1)

    def _on_evict(self, label: int, priority: float) -> None:
        self._inflation = priority
