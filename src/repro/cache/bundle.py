"""File-bundle caching in the spirit of Otoo, Rotem & Romosan (§4/§7).

The paper cites Otoo et al.'s observation that popularity-only policies
fail "for environments where multiple files are requested simultaneously"
and describes their remedy: an eviction priority that considers file
popularity, *membership to a bundle* and *the size of the bundle*, where
a bundle is a job's whole input set.  The paper explicitly leaves
"the comparison of this strategy with filecule LRU on the DZero traces"
as future work — this module provides that comparison's subject.

Online formulation (a Greedy-Dual generalization):

* each distinct input set (bundle) is tracked with a request count;
* when a job requests its bundle, every member's credit is refreshed to
  ``L + requests(bundle) / size(bundle)`` — popular, compact bundles get
  sticky members; files of huge or one-shot bundles are cheap victims;
* eviction pops the minimum-credit file, inflating ``L`` as in
  Greedy-Dual-Size, at single-file granularity (no filecule knowledge is
  required — exactly Otoo et al.'s selling point, and the reason the
  paper wanted the head-to-head against filecule-LRU).
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.cache.base import ReplacementPolicy, RequestOutcome


class FileBundleCache(ReplacementPolicy):
    """Bundle-utility eviction at file granularity (Otoo-style)."""

    name = "file-bundle"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._sizes: dict[int, int] = {}
        self._credit: dict[int, float] = {}
        self._entry_seq: dict[int, int] = {}
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        self._inflation = 0.0
        # bundle signature -> (request count, total bytes)
        self._bundles: dict[bytes, list] = {}
        # the utility the current job's members inherit
        self._current_utility = 0.0
        self._bundle_entry: list | None = None

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._sizes

    def begin_job(self, file_ids, now: float) -> None:
        files = np.asarray(file_ids, dtype=np.int64)
        if len(files) == 0:
            self._current_utility = 0.0
            self._bundle_entry = None
            return
        signature = files.tobytes()
        entry = self._bundles.get(signature)
        if entry is None:
            entry = self._bundles[signature] = [0, 0]
        entry[0] += 1
        self._bundle_entry = entry
        # on the bundle's first traversal its byte size accumulates as the
        # member sizes stream past request(); until then utility falls
        # back to per-file density
        self._current_utility = (
            entry[0] / entry[1] if entry[1] > 0 else 0.0
        )

    def _push(self, file_id: int) -> None:
        heapq.heappush(self._heap, (self._credit[file_id], self._seq, file_id))
        self._entry_seq[file_id] = self._seq
        self._seq += 1

    def _evict_one(self) -> None:
        while self._heap:
            credit, seq, file_id = heapq.heappop(self._heap)
            if (
                file_id in self._sizes
                and self._credit.get(file_id) == credit
                and self._entry_seq.get(file_id) == seq
            ):
                self._inflation = credit
                self._release(self._sizes.pop(file_id))
                del self._credit[file_id]
                del self._entry_seq[file_id]
                return
        raise RuntimeError("file-bundle: occupancy positive but heap empty")

    def _fresh_credit(self, size: int) -> float:
        utility = self._current_utility
        if utility <= 0.0:
            # first pass over a new bundle: fall back to per-file density
            utility = 1.0 / max(size, 1)
        return self._inflation + utility

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        # grow the bundle's recorded byte size on first encounter
        entry = self._bundle_entry
        if entry is not None and entry[0] == 1:
            entry[1] += size
        hit = file_id in self._sizes
        if hit:
            self._credit[file_id] = self._fresh_credit(size)
            self._push(file_id)
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_one()
        self._sizes[file_id] = size
        self._credit[file_id] = self._fresh_credit(size)
        self._push(file_id)
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)
