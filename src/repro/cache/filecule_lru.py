"""Filecule-granularity LRU — the paper's proposed policy (§4).

"For filecule LRU, we load the entire filecule of which a requested file
is member and evict the least recently used filecules to make room for
it."  A request for any member therefore hits iff the filecule is
resident; a miss fetches the whole filecule (counted in
``bytes_fetched``), and eviction removes whole filecules in LRU order.

Filecules larger than the cache (the paper's largest is 17 TB against a
1 TB cache) are *partially* serviced: the requested file streams through
without caching — the same bypass rule as the file-granularity policies,
at filecule scope.  This is what compresses the file-vs-filecule gap to a
few percent at 1 TB in Figure 10.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import HIT, ReplacementPolicy, RequestOutcome
from repro.cache.batch import GroupedReplayKernel
from repro.core.filecule import FileculePartition

#: Shared outcome for the ``intra_job_hits=False`` case: the triggering
#: job re-requests a member whose bytes are still in flight — a miss
#: that fetches nothing.
_IN_FLIGHT = RequestOutcome(hit=False, bytes_fetched=0)


class FileculeLRU(ReplacementPolicy):
    """LRU over whole filecules.

    Parameters
    ----------
    capacity_bytes:
        Cache size.
    partition:
        The filecule partition of the trace being replayed.  Requests for
        files outside the partition (label ``-1``) are rejected — that
        means the partition and trace are mismatched.
    intra_job_hits:
        Accounting of member requests issued by the *same job* that
        triggered the filecule load.  ``True`` (default) treats the load
        as instantaneous, so the rest of the job's requests into that
        filecule hit — this is the accounting consistent with the paper's
        Figure 10 (with ``False``, filecule-LRU provably degenerates to
        file-LRU: members of a filecule are always co-requested, so the
        two policies cache identical content; the test suite asserts this
        equivalence).  ``False`` models the loaded bytes as still in
        flight for the triggering job — a conservative lower bound.

        Jobs are distinguished by their request timestamp (each job
        issues its whole input set at its start time, and start times are
        unique in this simulator).
    """

    name = "filecule-lru"

    def __init__(
        self,
        capacity_bytes: int,
        partition: FileculePartition,
        intra_job_hits: bool = True,
    ) -> None:
        super().__init__(capacity_bytes)
        self._partition = partition
        self._labels = partition.labels
        self._sizes = partition.sizes_bytes
        # request() runs once per access; plain-list copies avoid boxing
        # a numpy scalar per lookup (int(labels[f]) / int(sizes[label])).
        self._label_list: list[int] = partition.labels.tolist()
        self._size_list: list[int] = partition.sizes_bytes.tolist()
        self._entries: OrderedDict[int, int] = OrderedDict()  # label -> size
        self._intra_job_hits = intra_job_hits
        self._load_key: dict[int, float] = {}  # label -> loading job's time
        self._miss_outcomes: dict[int, RequestOutcome] = {}  # label -> miss
        self._bypass_outcomes: dict[int, RequestOutcome] = {}  # file -> bypass

    def __contains__(self, file_id: int) -> bool:
        label = int(self._labels[file_id])
        return label >= 0 and label in self._entries

    def cached_filecules(self) -> list[int]:
        """Resident filecule ids, least recently used first."""
        return list(self._entries)

    def batch_kernel(self, trace, hit_out=None):
        """Vectorized replay: group = filecule label, LRU recency.

        Only for the paper's default ``intra_job_hits=True`` accounting
        — with ``False``, outcomes depend on the requesting job's
        timestamp, which the group-residency kernel does not model.
        """
        if (
            not self._intra_job_hits
            or self._entries
            or self.used_bytes
            or self.evict_listener is not None
        ):
            return None
        return GroupedReplayKernel(
            trace,
            capacity=self.capacity_bytes,
            group_sizes=self._size_list,
            labels=self._labels,
            touch_on_hit=True,
            hit_out=hit_out,
        )

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        label = self._label_list[file_id]
        if label < 0:
            raise KeyError(
                f"file {file_id} has no filecule; partition does not match "
                f"the replayed trace"
            )
        entries = self._entries
        if label in entries:
            entries.move_to_end(label)
            if (
                not self._intra_job_hits
                and self._load_key.get(label) == now
            ):
                # same job that triggered the load: bytes were in flight
                return _IN_FLIGHT
            return HIT
        fc_size = self._size_list[label]
        if fc_size > self.capacity_bytes:
            # Whole filecule cannot fit: stream just the requested file.
            outcome = self._bypass_outcomes.get(file_id)
            if outcome is None or outcome.bytes_fetched != size:
                outcome = RequestOutcome(
                    hit=False, bytes_fetched=size, bypassed=True
                )
                self._bypass_outcomes[file_id] = outcome
            return outcome
        while self.used_bytes + fc_size > self.capacity_bytes:
            evicted_label, evicted = entries.popitem(last=False)
            self._release(evicted)
            self._load_key.pop(evicted_label, None)
        entries[label] = fc_size
        self._charge(fc_size)
        if not self._intra_job_hits:
            self._load_key[label] = now
        outcome = self._miss_outcomes.get(label)
        if outcome is None:
            outcome = RequestOutcome(hit=False, bytes_fetched=fc_size)
            self._miss_outcomes[label] = outcome
        return outcome
