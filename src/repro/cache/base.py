"""Replacement-policy interface and metrics accounting.

A policy owns its contents and eviction decisions; the simulator only
feeds it timestamped file requests and aggregates the outcomes into
:class:`CacheMetrics`.  The *miss rate* (fraction of file requests that
miss) is the paper's Figure 10 metric; byte-level counters support the
byte-miss-rate view used by the related file-bundle work (§7).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class RequestOutcome:
    """Result of one file request against a policy.

    ``bytes_fetched`` is what the miss pulled into the cache — for
    group-granularity policies this exceeds the requested file's size
    (the whole filecule/group is loaded).  ``bypassed`` marks objects
    larger than the cache, which are streamed without being cached.
    """

    hit: bool
    bytes_fetched: int = 0
    bypassed: bool = False


#: Shared outcome for plain cache hits.  Frozen dataclass construction
#: costs several hundred ns (three ``object.__setattr__`` calls); hits
#: carry no per-request payload, so every policy returns this singleton
#: instead of allocating.  Policies similarly memoize their miss
#: outcomes, which are per-file (or per-group) constants.
HIT = RequestOutcome(hit=True)


@dataclass(slots=True)
class CacheMetrics:
    """Aggregated outcome of one simulation run."""

    name: str = ""
    capacity_bytes: int = 0
    requests: int = 0
    hits: int = 0
    bytes_requested: int = 0
    bytes_hit: int = 0
    bytes_fetched: int = 0
    bypasses: int = 0

    def record(self, size: int, outcome: RequestOutcome) -> None:
        # Hot path: one call per access.  Hits read exactly one outcome
        # attribute; misses skip the (almost always zero-delta) bypass
        # and fetched updates when they can.  Adding 0 is the identity,
        # so the counters are bit-identical to the naive form.
        self.requests += 1
        self.bytes_requested += size
        if outcome.hit:
            self.hits += 1
            self.bytes_hit += size
            return
        fetched = outcome.bytes_fetched
        if fetched:
            self.bytes_fetched += fetched
        if outcome.bypassed:
            self.bypasses += 1

    def record_totals(
        self,
        requests: int,
        hits: int,
        bytes_requested: int,
        bytes_hit: int,
        bytes_fetched: int,
        bypasses: int,
    ) -> None:
        """Fold pre-aggregated outcome totals in — one call per batch.

        Bit-identical to calling :meth:`record` once per access; lets a
        caller that already walks the accesses (the service's ingest hot
        loop) accumulate locals and pay one method call per job instead
        of one per file.
        """
        self.requests += requests
        self.hits += hits
        self.bytes_requested += bytes_requested
        self.bytes_hit += bytes_hit
        self.bytes_fetched += bytes_fetched
        self.bypasses += bypasses

    @property
    def misses(self) -> int:
        return self.requests - self.hits

    @property
    def miss_rate(self) -> float:
        """Fraction of file requests that missed (paper's Figure 10)."""
        return self.misses / self.requests if self.requests else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate

    @property
    def byte_miss_rate(self) -> float:
        """Fraction of requested bytes that were not served from cache."""
        if self.bytes_requested == 0:
            return 0.0
        return 1.0 - self.bytes_hit / self.bytes_requested

    @property
    def fetch_overhead(self) -> float:
        """Bytes pulled into the cache per missed requested byte.

        1.0 for file-granularity policies; > 1.0 for group-granularity
        policies, quantifying their prefetch cost.
        """
        missed_bytes = self.bytes_requested - self.bytes_hit
        if missed_bytes <= 0:
            return 0.0
        return self.bytes_fetched / missed_bytes

    def as_row(self) -> list:
        return [
            self.name,
            self.capacity_bytes,
            self.requests,
            self.miss_rate,
            self.byte_miss_rate,
            self.fetch_overhead,
        ]


class ReplacementPolicy(ABC):
    """Base class: a fixed-capacity object store with pluggable eviction.

    Subclasses implement :meth:`request`; shared capacity bookkeeping
    lives here.  Policies are single-use — create a fresh instance per
    simulation run.
    """

    #: Human-readable policy name (class default; instances may override).
    name: str = "policy"

    #: Optional observation hook: called with the byte count of every
    #: release (eviction) as it happens.  Set by instrumented simulation
    #: runs (:mod:`repro.obs.instrument`); must never mutate the policy.
    evict_listener = None

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = int(capacity_bytes)
        self.used_bytes = 0

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def _charge(self, size: int) -> None:
        """Account an insertion; callers must have evicted to fit first."""
        self.used_bytes += size
        if self.used_bytes > self.capacity_bytes:
            raise RuntimeError(
                f"{self.name}: used {self.used_bytes} exceeds capacity "
                f"{self.capacity_bytes} — eviction logic is broken"
            )

    def _release(self, size: int) -> None:
        self.used_bytes -= size
        if self.used_bytes < 0:
            raise RuntimeError(f"{self.name}: negative occupancy")
        if self.evict_listener is not None:
            self.evict_listener(size)

    def batch_kernel(self, trace, hit_out=None):
        """Optional vectorized replay kernel for this policy over ``trace``.

        Policies whose request semantics reduce to pure group residency
        (see :mod:`repro.cache.batch`) return a single-use callable
        ``kernel(metrics) -> None`` that replays the *entire* trace and
        folds outcome totals into the metrics, bit-identically to
        calling :meth:`request` once per access.  The default is
        ``None``: no batch implementation, replay per access.

        ``hit_out`` optionally requests the per-access outcome mask: a
        writable boolean array of length ``trace.n_accesses`` in which
        the kernel marks every hit ``True`` (misses and bypasses stay
        ``False``).  The hierarchical replay uses this to derive the
        next tier's demand stream; policies that cannot record it for a
        given configuration must decline (return ``None``).

        Implementations must decline (return ``None``) whenever batch
        replay could diverge from per-access replay for this *instance*
        — e.g. the policy already holds entries (kernels assume a fresh
        cache) or an ``evict_listener`` is attached (kernels do not
        observe individual evictions).
        """
        return None

    def begin_job(self, file_ids, now: float) -> None:
        """Hook: a job is about to request exactly ``file_ids`` at ``now``.

        The simulator announces each job's full input set before replaying
        its per-file requests.  Bundle-aware policies (Otoo et al.'s
        file-bundle caching, learned-group prefetchers) need this; plain
        policies ignore it.
        """

    @abstractmethod
    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        """Serve one file request, updating contents as needed."""

    @abstractmethod
    def __contains__(self, file_id: int) -> bool:
        """Whether the file is currently cached (no LRU side effects)."""
