"""Greedy-Dual-Size and Landlord baselines.

Both are cost-aware generalizations of LRU.  Greedy-Dual-Size (Cao &
Irani) keeps per-object credit ``H = L + cost/size`` where ``L`` is a
global inflation value set to the credit of the last eviction victim;
Landlord (Young [37], the comparison baseline of Otoo et al.'s
file-bundle work cited in §7) is its generalization where hits restore
credit.  With ``cost = size`` Landlord prioritizes by recency-with-byte-
cost, the "modified Landlord" configuration Otoo et al. compared against.

Implementation: a heap with lazy invalidation; the global inflation ``L``
is tracked additively so credits never need rescanning.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.cache.base import ReplacementPolicy, RequestOutcome

CostFn = Callable[[int, int], float]  # (file_id, size) -> cost


def _uniform_cost(file_id: int, size: int) -> float:
    """Miss cost 1 per file: optimizes file miss rate."""
    return 1.0


def _byte_cost(file_id: int, size: int) -> float:
    """Miss cost proportional to size: optimizes byte miss rate."""
    return float(size)


class GreedyDualSize(ReplacementPolicy):
    """Greedy-Dual-Size with pluggable cost model (default: uniform).

    ``cost_fn`` maps (file_id, size) to the penalty of re-fetching the
    file; eviction victimizes the smallest ``L + cost/size``.
    """

    name = "greedy-dual-size"

    def __init__(
        self, capacity_bytes: int, cost_fn: CostFn | None = None
    ) -> None:
        super().__init__(capacity_bytes)
        self._cost_fn = cost_fn or _uniform_cost
        self._credit: dict[int, float] = {}  # file -> absolute credit H
        self._sizes: dict[int, int] = {}
        self._heap: list[tuple[float, int, int]] = []  # (H, seq, file)
        self._seq = 0
        self._entry_seq: dict[int, int] = {}  # file -> latest pushed seq
        self._inflation = 0.0  # L

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._sizes

    def _push(self, file_id: int) -> None:
        heapq.heappush(self._heap, (self._credit[file_id], self._seq, file_id))
        self._entry_seq[file_id] = self._seq
        self._seq += 1

    def _evict_one(self) -> None:
        # Stale entries (an old push superseded by a refresh) are skipped:
        # both the credit and the push sequence must match the latest.  The
        # sequence check also makes equal-credit ties break toward the
        # least recently refreshed file, as in reference GDS.
        while self._heap:
            credit, seq, file_id = heapq.heappop(self._heap)
            if (
                file_id in self._sizes
                and self._credit.get(file_id) == credit
                and self._entry_seq.get(file_id) == seq
            ):
                self._inflation = credit
                self._release(self._sizes.pop(file_id))
                del self._credit[file_id]
                del self._entry_seq[file_id]
                return
        raise RuntimeError("gds: occupancy positive but heap empty")

    def _fresh_credit(self, file_id: int, size: int) -> float:
        return self._inflation + self._cost_fn(file_id, size) / max(size, 1)

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        if file_id in self._sizes:
            self._credit[file_id] = self._fresh_credit(file_id, size)
            self._push(file_id)
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_one()
        self._sizes[file_id] = size
        self._credit[file_id] = self._fresh_credit(file_id, size)
        self._push(file_id)
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)


class Landlord(GreedyDualSize):
    """Landlord with byte costs — the "modified Landlord" of [37]/§7.

    Identical machinery to Greedy-Dual-Size (Landlord *is* the
    generalization); configured with ``cost = size`` so the per-byte rent
    is uniform and eviction reduces to inflated recency over bytes.
    """

    name = "landlord"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes, cost_fn=_byte_cost)
