"""File-granularity FIFO baseline.

Evicts in insertion order regardless of reuse — the classic strawman that
shows how much recency actually buys on this workload.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import ReplacementPolicy, RequestOutcome
from repro.cache.batch import GroupedReplayKernel


class FileFIFO(ReplacementPolicy):
    """First-in-first-out eviction at single-file granularity."""

    name = "file-fifo"

    def __init__(self, capacity_bytes: int) -> None:
        super().__init__(capacity_bytes)
        self._entries: OrderedDict[int, int] = OrderedDict()

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def batch_kernel(self, trace, hit_out=None):
        """Vectorized replay: group = file, insertion order (no touch)."""
        if self._entries or self.used_bytes or self.evict_listener is not None:
            return None
        return GroupedReplayKernel(
            trace,
            capacity=self.capacity_bytes,
            group_sizes=trace.file_size_list,
            touch_on_hit=False,
            hit_out=hit_out,
        )

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        if file_id in self._entries:
            # no reordering: insertion order is eviction order
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        while self.used_bytes + size > self.capacity_bytes:
            _, evicted_size = self._entries.popitem(last=False)
            self._release(evicted_size)
        self._entries[file_id] = size
        self._charge(size)
        return RequestOutcome(hit=False, bytes_fetched=size)
