"""Group-prefetching LRU — the related-work baseline of §7.

Amer et al. / Ganger & Kaashoek (cited in §7) retrieve a file's whole
*group* upon request but keep per-file eviction.  This policy generalizes
them: the grouping is any integer labeling over files (e.g. the
dataset-of-birth blocks from the workload metadata, or a filecule
labeling).  On a miss, every group member is prefetched (as capacity
allows, largest-leftover skipped first); eviction stays file-granularity
LRU, so partially-evicted groups are possible — the instability the paper
contrasts filecules against.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.base import ReplacementPolicy, RequestOutcome


class GroupPrefetchLRU(ReplacementPolicy):
    """File-granularity LRU with whole-group prefetch on miss."""

    name = "group-prefetch-lru"

    def __init__(
        self,
        capacity_bytes: int,
        group_labels: np.ndarray,
        file_sizes: np.ndarray,
        max_prefetch_fraction: float = 0.5,
    ) -> None:
        """``group_labels[file]`` gives the file's group (-1 = ungrouped);
        ``file_sizes[file]`` its size.  A prefetch batch never displaces
        more than ``max_prefetch_fraction`` of the cache."""
        super().__init__(capacity_bytes)
        if not 0 < max_prefetch_fraction <= 1:
            raise ValueError(
                f"max_prefetch_fraction must be in (0, 1], got "
                f"{max_prefetch_fraction}"
            )
        self._labels = np.asarray(group_labels, dtype=np.int64)
        self._file_sizes = np.asarray(file_sizes, dtype=np.int64)
        self._entries: OrderedDict[int, int] = OrderedDict()  # file -> size
        self._prefetch_budget = int(capacity_bytes * max_prefetch_fraction)
        # group -> member file ids (built lazily per requested group)
        self._members_cache: dict[int, np.ndarray] = {}

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def _group_members(self, label: int) -> np.ndarray:
        members = self._members_cache.get(label)
        if members is None:
            members = np.flatnonzero(self._labels == label)
            self._members_cache[label] = members
        return members

    def _insert(self, file_id: int, size: int) -> None:
        while self.used_bytes + size > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._release(evicted)
        self._entries[file_id] = size
        self._charge(size)

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        if file_id in self._entries:
            self._entries.move_to_end(file_id)
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        self._insert(file_id, size)
        fetched = size

        label = int(self._labels[file_id])
        if label >= 0:
            budget = self._prefetch_budget - size
            for member in self._group_members(label):
                member = int(member)
                if member == file_id or member in self._entries:
                    continue
                m_size = int(self._file_sizes[member])
                if m_size > budget:
                    continue
                self._insert(member, m_size)
                fetched += m_size
                budget -= m_size
        return RequestOutcome(hit=False, bytes_fetched=fetched)
