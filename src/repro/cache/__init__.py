"""Trace-driven cache simulation: file vs filecule granularity.

The paper's §4 experiment replays the DZero request stream against a disk
cache of 1–100 TB and compares LRU at file granularity with LRU at
*filecule* granularity (load and evict whole filecules).  This package
implements that simulator plus the related-work baselines discussed in §7
(FIFO, LFU, SIZE, Greedy-Dual-Size, Landlord, and group-prefetching LRU),
all behind one :class:`ReplacementPolicy` interface.

Typical use::

    from repro.cache import FileLRU, FileculeLRU, simulate
    from repro.core import find_filecules
    from repro.util import TB

    partition = find_filecules(trace)
    m_file = simulate(trace, lambda cap: FileLRU(cap), capacity=10 * TB)
    m_cule = simulate(
        trace, lambda cap: FileculeLRU(cap, partition), capacity=10 * TB
    )
    print(m_file.miss_rate, m_cule.miss_rate)
"""

from repro.cache.base import (
    CacheMetrics,
    ReplacementPolicy,
    RequestOutcome,
)
from repro.cache.lru import FileLRU
from repro.cache.fifo import FileFIFO
from repro.cache.size import LargestFirst
from repro.cache.frequency import FileLFU
from repro.cache.gds import GreedyDualSize, Landlord
from repro.cache.arc import AdaptiveReplacementCache
from repro.cache.filecule_lru import FileculeLRU
from repro.cache.filecule_variants import FileculeGDS, FileculeLFU
from repro.cache.bundle import FileBundleCache
from repro.cache.working_set import WorkingSetPrefetchLRU
from repro.cache.prefetch import GroupPrefetchLRU
from repro.cache.belady import BeladyMIN, FileculeBeladyMIN, next_use_positions

__all__ = [
    "CacheMetrics",
    "ReplacementPolicy",
    "RequestOutcome",
    "FileLRU",
    "FileFIFO",
    "LargestFirst",
    "FileLFU",
    "GreedyDualSize",
    "Landlord",
    "AdaptiveReplacementCache",
    "FileculeLRU",
    "FileculeGDS",
    "FileculeLFU",
    "FileBundleCache",
    "WorkingSetPrefetchLRU",
    "GroupPrefetchLRU",
    "BeladyMIN",
    "FileculeBeladyMIN",
    "next_use_positions",
    "simulate",
    "sweep",
    "SweepResult",
]

#: Replay entry points re-exported lazily (PEP 562) from
#: :mod:`repro.cache.simulator`, which fronts :mod:`repro.engine`.  The
#: engine imports :mod:`repro.cache.base` at load time, so an eager
#: import here would be circular whenever ``repro.engine`` (or the
#: registry above it) is imported before this package finishes loading.
_ENGINE_EXPORTS = frozenset(("simulate", "sweep", "SweepResult"))


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        from repro.cache import simulator

        return getattr(simulator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
