"""Learned working-set prefetching (Tait & Duchamp-style, §7).

Tait & Duchamp (cited in §7) prefetch the remainder of a learned
"working tree" once the access sequence identifies it uniquely.  This
policy is the job-granular analogue: it *learns* co-access groups online
— with no filecule oracle — and prefetches them.

Learning rule: the predicted group of a file starts as the first job set
it appears in and is *intersected* with every later job set containing
it.  The prediction therefore shrinks monotonically toward the set of
files that have appeared in **every** job with the target — which is
exactly a superset of the file's true filecule and converges to it as
history accumulates.  (The convergence is the same partition-refinement
argument as :mod:`repro.core.incremental`, computed per file.)

On a miss, the current prediction (minus already-cached members) is
prefetched within a budget; eviction stays file-granularity LRU.  The
interesting comparison is against :class:`~repro.cache.FileculeLRU`,
which gets the converged groups for free from offline identification.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.cache.base import ReplacementPolicy, RequestOutcome


class WorkingSetPrefetchLRU(ReplacementPolicy):
    """File-LRU plus online-learned co-access-group prefetch."""

    name = "working-set-prefetch"

    def __init__(
        self,
        capacity_bytes: int,
        file_sizes: np.ndarray,
        max_prefetch_fraction: float = 0.5,
        max_group_size: int = 4096,
    ) -> None:
        """``file_sizes`` prices prefetched members; a learned group is
        dropped (prediction disabled for that file) if it ever exceeds
        ``max_group_size`` members, bounding learner memory."""
        super().__init__(capacity_bytes)
        if not 0 < max_prefetch_fraction <= 1:
            raise ValueError(
                f"max_prefetch_fraction must be in (0, 1], got "
                f"{max_prefetch_fraction}"
            )
        if max_group_size < 1:
            raise ValueError(f"max_group_size must be >= 1, got {max_group_size}")
        self._file_sizes = np.asarray(file_sizes, dtype=np.int64)
        self._entries: OrderedDict[int, int] = OrderedDict()
        self._groups: dict[int, frozenset[int]] = {}
        self._prefetch_budget = int(capacity_bytes * max_prefetch_fraction)
        self._max_group_size = max_group_size

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def predicted_group(self, file_id: int) -> frozenset[int]:
        """Current learned co-access group of ``file_id`` (may be empty)."""
        return self._groups.get(file_id, frozenset())

    def begin_job(self, file_ids, now: float) -> None:
        job_set = frozenset(int(f) for f in np.asarray(file_ids))
        if not job_set or len(job_set) > self._max_group_size:
            return
        for f in job_set:
            known = self._groups.get(f)
            self._groups[f] = job_set if known is None else (known & job_set)

    def _insert(self, file_id: int, size: int) -> None:
        while self.used_bytes + size > self.capacity_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._release(evicted)
        self._entries[file_id] = size
        self._charge(size)

    def request(self, file_id: int, size: int, now: float) -> RequestOutcome:
        if file_id in self._entries:
            self._entries.move_to_end(file_id)
            return RequestOutcome(hit=True)
        if size > self.capacity_bytes:
            return RequestOutcome(hit=False, bytes_fetched=size, bypassed=True)
        self._insert(file_id, size)
        fetched = size

        budget = self._prefetch_budget - size
        for member in sorted(self._groups.get(file_id, ())):
            if member == file_id or member in self._entries:
                continue
            m_size = int(self._file_sizes[member])
            if m_size > budget:
                continue
            self._insert(member, m_size)
            fetched += m_size
            budget -= m_size
        return RequestOutcome(hit=False, bytes_fetched=fetched)
