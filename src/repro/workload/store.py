"""On-disk trace artifact store: generate once, replay many times.

Paper-scale generation is the expensive part of a paper-scale run —
≈ 115k traced jobs expand into ≈ 13M accesses in tens of seconds, the
grown (10x) tier in minutes — while replaying the resulting columns is
what benchmarks and CI actually want to measure.  This module caches the
generated :class:`~repro.traces.trace.Trace` as a single ``.npz``
artifact keyed by the *content* of the generating
:class:`~repro.workload.config.WorkloadConfig` plus the seed, so repeat
runs (a benchmark re-run, a CI job with an action cache, a second
experiment at the same scale) skip generation entirely.

Keying is structural, not nominal: the key is a SHA-256 over the JSON
form of the full config dataclass, the seed and the artifact format
version.  Renaming a preset does not invalidate its artifact; changing
any calibrated number does.  Artifacts are written atomically
(temp file + :func:`os.replace`) so a crashed or parallel writer never
leaves a torn file, and a corrupt artifact is silently regenerated.

The cache directory defaults to ``~/.cache/repro-traces`` and is
overridable with ``REPRO_TRACE_CACHE`` (CI points this at an
``actions/cache`` path).

Entry point: :func:`cached_trace`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Callable

import numpy as np

from repro.traces.trace import Trace
from repro.workload.config import WorkloadConfig
from repro.workload.generator import generate_trace

#: Bump when the on-disk layout or Trace column semantics change; old
#: artifacts are then ignored (never loaded, eventually overwritten).
FORMAT_VERSION = 1

#: Trace array columns persisted verbatim (names match Trace attributes).
TRACE_ARRAY_COLUMNS = (
    "file_sizes",
    "file_tiers",
    "file_datasets",
    "job_users",
    "job_nodes",
    "job_tiers",
    "job_starts",
    "job_ends",
    "access_jobs",
    "access_files",
    "user_domains",
    "node_sites",
    "node_domains",
    "job_labels",
)


def trace_cache_dir() -> Path:
    """The artifact directory: ``REPRO_TRACE_CACHE`` or the XDG default."""
    raw = os.environ.get("REPRO_TRACE_CACHE", "").strip()
    if raw:
        return Path(raw).expanduser()
    return Path.home() / ".cache" / "repro-traces"


def trace_key(config: WorkloadConfig, seed: int) -> str:
    """Content hash identifying one (config, seed, format) artifact."""
    payload = {
        "format": FORMAT_VERSION,
        "seed": int(seed),
        "config": _config_payload(config),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _config_payload(config: WorkloadConfig) -> dict:
    payload = dataclasses.asdict(config)
    # The preset name is cosmetic; keying on it would split identical
    # workloads into distinct artifacts.
    payload.pop("name", None)
    return payload


def trace_path(
    config: WorkloadConfig, seed: int, cache_dir: Path | None = None
) -> Path:
    """Where the artifact for ``(config, seed)`` lives (may not exist)."""
    base = cache_dir if cache_dir is not None else trace_cache_dir()
    key = trace_key(config, seed)
    return base / f"{config.name}-s{int(seed)}-{key[:16]}.npz"


def save_trace(trace: Trace, path: Path) -> None:
    """Atomically persist ``trace`` as an ``.npz`` artifact at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns = {name: getattr(trace, name) for name in TRACE_ARRAY_COLUMNS}
    columns["site_names"] = np.asarray(trace.site_names, dtype=np.str_)
    columns["domain_names"] = np.asarray(trace.domain_names, dtype=np.str_)
    columns["format_version"] = np.asarray(FORMAT_VERSION, dtype=np.int64)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **columns)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_trace(path: Path) -> Trace:
    """Rebuild a :class:`Trace` from an artifact written by
    :func:`save_trace`.

    The columns were canonical and validated when written, so the
    reconstruction skips both steps (same fast path as the shared-memory
    rebuild in :mod:`repro.parallel.shm`).
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"trace artifact {path} has format {version}, "
                f"expected {FORMAT_VERSION}"
            )
        arrays = {name: data[name] for name in TRACE_ARRAY_COLUMNS}
        site_names = tuple(str(s) for s in data["site_names"])
        domain_names = tuple(str(s) for s in data["domain_names"])
    return Trace(
        **arrays,
        site_names=site_names,
        domain_names=domain_names,
        canonical=True,
        validate=False,
    )


def cached_trace(
    config: WorkloadConfig,
    seed: int = 0,
    *,
    cache_dir: Path | None = None,
    refresh: bool = False,
    on_event: Callable[[str], None] | None = None,
) -> Trace:
    """Return the trace for ``(config, seed)``, generating at most once.

    A valid artifact is loaded as-is; a missing, corrupt or
    format-mismatched one triggers regeneration and an atomic rewrite.
    ``refresh=True`` forces regeneration.  ``on_event`` (if given)
    receives one human-readable line per cache decision — the CLI and
    the benchmark harness forward it to their progress streams.
    """
    say = on_event if on_event is not None else lambda _msg: None
    path = trace_path(config, seed, cache_dir)
    if not refresh and path.is_file():
        try:
            trace = load_trace(path)
        except Exception as exc:
            say(f"trace store: discarding unreadable artifact {path} ({exc})")
        else:
            say(f"trace store: hit {path}")
            return trace
    say(
        f"trace store: generating {config.name!r} seed={seed} "
        f"(~{config.estimated_accesses:,} accesses estimated)"
    )
    trace = generate_trace(config, seed=seed)
    save_trace(trace, path)
    say(f"trace store: wrote {path}")
    return trace
