"""Command-line trace generator: ``python -m repro.workload``.

Generates a calibrated synthetic SAM trace and writes it in an
interchange format, for driving external tools or inspecting workloads::

    python -m repro.workload --scale small --seed 42 --format jsonl \
        --out traces/small42.jsonl
    python -m repro.workload --scale default --format csv --out traces/d7

``--validate`` additionally runs the paper-derived calibration targets
(:mod:`repro.workload.validate`) against the generated trace; when any
target falls outside its tolerance band, a structured JSON error report
goes to stderr and the process exits with code 3, so pipelines can gate
on trace quality.  Calibration targets the ``default`` and ``paper``
scales; the ``tiny``/``small`` presets trade fidelity for speed and are
expected to miss some bands.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

#: Exit code when --validate finds calibration targets out of band.
EXIT_CALIBRATION_FAILED = 3

from repro.traces.io import write_trace_csv, write_trace_jsonl
from repro.traces.stats import summarize
from repro.workload.calibration import (
    default_config,
    paper_config,
    small_config,
    tiny_config,
)
from repro.workload.generator import generate_trace

_SCALES = {
    "tiny": tiny_config,
    "small": small_config,
    "default": default_config,
    "paper": paper_config,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="Generate a calibrated synthetic DZero/SAM trace.",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(_SCALES),
        help="population preset (paper = full DZero scale; default: small)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--format",
        default="jsonl",
        choices=("jsonl", "csv"),
        help="jsonl: one self-contained file; csv: a directory of tables",
    )
    parser.add_argument(
        "--out",
        required=True,
        help="output path (file for jsonl, directory for csv)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help=(
            "check the paper-derived calibration targets; exit 3 with a "
            "JSON error report on stderr if any is out of band"
        ),
    )
    args = parser.parse_args(argv)

    config = _SCALES[args.scale]()
    t0 = time.perf_counter()
    trace = generate_trace(config, seed=args.seed)
    generated = time.perf_counter() - t0
    print(f"generated '{config.name}' (seed {args.seed}) in {generated:.1f}s")
    print(f"  {summarize(trace)}")

    t0 = time.perf_counter()
    if args.format == "jsonl":
        path = write_trace_jsonl(trace, args.out)
    else:
        path = write_trace_csv(trace, args.out)
    print(f"wrote {path} in {time.perf_counter() - t0:.1f}s")

    if args.validate:
        from repro.workload.validate import validate_calibration

        results = validate_calibration(trace)
        failed = [r for r in results if not r.ok]
        print(
            f"calibration: {len(results) - len(failed)}/{len(results)} "
            "targets in band"
        )
        if failed:
            report = {
                "error": "calibration-check-failed",
                "scale": args.scale,
                "seed": args.seed,
                "n_targets": len(results),
                "n_failed": len(failed),
                "failures": [
                    {
                        "target": r.name,
                        "expected": r.expected,
                        "measured": r.measured,
                        "rel_tolerance": r.rel_tolerance,
                        "deviation": r.deviation,
                    }
                    for r in failed
                ],
            }
            print(json.dumps(report, indent=2), file=sys.stderr)
            return EXIT_CALIBRATION_FAILED
    return 0


if __name__ == "__main__":
    sys.exit(main())
