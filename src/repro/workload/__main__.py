"""Command-line trace generator: ``python -m repro.workload``.

Generates a calibrated synthetic SAM trace and writes it in an
interchange format, for driving external tools or inspecting workloads::

    python -m repro.workload --scale small --seed 42 --format jsonl \
        --out traces/small42.jsonl
    python -m repro.workload --scale default --format csv --out traces/d7
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.traces.io import write_trace_csv, write_trace_jsonl
from repro.traces.stats import summarize
from repro.workload.calibration import (
    default_config,
    paper_config,
    small_config,
    tiny_config,
)
from repro.workload.generator import generate_trace

_SCALES = {
    "tiny": tiny_config,
    "small": small_config,
    "default": default_config,
    "paper": paper_config,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description="Generate a calibrated synthetic DZero/SAM trace.",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(_SCALES),
        help="population preset (paper = full DZero scale; default: small)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--format",
        default="jsonl",
        choices=("jsonl", "csv"),
        help="jsonl: one self-contained file; csv: a directory of tables",
    )
    parser.add_argument(
        "--out",
        required=True,
        help="output path (file for jsonl, directory for csv)",
    )
    args = parser.parse_args(argv)

    config = _SCALES[args.scale]()
    t0 = time.perf_counter()
    trace = generate_trace(config, seed=args.seed)
    generated = time.perf_counter() - t0
    print(f"generated '{config.name}' (seed {args.seed}) in {generated:.1f}s")
    print(f"  {summarize(trace)}")

    t0 = time.perf_counter()
    if args.format == "jsonl":
        path = write_trace_jsonl(trace, args.out)
    else:
        path = write_trace_csv(trace, args.out)
    print(f"wrote {path} in {time.perf_counter() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
