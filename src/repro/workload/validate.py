"""Workload calibration validation.

Checks a generated (or real) trace against a set of named statistical
targets — by default the paper's headline numbers — and reports
target vs measured with tolerance verdicts.  Used to keep the generator
honest when its parameters are tuned, and available to users calibrating
custom configurations against their own communities.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.core.filecule import FileculePartition
from repro.core.identify import find_filecules
from repro.traces.trace import Trace

#: A target: (measure function, expected value, relative tolerance).
Measure = Callable[[Trace, FileculePartition], float]


@dataclass(frozen=True, slots=True)
class CalibrationTarget:
    """One named calibration target with a relative tolerance band."""

    name: str
    expected: float
    rel_tolerance: float
    measure: Measure

    def evaluate(
        self, trace: Trace, partition: FileculePartition
    ) -> "CalibrationResult":
        measured = float(self.measure(trace, partition))
        lo = self.expected * (1 - self.rel_tolerance)
        hi = self.expected * (1 + self.rel_tolerance)
        return CalibrationResult(
            name=self.name,
            expected=self.expected,
            measured=measured,
            rel_tolerance=self.rel_tolerance,
            ok=lo <= measured <= hi,
        )


@dataclass(frozen=True, slots=True)
class CalibrationResult:
    """Outcome of one target check."""

    name: str
    expected: float
    measured: float
    rel_tolerance: float
    ok: bool

    @property
    def deviation(self) -> float:
        """Relative deviation of measured from expected."""
        if self.expected == 0:
            return float("inf") if self.measured else 0.0
        return self.measured / self.expected - 1.0


def _mean_files_per_job(trace: Trace, partition: FileculePartition) -> float:
    fpj = trace.files_per_job[trace.files_per_job > 0]
    return float(fpj.mean()) if len(fpj) else 0.0


def _filecule_file_ratio(trace: Trace, partition: FileculePartition) -> float:
    accessed = len(trace.accessed_file_ids)
    return len(partition) / accessed if accessed else 0.0


def _traced_job_fraction(trace: Trace, partition: FileculePartition) -> float:
    if trace.n_jobs == 0:
        return 0.0
    return float((trace.files_per_job > 0).mean())


def _hub_job_share(trace: Trace, partition: FileculePartition) -> float:
    if trace.n_jobs == 0:
        return 0.0
    return float((trace.job_domains == 0).mean())


def _single_user_filecule_fraction(
    trace: Trace, partition: FileculePartition
) -> float:
    if len(partition) == 0:
        return 0.0
    return float((partition.users_per_filecule(trace) == 1).mean())


def _mean_filecules_per_job(trace: Trace, partition: FileculePartition) -> float:
    per_job = partition.filecules_per_job(trace)
    traced = per_job[trace.files_per_job > 0]
    return float(traced.mean()) if len(traced) else 0.0


def paper_targets() -> list[CalibrationTarget]:
    """The paper-derived calibration targets with their tolerance bands.

    Tolerances are deliberately generous for tail-sensitive statistics:
    the point is regression detection, not overfitting to one seed.
    """
    return [
        CalibrationTarget(
            "mean files per job (paper: 108)",
            108.0,
            0.5,
            _mean_files_per_job,
        ),
        CalibrationTarget(
            "filecules / accessed files (Table 2: ~0.10)",
            0.10,
            0.5,
            _filecule_file_ratio,
        ),
        CalibrationTarget(
            "traced job fraction (Table 1: 113830/234792)",
            113_830 / 234_792,
            0.15,
            _traced_job_fraction,
        ),
        CalibrationTarget(
            "hub (.gov) share of jobs (Table 2 skew)",
            0.85,
            0.2,
            _hub_job_share,
        ),
        CalibrationTarget(
            "single-user filecule fraction (Fig 4: ~10%)",
            0.10,
            0.8,
            _single_user_filecule_fraction,
        ),
        CalibrationTarget(
            "mean filecules per job (implied by Figs 1/5)",
            11.0,
            0.7,
            _mean_filecules_per_job,
        ),
    ]


def validate_calibration(
    trace: Trace,
    partition: FileculePartition | None = None,
    targets: list[CalibrationTarget] | None = None,
) -> list[CalibrationResult]:
    """Evaluate every target against ``trace``; returns one result each."""
    if partition is None:
        partition = find_filecules(trace)
    if targets is None:
        targets = paper_targets()
    return [t.evaluate(trace, partition) for t in targets]
