"""The synthetic SAM job-stream generator.

:func:`generate_trace` turns a :class:`~repro.workload.config.WorkloadConfig`
plus a seed into a complete :class:`~repro.traces.Trace`:

1. build the file population and dataset catalog
   (:mod:`repro.workload.datasets`);
2. apportion users to domains (largest-remainder, so small domains keep
   their one user as in Table 2) and draw per-user activity (bounded
   Pareto × per-domain boost) and tier preferences (Dirichlet around the
   global tier mix);
3. draw traced jobs: user → tier → dataset(s), where a user's dataset
   popularity is the tier's flattened-Zipf base weight boosted for
   datasets "homed" in the user's domain (geographic interest
   partitioning, §3.2), plus untraced "other"-tier jobs;
4. place jobs in time (ramped/bursty daily profile × uniform within day)
   and at submission nodes (home-domain nodes with probability
   ``home_bias``, else hub nodes);
5. expand dataset intervals into (job, file) access pairs with one
   vectorized arange-concatenation.

Jobs are sorted by start time before trace construction, so job ids are
chronological — the replay order the cache simulator uses.
"""

from __future__ import annotations

import numpy as np

from repro.traces.records import TIER_OTHER
from repro.traces.trace import Trace
from repro.util.rng import SeedLike, as_generator, spawn_children
from repro.util.timeutil import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.workload.config import WorkloadConfig
from repro.workload.datasets import DatasetCatalog, build_population
from repro.workload.distributions import (
    bounded_lognormal,
    bounded_pareto,
    daily_rate_profile,
    sample_categorical,
)

#: Hub domain index: remote users submit (1 - home_bias) of jobs here.
HUB_DOMAIN = 0


def _apportion(weights: np.ndarray, total: int) -> np.ndarray:
    """Largest-remainder apportionment of ``total`` into integer shares.

    Guarantees every strictly positive weight receives at least one unit
    when ``total`` allows, mirroring Table 2 where even the single-user
    domains appear.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative and not all zero")
    positive = np.flatnonzero(weights > 0)
    shares = np.zeros(len(weights), dtype=np.int64)
    if total >= len(positive):
        shares[positive] = 1
        remaining = total - len(positive)
    else:
        # not enough units for everyone: give to the largest weights
        top = positive[np.argsort(weights[positive])[::-1][:total]]
        shares[top] = 1
        return shares
    quota = weights / weights.sum() * remaining
    floors = np.floor(quota).astype(np.int64)
    shares += floors
    leftover = remaining - int(floors.sum())
    if leftover > 0:
        frac = quota - floors
        order = np.argsort(frac)[::-1]
        shares[order[:leftover]] += 1
    return shares


def _build_nodes(
    config: WorkloadConfig,
) -> tuple[np.ndarray, np.ndarray, list[str], list[str], dict[int, np.ndarray]]:
    """Node/site tables: returns (node_sites, node_domains, site_names,
    domain_names, nodes_by_domain)."""
    node_sites: list[int] = []
    node_domains: list[int] = []
    site_names: list[str] = []
    domain_names: list[str] = []
    nodes_by_domain: dict[int, np.ndarray] = {}
    node_id = 0
    for d_idx, dom in enumerate(config.domains):
        domain_names.append(dom.name)
        first_site = len(site_names)
        site_names.extend(f"{dom.name.lstrip('.')}-site{k}" for k in range(dom.n_sites))
        ids = []
        for k in range(dom.n_nodes):
            node_sites.append(first_site + (k % dom.n_sites))
            node_domains.append(d_idx)
            ids.append(node_id)
            node_id += 1
        nodes_by_domain[d_idx] = np.asarray(ids, dtype=np.int64)
    return (
        np.asarray(node_sites, dtype=np.int32),
        np.asarray(node_domains, dtype=np.int16),
        site_names,
        domain_names,
        nodes_by_domain,
    )


def _expand_accesses(
    job_ids: np.ndarray, dataset_ids: np.ndarray, catalog: DatasetCatalog
) -> tuple[np.ndarray, np.ndarray]:
    """Expand (job, dataset) request pairs into (job, file) access pairs.

    Fully vectorized: each dataset is a contiguous file interval, so the
    expansion is a repeat of interval starts plus a global ramp with
    per-pair resets.
    """
    if len(job_ids) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    lens = catalog.lengths[dataset_ids]
    total = int(lens.sum())
    access_jobs = np.repeat(job_ids, lens)
    reset = np.repeat(np.cumsum(lens) - lens, lens)
    within = np.arange(total, dtype=np.int64) - reset
    access_files = np.repeat(catalog.starts[dataset_ids], lens) + within
    return access_jobs, access_files


def generate_trace(config: WorkloadConfig, seed: SeedLike = 0) -> Trace:
    """Generate a complete synthetic SAM trace for ``config``.

    Deterministic given (config, seed); components draw from independent
    child streams so local config edits do not reshuffle everything.
    """
    master = as_generator(seed)
    (
        rng_pop,
        rng_users,
        rng_jobs,
        rng_time,
        rng_nodes,
        rng_datasets,
    ) = spawn_children(master, 6)

    population, catalog = build_population(config, rng_pop)
    node_sites, node_domains, site_names, domain_names, nodes_by_domain = (
        _build_nodes(config)
    )

    # ------------------------------------------------------------------
    # users: domains, activity, tier preference
    # ------------------------------------------------------------------
    n_users = config.n_users
    user_weights = np.array([d.user_weight for d in config.domains])
    users_per_domain = _apportion(user_weights, n_users)
    user_domains = np.repeat(
        np.arange(len(config.domains), dtype=np.int16), users_per_domain
    )
    boosts = np.array([d.activity_boost for d in config.domains])
    activity = bounded_pareto(
        rng_users, config.user_activity_alpha, 1.0, 1000.0, size=n_users
    )
    activity *= boosts[user_domains]

    tier_mix = np.array([t.job_weight for t in config.tiers], dtype=np.float64)
    tier_mix = tier_mix / tier_mix.sum()
    # Dirichlet around the global mix: users mostly follow the popular
    # tiers but individuals specialize (Table 1's overlapping user sets).
    concentration = 1.2
    user_tier_pref = rng_users.dirichlet(
        tier_mix * len(config.tiers) * concentration + 0.05, size=n_users
    )

    # ------------------------------------------------------------------
    # traced jobs: user -> tier -> dataset(s)
    # ------------------------------------------------------------------
    n_traced = config.n_traced_jobs
    job_users = sample_categorical(rng_jobs, activity, n_traced).astype(np.int32)
    job_tier_idx = np.zeros(n_traced, dtype=np.int64)
    for u in np.unique(job_users):
        idx = np.flatnonzero(job_users == u)
        job_tier_idx[idx] = sample_categorical(
            rng_jobs, user_tier_pref[u], len(idx)
        )

    tier_codes = np.array([t.code for t in config.tiers], dtype=np.int16)
    job_tiers = tier_codes[job_tier_idx]

    # dataset choice per (user, tier) group with geographic locality boost
    job_dataset = np.full(n_traced, -1, dtype=np.int64)
    per_tier_ds: dict[int, np.ndarray] = {
        int(t.code): catalog.datasets_of_tier(t.code) for t in config.tiers
    }
    for u in np.unique(job_users):
        u_mask = job_users == u
        u_dom = int(user_domains[u])
        for t_idx, tier_cfg in enumerate(config.tiers):
            idx = np.flatnonzero(u_mask & (job_tier_idx == t_idx))
            if len(idx) == 0:
                continue
            ds_ids = per_tier_ds[int(tier_cfg.code)]
            if len(ds_ids) == 0:
                continue
            w = catalog.base_weights[ds_ids].copy()
            w[catalog.home_domains[ds_ids] == u_dom] *= config.locality_boost
            picks = sample_categorical(rng_datasets, w, len(idx))
            job_dataset[idx] = ds_ids[picks]

    # optional second dataset (same user, same tier)
    multi = rng_datasets.random(n_traced) < config.multi_dataset_prob
    job_dataset2 = np.full(n_traced, -1, dtype=np.int64)
    for u in np.unique(job_users[multi]):
        u_mask = multi & (job_users == u)
        u_dom = int(user_domains[u])
        for t_idx, tier_cfg in enumerate(config.tiers):
            idx = np.flatnonzero(u_mask & (job_tier_idx == t_idx))
            if len(idx) == 0:
                continue
            ds_ids = per_tier_ds[int(tier_cfg.code)]
            if len(ds_ids) == 0:
                continue
            w = catalog.base_weights[ds_ids].copy()
            w[catalog.home_domains[ds_ids] == u_dom] *= config.locality_boost
            picks = sample_categorical(rng_datasets, w, len(idx))
            job_dataset2[idx] = ds_ids[picks]

    # ------------------------------------------------------------------
    # untraced ("other") jobs
    # ------------------------------------------------------------------
    n_other = config.n_other_jobs
    other_users = sample_categorical(rng_jobs, activity, n_other).astype(np.int32)

    all_users = np.concatenate([job_users, other_users])
    all_tiers = np.concatenate(
        [job_tiers, np.full(n_other, TIER_OTHER, dtype=np.int16)]
    )
    n_jobs = n_traced + n_other

    # ------------------------------------------------------------------
    # submission nodes
    # ------------------------------------------------------------------
    home = user_domains[all_users].astype(np.int64)
    go_home = rng_nodes.random(n_jobs) < config.home_bias
    job_domain = np.where(go_home, home, HUB_DOMAIN)
    all_nodes = np.zeros(n_jobs, dtype=np.int32)
    for d in np.unique(job_domain):
        idx = np.flatnonzero(job_domain == d)
        pool = nodes_by_domain[int(d)]
        all_nodes[idx] = pool[rng_nodes.integers(0, len(pool), size=len(idx))]

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    n_days = max(1, int(round(config.span_days)))
    profile = daily_rate_profile(rng_time, n_days)
    days = sample_categorical(rng_time, profile, n_jobs)
    starts = days * SECONDS_PER_DAY + rng_time.random(n_jobs) * SECONDS_PER_DAY

    durations = np.empty(n_jobs, dtype=np.float64)
    for t_idx, tier_cfg in enumerate(config.tiers):
        idx = np.flatnonzero(all_tiers == tier_cfg.code)
        if len(idx):
            durations[idx] = bounded_lognormal(
                rng_time,
                tier_cfg.duration_hours_mean * SECONDS_PER_HOUR,
                tier_cfg.duration_hours_sigma,
                60.0,
                100 * 24 * SECONDS_PER_HOUR,
                size=len(idx),
            )
    other_idx = np.flatnonzero(all_tiers == TIER_OTHER)
    if len(other_idx):
        durations[other_idx] = bounded_lognormal(
            rng_time,
            config.other_duration_hours_mean * SECONDS_PER_HOUR,
            0.8,
            60.0,
            100 * 24 * SECONDS_PER_HOUR,
            size=len(other_idx),
        )
    ends = starts + durations

    # ------------------------------------------------------------------
    # chronological job order, then access expansion
    # ------------------------------------------------------------------
    order = np.argsort(starts, kind="stable")
    rank = np.empty(n_jobs, dtype=np.int64)
    rank[order] = np.arange(n_jobs)

    traced_ids = rank[:n_traced]  # new ids of the traced jobs
    have_ds = job_dataset >= 0
    aj1, af1 = _expand_accesses(
        traced_ids[have_ds], job_dataset[have_ds], catalog
    )
    have_ds2 = job_dataset2 >= 0
    aj2, af2 = _expand_accesses(
        traced_ids[have_ds2], job_dataset2[have_ds2], catalog
    )

    return Trace(
        file_sizes=population.sizes,
        file_tiers=population.tiers,
        file_datasets=population.datasets_of_birth,
        job_users=all_users[order],
        job_nodes=all_nodes[order],
        job_tiers=all_tiers[order],
        job_starts=starts[order],
        job_ends=ends[order],
        access_jobs=np.concatenate([aj1, aj2]),
        access_files=np.concatenate([af1, af2]),
        user_domains=user_domains,
        node_sites=node_sites,
        node_domains=node_domains,
        site_names=site_names,
        domain_names=domain_names,
    )
