"""Workload generator configuration.

A :class:`WorkloadConfig` fully determines the synthetic trace (together
with a seed): the per-tier file/dataset populations, the per-domain
user/site structure, job counts and the temporal window.  The calibrated
presets live in :mod:`repro.workload.calibration`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.traces.records import tier_code


@dataclass(frozen=True, slots=True)
class TierConfig:
    """Population and job model of one data tier.

    Attributes
    ----------
    name:
        Tier name (must resolve through :func:`repro.traces.tier_code`).
    n_files:
        Files in this tier's catalog.
    n_datasets:
        Dataset definitions (metadata queries) over this tier.  Datasets
        are intervals over the tier's run-ordered file axis; overlapping
        intervals are what give filecules a non-trivial structure.
    file_size_mean, file_size_sigma, file_size_min, file_size_max:
        Lognormal file-size model in bytes.  ``sigma = 0`` produces
        constant-size files (the paper's 1 GB raw tier).
    dataset_len_mean, dataset_len_sigma, dataset_len_max:
        Lognormal model of dataset length in files (min is 1).
    job_weight:
        Relative share of traced jobs that run on this tier.
    duration_hours_mean, duration_hours_sigma:
        Lognormal wall-time model (Table 1's Time/Job column).
    popularity_alpha, popularity_floor:
        Flattened-Zipf dataset popularity (see
        :func:`repro.workload.distributions.flattened_zipf_weights`).
    """

    name: str
    n_files: int
    n_datasets: int
    file_size_mean: float
    file_size_sigma: float
    file_size_min: float
    file_size_max: float
    dataset_len_mean: float
    dataset_len_sigma: float
    dataset_len_max: float
    job_weight: float
    duration_hours_mean: float
    duration_hours_sigma: float = 0.6
    #: Calibrated so the default-scale trace reproduces Figure 9's shape:
    #: ~95% of filecules requested < 50 times, tens requested > 300 times,
    #: while the head stays flatter than a clean Zipf (Figure 8 / §3.2).
    popularity_alpha: float = 1.1
    popularity_floor: float = 0.3

    def __post_init__(self) -> None:
        tier_code(self.name)  # validates the name
        if self.n_files < 0 or self.n_datasets < 0:
            raise ValueError(f"tier {self.name}: negative population")
        if self.n_files and self.n_datasets and self.n_files < 1:
            raise ValueError(f"tier {self.name}: datasets without files")
        if self.job_weight < 0:
            raise ValueError(f"tier {self.name}: negative job weight")
        if self.n_files:
            if not 0 < self.file_size_min <= self.file_size_max:
                raise ValueError(f"tier {self.name}: bad file size bounds")
            if self.file_size_mean <= 0:
                raise ValueError(f"tier {self.name}: bad file size mean")
        if self.n_datasets:
            if self.dataset_len_mean < 1 or self.dataset_len_max < 1:
                raise ValueError(f"tier {self.name}: bad dataset length model")
        if self.duration_hours_mean <= 0:
            raise ValueError(f"tier {self.name}: bad duration mean")

    @property
    def code(self) -> int:
        return tier_code(self.name)


@dataclass(frozen=True, slots=True)
class DomainConfig:
    """User/site structure of one Internet domain (one Table 2 row).

    ``user_weight`` sets how many of the configured users call this domain
    home; activity skew then follows from per-user activity draws plus the
    per-domain ``activity_boost`` (the paper's .gov row dwarfs the rest
    because FermiLab hosts both the most users and the most active ones).
    """

    name: str
    n_sites: int
    n_nodes: int
    user_weight: float
    activity_boost: float = 1.0

    def __post_init__(self) -> None:
        if self.n_sites < 1 or self.n_nodes < self.n_sites:
            raise ValueError(
                f"domain {self.name}: need nodes >= sites >= 1 "
                f"(got sites={self.n_sites}, nodes={self.n_nodes})"
            )
        if self.user_weight < 0 or self.activity_boost <= 0:
            raise ValueError(f"domain {self.name}: bad weights")


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Complete generator configuration.

    Attributes
    ----------
    tiers, domains:
        Population structure (see :class:`TierConfig`,
        :class:`DomainConfig`).  The first domain is the *hub* (FermiLab's
        ``.gov``): remote users submit a fraction of their jobs from hub
        nodes.
    n_users:
        Total user population across domains.
    n_traced_jobs:
        Jobs with file-level traces (the paper's 115,895).
    n_other_jobs:
        Jobs of the "other" tier with application traces only.
    span_days:
        Trace window length (the paper's ≈ 820 days).
    user_activity_alpha:
        Pareto tail exponent of per-user activity.
    home_bias:
        Probability a job is submitted from the user's home domain rather
        than the hub.
    locality_boost:
        Multiplier applied to a dataset's popularity weight for users of
        the dataset's home domain — the geographic interest partitioning
        of §3.2.
    multi_dataset_prob:
        Probability a job requests two datasets instead of one.
    """

    tiers: tuple[TierConfig, ...]
    domains: tuple[DomainConfig, ...]
    n_users: int
    n_traced_jobs: int
    n_other_jobs: int
    span_days: float
    user_activity_alpha: float = 1.2
    home_bias: float = 0.85
    locality_boost: float = 8.0
    multi_dataset_prob: float = 0.12
    #: Mean wall time of untraced ("other" tier) jobs — Table 1's 7.68 h.
    other_duration_hours_mean: float = 7.68
    name: str = field(default="custom")

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ValueError("need at least one tier")
        if not self.domains:
            raise ValueError("need at least one domain")
        if self.n_users < 1:
            raise ValueError("need at least one user")
        if self.n_traced_jobs < 0 or self.n_other_jobs < 0:
            raise ValueError("negative job counts")
        if self.span_days <= 0:
            raise ValueError("span_days must be positive")
        if not 0 <= self.home_bias <= 1:
            raise ValueError("home_bias must be in [0, 1]")
        if not 0 <= self.multi_dataset_prob <= 1:
            raise ValueError("multi_dataset_prob must be in [0, 1]")
        if self.locality_boost < 1:
            raise ValueError("locality_boost must be >= 1")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names: {names}")
        dnames = [d.name for d in self.domains]
        if len(set(dnames)) != len(dnames):
            raise ValueError(f"duplicate domain names: {dnames}")

    @property
    def n_files(self) -> int:
        return sum(t.n_files for t in self.tiers)

    @property
    def n_datasets(self) -> int:
        return sum(t.n_datasets for t in self.tiers)

    @property
    def n_jobs(self) -> int:
        return self.n_traced_jobs + self.n_other_jobs

    @property
    def estimated_accesses(self) -> int:
        """Planning estimate of the generated trace's access count.

        Traced jobs draw one dataset (two with ``multi_dataset_prob``)
        whose length in files follows the tier's lognormal model, then
        duplicates within a job are merged — so the true count lands
        somewhat below this product.  Accurate to roughly ±20% across
        the calibrated presets; meant for dispatch planning (``sweep
        --dry-run``, the trace store), never for assertions.
        """
        weight = sum(t.job_weight for t in self.tiers) or 1.0
        files_per_job = (
            sum(t.job_weight * t.dataset_len_mean for t in self.tiers) / weight
        )
        return int(
            self.n_traced_jobs * files_per_job * (1.0 + self.multi_dataset_prob)
        )

    @property
    def estimated_total_bytes(self) -> int:
        """Planning estimate of the catalog's total bytes (±~10%).

        Sums ``n_files x file_size_mean`` per tier, ignoring the
        lognormal clipping bounds — same caveats as
        :attr:`estimated_accesses`.
        """
        return int(sum(t.n_files * t.file_size_mean for t in self.tiers))

    def scaled(self, factor: float, name: str | None = None) -> "WorkloadConfig":
        """Scale population counts by ``factor``, keeping intensive
        quantities (sizes, durations, files-per-job) unchanged.

        Used to derive laptop-scale presets from the paper-scale
        calibration; every count is kept at least 1 so tiny scales remain
        structurally complete.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")

        def s(n: int) -> int:
            return max(1, int(round(n * factor)))

        tiers = tuple(
            replace(t, n_files=s(t.n_files), n_datasets=s(t.n_datasets))
            for t in self.tiers
        )
        domains = tuple(
            replace(
                d,
                n_sites=max(1, int(round(d.n_sites * math.sqrt(factor)))),
                n_nodes=max(1, int(round(d.n_nodes * math.sqrt(factor)))),
            )
            for d in self.domains
        )
        # keep nodes >= sites after independent rounding
        domains = tuple(
            replace(d, n_nodes=max(d.n_nodes, d.n_sites)) for d in domains
        )
        return replace(
            self,
            tiers=tiers,
            domains=domains,
            n_users=s(self.n_users),
            n_traced_jobs=s(self.n_traced_jobs),
            n_other_jobs=s(self.n_other_jobs),
            name=name or f"{self.name}-x{factor:g}",
        )
