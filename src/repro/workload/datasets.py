"""File population and dataset catalog construction.

In SAM, a *dataset* is the result of a metadata query ("runs 145000–145999
of the thumbnail tier") and jobs run on datasets (paper §2.2).  We model a
tier's files as an axis ordered by run number and a dataset as a
length-L interval on that axis.  Overlapping intervals — different queries
selecting overlapping run ranges — are exactly what produces multi-file
filecules smaller than whole datasets: the filecules of the resulting
trace are the atoms of the interval arrangement, restricted to the
combinations of datasets jobs actually requested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import as_generator, spawn_children
from repro.workload.config import WorkloadConfig
from repro.workload.distributions import (
    bounded_lognormal,
    flattened_zipf_weights,
    sample_categorical,
)


@dataclass(frozen=True, slots=True)
class FilePopulation:
    """The generated file catalog.

    ``tier_ranges`` maps tier code → (first file id, one-past-last); file
    ids are contiguous per tier so dataset intervals are simple ranges.
    """

    sizes: np.ndarray
    tiers: np.ndarray
    datasets_of_birth: np.ndarray
    tier_ranges: dict[int, tuple[int, int]]

    @property
    def n_files(self) -> int:
        return len(self.sizes)

    def total_bytes(self) -> int:
        return int(self.sizes.sum())


@dataclass(frozen=True, slots=True)
class DatasetCatalog:
    """Dataset definitions: per-dataset tier, file interval, popularity.

    Attributes
    ----------
    tier_codes:
        Tier of each dataset.
    starts, lengths:
        Global-file-id interval ``[start, start+length)`` of each dataset.
    base_weights:
        Flattened-Zipf popularity weight of each dataset (normalized per
        tier).
    home_domains:
        Domain whose users favour this dataset (geographic interest
        partitioning, §3.2).
    """

    tier_codes: np.ndarray
    starts: np.ndarray
    lengths: np.ndarray
    base_weights: np.ndarray
    home_domains: np.ndarray

    @property
    def n_datasets(self) -> int:
        return len(self.starts)

    def files_of(self, dataset_id: int) -> np.ndarray:
        """File ids of one dataset (a contiguous range)."""
        a = int(self.starts[dataset_id])
        return np.arange(a, a + int(self.lengths[dataset_id]), dtype=np.int64)

    def datasets_of_tier(self, tier: int) -> np.ndarray:
        """Dataset ids belonging to one tier."""
        return np.flatnonzero(self.tier_codes == tier)

    def total_files(self, dataset_ids: np.ndarray) -> int:
        """Sum of lengths (with multiplicity) of the given datasets."""
        return int(self.lengths[np.asarray(dataset_ids, dtype=np.int64)].sum())


def build_population(
    config: WorkloadConfig, seed=None
) -> tuple[FilePopulation, DatasetCatalog]:
    """Generate the file catalog and dataset definitions for ``config``.

    Deterministic given (config, seed).  Each tier gets an independent RNG
    child so editing one tier's parameters does not change another tier's
    draw (see :func:`repro.util.rng.spawn_children`).
    """
    rng = as_generator(seed)
    tier_rngs = spawn_children(rng, len(config.tiers) + 1)
    domain_rng = tier_rngs[-1]

    sizes_parts: list[np.ndarray] = []
    tiers_parts: list[np.ndarray] = []
    birth_parts: list[np.ndarray] = []
    tier_ranges: dict[int, tuple[int, int]] = {}

    ds_tier: list[np.ndarray] = []
    ds_start: list[np.ndarray] = []
    ds_len: list[np.ndarray] = []
    ds_weight: list[np.ndarray] = []

    offset = 0
    for tier_cfg, trng in zip(config.tiers, tier_rngs):
        code = tier_cfg.code
        n = tier_cfg.n_files
        tier_ranges[code] = (offset, offset + n)

        if tier_cfg.file_size_sigma > 0:
            sizes = bounded_lognormal(
                trng,
                tier_cfg.file_size_mean,
                tier_cfg.file_size_sigma,
                tier_cfg.file_size_min,
                tier_cfg.file_size_max,
                size=n,
            )
        else:
            sizes = np.full(n, tier_cfg.file_size_mean, dtype=np.float64)
        sizes_parts.append(sizes.astype(np.int64))
        tiers_parts.append(np.full(n, code, dtype=np.int16))

        n_ds = tier_cfg.n_datasets if n else 0
        if n_ds:
            raw_len = bounded_lognormal(
                trng,
                tier_cfg.dataset_len_mean,
                tier_cfg.dataset_len_sigma,
                1.0,
                min(tier_cfg.dataset_len_max, n),
                size=n_ds,
            )
            lengths = np.maximum(1, np.rint(raw_len)).astype(np.int64)
            lengths = np.minimum(lengths, n)
            starts = (
                trng.random(n_ds) * (n - lengths + 1)
            ).astype(np.int64) + offset
            weights = flattened_zipf_weights(
                n_ds, tier_cfg.popularity_alpha, tier_cfg.popularity_floor
            )
            ds_tier.append(np.full(n_ds, code, dtype=np.int16))
            ds_start.append(starts)
            ds_len.append(lengths)
            ds_weight.append(weights)

            # "producing dataset" metadata: nearest covering block index
            block = max(1, int(round(tier_cfg.dataset_len_mean)))
            birth_parts.append(
                (np.arange(n, dtype=np.int64) // block).astype(np.int32)
            )
        else:
            birth_parts.append(np.zeros(n, dtype=np.int32))

        offset += n

    tier_codes = (
        np.concatenate(ds_tier) if ds_tier else np.zeros(0, dtype=np.int16)
    )
    n_total_ds = len(tier_codes)
    domain_weights = np.array(
        [d.user_weight for d in config.domains], dtype=np.float64
    )
    home_domains = (
        sample_categorical(domain_rng, domain_weights, n_total_ds).astype(np.int16)
        if n_total_ds
        else np.zeros(0, dtype=np.int16)
    )

    population = FilePopulation(
        sizes=np.concatenate(sizes_parts) if sizes_parts else np.zeros(0, np.int64),
        tiers=np.concatenate(tiers_parts) if tiers_parts else np.zeros(0, np.int16),
        datasets_of_birth=(
            np.concatenate(birth_parts) if birth_parts else np.zeros(0, np.int32)
        ),
        tier_ranges=tier_ranges,
    )
    catalog = DatasetCatalog(
        tier_codes=tier_codes,
        starts=np.concatenate(ds_start) if ds_start else np.zeros(0, np.int64),
        lengths=np.concatenate(ds_len) if ds_len else np.zeros(0, np.int64),
        base_weights=(
            np.concatenate(ds_weight) if ds_weight else np.zeros(0, np.float64)
        ),
        home_domains=home_domains,
    )
    return population, catalog
