"""Paper-calibrated generator presets.

``paper_config()`` encodes the DZero numbers from the paper:

* Table 1 — per-tier user/job/file counts, mean input per job and mean
  wall time per job;
* Table 2 — per-domain sites/nodes/users and the extreme activity skew;
* §1/§2 — 27-month window, ~108 files per job on average, raw events of
  250 KB packed into ~1 GB raw files.

Mean file sizes per tier are not printed in the paper; they are solved
from Table 1 as (input per job) / (files per job per tier), with the
files-per-job split chosen so the overall mean lands near the reported
108.  These derived constants are documented inline.

Running paper scale end-to-end (≈ 114k traced jobs, ≈ 1M files, ≈ 13M
accesses) takes minutes and a few GB of RAM; the scaled presets below are
what the tests and benchmarks use by default.
"""

from __future__ import annotations

from functools import lru_cache

from repro.util.units import GB, MB
from repro.workload.config import DomainConfig, TierConfig, WorkloadConfig

#: The paper's trace window: January 2003 – May 2005.
PAPER_SPAN_DAYS: float = 820.0

#: Traced job counts per tier, Table 1.
_JOBS_RECONSTRUCTED = 17_898
_JOBS_ROOTTUPLE = 1_307
_JOBS_THUMBNAIL = 94_625
_JOBS_OTHER = 120_962

#: Dataset counts and the length-distribution tail (sigma = 1.6) are the
#: two structural calibration knobs: together they set the filecule/file
#: ratio (Table 2: ~0.10), the request-weighted files-per-filecule that
#: bounds Figure 10's large-cache factor (paper: 4-5x), and a heavy
#: filecule-size tail whose largest member scales to the paper's 17 TB.
#: Derived per-tier mean files per job (see module docstring): chosen so
#: 36 GB / 60 files ≈ 620 MB reconstructed files, 83 GB / 80 ≈ 1.0 GB
#: root-tuples, 54 GB / 120 ≈ 450 MB thumbnails, and the traced-job mean
#: is (17898·60 + 1307·80 + 94625·120) / 113830 ≈ 110 ≈ the paper's 108.
_FILES_PER_JOB = {"reconstructed": 60.0, "root-tuple": 80.0, "thumbnail": 120.0}


@lru_cache(maxsize=None)
def paper_config() -> WorkloadConfig:
    """Full-scale configuration calibrated to the paper's Tables 1–2."""
    tiers = (
        TierConfig(
            name="reconstructed",
            n_files=515_677,
            n_datasets=30_000,
            # 36,371 MB/job over ~60 files/job ⇒ ~620 MB mean file
            file_size_mean=620 * MB,
            file_size_sigma=0.45,
            file_size_min=32 * MB,
            file_size_max=2 * GB,
            dataset_len_mean=_FILES_PER_JOB["reconstructed"],
            dataset_len_sigma=1.6,
            dataset_len_max=20_000,
            job_weight=_JOBS_RECONSTRUCTED,
            duration_hours_mean=11.01,
        ),
        TierConfig(
            name="root-tuple",
            n_files=60_719,
            n_datasets=3_500,
            # 83,041 MB/job over ~80 files/job ⇒ ~1.0 GB mean file
            file_size_mean=1.0 * GB,
            file_size_sigma=0.35,
            file_size_min=64 * MB,
            file_size_max=4 * GB,
            dataset_len_mean=_FILES_PER_JOB["root-tuple"],
            dataset_len_sigma=1.6,
            dataset_len_max=10_000,
            job_weight=_JOBS_ROOTTUPLE,
            duration_hours_mean=13.68,
        ),
        TierConfig(
            name="thumbnail",
            n_files=428_610,
            n_datasets=100_000,
            # 53,619 MB/job over ~120 files/job ⇒ ~450 MB mean file
            file_size_mean=450 * MB,
            file_size_sigma=0.5,
            file_size_min=16 * MB,
            file_size_max=2 * GB,
            dataset_len_mean=_FILES_PER_JOB["thumbnail"],
            dataset_len_sigma=1.6,
            dataset_len_max=30_000,
            job_weight=_JOBS_THUMBNAIL,
            duration_hours_mean=4.89,
        ),
    )
    # Table 2: domain rows (sites, nodes, users).  User weights follow the
    # paper's per-domain user counts; .gov's activity boost reproduces the
    # three-orders-of-magnitude job skew of the Jobs column.
    domains = (
        DomainConfig(".gov", n_sites=1, n_nodes=12, user_weight=466, activity_boost=6.0),
        DomainConfig(".de", n_sites=4, n_nodes=5, user_weight=23, activity_boost=2.0),
        DomainConfig(".uk", n_sites=4, n_nodes=8, user_weight=21, activity_boost=1.5),
        DomainConfig(".edu", n_sites=12, n_nodes=18, user_weight=32),
        DomainConfig(".cz", n_sites=1, n_nodes=1, user_weight=1, activity_boost=2.0),
        DomainConfig(".ca", n_sites=2, n_nodes=5, user_weight=4),
        DomainConfig(".fr", n_sites=1, n_nodes=2, user_weight=11),
        DomainConfig(".nl", n_sites=2, n_nodes=3, user_weight=8),
        DomainConfig(".mx", n_sites=1, n_nodes=1, user_weight=1),
        DomainConfig(".br", n_sites=2, n_nodes=2, user_weight=2),
        DomainConfig(".cn", n_sites=1, n_nodes=1, user_weight=2),
        DomainConfig(".in", n_sites=1, n_nodes=1, user_weight=2),
    )
    return WorkloadConfig(
        tiers=tiers,
        domains=domains,
        n_users=561,
        n_traced_jobs=_JOBS_RECONSTRUCTED + _JOBS_ROOTTUPLE + _JOBS_THUMBNAIL,
        n_other_jobs=_JOBS_OTHER,
        span_days=PAPER_SPAN_DAYS,
        name="paper",
    )


@lru_cache(maxsize=None)
def grown_config() -> WorkloadConfig:
    """Stress preset: the paper workload grown 10x.

    ≈ 1.1M traced jobs over ≈ 10M files, ≈ 130M accesses — the
    forward-looking tier for scheduler-scale stress runs (the paper's
    DZero numbers kept growing after the trace window closed).  Only the
    benchmark harness and the trace store touch this; always go through
    :func:`repro.workload.store.cached_trace` so the generation cost is
    paid once per machine.
    """
    return paper_config().scaled(10, name="grown")


@lru_cache(maxsize=None)
def default_config() -> WorkloadConfig:
    """The benchmark-scale preset: paper structure at 5% population.

    ≈ 5.7k traced jobs, ≈ 50k files, ≈ 650k accesses — identification,
    cache sweeps and transfer analyses all run in seconds on a laptop
    while preserving every qualitative result.
    """
    return paper_config().scaled(0.05, name="default")


@lru_cache(maxsize=None)
def small_config() -> WorkloadConfig:
    """Integration-test preset: ≈ 600 traced jobs, ≈ 5k files."""
    return paper_config().scaled(0.005, name="small")


@lru_cache(maxsize=None)
def tiny_config() -> WorkloadConfig:
    """Unit-test preset: ≈ 120 traced jobs, ≈ 1k files; runs in ~0.1 s."""
    return paper_config().scaled(0.001, name="tiny")
