"""Seeded samplers used by the workload generator.

All samplers take an explicit :class:`numpy.random.Generator` (see
:mod:`repro.util.rng`) and are fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import as_generator


def bounded_pareto(
    rng: np.random.Generator | int | None,
    alpha: float,
    lo: float,
    hi: float,
    size: int | tuple[int, ...] = 1,
) -> np.ndarray:
    """Draw from a Pareto distribution truncated to ``[lo, hi]``.

    Heavy-tailed with tail exponent ``alpha``; used for user activity,
    dataset lengths and job fan-out — quantities where a few instances
    dominate (§3.1's "other rules govern the sizes").

    Uses inverse-CDF sampling of the bounded Pareto:
    ``F^{-1}(u) = (lo^-a - u (lo^-a - hi^-a))^{-1/a}``.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if not 0 < lo <= hi:
        raise ValueError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
    rng = as_generator(rng)
    u = rng.random(size)
    la, ha = lo**-alpha, hi**-alpha
    return (la - u * (la - ha)) ** (-1.0 / alpha)


def bounded_lognormal(
    rng: np.random.Generator | int | None,
    mean: float,
    sigma: float,
    lo: float,
    hi: float,
    size: int | tuple[int, ...] = 1,
) -> np.ndarray:
    """Lognormal with the given *linear-space* mean, clipped to ``[lo, hi]``.

    ``sigma`` is the log-space standard deviation; ``mu`` is solved from
    the target mean (``mu = ln(mean) - sigma^2/2``).  Clipping (rather
    than rejection) keeps the draw count deterministic per call, which
    preserves stream reproducibility when parameters change.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if not 0 < lo <= hi:
        raise ValueError(f"need 0 < lo <= hi, got lo={lo}, hi={hi}")
    rng = as_generator(rng)
    mu = np.log(mean) - sigma * sigma / 2.0
    return np.clip(rng.lognormal(mu, sigma, size), lo, hi)


def flattened_zipf_weights(
    n: int, alpha: float, uniform_floor: float = 0.0, shift: float = 1.0
) -> np.ndarray:
    """Popularity weights ``w_i ∝ (i + shift)^-alpha + floor·mean``.

    ``alpha`` is the Zipf exponent; ``uniform_floor`` mixes in a uniform
    component that *flattens* the head of the distribution.  The paper
    (§3.2) observes DZero popularity is *not* Zipf — scientists re-request
    the same data and interest is partitioned geographically — so the
    generator deliberately uses a flattened-Zipf rather than a pure Zipf.
    Weights are returned normalized to sum 1.
    """
    if n <= 0:
        raise ValueError(f"need n > 0, got {n}")
    if alpha < 0 or uniform_floor < 0:
        raise ValueError("alpha and uniform_floor must be non-negative")
    ranks = np.arange(n, dtype=np.float64)
    w = (ranks + shift) ** -alpha
    w = w + uniform_floor * w.mean()
    return w / w.sum()


def sample_categorical(
    rng: np.random.Generator | int | None,
    weights: np.ndarray,
    size: int,
) -> np.ndarray:
    """Draw ``size`` indices with the given (unnormalized) weights.

    Implemented by inverse-CDF over the cumulative weights — one
    ``searchsorted`` per call rather than ``rng.choice``'s per-draw setup,
    which matters when the generator draws millions of dataset picks.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or len(weights) == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative and not all zero")
    rng = as_generator(rng)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    u = rng.random(size)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)


def daily_rate_profile(
    rng: np.random.Generator | int | None,
    n_days: int,
    ramp: float = 1.5,
    weekly_dip: float = 0.35,
    burst_prob: float = 0.05,
    burst_scale: float = 3.0,
    noise_sigma: float = 0.35,
) -> np.ndarray:
    """Relative job-arrival rate per day over an ``n_days`` window.

    Models the qualitative shape of Figure 2: overall activity ramps up as
    the experiment matures (``ramp`` = end/start activity ratio), weekends
    dip by ``weekly_dip``, occasional reprocessing campaigns produce
    multi-day bursts, and day-to-day lognormal noise roughens everything.
    Returned weights are normalized to sum 1 (use as a multinomial over
    days).
    """
    if n_days <= 0:
        raise ValueError(f"need n_days > 0, got {n_days}")
    if ramp <= 0:
        raise ValueError(f"ramp must be positive, got {ramp}")
    rng = as_generator(rng)
    days = np.arange(n_days, dtype=np.float64)
    base = 1.0 + (ramp - 1.0) * days / max(n_days - 1, 1)
    weekday = days.astype(np.int64) % 7
    weekly = np.where(weekday >= 5, 1.0 - weekly_dip, 1.0)
    bursts = np.ones(n_days)
    burst_starts = np.flatnonzero(rng.random(n_days) < burst_prob)
    for start in burst_starts:
        length = int(rng.integers(2, 8))
        bursts[start : start + length] *= burst_scale
    noise = rng.lognormal(0.0, noise_sigma, n_days)
    rate = base * weekly * bursts * noise
    return rate / rate.sum()
