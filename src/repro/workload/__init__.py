"""Calibrated synthetic DZero/SAM workload generator.

The paper's traces (SAM history DB, Jan 2003 – May 2005) are proprietary.
This package generates synthetic traces with the same schema and the same
structural properties that drive every experiment (DESIGN.md §2):

* jobs request whole *datasets* — overlapping groups of files — which is
  what makes filecules exist and gives the heavy-tailed files-per-job
  distribution of Figure 1;
* per-tier file populations with domain-specific size rules (raw ≈ 1 GB
  fixed; others heavy-tailed) — Figure 3 and Table 1;
* a user/site/domain hierarchy with the extreme activity skew of Table 2;
* flattened (non-Zipf) dataset popularity with geographic interest
  partitioning — Figure 8 / §3.2;
* bursty, multi-month temporal activity — Figure 2.

Entry points: :func:`generate_trace` plus the presets in
:mod:`repro.workload.calibration`.
"""

from repro.workload.distributions import (
    bounded_pareto,
    bounded_lognormal,
    flattened_zipf_weights,
    sample_categorical,
    daily_rate_profile,
)
from repro.workload.config import (
    TierConfig,
    DomainConfig,
    WorkloadConfig,
)
from repro.workload.calibration import (
    paper_config,
    grown_config,
    default_config,
    small_config,
    tiny_config,
)
from repro.workload.datasets import FilePopulation, DatasetCatalog, build_population
from repro.workload.generator import generate_trace
from repro.workload.store import (
    cached_trace,
    load_trace,
    save_trace,
    trace_cache_dir,
    trace_key,
    trace_path,
)
from repro.workload.validate import (
    CalibrationResult,
    CalibrationTarget,
    paper_targets,
    validate_calibration,
)

__all__ = [
    "bounded_pareto",
    "bounded_lognormal",
    "flattened_zipf_weights",
    "sample_categorical",
    "daily_rate_profile",
    "TierConfig",
    "DomainConfig",
    "WorkloadConfig",
    "paper_config",
    "grown_config",
    "default_config",
    "small_config",
    "tiny_config",
    "cached_trace",
    "load_trace",
    "save_trace",
    "trace_cache_dir",
    "trace_key",
    "trace_path",
    "FilePopulation",
    "DatasetCatalog",
    "build_population",
    "generate_trace",
    "CalibrationResult",
    "CalibrationTarget",
    "paper_targets",
    "validate_calibration",
]
