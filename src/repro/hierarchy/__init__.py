"""Tiered cache hierarchies: topology model, replay, metrics, sweeps.

The paper evaluates single caches; the deployments its filecule idea
targets are *stacks* — a site cache over a regional cache over the
origin (the ESnet XRootD topology in the related work).  This package
is the declarative model of that stack and the entry points for
replaying it:

* :class:`HierarchySpec` / :func:`parse_hierarchy` — the tier topology
  and its canonical wire format
  (``site:lru@10%+regional:filecule-lru@5%+origin``);
* :func:`~repro.engine.simulate_hierarchy` (re-exported here) — the
  miss-through replay core, which collapses bit-identically to the
  flat :func:`~repro.engine.simulate` for single-tier hierarchies;
* :func:`fold_hierarchy_metrics` — per-tier byte hit rate, origin
  offload, and inter-tier link traffic as shared
  :class:`~repro.obs.metrics.MetricsRegistry` counters;
* :func:`hierarchy_sweep` — many hierarchies over one shared-memory
  trace, with ``jobs=N`` fan-out.

See ``docs/HIERARCHY.md`` for the model, the wire grammar, and the
Figure-10-at-hierarchy-scale results.
"""

from repro.engine.hierarchy import (
    HierarchyResult,
    TierReplay,
    simulate_hierarchy,
)
from repro.hierarchy.metrics import (
    estimate_transfer_seconds,
    fold_hierarchy_metrics,
)
from repro.hierarchy.spec import (
    HierarchySpec,
    HierarchySpecError,
    TierCapacity,
    TierSpec,
    parse_hierarchy,
)
from repro.hierarchy.sweep import hierarchy_sweep

__all__ = [
    "HierarchyResult",
    "HierarchySpec",
    "HierarchySpecError",
    "TierCapacity",
    "TierReplay",
    "TierSpec",
    "estimate_transfer_seconds",
    "fold_hierarchy_metrics",
    "hierarchy_sweep",
    "parse_hierarchy",
    "simulate_hierarchy",
]
