"""Hierarchy sweeps: replay one trace through many hierarchies.

The hierarchy-scale Figure 10 question — does filecule granularity
still beat file granularity when the cache is a *stack* of tiers? —
is a grid of independent hierarchy replays over one immutable trace,
the same embarrassing parallelism as the flat sweep.
:func:`hierarchy_sweep` fans it out through the generic
:func:`repro.parallel.map_trace_cells` machinery: the trace travels
zero-copy through shared memory, each cell ships as its canonical wire
string (plain picklable data, spawn-safe), and grids below the
measured parallel crossover run on the serial loop with identical
results.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.hierarchy import HierarchyResult, simulate_hierarchy
from repro.hierarchy.spec import HierarchySpec, parse_hierarchy
from repro.parallel.cells import map_trace_cells
from repro.traces.trace import Trace

__all__ = ["hierarchy_sweep"]


def _hierarchy_cell(trace: Trace, resources, payload: str) -> HierarchyResult:
    """One sweep cell: replay the shared trace through one hierarchy.

    Module-level so it dispatches by reference under any start method;
    ``payload`` is the hierarchy's canonical wire string and
    ``resources`` the (partition, batch, total_bytes) shared by every
    cell.
    """
    partition, batch, total_bytes = resources
    return simulate_hierarchy(
        trace,
        payload,
        partition=partition,
        batch=batch,
        total_bytes=total_bytes,
    )


def hierarchy_sweep(
    trace: Trace,
    hierarchies: Iterable[HierarchySpec | str],
    *,
    jobs: int = 1,
    partition=None,
    batch: bool | None = None,
    total_bytes: int | None = None,
) -> dict[str, HierarchyResult]:
    """Replay ``trace`` through each hierarchy; keyed by canonical string.

    Results are identical to calling
    :func:`~repro.engine.simulate_hierarchy` in a loop (the equivalence
    tests assert it); ``jobs`` is a worker ceiling with the usual
    :func:`~repro.parallel.plan_sweep` auto-serial semantics.  Note a
    hierarchy cell replays the trace once *per tier*, so the crossover
    estimate (based on one trace length per cell) is conservative.
    """
    specs = [parse_hierarchy(h) for h in hierarchies]
    keys = [str(spec) for spec in specs]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate hierarchies in sweep: {dupes}")
    if not keys:
        return {}
    if total_bytes is None:
        # Resolve once so fractional capacities agree across cells and
        # workers never each recompute the reduction.
        total_bytes = trace.total_bytes()
    results = map_trace_cells(
        trace,
        _hierarchy_cell,
        keys,
        jobs=jobs,
        resources=(partition, batch, total_bytes),
    )
    return dict(zip(keys, results))
