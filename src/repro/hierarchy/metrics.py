"""Per-tier hierarchy metrics: registry counters and link pricing.

:func:`fold_hierarchy_metrics` turns a
:class:`~repro.engine.hierarchy.HierarchyResult` into the shared
:class:`~repro.obs.metrics.MetricsRegistry` vocabulary — plain labeled
counters, so hierarchy replays merge, serialize, and expose exactly
like every other producer (parallel workers fold with
:meth:`~repro.obs.metrics.MetricsRegistry.merge`; the flight recorder
differentiates the counters into rates and derives the per-interval
origin-offload series ``derived:origin_offload``).

Counter vocabulary (all monotone, ``tier``-labeled where per-tier):

========================== =============================================
``hier_replays``            hierarchy replays folded in
``hier_demand_requests``    requests entering the hierarchy (tier 0)
``hier_demand_bytes``       bytes requested of the hierarchy (tier 0)
``hier_requests{tier=}``    requests reaching the tier
``hier_hits{tier=}``        requests the tier served
``hier_bytes_requested{tier=}`` bytes demanded of the tier
``hier_bytes_hit{tier=}``   bytes the tier served from residency
``hier_link_bytes{tier=}``  bytes the tier pulled over its upstream link
``hier_origin_requests``    requests that fell through every tier
``hier_origin_bytes``       demanded bytes served by the origin
``hier_origin_fetched_bytes`` bytes actually pulled from the origin
                            (includes group-prefetch overhead)
========================== =============================================

:func:`estimate_transfer_seconds` prices each tier's link traffic on a
:class:`~repro.transfer.LinkModel` (one transfer per miss), the same
first-order cost model :mod:`repro.transfer` uses for replication
placement traffic.
"""

from __future__ import annotations

from repro.engine.hierarchy import HierarchyResult
from repro.obs.metrics import MetricsRegistry
from repro.transfer.links import LinkModel, default_tier_links

__all__ = ["estimate_transfer_seconds", "fold_hierarchy_metrics"]


def fold_hierarchy_metrics(
    result: HierarchyResult, metrics: MetricsRegistry
) -> MetricsRegistry:
    """Fold one hierarchy replay into ``metrics``; returns the registry."""
    metrics.inc("hier_replays")
    metrics.inc("hier_demand_requests", result.demand_requests)
    metrics.inc("hier_demand_bytes", result.demand_bytes)
    for tier in result.tiers:
        m = tier.metrics
        metrics.inc("hier_requests", m.requests, tier=tier.tier)
        metrics.inc("hier_hits", m.hits, tier=tier.tier)
        metrics.inc("hier_bytes_requested", m.bytes_requested, tier=tier.tier)
        metrics.inc("hier_bytes_hit", m.bytes_hit, tier=tier.tier)
        metrics.inc("hier_link_bytes", tier.link_bytes, tier=tier.tier)
    metrics.inc("hier_origin_requests", result.origin_requests)
    metrics.inc("hier_origin_bytes", result.origin_demand_bytes)
    metrics.inc("hier_origin_fetched_bytes", result.origin_fetched_bytes)
    return metrics


def estimate_transfer_seconds(
    result: HierarchyResult,
    links: dict[str, LinkModel] | None = None,
) -> dict[str, float]:
    """Per-tier refill time on each tier's upstream link, in seconds.

    ``links`` maps tier name to :class:`~repro.transfer.LinkModel`;
    the default assigns :data:`~repro.transfer.LINK_PRESETS` by
    position (innermost tier refills over ``wan``, the tier above over
    ``regional``, outer tiers over ``lan``).  Each tier's traffic is
    its ``link_bytes`` moved as one transfer per miss — the same
    miss-driven granularity the replay charged the link with.  Missing
    tiers in a caller-supplied mapping raise ``KeyError`` (a silently
    unpriced tier would read as free).
    """
    if links is None:
        links = default_tier_links(t.tier for t in result.tiers)
    return {
        t.tier: links[t.tier].transfer_seconds(
            t.link_bytes, transfers=t.metrics.misses
        )
        for t in result.tiers
    }
