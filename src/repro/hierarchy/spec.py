"""Tier topology model: hierarchy specs and their wire format.

A :class:`HierarchySpec` describes a cache hierarchy *declaratively*,
the way :class:`~repro.registry.BoundSpec` describes one policy: a
sequence of caching tiers (outermost first — the one the demand stream
hits first), each with a name, a registry policy spec, a capacity, and
an inter-tier link cost, terminated by the origin, which holds
everything.  Its string form is the wire format accepted everywhere a
hierarchy can be chosen::

    site:lru@10%+regional:filecule-lru@5%+origin

Tier grammar: ``name:policy@capacity[^link_cost]`` joined by ``+``,
with a trailing bare segment naming the origin.  ``capacity`` is either
absolute bytes (an integer) or a percentage of the replayed workload's
total accessed bytes (``10%``), which makes one spec scale-invariant
across workload tiers exactly like the Figure 10 capacity fractions.
``policy`` is any :mod:`repro.registry` spec string, parameters
included (``filecule-lru?intra_job_hits=false``).  ``link_cost`` is a
relative price per byte pulled into the tier over its upstream link
(default 1.0, omitted from the canonical string).

``parse_hierarchy`` is a canonicalizer in the registry's sense:
aliases resolve, floats normalize, and
``parse_hierarchy(str(spec)) == spec`` holds for every constructible
spec — property-tested, because the string is what crosses process
boundaries in parallel hierarchy sweeps.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro import registry
from repro.registry import BoundSpec, PolicySpecError, UnknownPolicyError

__all__ = [
    "HierarchySpec",
    "HierarchySpecError",
    "TierCapacity",
    "TierSpec",
    "parse_hierarchy",
]

#: Tier and origin names: identifier-ish, so the wire format's
#: delimiters (``:+@^%``) can never appear inside a name.
_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_-]*$")

#: Default origin segment name.
DEFAULT_ORIGIN = "origin"


class HierarchySpecError(ValueError):
    """A hierarchy wire string or tier definition is malformed."""


def _format_float(value: float) -> str:
    """Shortest decimal that round-trips ``value`` exactly.

    ``%g`` covers every human-entered number (``10``, ``2.5``); the
    ``repr`` fallback guarantees exact round-trip for arbitrary
    constructed floats (``0.30000000000000004``), which is what makes
    ``parse_hierarchy(str(spec)) == spec`` a theorem rather than a
    convention — the property tests generate adversarial floats.
    """
    text = f"{value:g}"
    if float(text) != value:
        text = repr(value)
    # "+" is the hierarchy's tier delimiter, so exponents must not carry
    # it ("1e+22" -> "1e22"; the parse is unchanged).
    return text.replace("e+", "e")


@dataclass(frozen=True, slots=True)
class TierCapacity:
    """One tier's size: absolute bytes, or a percentage of the workload.

    ``relative=True`` reads ``value`` as a percentage of the replayed
    trace's total accessed bytes (``TierCapacity(10, relative=True)``
    is the wire form ``10%``); ``relative=False`` reads it as absolute
    bytes and requires an integer.
    """

    value: float
    relative: bool = False

    def __post_init__(self) -> None:
        value = self.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise HierarchySpecError(
                f"capacity must be a number, got {value!r}"
            )
        if not math.isfinite(value) or value <= 0:
            raise HierarchySpecError(
                f"capacity must be positive and finite, got {value!r}"
            )
        if not self.relative and value != int(value):
            raise HierarchySpecError(
                f"absolute capacity must be whole bytes, got {value!r}; "
                f"use a percentage ('{_format_float(value)}%') for "
                f"fractional sizes"
            )

    def capacity_bytes(self, total_bytes: int) -> int:
        """Resolve to bytes against the workload's total accessed bytes."""
        if self.relative:
            return int(total_bytes * (self.value / 100.0))
        return int(self.value)

    def __str__(self) -> str:
        if self.relative:
            return f"{_format_float(float(self.value))}%"
        return str(int(self.value))


@dataclass(frozen=True, slots=True)
class TierSpec:
    """One caching tier: name, policy, capacity, upstream link cost.

    ``policy`` accepts a registry spec string for convenience and is
    canonicalized to a :class:`~repro.registry.BoundSpec` on
    construction, so equality and the wire form never depend on how the
    policy was spelled.
    """

    name: str
    policy: BoundSpec
    capacity: TierCapacity
    link_cost: float = 1.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _NAME_RE.match(self.name):
            raise HierarchySpecError(
                f"bad tier name {self.name!r}: want "
                f"{_NAME_RE.pattern}"
            )
        policy = self.policy
        if isinstance(policy, str):
            policy = _parse_policy(self.name, policy)
            object.__setattr__(self, "policy", policy)
        elif isinstance(policy, BoundSpec):
            object.__setattr__(
                self, "policy", _parse_policy(self.name, policy)
            )
        else:
            raise HierarchySpecError(
                f"tier {self.name!r}: policy must be a registry spec "
                f"string or BoundSpec, got {policy!r}"
            )
        if not isinstance(self.capacity, TierCapacity):
            raise HierarchySpecError(
                f"tier {self.name!r}: capacity must be a TierCapacity, "
                f"got {self.capacity!r}"
            )
        cost = self.link_cost
        if isinstance(cost, bool) or not isinstance(cost, (int, float)):
            raise HierarchySpecError(
                f"tier {self.name!r}: link cost must be a number, "
                f"got {cost!r}"
            )
        cost = float(cost)
        if not math.isfinite(cost) or cost < 0:
            raise HierarchySpecError(
                f"tier {self.name!r}: link cost must be finite and "
                f">= 0, got {cost!r}"
            )
        object.__setattr__(self, "link_cost", cost)

    def capacity_bytes(self, total_bytes: int) -> int:
        return self.capacity.capacity_bytes(total_bytes)

    def __str__(self) -> str:
        text = f"{self.name}:{self.policy}@{self.capacity}"
        if self.link_cost != 1.0:
            text += f"^{_format_float(self.link_cost)}"
        return text


@dataclass(frozen=True, slots=True)
class HierarchySpec:
    """A full hierarchy: caching tiers outermost-first, then the origin.

    The origin is a name, not a tier — it has no policy or capacity
    because it holds everything; it exists in the model so per-tier
    metrics have an explicit "fell through everything" sink and so the
    wire string reads as the actual data path.
    """

    tiers: tuple[TierSpec, ...]
    origin: str = DEFAULT_ORIGIN

    def __post_init__(self) -> None:
        tiers = tuple(self.tiers)
        object.__setattr__(self, "tiers", tiers)
        if not tiers:
            raise HierarchySpecError(
                "a hierarchy needs at least one caching tier before "
                "the origin"
            )
        for tier in tiers:
            if not isinstance(tier, TierSpec):
                raise HierarchySpecError(
                    f"tiers must be TierSpec instances, got {tier!r}"
                )
        if not isinstance(self.origin, str) or not _NAME_RE.match(self.origin):
            raise HierarchySpecError(
                f"bad origin name {self.origin!r}: want "
                f"{_NAME_RE.pattern}"
            )
        names = [t.name for t in tiers] + [self.origin]
        if len(set(names)) != len(names):
            raise HierarchySpecError(
                f"tier names must be unique, got {names}"
            )

    @property
    def caching_tiers(self) -> tuple[TierSpec, ...]:
        """The tiers that cache (everything but the origin)."""
        return self.tiers

    @property
    def tier_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tiers)

    def __str__(self) -> str:
        return "+".join([*(str(t) for t in self.tiers), self.origin])


def _parse_policy(tier_name: str, text: str | BoundSpec) -> BoundSpec:
    try:
        return registry.parse(text)
    except (UnknownPolicyError, PolicySpecError) as exc:
        raise HierarchySpecError(f"tier {tier_name!r}: {exc}") from exc


def _parse_capacity(tier_name: str, text: str) -> TierCapacity:
    text = text.strip()
    if not text:
        raise HierarchySpecError(f"tier {tier_name!r}: empty capacity")
    if text.endswith("%"):
        try:
            value = float(text[:-1])
        except ValueError:
            raise HierarchySpecError(
                f"tier {tier_name!r}: bad capacity percentage {text!r}"
            ) from None
        return TierCapacity(value, relative=True)
    try:
        value = int(text)
    except ValueError:
        raise HierarchySpecError(
            f"tier {tier_name!r}: bad capacity {text!r}; want whole "
            f"bytes (e.g. '1000000000') or a percentage (e.g. '10%')"
        ) from None
    return TierCapacity(value)


def _parse_tier(segment: str) -> TierSpec:
    name, sep, rest = segment.partition(":")
    name = name.strip()
    if not sep:
        raise HierarchySpecError(
            f"bad tier {segment!r}: want 'name:policy@capacity"
            f"[^link_cost]' (a bare name is only valid as the trailing "
            f"origin segment)"
        )
    body, at, tail = rest.rpartition("@")
    if not at:
        raise HierarchySpecError(
            f"tier {name!r}: missing '@capacity' in {segment!r}"
        )
    link_cost = 1.0
    cap_text, caret, cost_text = tail.partition("^")
    if caret:
        try:
            link_cost = float(cost_text)
        except ValueError:
            raise HierarchySpecError(
                f"tier {name!r}: bad link cost {cost_text!r}"
            ) from None
    policy = _parse_policy(name, body.strip())
    capacity = _parse_capacity(name, cap_text)
    return TierSpec(
        name=name, policy=policy, capacity=capacity, link_cost=link_cost
    )


def parse_hierarchy(text: str | HierarchySpec) -> HierarchySpec:
    """Parse a hierarchy wire string into a canonical :class:`HierarchySpec`.

    Accepts an existing spec unchanged, so every replay entry point can
    take either form.  Raises :class:`HierarchySpecError` with the
    offending segment named for anything malformed.
    """
    if isinstance(text, HierarchySpec):
        return text
    if not isinstance(text, str):
        raise HierarchySpecError(
            f"want a hierarchy string or HierarchySpec, got {text!r}"
        )
    segments = [s.strip() for s in text.strip().split("+")]
    if len(segments) < 2 or not all(segments):
        raise HierarchySpecError(
            f"bad hierarchy {text!r}: want "
            f"'name:policy@capacity+...+origin' — at least one caching "
            f"tier and a trailing origin name"
        )
    *tier_segments, origin = segments
    if ":" in origin or "@" in origin:
        raise HierarchySpecError(
            f"bad hierarchy {text!r}: the trailing segment is the "
            f"origin and must be a bare name, got {origin!r}"
        )
    tiers = tuple(_parse_tier(segment) for segment in tier_segments)
    return HierarchySpec(tiers=tiers, origin=origin)
