"""Figure 10: LRU miss rate, file vs filecule granularity.

The paper sweeps 7 cache sizes from 1 TB to 100 TB over ~500 TB of data
and finds: filecule-LRU's miss rate is 4–5× lower at large caches, while
at 1 TB the difference is small (~9.5%) because the largest filecules
(up to 17 TB) cannot be cached at all.

Capacities here are expressed as the same *fractions of total accessed
data* the paper's absolute sizes correspond to (1 TB ≈ 0.2% of DZero's
data volume, 100 TB ≈ 20%), so the experiment is scale-invariant.
"""

from __future__ import annotations

from repro.engine import sweep
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.obs.instrument import progress_from_env
from repro.util.ascii_plot import ascii_series
from repro.util.units import TB, format_bytes

#: The two Figure 10 contenders, as registry specs.
POLICIES: tuple[str, ...] = ("file-lru", "filecule-lru")

#: Cache sizes as fractions of total accessed bytes; the paper's seven
#: points 1/2/5/10/25/50/100 TB against ≈ 500 TB of accessed data.
CAPACITY_FRACTIONS: tuple[float, ...] = (
    0.002,
    0.004,
    0.01,
    0.02,
    0.05,
    0.1,
    0.2,
)


def capacities_for(total_bytes: int) -> list[int]:
    """The seven sweep capacities for a workload of ``total_bytes``."""
    return [max(int(f * total_bytes), 1) for f in CAPACITY_FRACTIONS]


@register("fig10")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    partition = ctx.partition
    total = trace.total_bytes()
    caps = capacities_for(total)
    result = sweep(
        trace,
        POLICIES,
        caps,
        partition=partition,
        # Observation-only live progress (hit rate, evicted bytes, ETA)
        # when REPRO_PROGRESS=1; silent otherwise.  Identical miss rates
        # either way — asserted by tests/test_obs_instrument.py.  With
        # jobs > 1 the 7×2 grid fans out over worker processes and
        # progress is forwarded from the workers over a queue.
        instrumentation=progress_from_env("fig10"),
        jobs=ctx.jobs,
    )
    file_mr = result.miss_rates("file-lru")
    cule_mr = result.miss_rates("filecule-lru")
    factors = result.improvement_factor("file-lru", "filecule-lru")
    rows = tuple(
        (
            format_bytes(cap, 1),
            f"{frac:.1%}",
            file_mr[i],
            cule_mr[i],
            factors[i],
        )
        for i, (cap, frac) in enumerate(zip(caps, CAPACITY_FRACTIONS))
    )
    figure = ascii_series(
        [cap / TB for cap in caps],
        {"file-lru": file_mr, "filecule-lru": cule_mr},
        title="miss rate vs cache size (TB)",
    )
    checks = {
        "filecule-LRU wins at every capacity": all(
            c <= f for f, c in zip(file_mr, cule_mr)
        ),
        "large-cache factor reaches the paper's 4-5x (band 4x-9x)": (
            4.0 <= max(factors[-3:]) <= 9.0
        ),
        "advantage grows with capacity (smallest factor is the minimum)": (
            factors[0] == min(factors)
        ),
        "miss rates decrease with capacity (both policies)": (
            all(a >= b - 1e-9 for a, b in zip(file_mr, file_mr[1:]))
            and all(a >= b - 1e-9 for a, b in zip(cule_mr, cule_mr[1:]))
        ),
    }
    notes = (
        f"paper: up to 4-5x lower miss rate at large caches; measured max "
        f"factor {max(factors):.1f}x",
        f"paper: the difference narrows at 1 TB (~9.5%); measured factor "
        f"shrinks to {factors[0]:.1f}x at the smallest cache "
        f"({format_bytes(caps[0], 1)}) — see EXPERIMENTS.md for why the "
        f"small-cache convergence is only partial at this scale",
        f"total accessed data: {format_bytes(total, 1)}",
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="Miss rate for LRU at file vs filecule granularity",
        headers=(
            "cache",
            "of data",
            "file-lru miss",
            "filecule-lru miss",
            "factor",
        ),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
