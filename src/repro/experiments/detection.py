"""Scenario-scored drift detection against a live daemon.

The PR-6 scenarios give us ground truth no production system has: each
non-stationary transform declares *when* its anomaly is active (the
:func:`~repro.scenario.spec.injection_window`).  This driver replays
every non-stationary scenario through an in-process
:class:`~repro.service.server.FileculeServer` with the flight recorder
and health detectors enabled — trace time mapped linearly onto a short
wall-clock window via the load generator's ``offsets`` pacing — then
scores each online detector against the known injection window:

* **recall** — the fraction of steady-state sampler ticks inside the
  window (skipping a short onset allowance ``L``) where the detector
  fired; sustained anomalies should keep the detector firing, not just
  edge-trigger it;
* **precision** — the fraction of the detector's events that landed
  inside the window (with ``L`` ticks of trailing slack for the
  recovery transient);
* **lag** — sampler ticks from window start to the first true positive.

``repro-experiments detection --detection-json out.json`` exports the
full score matrix for the CI smoke job.  The gated pairs — flash crowd
× hit-rate divergence and site outage × site-share collapse — must
reach recall ≥ 0.8 at precision ≥ 0.5; the other cells are reported
but not asserted (a share collapse during a flash crowd is *correct*:
every other site's share genuinely craters while the crowd hammers one
dataset).
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.obs.health import default_detectors
from repro.scenario import injection_window, parse_composition, scenario_job_stream
from repro.service.loadgen import run_load
from repro.service.server import FileculeServer
from repro.service.state import ServiceState

#: Wall-clock seconds each scenario's trace time is compressed into.
REPLAY_SECONDS = 6.6
#: Flight-recorder sampling cadence during the replay.
SAMPLE_INTERVAL = 0.15
#: Parallel loadgen connections per replay.
CONNECTIONS = 4
#: Modelled per-site cache capacity as a fraction of the trace's total
#: accessed bytes — small enough that the baseline hit rate sits
#: mid-range, so hit-rate anomalies have headroom in both directions.
CAPACITY_FRACTION = 0.02


def detection_scenarios(trace) -> dict[str, str]:
    """Display name -> composition string for the scored scenarios.

    The outage targets the trace's busiest site so its request share is
    large enough to collapse measurably at small scales.
    """
    busiest = int(np.bincount(trace.job_sites).argmax())
    return {
        "flash-crowd": "flash-crowd?at=0.55&width=0.2&boost=1.0",
        "site-outage": f"site-outage?site={busiest}&at=0.45&duration=0.3",
        "phase-shift": "phase-shift?at=0.5",
        "scan-flood": "scan-flood?at=0.35&rate=0.4",
        "popularity-drift": "popularity-drift?strength=0.9",
    }


#: The (scenario, detector) cells whose recall/precision are asserted.
GATED_PAIRS: tuple[tuple[str, str], ...] = (
    ("flash-crowd", "hit-rate-divergence"),
    ("site-outage", "site-share-collapse"),
)
RECALL_FLOOR = 0.8
PRECISION_FLOOR = 0.5


@dataclass(frozen=True)
class DetectionRow:
    """One (scenario, detector) cell of the score matrix."""

    scenario: str
    detector: str
    window: tuple[float, float]
    window_ticks: int
    fired_ticks: int
    recall: float
    precision: float
    events: int
    lag_ticks: int | None

    def as_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "detector": self.detector,
            "window": list(self.window),
            "window_ticks": self.window_ticks,
            "fired_ticks": self.fired_ticks,
            "recall": self.recall,
            "precision": self.precision,
            "events": self.events,
            "lag_ticks": self.lag_ticks,
        }


@dataclass(frozen=True)
class DetectionReport:
    """The full detector × scenario score matrix plus replay telemetry."""

    scale: str
    seed: int
    interval: float
    replay_seconds: float
    compositions: dict[str, str]  # scenario -> canonical composition
    windows: dict[str, tuple[float, float]]
    rows: tuple[DetectionRow, ...]
    replays: dict[str, dict]  # scenario -> replay telemetry

    def row(self, scenario: str, detector: str) -> DetectionRow:
        for row in self.rows:
            if row.scenario == scenario and row.detector == detector:
                return row
        raise KeyError(f"no cell ({scenario!r}, {detector!r})")

    def median_lag(self, detector: str) -> float | None:
        lags = [
            row.lag_ticks
            for row in self.rows
            if row.detector == detector and row.lag_ticks is not None
        ]
        if not lags:
            return None
        return float(np.median(lags))

    def as_dict(self) -> dict:
        """JSON-ready form (the ``--detection-json`` artifact)."""
        detectors = sorted({row.detector for row in self.rows})
        return {
            "scale": self.scale,
            "seed": self.seed,
            "interval": self.interval,
            "replay_seconds": self.replay_seconds,
            "scenarios": [
                {
                    "name": name,
                    "composition": self.compositions[name],
                    "window": list(self.windows[name]),
                }
                for name in self.compositions
            ],
            "rows": [row.as_dict() for row in self.rows],
            "median_lag_ticks": {d: self.median_lag(d) for d in detectors},
            "replays": self.replays,
            "gates": {
                f"{scenario}:{detector}": {
                    "recall": self.row(scenario, detector).recall,
                    "precision": self.row(scenario, detector).precision,
                    "recall_floor": RECALL_FLOOR,
                    "precision_floor": PRECISION_FLOOR,
                }
                for scenario, detector in GATED_PAIRS
            },
        }


def write_detection_json(path: str | Path, report: DetectionReport) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report.as_dict(), indent=2) + "\n")
    return path


async def _replay_scenario(
    jobs: list[dict], offsets: list[float], capacity_bytes: int
) -> dict:
    """One live replay: in-process server + paced loadgen, one event loop."""
    server = FileculeServer(
        ServiceState(capacity_bytes=capacity_bytes),
        port=0,
        sample_interval=SAMPLE_INTERVAL,
        health=True,
        log_interval=None,
    )
    await server.start()
    try:
        t0 = time.monotonic()
        report = await run_load(
            server.host,
            server.port,
            jobs,
            connections=CONNECTIONS,
            offsets=offsets,
            fetch_final_stats=False,
        )
        t1 = time.monotonic()
        # One final synchronous sample so the last partial interval (and
        # any anomaly still active at the end) reaches the detectors.
        server.sample_once()
        events = [event.as_dict() for event in server.health.events()]
        ticks = server.recorder.samples
    finally:
        await server.stop()
    return {
        "t0": t0,
        "t1": t1,
        "events": events,
        "ticks": ticks,
        "requests": report.requests,
        "errors": report.errors,
        "duration_seconds": report.duration_seconds,
    }


def _score_detector(
    events: list[dict],
    detector: str,
    window: tuple[float, float],
    t0: float,
    t1: float,
) -> DetectionRow:
    """Tick-level recall / event-level precision for one detector."""
    span = max(t1 - t0, 1e-9)
    w_lo = t0 + window[0] * span
    w_hi = t0 + window[1] * span
    first = math.ceil(w_lo / SAMPLE_INTERVAL)
    last = math.floor(w_hi / SAMPLE_INTERVAL)
    window_ticks = max(0, last - first + 1)
    # Onset allowance: detectors smooth over a few ticks before firing,
    # and recall should measure the sustained steady state, not the edge.
    allowance = max(2, math.ceil(0.1 * window_ticks))

    mine = [e for e in events if e["detector"] == detector]
    fired = {round(e["ts"] / SAMPLE_INTERVAL) for e in mine}
    steady = set(range(first + allowance, last + 1))
    hits = fired & steady
    recall = len(hits) / len(steady) if steady else 0.0

    in_window = [t for t in fired if first <= t <= last + allowance]
    precision = len(in_window) / len(fired) if fired else 1.0

    tp = sorted(t for t in fired if t >= first and t <= last + allowance)
    lag = tp[0] - first if tp else None
    return DetectionRow(
        scenario="",  # filled by the caller
        detector=detector,
        window=window,
        window_ticks=window_ticks,
        fired_ticks=len(hits),
        recall=recall,
        precision=precision,
        events=len(mine),
        lag_ticks=lag,
    )


@lru_cache(maxsize=4)
def build_detection(ctx: ExperimentContext) -> DetectionReport:
    """Replay every scored scenario through a live daemon; score detectors.

    Memoized per context so the experiment runner and the
    ``--detection-json`` exporter share one (wall-clock-expensive)
    computation, like :func:`~repro.experiments.robustness_matrix.build_matrix`.
    """
    from dataclasses import replace

    detector_names = [d.name for d in default_detectors()]
    scenarios = detection_scenarios(ctx.trace)
    capacity = max(1, int(CAPACITY_FRACTION * ctx.trace.total_bytes()))
    compositions: dict[str, str] = {}
    windows: dict[str, tuple[float, float]] = {}
    rows: list[DetectionRow] = []
    replays: dict[str, dict] = {}
    for name, spec in scenarios.items():
        composition = parse_composition(spec)
        compositions[name] = str(composition)
        trace_window = injection_window(composition)
        assert trace_window is not None, f"scenario {name} declares no window"

        jobs = list(scenario_job_stream(ctx.trace, composition, seed=ctx.seed))
        n = len(jobs)
        starts = np.array([job["start"] for job in jobs])
        span = float(starts.max() - starts.min()) or 1.0
        fractions = (starts - starts.min()) / span
        # Uniform-rate pacing: job k goes out at rank-fraction k/n of the
        # run.  The trace's own time axis is heavily bursty (quiet nights,
        # submission storms); replaying it verbatim would bury every
        # detector signal in offered-load noise that says nothing about
        # the anomaly.  The ground-truth window maps from trace-time
        # fractions to rank fractions through the job-start quantiles, so
        # scoring stays exact — injected jobs widen the window in rank
        # space, which is correct: that is when the anomaly's traffic is
        # actually on the wire.
        offsets = (np.arange(n) / n * REPLAY_SECONDS).tolist()
        window = (
            float(np.searchsorted(fractions, trace_window[0]) / n),
            float(np.searchsorted(fractions, trace_window[1]) / n),
        )
        windows[name] = window

        outcome = asyncio.run(_replay_scenario(jobs, offsets, capacity))
        replays[name] = {
            "jobs": len(jobs),
            "requests": outcome["requests"],
            "errors": outcome["errors"],
            "duration_seconds": round(outcome["duration_seconds"], 3),
            "ticks": outcome["ticks"],
            "events": len(outcome["events"]),
        }
        for detector in detector_names:
            row = _score_detector(
                outcome["events"],
                detector,
                window,
                outcome["t0"],
                outcome["t1"],
            )
            rows.append(replace(row, scenario=name))
    return DetectionReport(
        scale=ctx.scale,
        seed=ctx.seed,
        interval=SAMPLE_INTERVAL,
        replay_seconds=REPLAY_SECONDS,
        compositions=compositions,
        windows=windows,
        rows=tuple(rows),
        replays=replays,
    )


@register("detection")
def run(ctx: ExperimentContext) -> ExperimentResult:
    report = build_detection(ctx)
    rows = [
        (
            row.scenario,
            row.detector,
            round(row.recall, 3),
            round(row.precision, 3),
            row.lag_ticks if row.lag_ticks is not None else "-",
            row.events,
        )
        for row in report.rows
    ]

    def gate(scenario: str, detector: str) -> bool:
        cell = report.row(scenario, detector)
        return cell.recall >= RECALL_FLOOR and cell.precision >= PRECISION_FLOOR

    checks = {
        "every replay completed without protocol errors": all(
            r["errors"] == 0 for r in report.replays.values()
        ),
        "sampler ticked throughout every replay (>= 30 ticks)": all(
            r["ticks"] >= 30 for r in report.replays.values()
        ),
        "flash-crowd: hit-rate divergence recall >= 0.8 at precision >= 0.5": gate(
            "flash-crowd", "hit-rate-divergence"
        ),
        "site-outage: site-share collapse recall >= 0.8 at precision >= 0.5": gate(
            "site-outage", "site-share-collapse"
        ),
        "gated detectors react within the onset allowance": all(
            report.row(s, d).lag_ticks is not None
            and report.row(s, d).lag_ticks
            <= max(2, math.ceil(0.1 * report.row(s, d).window_ticks))
            for s, d in GATED_PAIRS
        ),
    }
    lag_notes = ", ".join(
        f"{d}={report.median_lag(d):.0f}"
        for d in sorted({row.detector for row in report.rows})
        if report.median_lag(d) is not None
    )
    notes = (
        f"{len(report.compositions)} scenarios replayed live over "
        f"{report.replay_seconds:.1f}s each, sampled every "
        f"{report.interval * 1e3:.0f}ms",
        "recall = fraction of steady-state window ticks the detector fired; "
        "precision = fraction of its events inside the window (+onset slack)",
        f"median detection lag (ticks): {lag_notes or 'n/a'}",
        "only the flash-crowd and site-outage cells are gated; cross-cell "
        "firing can be legitimate (a crowd really does collapse other "
        "sites' shares)",
    )
    return ExperimentResult(
        experiment_id="detection",
        title="Online drift detection scored against scenario ground truth",
        headers=("scenario", "detector", "recall", "precision", "lag", "events"),
        rows=tuple(rows),
        notes=notes,
        checks=checks,
    )
