"""§6 quantified: filecule-aware data-transfer scheduling.

"Scheduling data transfers while accounting for filecules can lead to
significant improvements."  We schedule each site's inbound transfers
over a FIFO WAN link with a per-transfer setup cost, file-at-a-time vs
whole-filecule batches (identical bytes either way), and measure the
setup amortization and job data-wait improvement.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.transfer.scheduling import compare_scheduling
from repro.util.units import format_bytes

#: Per-transfer setup cost (connection + catalog + SRM negotiation).
SETUP_LATENCY_S = 10.0


@register("transfer_scheduling")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    partition = ctx.partition
    # the hub plus the two busiest remote sites
    counts = np.bincount(trace.job_sites, minlength=trace.n_sites)
    remote = [s for s in np.argsort(counts)[::-1] if counts[s] > 0][:3]
    rows = []
    checks: dict[str, bool] = {}
    notes = []
    for site in remote:
        file_r, cule_r = compare_scheduling(
            trace, partition, int(site), setup_latency_s=SETUP_LATENCY_S
        )
        name = trace.site_names[int(site)]
        for r in (file_r, cule_r):
            rows.append(
                (
                    name,
                    r.strategy,
                    r.n_transfers,
                    format_bytes(r.bytes_moved, 1),
                    r.setup_seconds / 3600.0,
                    r.mean_wait_seconds / 3600.0,
                    r.p95_wait_seconds / 3600.0,
                )
            )
        checks[f"{name}: identical bytes delivered"] = (
            file_r.bytes_moved == cule_r.bytes_moved
        )
        checks[f"{name}: batching cuts transfer count >= 3x"] = (
            cule_r.n_transfers * 3 <= file_r.n_transfers
        )
        checks[f"{name}: batching reduces mean job data wait"] = (
            cule_r.mean_wait_seconds <= file_r.mean_wait_seconds
        )
        notes.append(
            f"{name}: {file_r.n_transfers} -> {cule_r.n_transfers} "
            f"transfers; mean wait "
            f"{file_r.mean_wait_seconds / 3600:.1f}h -> "
            f"{cule_r.mean_wait_seconds / 3600:.1f}h"
        )
    notes.append(
        f"setup cost {SETUP_LATENCY_S:.0f}s/transfer; both strategies move "
        f"identical bytes — the win is pure setup amortization plus "
        f"piggybacking on in-flight filecules"
    )
    return ExperimentResult(
        experiment_id="transfer_scheduling",
        title="Filecule-aware transfer scheduling (§6)",
        headers=(
            "site",
            "strategy",
            "transfers",
            "bytes",
            "setup (h)",
            "mean wait (h)",
            "p95 wait (h)",
        ),
        rows=tuple(rows),
        notes=tuple(notes),
        checks=checks,
    )
