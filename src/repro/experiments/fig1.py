"""Figure 1: the number of input files per job.

The paper reports jobs run on 108 files on average, with a heavy-tailed
distribution reaching tens of thousands of files.  We bin the
files-per-job distribution logarithmically and check the mean and tail.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.histograms import log_bins, summarize_distribution
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.traces.stats import files_per_job_distribution
from repro.util.ascii_plot import ascii_histogram

#: Paper headline: "on average 108 files per job".
PAPER_MEAN_FILES_PER_JOB = 108.0


@register("fig1")
def run(ctx: ExperimentContext) -> ExperimentResult:
    values, counts = files_per_job_distribution(ctx.trace)
    sample = np.repeat(values, counts)
    summary = summarize_distribution(sample)

    edges = log_bins(1, max(float(sample.max()), 10.0), per_decade=2)
    hist, _ = np.histogram(sample, bins=edges)
    labels = [
        f"{int(np.ceil(lo))}-{int(hi)}" for lo, hi in zip(edges[:-1], edges[1:])
    ]
    rows = tuple(
        (label, int(count)) for label, count in zip(labels, hist)
    )
    figure = ascii_histogram(
        labels, hist.tolist(), title="jobs per files-per-job bucket"
    )
    checks = {
        "mean files/job within 2x of the paper's 108": (
            PAPER_MEAN_FILES_PER_JOB / 2 <= summary.mean <= PAPER_MEAN_FILES_PER_JOB * 2
        ),
        "distribution is heavy tailed (p99 > 5x median)": (
            summary.p99 > 5 * summary.median
        ),
        "multi-file jobs dominate (median > 1 file)": summary.median > 1,
    }
    notes = (
        f"mean files/job: paper=108, measured={summary.mean:.1f}",
        f"median={summary.median:.0f}, p99={summary.p99:.0f}, "
        f"max={summary.maximum:.0f}",
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="Number of input files per job",
        headers=("files/job", "jobs"),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
