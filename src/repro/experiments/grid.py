"""End-to-end grid impact: filecule awareness on the SAM substrate.

The paper evaluates caching in isolation (Figure 10).  This experiment
closes the loop on the §6 discussion by replaying the trace through the
full grid model — per-site stations, hub tape archive with mount latency,
hub-and-spoke WAN — under three configurations:

1. file-LRU station caches (the FermiLab status quo);
2. filecule-LRU station caches;
3. filecule-LRU caches plus proactive filecule replication planned from
   the first half of the history.

Reported: fraction of requested bytes served locally, mean/95p job data
stall, tape and WAN traffic.
"""

from __future__ import annotations

from repro import registry
from repro.core.identify import find_filecules
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.replication.placement import site_budgets
from repro.sam.catalog import ReplicaCatalog
from repro.sam.scheduler import replay_trace
from repro.util.units import format_bytes

CACHE_FRACTION = 0.02


@register("grid")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    partition = ctx.partition
    capacity = max(int(CACHE_FRACTION * trace.total_bytes()), 1)

    # Station caches are built per site through the registry; the sam
    # scheduler's factory signature adds the site id, which the specs
    # here don't need.
    file_cache = lambda cap, site: registry.build("file-lru", cap)
    cule_cache = lambda cap, site: registry.build(
        "filecule-lru", cap, partition=partition
    )
    reports = {}
    reports["file-lru stations"] = replay_trace(
        trace,
        cache_factory=file_cache,
        cache_capacity=capacity,
    )
    reports["filecule-lru stations"] = replay_trace(
        trace,
        cache_factory=cule_cache,
        cache_capacity=capacity,
    )
    t_lo, t_hi = trace.time_span()
    warm = trace.subset_jobs(trace.job_starts < t_lo + 0.5 * (t_hi - t_lo))
    plan = registry.build_placement("filecule-rank").plan(
        warm, find_filecules(warm), site_budgets(trace, capacity)
    )
    catalog = ReplicaCatalog(trace.n_files, trace.n_sites)
    for site in range(trace.n_sites):
        catalog.bulk_register(plan.site_files[site], site)
    reports["+ filecule replication"] = replay_trace(
        trace,
        cache_factory=cule_cache,
        cache_capacity=capacity,
        catalog=catalog,
    )

    rows = tuple(
        (
            name,
            r.local_byte_fraction,
            r.mean_stall_seconds,
            r.p95_stall_seconds,
            format_bytes(r.tape_bytes, 1),
            format_bytes(r.wan_bytes, 1),
        )
        for name, r in reports.items()
    )
    base = reports["file-lru stations"]
    cule = reports["filecule-lru stations"]
    repl = reports["+ filecule replication"]
    checks = {
        "filecule stations serve more bytes locally": (
            cule.local_byte_fraction > base.local_byte_fraction
        ),
        "filecule stations cut mean data stall": (
            cule.mean_stall_seconds < base.mean_stall_seconds
        ),
        "filecule prefetch does not inflate tape traffic (within 10%)": (
            cule.tape_bytes <= 1.10 * base.tape_bytes
        ),
        "replication helps on top of filecule caching": (
            repl.mean_stall_seconds <= cule.mean_stall_seconds * 1.02
        ),
    }
    notes = (
        f"station caches: {format_bytes(capacity, 1)} "
        f"({CACHE_FRACTION:.0%} of accessed data); tape mounts pay 90 s",
        f"mean stall: {base.mean_stall_seconds:.0f}s (file-LRU) -> "
        f"{cule.mean_stall_seconds:.0f}s (filecule-LRU) -> "
        f"{repl.mean_stall_seconds:.0f}s (+replication)",
        "transfers are priced at the bytes actually pulled (whole "
        "filecules on a prefetch): filecule stations trade roughly equal "
        "tape/WAN traffic for far fewer stalls — the reuse hits pay back "
        "the prefetched bytes",
    )
    return ExperimentResult(
        experiment_id="grid",
        title="Grid replay: filecule awareness end-to-end (§6)",
        headers=(
            "configuration",
            "local bytes",
            "mean stall (s)",
            "p95 stall (s)",
            "tape",
            "WAN",
        ),
        rows=rows,
        notes=notes,
        checks=checks,
    )
