"""Section 6 quantified: proactive replication, file vs filecule granularity.

Strategies observe the first half of the trace, push replicas under a
per-site byte budget, and are scored on the second half.  Three budgets
bracket the interesting regime (around the typical filecule size, and
well above it).

Expected shapes:

* interest-aware strategies (file- and filecule-granularity) waste far
  fewer pushed bytes than the locality-blind global baseline — the
  geographic interest partitioning of §3.2 at work;
* filecule granularity never ships partial co-access groups, so its
  whole-job completion rate matches or beats file granularity, most
  visibly at tight budgets;
* with *complete* local history the two interest-aware plans converge —
  file popularity inherits the filecule structure (definition property
  3).  The paper's argument is about planning with the right abstraction,
  not about beating an oracle file ranking; the convergence itself is
  evidence that filecules capture the workload's true granularity.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.obs.metrics import MetricsRegistry
from repro.replication.evaluate import compare_strategies
from repro.util.units import format_bytes


#: Per-site budgets as fractions of total accessed data.
BUDGET_FRACTIONS: tuple[float, ...] = (0.01, 0.05, 0.2)

#: Declarative strategy table: registry placement specs, no classes.
STRATEGIES: tuple[str, ...] = ("file-rank", "filecule-rank", "global-rank")


@register("replication")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    total = trace.total_bytes()
    budgets = [max(int(f * total), 1) for f in BUDGET_FRACTIONS]
    metrics = MetricsRegistry()
    rows = []
    by_budget: dict[int, dict[str, object]] = {}
    for budget in budgets:
        outcomes = compare_strategies(
            trace, STRATEGIES, budget, metrics=metrics
        )
        by_budget[budget] = {o.strategy: o for o in outcomes}
        for o in outcomes:
            rows.append(
                (
                    format_bytes(budget, 1),
                    o.strategy,
                    o.local_byte_fraction,
                    o.job_complete_fraction,
                    o.used_fraction,
                    format_bytes(o.push_bytes, 1),
                )
            )
    checks: dict[str, bool] = {}
    for budget in budgets:
        file_o = by_budget[budget]["file-rank"]
        cule_o = by_budget[budget]["filecule-rank"]
        label = format_bytes(budget, 1)
        checks[f"{label}: filecule job-completion >= 90% of file plan"] = (
            cule_o.job_complete_fraction >= 0.9 * file_o.job_complete_fraction
        )
        checks[f"{label}: filecule waste within 10% of file plan"] = (
            cule_o.used_fraction >= file_o.used_fraction - 0.10
        )
    big = budgets[-1]
    cule_big = by_budget[big]["filecule-rank"]
    glob_big = by_budget[big]["global-rank"]
    checks[
        "at the largest budget, interest-aware matches >=85% of the "
        "global plan's locality at a fraction of the push cost"
    ] = (
        cule_big.local_byte_fraction >= 0.85 * glob_big.local_byte_fraction
        and cule_big.push_bytes <= 0.6 * glob_big.push_bytes
    )
    checks["metrics registry carries one labeled plan per strategy/budget"] = all(
        metrics.get("repl_plans", strategy=name) == len(budgets)
        for name in STRATEGIES
    )
    notes = (
        "filecule plans never ship partial co-access groups; file plans "
        "fragment at budget boundaries",
        "with complete history the interest-aware plans converge (file "
        "popularity inherits filecule structure, §3 property 3) — evidence "
        "that filecules capture the workload's true granularity",
        f"locality-blind global replication needs "
        f"{glob_big.push_bytes / max(cule_big.push_bytes, 1):.1f}x the "
        f"push traffic of the interest-aware filecule plan at the largest "
        f"budget",
    )
    return ExperimentResult(
        experiment_id="replication",
        title="Proactive replication: file vs filecule granularity (§6)",
        headers=(
            "budget/site",
            "strategy",
            "local byte frac",
            "complete jobs",
            "pushed-bytes used",
            "pushed",
        ),
        rows=tuple(rows),
        notes=notes,
        checks=checks,
    )
