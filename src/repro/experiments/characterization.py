"""Workload micro-structure: why filecules exist in this trace.

A diagnostics panel that goes one level below the paper's figures and
exposes the mechanisms behind them:

* **input-set reuse** — SAM jobs run on named datasets, so exact input
  sets recur heavily (the source of filecule popularity, Figures 8–9);
* **pairwise overlap** — partial overlaps between different datasets are
  what fragment them into sub-dataset filecules (Figures 5–7);
* **reuse distances** — the temporal-locality collapse at filecule
  granularity that drives Figure 10.

Run this first on any new (real or synthetic) trace: if these three
signatures are absent, the filecule machinery has nothing to exploit.
"""

from __future__ import annotations

from repro.analysis.overlap import job_set_reuse, pairwise_jaccard_sample
from repro.analysis.temporal import file_vs_filecule_reuse
from repro.experiments.base import ExperimentContext, ExperimentResult, register

N_PAIRS = 4000
PAIR_SEED = 99


@register("characterization")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    partition = ctx.partition

    reuse = job_set_reuse(trace)
    overlap = pairwise_jaccard_sample(trace, n_pairs=N_PAIRS, seed=PAIR_SEED)
    file_reuse, cule_reuse = file_vs_filecule_reuse(trace, partition)

    rows = (
        ("traced jobs", reuse.n_traced_jobs),
        ("distinct input sets", reuse.n_distinct_sets),
        ("input-set reuse fraction", reuse.reuse_fraction),
        ("hottest input set requests", reuse.max_set_requests),
        ("job pairs sampled", overlap.n_pairs),
        ("pairs disjoint", overlap.disjoint_fraction),
        ("pairs identical", overlap.identical_fraction),
        ("pairs partially overlapping", overlap.partial_fraction),
        ("median reuse distance (files)", file_reuse.median_distance),
        ("median reuse distance (filecules)", cule_reuse.median_distance),
        ("cold fraction (files)", file_reuse.cold_fraction),
        ("cold fraction (filecules)", cule_reuse.cold_fraction),
    )
    checks = {
        "input sets recur (reuse fraction > 30%)": reuse.reuse_fraction > 0.3,
        "partial overlaps exist (what fragments datasets into filecules)": (
            overlap.partial_fraction > 0.0
        ),
        "most job pairs are disjoint (geographic/interest partitioning)": (
            overlap.disjoint_fraction > 0.5
        ),
        "reuse distance collapses at filecule granularity": (
            cule_reuse.median_distance < file_reuse.median_distance
        ),
    }
    notes = (
        f"{reuse.n_traced_jobs} traced jobs run on only "
        f"{reuse.n_distinct_sets} distinct input sets "
        f"(mean {reuse.mean_requests_per_set:.1f} runs per set) — dataset "
        f"reuse is the engine behind filecule popularity",
        f"of {overlap.n_pairs} random job pairs: "
        f"{overlap.disjoint_fraction:.0%} disjoint, "
        f"{overlap.identical_fraction:.0%} identical, "
        f"{overlap.partial_fraction:.0%} partially overlapping "
        f"(mean non-zero Jaccard {overlap.mean_nonzero_jaccard:.2f})",
    )
    return ExperimentResult(
        experiment_id="characterization",
        title="Workload micro-structure: the mechanisms behind filecules",
        headers=("quantity", "value"),
        rows=rows,
        notes=notes,
        checks=checks,
    )
