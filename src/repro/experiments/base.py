"""Experiment registry, shared context and result type."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from collections.abc import Callable

from repro.core.filecule import FileculePartition
from repro.core.identify import find_filecules
from repro.traces.trace import Trace
from repro.util.tables import render_table
from repro.workload.calibration import (
    default_config,
    grown_config,
    paper_config,
    small_config,
    tiny_config,
)
from repro.workload.generator import generate_trace
from repro.workload.store import cached_trace

#: The fixed seed behind every number in EXPERIMENTS.md.
EXPERIMENT_SEED: int = 7

_SCALES = {
    "default": default_config,
    "small": small_config,
    "tiny": tiny_config,
    "paper": paper_config,
    "grown": grown_config,
}

#: Scales expensive enough to generate that their traces go through the
#: on-disk artifact store (:mod:`repro.workload.store`) instead of being
#: regenerated per process.
_STORE_BACKED = frozenset({"paper", "grown"})


@dataclass(frozen=True)
class ExperimentContext:
    """The workload every experiment runs against.

    ``jobs`` is the worker-process count for the sweep-backed
    experiments (``fig10``, ``null_model``, ``robustness`` and the
    ablations): 1 replays serially, N > 1 fans the (policy, capacity)
    grid out through :mod:`repro.parallel` with results guaranteed
    identical to serial.
    """

    scale: str
    seed: int
    trace: Trace
    partition: FileculePartition
    jobs: int = 1


@lru_cache(maxsize=4)
def get_context(
    scale: str = "default",
    seed: int = EXPERIMENT_SEED,
    jobs: int = 1,
) -> ExperimentContext:
    """Build (once per scale/seed) the shared trace and partition."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    try:
        config = _SCALES[scale]()
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(_SCALES)}"
        ) from None
    if scale in _STORE_BACKED:
        trace = cached_trace(config, seed=seed)
    else:
        trace = generate_trace(config, seed=seed)
    return ExperimentContext(
        scale=scale,
        seed=seed,
        trace=trace,
        partition=find_filecules(trace),
        jobs=jobs,
    )


@dataclass(frozen=True)
class ExperimentResult:
    """Everything an experiment reports.

    ``rows``/``headers`` hold the table (or figure series) data;
    ``figure_text`` an optional ASCII rendering; ``notes`` the
    paper-vs-measured comparison lines that EXPERIMENTS.md collects.
    ``checks`` maps named qualitative assertions (e.g. "filecule-LRU wins
    at every capacity") to booleans — the integration tests require all
    of them to hold.
    """

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    figure_text: str = ""
    notes: tuple[str, ...] = ()
    checks: dict[str, bool] = field(default_factory=dict)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(render_table(self.headers, self.rows))
        if self.figure_text:
            parts.append(self.figure_text)
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {n}" for n in self.notes)
        if self.checks:
            parts.append("checks:")
            parts.extend(
                f"  [{'PASS' if ok else 'FAIL'}] {name}"
                for name, ok in self.checks.items()
            )
        return "\n".join(parts)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())


Runner = Callable[[ExperimentContext], ExperimentResult]

_REGISTRY: dict[str, Runner] = {}


def register(experiment_id: str) -> Callable[[Runner], Runner]:
    """Class the decorated ``run`` function under ``experiment_id``."""

    def deco(fn: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = fn
        return fn

    return deco


def all_experiment_ids() -> list[str]:
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> Runner:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def run_experiment(
    experiment_id: str, ctx: ExperimentContext | None = None
) -> ExperimentResult:
    """Run one experiment against the shared (or a custom) context."""
    runner = get_experiment(experiment_id)
    return runner(ctx or get_context())
