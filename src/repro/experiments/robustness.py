"""Seed-robustness of the headline result.

Every number in EXPERIMENTS.md comes from one seed; this experiment
re-runs the Figure 10 comparison across several independently-seeded
workloads (at a reduced scale so the sweep stays fast) and reports the
spread of the filecule-LRU improvement factor.  The qualitative claims
must hold for *every* seed — filecule-LRU wins at every capacity and the
factor grows with capacity — demonstrating the conclusion is a property
of the workload class, not of one random draw.
"""

from __future__ import annotations

import numpy as np

from repro.core.identify import find_filecules
from repro.engine import sweep
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.experiments.fig10 import CAPACITY_FRACTIONS
from repro.workload.calibration import paper_config
from repro.workload.generator import generate_trace

#: Short display names for the two contenders, as registry specs.
POLICIES: dict[str, str] = {"file": "file-lru", "cule": "filecule-lru"}

SEEDS: tuple[int, ...] = (7, 11, 23, 42, 101)
#: Reduced scale: 5 seeds x 7 capacities x 2 policies stays ~1 minute.
ROBUSTNESS_SCALE = 0.01


@register("robustness")
def run(ctx: ExperimentContext) -> ExperimentResult:
    config = paper_config().scaled(ROBUSTNESS_SCALE, name="robustness")
    per_seed_factors: dict[int, list[float]] = {}
    rows = []
    for seed in SEEDS:
        trace = generate_trace(config, seed=seed)
        partition = find_filecules(trace)
        total = trace.total_bytes()
        caps = [max(int(f * total), 1) for f in CAPACITY_FRACTIONS]
        result = sweep(
            trace,
            POLICIES,
            caps,
            partition=partition,
            jobs=ctx.jobs,
        )
        factors = result.improvement_factor("file", "cule")
        per_seed_factors[seed] = factors
        rows.append(
            (
                seed,
                len(partition),
                factors[0],
                factors[len(factors) // 2],
                factors[-1],
            )
        )
    matrix = np.array([per_seed_factors[s] for s in SEEDS])
    checks = {
        "filecule-LRU wins at every capacity for every seed": bool(
            (matrix > 1.0).all()
        ),
        "factor grows from smallest to largest cache for every seed": bool(
            (matrix[:, -1] > matrix[:, 0]).all()
        ),
        "largest-cache factor always >= 3x": bool((matrix[:, -1] >= 3.0).all()),
        "seed-to-seed spread is moderate (max/min factor < 3 at the top)": bool(
            matrix[:, -1].max() < 3 * matrix[:, -1].min()
        ),
    }
    notes = (
        f"{len(SEEDS)} seeds at {ROBUSTNESS_SCALE:.0%} scale; largest-cache "
        f"factor {matrix[:, -1].min():.1f}x–{matrix[:, -1].max():.1f}x "
        f"(mean {matrix[:, -1].mean():.1f}x)",
        "the Figure 10 shape is a property of the workload class, not of "
        "one random draw",
    )
    return ExperimentResult(
        experiment_id="robustness",
        title="Seed-robustness of the Figure 10 comparison",
        headers=(
            "seed",
            "filecules",
            "factor @smallest",
            "factor @mid",
            "factor @largest",
        ),
        rows=tuple(rows),
        notes=notes,
        checks=checks,
    )
