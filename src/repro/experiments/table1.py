"""Table 1: characteristics of the traces per data tier.

Paper values (for reference, full DZero scale):

| Data tier     | Users | Jobs   | Files  | Input/Job (MB) | Time/Job (h) |
|---------------|-------|--------|--------|----------------|--------------|
| Reconstructed | 320   | 17898  | 515677 | 36371          | 11.01        |
| Root-tuple    | 63    | 1307   | 60719  | 83041          | 13.68        |
| Thumbnail     | 449   | 94625  | 428610 | 53619          | 4.89         |
| Others        | 435   | 120962 | N/A    | N/A            | 7.68         |
| All           | 561   | 233792 | N/A    | N/A            | 6.87         |

The reproduction regenerates the same columns from the synthetic trace;
at the default 5% scale the counts are ≈ 5% of the paper's while the
intensive columns (input/job, time/job) should land near the paper's
values directly.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.traces.stats import tier_table

#: Paper's intensive columns, for the notes section.
PAPER_INPUT_MB = {"Reconstructed": 36371.0, "Root-tuple": 83041.0, "Thumbnail": 53619.0}
PAPER_HOURS = {
    "Reconstructed": 11.01,
    "Root-tuple": 13.68,
    "Thumbnail": 4.89,
    "Other": 7.68,
    "All": 6.87,
}


@register("table1")
def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = tier_table(ctx.trace)
    table_rows = tuple(
        (
            r["tier"],
            r["users"],
            r["jobs"],
            r["files"],
            r["input_mb"],
            r["hours"],
        )
        for r in rows
    )
    notes = []
    checks: dict[str, bool] = {}
    by_tier = {r["tier"]: r for r in rows}
    for tier, paper_mb in PAPER_INPUT_MB.items():
        measured = by_tier[tier]["input_mb"]
        if measured is None:
            # a tier can be empty at tiny scales; report rather than crash
            notes.append(f"{tier}: no traced jobs at this scale")
            continue
        notes.append(
            f"{tier}: input/job paper={paper_mb:.0f} MB, "
            f"measured={measured:.0f} MB"
        )
        checks[f"{tier} input/job within 2x of paper"] = (
            0.5 * paper_mb <= measured <= 2.0 * paper_mb
        )
    for tier, paper_h in PAPER_HOURS.items():
        measured = by_tier.get(tier, {}).get("hours")
        if measured is not None:
            notes.append(
                f"{tier}: time/job paper={paper_h:.2f} h, measured={measured:.2f} h"
            )
            checks[f"{tier} time/job within 50% of paper"] = (
                0.5 * paper_h <= measured <= 1.5 * paper_h
            )
    # ordering of job counts per tier (thumbnail >> reconstructed > root-tuple)
    checks["job mix ordering matches paper"] = (
        by_tier["Thumbnail"]["jobs"]
        > by_tier["Reconstructed"]["jobs"]
        > by_tier["Root-tuple"]["jobs"]
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Characteristics of traces analyzed per data tier",
        headers=("Data tier", "Users", "Jobs", "Files", "Input/Job (MB)", "Time/Job (h)"),
        rows=table_rows,
        notes=tuple(notes),
        checks=checks,
    )
