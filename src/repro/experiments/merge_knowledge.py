"""§6 extension: pooling partial knowledge across concentration points.

The paper's §6 stops at "local filecules can only be larger".  The
natural next question for its proposed scheduler-concentrator deployment
is *how fast accuracy recovers as concentrators pool knowledge*.  Sites
exchange only their partition labels (one integer per observed file) and
take the meet (common refinement) — see :mod:`repro.core.merge`.

Expected shape: the meet of all sites equals the global partition
(theorem, also property-tested), and accuracy climbs steeply with the
first few (busiest) sites.
"""

from __future__ import annotations

from repro.core.merge import merge_accuracy_curve
from repro.experiments.base import ExperimentContext, ExperimentResult, register


@register("merge_knowledge")
def run(ctx: ExperimentContext) -> ExperimentResult:
    points = merge_accuracy_curve(ctx.trace, ctx.partition)
    rows = tuple(
        (
            p.n_observers,
            p.observer,
            p.n_files_covered,
            p.n_classes,
            p.exact_fraction,
            p.rand_index,
        )
        for p in points
    )
    exact = [p.exact_fraction for p in points]
    checks = {
        "accuracy never decreases as observers are added": all(
            a <= b + 1e-12 for a, b in zip(exact, exact[1:])
        ),
        "merging every site recovers the global partition exactly": (
            points[-1].exact_fraction == 1.0 and points[-1].rand_index == 1.0
        ),
        "the busiest site alone is already > 50% exact": exact[0] > 0.5,
        "pooling strictly improves on the busiest site alone": (
            exact[-1] > exact[0]
        ),
    }
    notes = (
        f"{points[0].observer} alone: {exact[0]:.0%} of filecules exact; "
        f"all {len(points)} sites: {exact[-1]:.0%}",
        "exchanged state is one label per observed file — no raw logs "
        "cross sites (the scalability §6 asks for)",
    )
    return ExperimentResult(
        experiment_id="merge_knowledge",
        title="Distributed identification: accuracy vs pooled observers (§6)",
        headers=(
            "observers",
            "added site",
            "files covered",
            "classes",
            "exact frac",
            "rand index",
        ),
        rows=rows,
        notes=notes,
        checks=checks,
    )
