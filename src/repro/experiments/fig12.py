"""Figure 12: time intervals in which a hot filecule is accessed per user.

Companion to Figure 11 with users disassociated from their institutions:
"while more activity is visible (there are periods when 10 users might
store at least partial copies ...), the load would hardly justify the use
of BitTorrent".
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.transfer.concurrency import concurrency_profile
from repro.transfer.intervals import (
    job_duration_intervals,
    select_hot_filecule,
    user_intervals,
)
from repro.util.ascii_plot import ascii_intervals
from repro.util.timeutil import SECONDS_PER_DAY


@register("fig12")
def run(ctx: ExperimentContext) -> ExperimentResult:
    fc = select_hot_filecule(ctx.trace, ctx.partition)
    intervals = user_intervals(ctx.trace, fc)
    rows = tuple(
        (
            iv.label,
            iv.start / SECONDS_PER_DAY,
            iv.end / SECONDS_PER_DAY,
            iv.n_jobs,
        )
        for iv in intervals
    )
    figure = ascii_intervals(
        [
            (iv.label, iv.start / SECONDS_PER_DAY, iv.end / SECONDS_PER_DAY)
            for iv in intervals
        ],
        title="per-user access intervals (days)",
    )
    profile = concurrency_profile(intervals)
    running = concurrency_profile(job_duration_intervals(ctx.trace, fc))
    checks = {
        "several users share the filecule": len(intervals) >= 3,
        "more activity visible than in the per-site view "
        "(paper: 'periods when 10 users might store copies')": (
            profile.max_concurrency >= 3
        ),
        "but actual running-job concurrency remains low (mean < 3)": (
            running.mean_concurrency < 3
        ),
    }
    notes = (
        f"{len(intervals)} users accessed the filecule "
        f"(paper's example: 42 users)",
        f"peak users holding it simultaneously (optimistic storage "
        f"assumption): {profile.max_concurrency} (paper: ~10)",
        f"jobs actually running on it simultaneously: "
        f"max {running.max_concurrency}, time-weighted mean "
        f"{running.mean_concurrency:.2f}",
        "spans assume data is retained between first and last use — the "
        "paper's stated optimistic assumption",
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="Time intervals a filecule is accessed by users",
        headers=("user", "first (day)", "last (day)", "jobs"),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
