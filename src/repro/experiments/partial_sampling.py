"""§6's sampling experiment: identification from a fraction of the jobs.

"Indeed, our preliminary experiments with this scenario show that larger
filecules are identified when only a part of the jobs submitted, and
thus datasets requested, are considered."

We identify filecules from random job samples of growing fraction and
measure, against the full-history partition: files covered, class count,
exact-match fraction and inflation (restricted-true classes per local
class).  The curve should show accuracy rising monotonically-ish with
the observed fraction, with inflation ≥ 1 throughout (the coarsening
theorem applies to *any* job subset, not just per-site ones).
"""

from __future__ import annotations

import numpy as np

from repro.core.dynamics import partition_similarity
from repro.core.identify import find_filecules
from repro.core.partial import is_coarsening_of
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.traces.combine import subsample_jobs

FRACTIONS: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 0.75, 1.0)
SAMPLE_SEED = 1234


@register("partial_sampling")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    global_p = ctx.partition
    rows = []
    exacts = []
    coarser_everywhere = True
    for fraction in FRACTIONS:
        sample = (
            trace
            if fraction >= 1.0
            else subsample_jobs(trace, fraction, seed=SAMPLE_SEED)
        )
        local = find_filecules(sample)
        coarser_everywhere &= is_coarsening_of(local, global_p)
        sim = partition_similarity(local, global_p)
        covered = int((local.labels >= 0).sum())
        mean_size = (
            float(local.files_per_filecule.mean()) if len(local) else 0.0
        )
        rows.append(
            (
                f"{fraction:.0%}",
                sample.n_jobs,
                covered,
                len(local),
                mean_size,
                sim.exact_fraction,
            )
        )
        exacts.append(sim.exact_fraction)
    mean_sizes = [row[4] for row in rows]
    checks = {
        "every sample's partition is a coarsening of the truth": (
            coarser_everywhere
        ),
        "full history recovers the exact partition": exacts[-1] == 1.0,
        "accuracy at 50% of jobs beats accuracy at 5%": exacts[3] > exacts[0],
        "sampled filecules are larger on average than true ones "
        "(paper: 'larger filecules are identified')": (
            mean_sizes[0] > mean_sizes[-1]
        ),
    }
    notes = (
        f"exact-match fraction climbs "
        f"{exacts[0]:.0%} -> {exacts[2]:.0%} -> {exacts[-1]:.0%} as the "
        f"observed job fraction grows 5% -> 25% -> 100%",
        "the coarsening theorem applies to any partial view — random "
        "samples behave like low-activity sites",
    )
    return ExperimentResult(
        experiment_id="partial_sampling",
        title="Identification from a sample of the jobs (§6)",
        headers=(
            "jobs observed",
            "n jobs",
            "files covered",
            "classes",
            "mean files/class",
            "exact frac",
        ),
        rows=tuple(rows),
        notes=notes,
        checks=checks,
    )
