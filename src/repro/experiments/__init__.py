"""Runnable reproductions of every table and figure in the paper.

Each experiment module exposes ``run(ctx) -> ExperimentResult``; the
registry in :mod:`repro.experiments.base` maps experiment ids (``table1``,
``fig10``, ...) to them.  Run from the command line::

    python -m repro.experiments fig10
    python -m repro.experiments all

or through the benchmark harness (``pytest benchmarks/ --benchmark-only``),
which executes the same code and prints the same rows.

All experiments share one :class:`ExperimentContext` — a deterministic
synthetic trace (default: the 5%-scale paper calibration, seed 7) plus its
filecule partition — so every figure describes the *same* workload, as in
the paper.
"""

from repro.experiments.base import (
    EXPERIMENT_SEED,
    ExperimentContext,
    ExperimentResult,
    all_experiment_ids,
    get_context,
    get_experiment,
    run_experiment,
)

# Import experiment modules for their registration side effects.
from repro.experiments import (  # noqa: F401  (registration imports)
    table1,
    table2,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    hierarchy_fig10,
    fig11,
    fig12,
    partial,
    swarm,
    replication,
    ablation_policies,
    ablation_dynamics,
    ablation_grouping,
    merge_knowledge,
    inaccurate_replication,
    grid,
    ablation_optimal,
    transfer_scheduling,
    robustness,
    robustness_matrix,
    partial_sampling,
    characterization,
    null_model,
    detection,
)

__all__ = [
    "EXPERIMENT_SEED",
    "ExperimentContext",
    "ExperimentResult",
    "all_experiment_ids",
    "get_context",
    "get_experiment",
    "run_experiment",
]
