"""Future-work study (§8): how stable are filecules over time?

"Do files stay in the same filecules or do they change over time? ...
are two filecules that contain the same file identical?"  We split the
trace into four epochs, identify filecules per epoch, and measure the
agreement between adjacent epochs on commonly-observed files, plus each
epoch's agreement with the full-history partition.
"""

from __future__ import annotations

from repro.core.dynamics import epoch_stability, partition_similarity
from repro.core.identify import find_filecules
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.traces.filters import split_epochs

N_EPOCHS = 4


@register("ablation_dynamics")
def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = []
    stability = epoch_stability(ctx.trace, N_EPOCHS)
    for row in stability:
        rows.append(
            (
                f"epoch {row.epoch_a} vs {row.epoch_b}",
                row.n_jobs_a,
                row.n_jobs_b,
                row.similarity.n_common_files,
                row.similarity.exact_fraction,
                row.similarity.rand_index,
            )
        )
    # each epoch against the full-history partition
    epochs = split_epochs(ctx.trace, N_EPOCHS)
    vs_global = []
    for k, epoch in enumerate(epochs):
        sim = partition_similarity(find_filecules(epoch), ctx.partition)
        vs_global.append(sim)
        rows.append(
            (
                f"epoch {k} vs global",
                epoch.n_jobs,
                ctx.trace.n_jobs,
                sim.n_common_files,
                sim.exact_fraction,
                sim.rand_index,
            )
        )
    adjacent = [r.similarity for r in stability]
    checks = {
        "adjacent epochs agree on most pairings (rand > 0.8)": all(
            s.rand_index > 0.8 for s in adjacent if s.n_common_files
        ),
        "filecules drift (exact match < 100% somewhere)": any(
            s.exact_fraction < 1.0 for s in adjacent if s.n_common_files
        ),
        "epoch partitions stay consistent with global pairs (rand > 0.8)": all(
            s.rand_index > 0.8 for s in vs_global if s.n_common_files
        ),
    }
    notes = (
        "pairwise structure (rand index) is stable across epochs, but "
        "exact filecule identity drifts as new dataset definitions touch "
        "old files — online identification must keep refining",
        "epoch-local filecules are coarsenings of the global partition "
        "(fewer observed jobs), consistent with the §6 theorem",
    )
    return ExperimentResult(
        experiment_id="ablation_dynamics",
        title="Filecule stability across trace epochs (§8 future work)",
        headers=(
            "comparison",
            "jobs A",
            "jobs B",
            "common files",
            "exact frac",
            "rand index",
        ),
        rows=tuple(rows),
        notes=notes,
        checks=checks,
    )
