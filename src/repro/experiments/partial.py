"""Section 6 experiment: filecule identification from partial knowledge.

"Our preliminary experiments ... show [that] larger filecules are
identified when only a part of the jobs submitted ... are considered.
... the more job submissions, the more likely that the filecules will be
smaller and thus more accurate.  Note that without global information,
identified filecules can only be larger than real filecules."

We identify filecules per site (each site sees only its own jobs),
verify the can-only-be-coarser theorem, and report accuracy vs local
activity.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.partial import coarsening_report, identify_per_site, is_coarsening_of
from repro.experiments.base import ExperimentContext, ExperimentResult, register


@register("partial")
def run(ctx: ExperimentContext) -> ExperimentResult:
    reports = coarsening_report(ctx.trace, group_by="site")
    locals_ = identify_per_site(ctx.trace)
    all_coarser = all(
        is_coarsening_of(local, ctx.partition) for local in locals_.values()
    )
    rows = tuple(
        (
            r.group,
            r.n_jobs,
            r.n_files_seen,
            r.n_local_filecules,
            r.n_true_filecules,
            r.exact_fraction,
            r.inflation,
        )
        for r in reports
    )
    # does accuracy grow with activity? rank-correlate jobs vs exactness
    multi = [r for r in reports if r.n_files_seen > 0]
    if len(multi) >= 3:
        rho, _ = stats.spearmanr(
            [r.n_jobs for r in multi], [r.exact_fraction for r in multi]
        )
        rho = float(rho) if rho == rho else 0.0
    else:  # pragma: no cover - degenerate workload
        rho = 0.0
    checks = {
        "every local partition is a coarsening of the global one": all_coarser,
        "inflation >= 1 everywhere (filecules only get larger)": all(
            r.inflation >= 1.0 - 1e-9 for r in reports
        ),
        "more local jobs correlate with better accuracy (rho > 0)": rho > 0,
    }
    notes = (
        f"theorem check: local filecules can only be coarser — "
        f"{'holds' if all_coarser else 'VIOLATED'} at all "
        f"{len(reports)} sites",
        f"activity-accuracy Spearman rho={rho:.2f} "
        f"(paper: more submissions => more accurate)",
    )
    return ExperimentResult(
        experiment_id="partial",
        title="Per-site filecule identification accuracy (§6)",
        headers=(
            "site",
            "jobs",
            "files seen",
            "local filecules",
            "true (restricted)",
            "exact frac",
            "inflation",
        ),
        rows=rows,
        notes=notes,
        checks=checks,
    )
