"""Figure 4: number of users sharing a filecule.

Paper: "about 10% of the filecules are accessed by one user only, a
significant fraction of filecules have a larger user population, capped
at 44", and "no correlation between filecule popularity and filecule
size".  We reproduce the sharing histogram and check both statements
(the user cap scales with the configured user population).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import popularity_size_correlation
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.util.ascii_plot import ascii_histogram


@register("fig4")
def run(ctx: ExperimentContext) -> ExperimentResult:
    users = ctx.partition.users_per_filecule(ctx.trace)
    values, counts = np.unique(users, return_counts=True)
    rows = tuple((int(v), int(c)) for v, c in zip(values, counts))
    figure = ascii_histogram(
        [str(int(v)) for v in values],
        counts.tolist(),
        title="filecules per user-count",
    )
    single_user_fraction = float((users == 1).mean())
    corr = popularity_size_correlation(ctx.partition)
    checks = {
        "roughly 10% of filecules are single-user (2%-35%)": (
            0.02 <= single_user_fraction <= 0.35
        ),
        "significant multi-user sharing (max users >= 5)": int(users.max()) >= 5,
        "no popularity-size correlation (|rho| < 0.3)": corr.is_negligible,
    }
    notes = (
        f"single-user filecules: paper~10%, measured "
        f"{single_user_fraction:.0%}",
        f"max users sharing one filecule: paper=44 (of 561 users), "
        f"measured={int(users.max())} (of {ctx.trace.n_users} users)",
        f"popularity-size correlation: pearson={corr.pearson_r:.3f}, "
        f"spearman={corr.spearman_rho:.3f} (paper: none)",
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Number of users sharing a filecule",
        headers=("users", "filecules"),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
