"""Falsifiability control: the filecule advantage must vanish under a null.

Shuffling the access table's file column preserves every marginal the
traditional analyses see — each job's input-set size (Figure 1), each
file's request count (popularity) and the file size catalog (Figure 3) —
but destroys *which files appear together*.  If the pipeline is honest,
the shuffled trace must show:

* filecules collapsing toward single files (no co-access ⇒ monatomic
  partition, up to coincidences);
* the Figure 10 advantage disappearing (factor ≈ 1);

while the real trace, measured side by side, keeps both.  This is the
control that says the reproduction *measures* structure rather than
assuming it.
"""

from __future__ import annotations

from repro.core.identify import find_filecules
from repro.engine import sweep
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.traces.combine import shuffled_null

NULL_SEED = 314
CAPACITY_FRACTION = 0.05

#: Short display names for the two contenders, as registry specs.
POLICIES: dict[str, str] = {"file": "file-lru", "cule": "filecule-lru"}


@register("null_model")
def run(ctx: ExperimentContext) -> ExperimentResult:
    real = ctx.trace
    real_p = ctx.partition
    null = shuffled_null(real, seed=NULL_SEED)
    null_p = find_filecules(null)

    rows = []
    factors = {}
    for label, trace, partition in (
        ("real", real, real_p),
        ("shuffled null", null, null_p),
    ):
        capacity = max(int(CAPACITY_FRACTION * trace.total_bytes()), 1)
        result = sweep(
            trace,
            POLICIES,
            [capacity],
            partition=partition,
            jobs=ctx.jobs,
        )
        factor = result.improvement_factor("file", "cule")[0]
        factors[label] = factor
        rows.append(
            (
                label,
                len(partition),
                float(partition.files_per_filecule.mean()),
                result.miss_rates("file")[0],
                result.miss_rates("cule")[0],
                factor,
            )
        )
    real_mean = float(real_p.files_per_filecule.mean())
    null_mean = float(null_p.files_per_filecule.mean())
    checks = {
        "null filecules collapse toward single files (mean < 1.2)": (
            null_mean < 1.2
        ),
        "real filecules are much larger than null ones (>= 4x)": (
            real_mean >= 4 * null_mean
        ),
        "filecule advantage vanishes under the null (factor < 1.1)": (
            factors["shuffled null"] < 1.1
        ),
        "and is large on the real trace (factor > 3)": factors["real"] > 3.0,
    }
    notes = (
        f"the shuffle preserves files/job and per-file popularity exactly; "
        f"only co-access dies — and with it the whole effect "
        f"({factors['real']:.1f}x -> {factors['shuffled null']:.2f}x)",
        "any analysis that still finds filecule structure on the null is "
        "broken; this control runs in the benchmark suite permanently",
    )
    return ExperimentResult(
        experiment_id="null_model",
        title="Falsifiability control: shuffled-access null model",
        headers=(
            "trace",
            "filecules",
            "mean files/filecule",
            "file-lru miss",
            "filecule-lru miss",
            "factor",
        ),
        rows=tuple(rows),
        notes=notes,
        checks=checks,
    )
