"""Table 2: characteristics of analyzed traces per location (domain).

Columns: jobs, submission nodes, sites, users, filecules, files, total
data (GB) — per Internet domain, sorted by activity.  The paper's key
qualitative feature is extreme skew: the ``.gov`` row (FermiLab) dwarfs
every other domain by orders of magnitude, and per-domain filecule counts
are far below per-domain file counts.
"""

from __future__ import annotations

from repro.core.identify import find_filecules
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.traces.stats import domain_table


@register("table2")
def run(ctx: ExperimentContext) -> ExperimentResult:
    rows = domain_table(
        ctx.trace, filecule_counter=lambda sub: len(find_filecules(sub))
    )
    table_rows = tuple(
        (
            r["domain"],
            r["jobs"],
            r["nodes"],
            r["sites"],
            r["users"],
            r["filecules"],
            r["files"],
            r["data_gb"],
        )
        for r in rows
    )
    checks: dict[str, bool] = {}
    notes = []
    if rows:
        top = rows[0]
        rest_jobs = sum(r["jobs"] for r in rows[1:])
        notes.append(
            f"most active domain: {top['domain']} with {top['jobs']} jobs "
            f"({top['jobs'] / max(1, top['jobs'] + rest_jobs):.0%} of all)"
        )
        checks["hub domain (.gov) is the most active"] = top["domain"] == ".gov"
        checks["hub dominates (>5x the next domain)"] = (
            len(rows) < 2 or top["jobs"] >= 5 * rows[1]["jobs"]
        )
        checks["filecules < files in every traced domain"] = all(
            r["filecules"] <= r["files"] for r in rows if r["files"]
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Characteristics of analyzed traces per location",
        headers=(
            "Domain",
            "Jobs",
            "Nodes",
            "Sites",
            "Users",
            "Filecules",
            "Files",
            "Data (GB)",
        ),
        rows=table_rows,
        notes=tuple(notes),
        checks=checks,
    )
