"""Figure 6: size of filecules (in MB) per data tier.

The paper shows per-tier boxplot-style size distributions (root-tuple,
reconstructed, thumbnail).  We report a distribution summary per tier and
check the qualitative ordering implied by the tier file-size rules.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.histograms import summarize_distribution
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.traces.records import (
    TIER_RECONSTRUCTED,
    TIER_ROOTTUPLE,
    TIER_THUMBNAIL,
    tier_name,
)
from repro.util.units import MB

#: The paper's per-tier panels, in display order.
FIG_TIERS = (TIER_ROOTTUPLE, TIER_RECONSTRUCTED, TIER_THUMBNAIL)


@register("fig6")
def run(ctx: ExperimentContext) -> ExperimentResult:
    tiers = ctx.partition.dominant_tiers(ctx.trace)
    sizes_mb = ctx.partition.sizes_bytes / MB
    rows = []
    notes = []
    checks: dict[str, bool] = {}
    for tier in FIG_TIERS:
        sample = sizes_mb[tiers == tier]
        summary = summarize_distribution(sample)
        rows.append(
            (
                tier_name(tier),
                summary.n,
                summary.mean,
                summary.median,
                summary.p90,
                summary.maximum,
            )
        )
        checks[f"{tier_name(tier)} has multi-file-scale filecules"] = bool(
            summary.n and summary.maximum > summary.median
        )
        notes.append(
            f"{tier_name(tier)}: {summary.n} filecules, median "
            f"{summary.median:.0f} MB, max {summary.maximum:.0f} MB"
        )
    checks["every tier contributes filecules"] = all(r[1] > 0 for r in rows)
    checks["largest filecule dwarfs the median (heavy upper tail)"] = bool(
        np.max(sizes_mb) > 20 * np.median(sizes_mb)
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Size of filecules (MB) per data tier",
        headers=("tier", "filecules", "mean MB", "median MB", "p90 MB", "max MB"),
        rows=tuple(rows),
        notes=tuple(notes),
        checks=checks,
    )
