"""Section 5 quantified: would BitTorrent help this workload?

The paper's verdict rests on eyeballing Figures 11–12.  Here we simulate
both transfer models (fluid swarm vs client-server processor sharing)
under the *actual* request arrival times of the hottest filecules, and —
as a control — under a synthetic flash crowd, where BitTorrent is known
to shine.  The reproduction passes when swarming buys ≈ nothing on the
real pattern but a large factor on the flash crowd.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.transfer.bittorrent import simulate_client_server, simulate_swarm
from repro.transfer.comparison import bittorrent_feasibility
from repro.util.units import GB, format_bytes


@register("swarm")
def run(ctx: ExperimentContext) -> ExperimentResult:
    rows_data = bittorrent_feasibility(ctx.trace, ctx.partition, top_k=5)
    rows = tuple(
        (
            f"filecule #{r.filecule_id}",
            format_bytes(r.size_bytes, 1),
            r.n_jobs,
            r.n_users,
            r.n_sites,
            r.max_concurrent_users,
            r.speedup,
        )
        for r in rows_data
    )
    # control: 40 peers requesting a 2 GB filecule simultaneously
    size = 2 * GB
    cs = simulate_client_server([0.0] * 40, size)
    sw = simulate_swarm([0.0] * 40, size)
    flash_speedup = (
        cs.mean_download_time / sw.mean_download_time
        if sw.mean_download_time
        else 1.0
    )
    max_real_speedup = max((r.speedup for r in rows_data), default=1.0)
    checks = {
        "swarming gains <20% on the observed workload": max_real_speedup < 1.2,
        "control: swarming shines under a flash crowd (>2x)": flash_speedup > 2.0,
        "hot filecules are shared by multiple users": all(
            r.n_users >= 2 for r in rows_data
        ),
    }
    notes = (
        f"best observed swarm speedup over client-server: "
        f"{max_real_speedup:.2f}x (paper: load 'would hardly justify' "
        f"BitTorrent)",
        f"flash-crowd control speedup: {flash_speedup:.1f}x — the "
        f"mechanism works; the workload simply lacks concurrency",
    )
    return ExperimentResult(
        experiment_id="swarm",
        title="BitTorrent feasibility under observed access patterns (§5)",
        headers=(
            "filecule",
            "size",
            "jobs",
            "users",
            "sites",
            "max conc",
            "swarm speedup",
        ),
        rows=rows,
        notes=notes,
        checks=checks,
    )
