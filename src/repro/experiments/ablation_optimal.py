"""Ablation: online filecule policies vs clairvoyant optima.

The sharpest version of the paper's thesis: compare each granularity's
*offline-optimal* (Belady MIN with full future knowledge) against the
online policies.  If even clairvoyant eviction at file granularity loses
to plain online filecule-LRU, then no amount of replacement-policy
cleverness can substitute for choosing the right management unit — the
granularity, not the policy, carries the benefit.

Also reports Mattson unit-count miss-rate curves at both granularities
(the analytic counterpart of Figure 10) and how close filecule-LRU gets
to its own clairvoyant bound.
"""

from __future__ import annotations

from repro.analysis.mrc import granularity_mrcs
from repro.engine import sweep
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.obs.instrument import progress_from_env
from repro.util.units import format_bytes

CAPACITY_FRACTIONS = (0.02, 0.1)

#: Online policies and their clairvoyant bounds, as registry specs.
POLICIES: tuple[str, ...] = (
    "file-lru",
    "file-belady-min",
    "filecule-lru",
    "filecule-belady-min",
)


@register("ablation_optimal")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    partition = ctx.partition
    total = trace.total_bytes()
    caps = [max(int(f * total), 1) for f in CAPACITY_FRACTIONS]
    result = sweep(
        trace,
        POLICIES,
        caps,
        partition=partition,
        instrumentation=progress_from_env("ablation_optimal"),
        jobs=ctx.jobs,
    )
    rows = []
    for i, cap in enumerate(caps):
        for name, metrics in result.metrics.items():
            rows.append(
                (format_bytes(cap, 1), name, metrics[i].miss_rate)
            )
    miss = {
        (name, i): metrics[i].miss_rate
        for name, metrics in result.metrics.items()
        for i in range(len(caps))
    }
    checks = {}
    for i, frac in enumerate(CAPACITY_FRACTIONS):
        label = f"{frac:.0%} cache"
        checks[f"{label}: clairvoyant MIN beats online LRU per granularity"] = (
            miss[("file-belady-min", i)] <= miss[("file-lru", i)] + 1e-9
            and miss[("filecule-belady-min", i)]
            <= miss[("filecule-lru", i)] + 1e-9
        )
        checks[
            f"{label}: online filecule-LRU beats even clairvoyant "
            f"file-granularity MIN"
        ] = miss[("filecule-lru", i)] < miss[("file-belady-min", i)]
        checks[f"{label}: filecule-LRU within 2x of its clairvoyant bound"] = (
            miss[("filecule-lru", i)]
            <= 2.0 * miss[("filecule-belady-min", i)] + 0.02
        )

    file_curve, cule_curve = granularity_mrcs(trace, partition)
    target = 0.8
    k_file = file_curve.capacity_for_hit_rate(target)
    k_cule = cule_curve.capacity_for_hit_rate(target)
    checks["Mattson: 80% hit rate needs far fewer filecule units"] = (
        k_cule * 3 <= k_file
    )
    notes = (
        "the gap between the granularities dwarfs the gap between online "
        "and clairvoyant eviction within a granularity — the unit of "
        "management, not the policy, is the paper's real contribution",
        f"Mattson unit-count curves: 80% hit rate needs {k_file} "
        f"concurrently-held files vs {k_cule} filecules",
        f"filecule-LRU is within "
        f"{(miss[('filecule-lru', 1)] / max(miss[('filecule-belady-min', 1)], 1e-9) - 1):.0%} "
        f"of its clairvoyant bound at the {CAPACITY_FRACTIONS[1]:.0%} cache",
    )
    return ExperimentResult(
        experiment_id="ablation_optimal",
        title="Online filecule policies vs clairvoyant (Belady MIN) optima",
        headers=("cache", "policy", "miss rate"),
        rows=tuple(rows),
        notes=notes,
        checks=checks,
    )
