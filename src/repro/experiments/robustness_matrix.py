"""Cross-scenario robustness of every registered policy.

The paper's Figure 10 ranks policies in one stationary world; this
driver re-ranks **all** registered replacement policies across the
:mod:`repro.scenario` catalog.  For every scenario the workload is
transformed (seed-deterministically), filecules are re-identified on the
transformed trace — identification *reacts* to the world, it is not
frozen at the stationary partition — and the full policy roster replays
it at a fixed cache capacity through the shared sweep engine (serial or
``--jobs`` parallel, identical results by construction).

The matrix cell is the policy's **byte miss rate** in that world; the
headline derived quantity is *degradation*: cell minus the same policy's
stationary-baseline cell.  A policy that only wins in the stationary
world shows up immediately as a column of large positive degradations.

``repro-experiments robustness-matrix --matrix-json out.json`` exports
the full matrix for the CI smoke job and downstream analysis.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro.core.identify import find_filecules
from repro.engine import sweep
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.obs.metrics import MetricsRegistry
from repro.scenario import parse_composition

#: Display name -> composition wire string.  The stationary entry is the
#: degradation baseline; the final entry exercises transform stacking.
DEFAULT_SCENARIOS: dict[str, str] = {
    "stationary": "stationary",
    "drift": "popularity-drift?strength=0.8",
    "phase-shift": "phase-shift?at=0.5",
    "flash-crowd": "flash-crowd?boost=0.5",
    "site-outage": "site-outage?duration=0.3",
    "scan-flood": "scan-flood?rate=0.15",
    "drift+flash": "popularity-drift?strength=0.8+flash-crowd?boost=0.5",
}

BASELINE = "stationary"

#: Fixed cache capacity as a fraction of the *stationary* trace's total
#: accessed bytes — the same absolute capacity in every scenario, so
#: cells differ only through the workload.
CAPACITY_FRACTION = 0.1


@dataclass(frozen=True)
class RobustnessMatrix:
    """Per-policy × per-scenario byte-miss-rate matrix."""

    scenarios: tuple[str, ...]
    compositions: dict[str, str]  # display name -> canonical composition
    policies: tuple[str, ...]
    capacity_bytes: int
    seed: int
    scores: dict[str, dict[str, float]]  # scenario -> policy -> byte miss rate
    registry: MetricsRegistry
    baseline: str = BASELINE

    def score(self, scenario: str, policy: str) -> float:
        return self.scores[scenario][policy]

    def degradation(self, scenario: str, policy: str) -> float:
        """Byte-miss-rate increase over the policy's stationary baseline."""
        return self.scores[scenario][policy] - self.scores[self.baseline][policy]

    @property
    def complete(self) -> bool:
        """Every cell present and finite (no NaN/None holes)."""
        for scenario in self.scenarios:
            row = self.scores.get(scenario)
            if row is None:
                return False
            for policy in self.policies:
                value = row.get(policy)
                if value is None or value != value:
                    return False
        return True

    def as_dict(self) -> dict:
        """JSON-ready form (the ``--matrix-json`` artifact)."""
        return {
            "baseline": self.baseline,
            "capacity_bytes": self.capacity_bytes,
            "seed": self.seed,
            "policies": list(self.policies),
            "scenarios": [
                {"name": name, "composition": self.compositions[name]}
                for name in self.scenarios
            ],
            "scores": {
                scenario: {
                    policy: self.scores[scenario][policy]
                    for policy in self.policies
                }
                for scenario in self.scenarios
            },
            "degradation": {
                scenario: {
                    policy: self.degradation(scenario, policy)
                    for policy in self.policies
                }
                for scenario in self.scenarios
            },
        }


def write_matrix_json(path: str | Path, matrix: RobustnessMatrix) -> Path:
    path = Path(path)
    path.write_text(json.dumps(matrix.as_dict(), indent=2) + "\n")
    return path


@lru_cache(maxsize=4)
def build_matrix(ctx: ExperimentContext) -> RobustnessMatrix:
    """Sweep every registered policy across every default scenario.

    Memoized per context, so the experiment runner and the
    ``--matrix-json`` exporter share one computation.  ``ctx.jobs > 1``
    fans each scenario's policy grid out through the parallel runner;
    results are identical to serial (asserted in the tests).
    """
    # Lazy upcall: the registry sits above the engine but below the
    # experiments, and we want the full roster including offline bounds.
    from repro import registry

    policies = tuple(registry.policy_names())
    capacity = max(1, int(CAPACITY_FRACTION * ctx.trace.total_bytes()))
    registry_metrics = MetricsRegistry()

    scenarios = tuple(DEFAULT_SCENARIOS)
    compositions: dict[str, str] = {}
    scores: dict[str, dict[str, float]] = {}
    for name in scenarios:
        composition = parse_composition(DEFAULT_SCENARIOS[name])
        compositions[name] = str(composition)
        t0 = time.perf_counter()
        world = composition.apply(ctx.trace, seed=ctx.seed)
        partition = find_filecules(world)
        result = sweep(
            world,
            {p: p for p in policies},
            [capacity],
            partition=partition,
            jobs=ctx.jobs,
        )
        scores[name] = {
            p: result.metrics[p][0].byte_miss_rate for p in policies
        }
        elapsed = time.perf_counter() - t0
        registry_metrics.inc("scenario_cells", len(policies), scenario=name)
        registry_metrics.observe("scenario_sweep_seconds", elapsed, scenario=name)
    return RobustnessMatrix(
        scenarios=scenarios,
        compositions=compositions,
        policies=policies,
        capacity_bytes=capacity,
        seed=ctx.seed,
        scores=scores,
        registry=registry_metrics,
    )


@register("robustness-matrix")
def run(ctx: ExperimentContext) -> ExperimentResult:
    matrix = build_matrix(ctx)
    non_baseline = [s for s in matrix.scenarios if s != matrix.baseline]
    rows = []
    for policy in matrix.policies:
        degradations = [matrix.degradation(s, policy) for s in non_baseline]
        worst = max(
            non_baseline, key=lambda s: matrix.degradation(s, policy)
        )
        rows.append(
            (
                policy,
                round(matrix.score(matrix.baseline, policy), 4),
                *(round(d, 4) for d in degradations),
                worst,
            )
        )
    # Rank by stationary score so the table reads like Figure 10's order.
    rows.sort(key=lambda r: r[1])

    degradation_cells = [
        matrix.degradation(s, p)
        for s in non_baseline
        for p in matrix.policies
    ]
    from repro import registry

    checks = {
        "matrix is complete (no NaN cells)": matrix.complete,
        "covers every registered policy": set(matrix.policies)
        == set(registry.policy_names()),
        "covers at least 5 scenarios beyond the baseline": len(non_baseline)
        >= 5,
        "baseline column is zero degradation by construction": all(
            matrix.degradation(matrix.baseline, p) == 0.0
            for p in matrix.policies
        ),
        "some scenario degrades some policy": any(
            d > 0 for d in degradation_cells
        ),
    }
    notes = (
        f"{len(matrix.policies)} policies x {len(matrix.scenarios)} scenarios "
        f"at capacity {matrix.capacity_bytes} bytes "
        f"({CAPACITY_FRACTION:.0%} of the stationary footprint)",
        "cells are byte miss rates; degradation = cell - stationary cell",
        f"worst single degradation: {max(degradation_cells):+.4f}",
    )
    return ExperimentResult(
        experiment_id="robustness-matrix",
        title="Policy robustness across workload scenarios",
        headers=(
            "policy",
            f"{matrix.baseline} miss",
            *(f"Δ {s}" for s in non_baseline),
            "worst scenario",
        ),
        rows=tuple(rows),
        notes=notes,
        checks=checks,
    )
