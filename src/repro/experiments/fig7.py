"""Figure 7: number of files per filecule, per data tier.

Companion of Figure 6 in file counts instead of bytes.  The qualitative
content: filecules are frequently much larger than one file (the whole
argument for a coarser management granularity) while monatomic filecules
also exist.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.histograms import summarize_distribution
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.experiments.fig6 import FIG_TIERS
from repro.traces.records import tier_name


@register("fig7")
def run(ctx: ExperimentContext) -> ExperimentResult:
    tiers = ctx.partition.dominant_tiers(ctx.trace)
    counts = ctx.partition.files_per_filecule
    rows = []
    notes = []
    for tier in FIG_TIERS:
        sample = counts[tiers == tier]
        summary = summarize_distribution(sample)
        monatomic = float((sample == 1).mean()) if len(sample) else 0.0
        rows.append(
            (
                tier_name(tier),
                summary.n,
                summary.mean,
                summary.median,
                summary.maximum,
                monatomic,
            )
        )
        notes.append(
            f"{tier_name(tier)}: mean {summary.mean:.1f} files/filecule, "
            f"{monatomic:.0%} monatomic"
        )
    overall_mean = float(counts.mean())
    checks = {
        "filecules aggregate files (overall mean > 2)": overall_mean > 2,
        "monatomic filecules exist": bool(np.any(counts == 1)),
        "largest filecule has 10+ files": int(counts.max()) >= 10,
    }
    notes.append(
        f"overall: {len(ctx.partition)} filecules covering "
        f"{ctx.partition.n_covered_files} files "
        f"(mean {overall_mean:.1f} files/filecule)"
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="Number of files per filecule, per data tier",
        headers=(
            "tier",
            "filecules",
            "mean files",
            "median files",
            "max files",
            "monatomic frac",
        ),
        rows=tuple(rows),
        notes=tuple(notes),
        checks=checks,
    )
