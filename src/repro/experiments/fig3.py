"""Figure 3: file size distribution.

The paper's observation (§3.1) is that scientific file sizes do *not*
follow the heavy-tailed model of file systems and the web: sizes are
governed by domain rules (250 KB events, 1 GB raw-file cap) and
deployment decisions, producing a narrow multi-modal distribution — one
mode per tier.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.histograms import log_bins
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.util.ascii_plot import ascii_histogram
from repro.util.units import MB, format_bytes


@register("fig3")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    sizes = trace.file_sizes[trace.accessed_file_ids]
    edges = log_bins(float(sizes.min()), float(sizes.max()), per_decade=6)
    hist, _ = np.histogram(sizes, bins=edges)
    labels = [format_bytes(lo, 0) for lo in edges[:-1]]
    rows = tuple(
        (label, int(count)) for label, count in zip(labels, hist) if count
    )
    figure = ascii_histogram(
        [r[0] for r in rows],
        [r[1] for r in rows],
        title="files per size bucket (accessed files)",
    )
    spread = float(sizes.max()) / float(sizes.min())
    cv = float(sizes.std() / sizes.mean())
    checks = {
        # web/file-system models span 6+ decades; DZero spans ~2
        "size spread narrow (max/min < 1000)": spread < 1000,
        "not heavy tailed (coeff of variation < 2)": cv < 2.0,
        "typical file in the 100 MB - 2 GB regime": bool(
            100 * MB <= np.median(sizes) <= 2048 * MB
        ),
    }
    notes = (
        f"min={format_bytes(float(sizes.min()))}, "
        f"median={format_bytes(float(np.median(sizes)))}, "
        f"max={format_bytes(float(sizes.max()))}",
        f"coefficient of variation={cv:.2f} "
        f"(web content is typically >> 2)",
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="File size distribution",
        headers=("size bucket (>=)", "files"),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
