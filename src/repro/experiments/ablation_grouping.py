"""Ablation: where does the filecule advantage come from?

Compares every *grouping-aware* approach at the Figure 10 mid-sweep point
— the comparison the paper leaves open in §4 ("We leave as future work
the comparison of [Otoo et al.'s file-bundle] strategy with filecule LRU
on the DZero traces") and in §8 (filecule-aware replacement variants):

* ``file-lru`` — the no-grouping baseline;
* ``file-bundle`` — Otoo-style bundle-utility eviction (popularity ×
  bundle membership × bundle size), no prefetching, no filecule oracle;
* ``working-set-prefetch`` — Tait&Duchamp-style *learned* co-access
  groups, prefetching its (shrinking) predictions;
* ``filecule-lru`` / ``filecule-lfu`` / ``filecule-gds`` — the oracle
  grouping with three eviction disciplines.

The stack-distance analysis below explains the mechanism: at filecule
granularity the median reuse distance collapses, so *any* reasonable
eviction discipline over filecules performs similarly — the grouping,
not the policy, is what matters (the paper's thesis, sharpened).
"""

from __future__ import annotations

from repro.analysis.temporal import file_vs_filecule_reuse
from repro.engine import sweep
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.util.units import format_bytes

CAPACITY_FRACTION = 0.05

#: The grouping-aware field, as registry specs.
POLICIES: tuple[str, ...] = (
    "file-lru",
    "file-bundle",
    "working-set-prefetch",
    "filecule-lru",
    "filecule-lfu",
    "filecule-gds",
)


@register("ablation_grouping")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    partition = ctx.partition
    capacity = max(int(CAPACITY_FRACTION * trace.total_bytes()), 1)
    result = sweep(
        trace, POLICIES, [capacity], partition=partition, jobs=ctx.jobs
    )
    rows = tuple(
        (
            name,
            metrics[0].miss_rate,
            metrics[0].byte_miss_rate,
            metrics[0].fetch_overhead,
        )
        for name, metrics in result.metrics.items()
    )
    miss = {name: m[0].miss_rate for name, m in result.metrics.items()}
    overhead = {name: m[0].fetch_overhead for name, m in result.metrics.items()}

    file_reuse, cule_reuse = file_vs_filecule_reuse(trace, partition)

    filecule_family = ("filecule-lru", "filecule-lfu", "filecule-gds")
    family_best = min(miss[n] for n in filecule_family)
    family_worst = max(miss[n] for n in filecule_family)
    checks = {
        "every grouping-aware policy beats plain file-LRU": all(
            miss[n] < miss["file-lru"]
            for n in ("file-bundle", "working-set-prefetch", *filecule_family)
        ),
        "filecule eviction discipline is secondary "
        "(family spread < 0.1 miss rate)": family_worst - family_best < 0.1,
        "learned groups approach oracle hit rates": (
            miss["working-set-prefetch"] <= 2.5 * family_worst + 0.05
        ),
        "but learned prefetch pays more network than the oracle": (
            overhead["working-set-prefetch"] > overhead["filecule-lru"]
        ),
        "bundle eviction (no prefetch) cannot close the gap alone": (
            miss["file-bundle"] > family_worst
        ),
        "reuse distance collapses at filecule granularity (>=3x)": (
            file_reuse.median_distance >= 3 * max(cule_reuse.median_distance, 1)
        ),
    }
    notes = (
        f"cache capacity: {format_bytes(capacity, 1)} "
        f"({CAPACITY_FRACTION:.0%} of accessed data)",
        f"median LRU stack distance: {file_reuse.median_distance:.0f} "
        f"distinct files vs {cule_reuse.median_distance:.0f} distinct "
        f"filecules — Mattson's lens on why coarsening the unit is the "
        f"whole game",
        f"learned working-set groups reach miss "
        f"{miss['working-set-prefetch']:.2f} without any oracle, but fetch "
        f"{overhead['working-set-prefetch']:.0f} bytes per missed byte vs "
        f"{overhead['filecule-lru']:.0f} for identified filecules — "
        f"identification pays for itself in network traffic",
    )
    return ExperimentResult(
        experiment_id="ablation_grouping",
        title="Grouping-aware caching: bundles, learned groups, filecule variants",
        headers=("policy", "miss rate", "byte miss rate", "fetch overhead"),
        rows=rows,
        notes=notes,
        checks=checks,
    )
