"""Figure 2: the number of jobs and file requests per day.

The paper plots two daily series over the 27-month window.  The
reproduction reports monthly aggregates as rows (820 daily rows would be
unreadable), renders the daily series as an ASCII chart, and checks the
qualitative features: multi-month coverage, burstiness and an upward
activity ramp.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.traces.stats import daily_activity
from repro.util.ascii_plot import ascii_series


@register("fig2")
def run(ctx: ExperimentContext) -> ExperimentResult:
    days, jobs, requests = daily_activity(ctx.trace)
    n_days = len(days)
    month = days // 30
    n_months = int(month.max()) + 1 if n_days else 0
    jobs_pm = np.bincount(month, weights=jobs, minlength=n_months)
    reqs_pm = np.bincount(month, weights=requests, minlength=n_months)
    rows = tuple(
        (int(m), int(jobs_pm[m]), float(reqs_pm[m] / 1000.0))
        for m in range(n_months)
    )
    figure = ascii_series(
        days.tolist(),
        {"jobs/day": jobs.tolist(), "requests/day ('000s)": (requests / 1000.0).tolist()},
        title="daily activity over the trace window",
    )
    active = jobs > 0
    first_half = jobs[: n_days // 2].mean() if n_days else 0.0
    second_half = jobs[n_days // 2 :].mean() if n_days else 0.0
    checks = {
        "window spans more than a year": n_days > 365,
        "activity on most days": float(active.mean()) > 0.5,
        "bursty (max day > 3x mean day)": bool(
            n_days and jobs.max() > 3 * jobs[active].mean()
        ),
    }
    notes = (
        f"{n_days} days, {int(jobs.sum())} jobs, "
        f"{int(requests.sum())} file requests",
        f"busiest day: {int(jobs.max()) if n_days else 0} jobs / "
        f"{float(requests.max() / 1000.0) if n_days else 0:.1f}k requests",
        f"first-half vs second-half mean jobs/day: {first_half:.1f} vs "
        f"{second_half:.1f} (the generator ramps activity 1.5x over the "
        f"window, but reprocessing bursts can dominate either half)",
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="Jobs and file requests (in '000s) per day",
        headers=("month", "jobs", "requests ('000s)"),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
