"""Figure 8: popularity distribution of filecules per data tier.

The paper's §3.2 point: the distribution "does not follow the traditional
Zipf distribution model" — scientists re-request the same data and
interest is partitioned geographically, flattening the head.  We fit a
power law to each tier's rank-frequency series and check that a clean
Zipf fit fails.
"""

from __future__ import annotations

from repro.analysis.popularity import fit_zipf, popularity_by_tier
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.experiments.fig6 import FIG_TIERS
from repro.traces.records import tier_name
from repro.util.ascii_plot import ascii_series


@register("fig8")
def run(ctx: ExperimentContext) -> ExperimentResult:
    by_tier = popularity_by_tier(ctx.trace, ctx.partition)
    rows = []
    notes = []
    checks: dict[str, bool] = {}
    series = {}
    for tier in FIG_TIERS:
        sample = by_tier.get(tier)
        if sample is None or len(sample) == 0:
            continue
        fit = fit_zipf(sample)
        rows.append(
            (
                tier_name(tier),
                len(sample),
                float(sample.mean()),
                int(sample.max()),
                fit.alpha,
                fit.r_squared,
                fit.head_flatness,
            )
        )
        checks[f"{tier_name(tier)} popularity is not clean Zipf"] = (
            not fit.is_zipf_like
        )
        notes.append(
            f"{tier_name(tier)}: zipf fit alpha={fit.alpha:.2f}, "
            f"R^2={fit.r_squared:.3f}, head flatness={fit.head_flatness:.2f}"
        )
        ranked = sorted(sample.tolist(), reverse=True)
        n = len(ranked)
        xs = list(range(1, n + 1))
        series[tier_name(tier)] = ranked if n else []
    # render the largest tier's rank-frequency curve
    if series:
        largest = max(series, key=lambda k: len(series[k]))
        ranked = series[largest]
        figure = ascii_series(
            list(range(1, len(ranked) + 1)),
            {largest: ranked},
            title=f"rank-frequency, {largest} tier (log y)",
            logy=True,
        )
    else:  # pragma: no cover - degenerate workload
        figure = "(no per-tier popularity data)"
    return ExperimentResult(
        experiment_id="fig8",
        title="Popularity distribution (requests) for filecules per tier",
        headers=(
            "tier",
            "filecules",
            "mean reqs",
            "max reqs",
            "zipf alpha",
            "fit R^2",
            "head flatness",
        ),
        rows=tuple(rows),
        figure_text=figure,
        notes=tuple(notes),
        checks=checks,
    )
