"""Ablation: filecule-LRU against the §7 related-work baselines.

The paper compares only file-LRU and filecule-LRU, leaving "comparison of
[Otoo et al.'s bundle strategy] with filecule LRU on the DZero traces" to
future work.  This ablation runs the wider field at one mid-sweep cache
size: FIFO, perfect LFU, SIZE (largest-first), Greedy-Dual-Size,
Landlord, ARC (the strongest adaptive single-file policy), group-
prefetching LRU (dataset-of-birth groups, the Amer/Ganger style of §7),
and filecule-LRU.
"""

from __future__ import annotations

from repro.engine import sweep
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.util.units import format_bytes

#: Mid-sweep point of Figure 10 (5% of total data ≈ the paper's 25 TB).
CAPACITY_FRACTION = 0.05

#: The ablation field, as registry specs (canonical spec == display name).
POLICIES: tuple[str, ...] = (
    "file-fifo",
    "file-lru",
    "file-lfu",
    "largest-first",
    "greedy-dual-size",
    "landlord",
    "arc",
    "group-prefetch-lru",
    "filecule-lru",
)

#: The single-file members of the field (for best-of comparisons below).
SINGLE_FILE_POLICIES: tuple[str, ...] = (
    "file-fifo",
    "file-lru",
    "file-lfu",
    "largest-first",
    "greedy-dual-size",
    "landlord",
    "arc",
)


@register("ablation_policies")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    partition = ctx.partition
    capacity = max(int(CAPACITY_FRACTION * trace.total_bytes()), 1)
    result = sweep(
        trace, POLICIES, [capacity], partition=partition, jobs=ctx.jobs
    )
    rows = tuple(
        (
            name,
            metrics[0].miss_rate,
            metrics[0].byte_miss_rate,
            metrics[0].fetch_overhead,
        )
        for name, metrics in result.metrics.items()
    )
    miss = {name: m[0].miss_rate for name, m in result.metrics.items()}
    overhead = {name: m[0].fetch_overhead for name, m in result.metrics.items()}
    best_file_gran = min(
        v for k, v in miss.items() if k in SINGLE_FILE_POLICIES
    )
    checks = {
        "filecule-LRU beats every file-granularity policy": (
            miss["filecule-lru"] < best_file_gran
        ),
        "group-based policies beat every single-file policy": (
            max(miss["filecule-lru"], miss["group-prefetch-lru"])
            < best_file_gran
        ),
        "filecule prefetch is far cheaper than birth-dataset prefetch "
        "(<= 25% of its fetch overhead)": (
            overhead["filecule-lru"] <= 0.25 * overhead["group-prefetch-lru"]
        ),
        "single-file policies pay ~1 byte fetched per missed byte": all(
            overhead[k] <= 1.05 for k in SINGLE_FILE_POLICIES
        ),
    }
    notes = (
        f"cache capacity: {format_bytes(capacity, 1)} "
        f"({CAPACITY_FRACTION:.0%} of accessed data)",
        "usage-defined groups (filecules) get group-prefetch hit rates at "
        "a fraction of the network cost: birth-dataset prefetching "
        f"fetches {overhead['group-prefetch-lru']:.0f} bytes per missed "
        f"byte vs {overhead['filecule-lru']:.0f} for filecule-LRU — "
        "filecules are the co-access unit, larger groups only add waste",
        f"pure-frequency LFU ({miss['file-lfu']:.2f}) vs recency LRU "
        f"({miss['file-lru']:.2f}): scientists re-request the same data, "
        "so popularity carries real signal here (cf. Otoo et al., §7)",
    )
    return ExperimentResult(
        experiment_id="ablation_policies",
        title="Cache policy ablation at the Figure 10 mid-sweep point",
        headers=("policy", "miss rate", "byte miss rate", "fetch overhead"),
        rows=rows,
        notes=notes,
        checks=checks,
    )
