"""Command-line entry point: ``python -m repro.experiments <id|all>``.

Besides running experiments, ``repro-experiments list-policies`` (or
``--list-policies``) prints the :mod:`repro.registry` policy catalog —
every spec's canonical name, capability flags, parameter defaults,
aliases and summary — without building a workload.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.base import (
    EXPERIMENT_SEED,
    all_experiment_ids,
    get_context,
    run_experiment,
)


def render_policy_catalog() -> str:
    """The registry's policy catalog as an aligned monospace table."""
    from repro import registry
    from repro.util.tables import render_table

    def fmt(value: object) -> str:
        # Spec wire format: booleans render as parse() accepts them.
        return str(value).lower() if isinstance(value, bool) else str(value)

    rows = []
    for spec in registry.list_specs():
        rows.append(
            (
                spec.name,
                ",".join(spec.flags) or "-",
                (
                    "&".join(
                        f"{k}={fmt(v)}" for k, v in sorted(spec.defaults.items())
                    )
                    or "-"
                ),
                ",".join(spec.aliases) or "-",
                spec.summary,
            )
        )
    table = render_table(
        ("policy", "flags", "defaults", "aliases", "summary"),
        rows,
        title="registered policy specs (select with name?param=value&...)",
        align_right=False,
    )
    return table


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the paper's tables and figures from the calibrated "
            "synthetic DZero workload."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=(
            "experiment ids (or 'all'); known: "
            f"{', '.join(all_experiment_ids())}; 'list-policies' prints "
            "the policy catalog"
        ),
    )
    parser.add_argument(
        "--list-policies",
        action="store_true",
        help="print the registered cache-policy specs and exit",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=("default", "small", "tiny"),
        help="workload scale preset (default: 'default', 5%% of paper scale)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=EXPERIMENT_SEED,
        help=f"workload seed (default: {EXPERIMENT_SEED})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the sweep-backed experiments (fig10, "
            "null_model, robustness, ablations); default: 1 (serial). "
            "Parallel results are identical to serial by construction."
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any qualitative check fails",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write a self-contained markdown report to PATH",
    )
    parser.add_argument(
        "--matrix-json",
        metavar="PATH",
        help=(
            "write the robustness-matrix scores as JSON to PATH (only "
            "meaningful when running the robustness-matrix experiment)"
        ),
    )
    parser.add_argument(
        "--detection-json",
        metavar="PATH",
        help=(
            "write the detector score matrix as JSON to PATH (only "
            "meaningful when running the detection experiment)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_policies or "list-policies" in args.experiments:
        print(render_policy_catalog())
        return 0
    if not args.experiments:
        parser.error("no experiment ids given (or use --list-policies)")

    ids = (
        all_experiment_ids()
        if "all" in args.experiments
        else list(dict.fromkeys(args.experiments))
    )
    unknown = [i for i in ids if i not in all_experiment_ids()]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    ctx = get_context(args.scale, args.seed, args.jobs)
    print(
        f"workload: scale={ctx.scale}, seed={ctx.seed}, {ctx.trace!r}, "
        f"{len(ctx.partition)} filecules"
        + (f", {ctx.jobs} sweep workers" if ctx.jobs > 1 else ""),
        flush=True,
    )
    if args.report:
        from repro.experiments.report import generate_report

        path = generate_report(args.report, ctx, experiment_ids=ids)
        print(f"wrote report to {path}")

    failures = 0
    for experiment_id in ids:
        t0 = time.perf_counter()
        result = run_experiment(experiment_id, ctx)
        elapsed = time.perf_counter() - t0
        print()
        print(result.render())
        print(f"({elapsed:.2f}s)")
        if not result.all_checks_pass:
            failures += 1

    if args.matrix_json:
        if "robustness-matrix" not in ids:
            parser.error("--matrix-json requires running robustness-matrix")
        from repro.experiments.robustness_matrix import (
            build_matrix,
            write_matrix_json,
        )

        # build_matrix is memoized per context: this reuses the run above.
        path = write_matrix_json(args.matrix_json, build_matrix(ctx))
        print(f"wrote robustness matrix to {path}")
    if args.detection_json:
        if "detection" not in ids:
            parser.error("--detection-json requires running detection")
        from repro.experiments.detection import (
            build_detection,
            write_detection_json,
        )

        # build_detection is memoized per context: reuses the run above.
        path = write_detection_json(args.detection_json, build_detection(ctx))
        print(f"wrote detection scores to {path}")
    if failures:
        print(f"\n{failures} experiment(s) with failing checks", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
