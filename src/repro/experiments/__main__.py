"""Command-line entry point: ``python -m repro.experiments <id|all>``.

Besides running experiments, ``repro-experiments list-policies`` (or
``--list-policies``) prints the :mod:`repro.registry` policy catalog —
every spec's canonical name, capability flags, parameter defaults,
aliases and summary — without building a workload.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.base import (
    EXPERIMENT_SEED,
    all_experiment_ids,
    get_context,
    run_experiment,
)


def render_policy_catalog() -> str:
    """The registry's policy catalog as an aligned monospace table."""
    from repro import registry
    from repro.util.tables import render_table

    def fmt(value: object) -> str:
        # Spec wire format: booleans render as parse() accepts them.
        return str(value).lower() if isinstance(value, bool) else str(value)

    rows = []
    for spec in registry.list_specs():
        rows.append(
            (
                spec.name,
                ",".join(spec.flags) or "-",
                (
                    "&".join(
                        f"{k}={fmt(v)}" for k, v in sorted(spec.defaults.items())
                    )
                    or "-"
                ),
                ",".join(spec.aliases) or "-",
                spec.summary,
            )
        )
    table = render_table(
        ("policy", "flags", "defaults", "aliases", "summary"),
        rows,
        title="registered policy specs (select with name?param=value&...)",
        align_right=False,
    )
    return table


def run_sweep_command(args: argparse.Namespace) -> int:
    """The ``sweep`` subcommand: a fig10-style (policy x capacity) grid.

    With ``--dry-run`` the plan — grid shape, estimated accesses, the
    chunking and the serial-vs-parallel decision — is printed from the
    workload *config alone*, without generating a trace, so a paper- or
    grown-scale sweep can be sanity-checked in milliseconds before
    committing real hours to it.
    """
    from repro.experiments.base import _SCALES
    from repro.experiments.fig10 import (
        CAPACITY_FRACTIONS,
        POLICIES,
        capacities_for,
    )
    from repro.parallel import plan_sweep
    from repro.util.units import format_bytes

    policies = tuple(args.policies.split(",")) if args.policies else POLICIES
    config = _SCALES[args.scale]()
    n_cells = len(policies) * len(CAPACITY_FRACTIONS)
    est_accesses = config.estimated_accesses
    est_bytes = config.estimated_total_bytes
    plan = plan_sweep(n_cells, est_accesses, args.jobs)

    print(f"sweep plan: scale={args.scale} seed={args.seed} jobs={args.jobs}")
    print(
        f"  grid: {len(policies)} policies x {len(CAPACITY_FRACTIONS)} "
        f"capacities = {n_cells} cells"
    )
    print(f"  policies: {', '.join(policies)}")
    print(
        "  capacities: "
        + ", ".join(
            format_bytes(c, 1) for c in capacities_for(est_bytes)
        )
        + f"  (fractions of ~{format_bytes(est_bytes, 1)} estimated data)"
    )
    print(
        f"  est. accesses: {est_accesses:,} per cell, "
        f"{plan.total_accesses:,} total"
    )
    mode = "parallel" if plan.use_parallel else "serial"
    print(
        f"  decision: {mode} — {plan.reason}"
        + (
            f"\n  chunking: {plan.n_chunks} chunks of "
            f"{plan.cells_per_chunk} cell(s) on {plan.workers} workers"
            if plan.use_parallel
            else ""
        )
    )
    if args.dry_run:
        return 0

    from repro.engine import sweep as run_sweep

    ctx = get_context(args.scale, args.seed, args.jobs)
    caps = capacities_for(ctx.trace.total_bytes())
    t0 = time.perf_counter()
    result = run_sweep(
        ctx.trace,
        policies,
        caps,
        partition=ctx.partition,
        jobs=args.jobs,
    )
    elapsed = time.perf_counter() - t0
    for name in policies:
        rates = result.miss_rates(name)
        for cap, rate in zip(caps, rates):
            print(f"  {name}@{format_bytes(cap, 1)}: miss rate {rate:.4f}")
    print(f"({elapsed:.2f}s, {plan.total_accesses:,} accesses estimated)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the paper's tables and figures from the calibrated "
            "synthetic DZero workload."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help=(
            "experiment ids (or 'all'); known: "
            f"{', '.join(all_experiment_ids())}; 'list-policies' prints "
            "the policy catalog; 'sweep' runs (or with --dry-run, plans) "
            "a fig10-style policy/capacity grid"
        ),
    )
    parser.add_argument(
        "--list-policies",
        action="store_true",
        help="print the registered cache-policy specs and exit",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=("default", "small", "tiny", "paper", "grown"),
        help=(
            "workload scale preset (default: 'default', 5%% of paper "
            "scale); 'paper' and 'grown' (10x paper) go through the "
            "on-disk trace store and take minutes + GBs on first use"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=EXPERIMENT_SEED,
        help=f"workload seed (default: {EXPERIMENT_SEED})",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the sweep-backed experiments (fig10, "
            "null_model, robustness, ablations); default: 1 (serial). "
            "Parallel results are identical to serial by construction."
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any qualitative check fails",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help=(
            "with 'sweep': print the planned grid (cells, estimated "
            "accesses, chunking, serial-vs-parallel decision) and exit "
            "without generating a trace or replaying anything"
        ),
    )
    parser.add_argument(
        "--policies",
        metavar="NAMES",
        help=(
            "with 'sweep': comma-separated registry specs to sweep "
            "(default: the Figure 10 pair, file-lru,filecule-lru)"
        ),
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write a self-contained markdown report to PATH",
    )
    parser.add_argument(
        "--matrix-json",
        metavar="PATH",
        help=(
            "write the robustness-matrix scores as JSON to PATH (only "
            "meaningful when running the robustness-matrix experiment)"
        ),
    )
    parser.add_argument(
        "--detection-json",
        metavar="PATH",
        help=(
            "write the detector score matrix as JSON to PATH (only "
            "meaningful when running the detection experiment)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_policies or "list-policies" in args.experiments:
        print(render_policy_catalog())
        return 0
    if "sweep" in args.experiments:
        if args.experiments != ["sweep"]:
            parser.error("'sweep' cannot be combined with experiment ids")
        if args.jobs < 1:
            parser.error(f"--jobs must be >= 1, got {args.jobs}")
        return run_sweep_command(args)
    if args.dry_run:
        parser.error("--dry-run is only meaningful with the 'sweep' command")
    if args.policies:
        parser.error("--policies is only meaningful with the 'sweep' command")
    if not args.experiments:
        parser.error("no experiment ids given (or use --list-policies)")

    ids = (
        all_experiment_ids()
        if "all" in args.experiments
        else list(dict.fromkeys(args.experiments))
    )
    unknown = [i for i in ids if i not in all_experiment_ids()]
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)}")

    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    ctx = get_context(args.scale, args.seed, args.jobs)
    print(
        f"workload: scale={ctx.scale}, seed={ctx.seed}, {ctx.trace!r}, "
        f"{len(ctx.partition)} filecules"
        + (f", {ctx.jobs} sweep workers" if ctx.jobs > 1 else ""),
        flush=True,
    )
    if args.report:
        from repro.experiments.report import generate_report

        path = generate_report(args.report, ctx, experiment_ids=ids)
        print(f"wrote report to {path}")

    failures = 0
    for experiment_id in ids:
        t0 = time.perf_counter()
        result = run_experiment(experiment_id, ctx)
        elapsed = time.perf_counter() - t0
        print()
        print(result.render())
        print(f"({elapsed:.2f}s)")
        if not result.all_checks_pass:
            failures += 1

    if args.matrix_json:
        if "robustness-matrix" not in ids:
            parser.error("--matrix-json requires running robustness-matrix")
        from repro.experiments.robustness_matrix import (
            build_matrix,
            write_matrix_json,
        )

        # build_matrix is memoized per context: this reuses the run above.
        path = write_matrix_json(args.matrix_json, build_matrix(ctx))
        print(f"wrote robustness matrix to {path}")
    if args.detection_json:
        if "detection" not in ids:
            parser.error("--detection-json requires running detection")
        from repro.experiments.detection import (
            build_detection,
            write_detection_json,
        )

        # build_detection is memoized per context: reuses the run above.
        path = write_detection_json(args.detection_json, build_detection(ctx))
        print(f"wrote detection scores to {path}")
    if failures:
        print(f"\n{failures} experiment(s) with failing checks", file=sys.stderr)
        if args.strict:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
