"""Figure 5: number of filecules per job.

Jobs request datasets; datasets decompose into multiple filecules (the
atoms of overlapping dataset definitions), so a typical job touches more
than one filecule but far fewer filecules than files.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.histograms import log_bins, summarize_distribution
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.util.ascii_plot import ascii_histogram


@register("fig5")
def run(ctx: ExperimentContext) -> ExperimentResult:
    per_job = ctx.partition.filecules_per_job(ctx.trace)
    traced = per_job[ctx.trace.files_per_job > 0]
    summary = summarize_distribution(traced)

    edges = log_bins(1, max(float(traced.max()), 10.0), per_decade=3)
    hist, _ = np.histogram(traced, bins=edges)
    labels = [
        f"{int(np.ceil(lo))}-{int(hi)}" for lo, hi in zip(edges[:-1], edges[1:])
    ]
    rows = tuple((lab, int(c)) for lab, c in zip(labels, hist) if c)
    figure = ascii_histogram(
        [r[0] for r in rows], [r[1] for r in rows],
        title="jobs per filecules-per-job bucket",
    )
    files_mean = float(ctx.trace.files_per_job[ctx.trace.files_per_job > 0].mean())
    checks = {
        "jobs span multiple filecules (mean > 1)": summary.mean > 1,
        "filecules/job far below files/job (>=3x fewer)": (
            summary.mean * 3 <= files_mean
        ),
        "every traced job touches at least one filecule": bool(traced.min() >= 1),
    }
    notes = (
        f"mean filecules/job={summary.mean:.1f} vs mean files/job="
        f"{files_mean:.1f}",
        f"median={summary.median:.0f}, p99={summary.p99:.0f}, "
        f"max={summary.maximum:.0f}",
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Number of filecules per job",
        headers=("filecules/job", "jobs"),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
