"""Figure 10 at hierarchy scale: filecule awareness in a tiered cache.

The flat Figure 10 sweep (:mod:`repro.experiments.fig10`) compares
file-LRU and filecule-LRU in isolation.  Real deployments layer a small
site cache in front of a regional in-network cache in front of the
origin (the ESnet topology of the related work), so the question the
paper's §5 result begs is: does filecule granularity still pay once a
site tier has already skimmed the short-reuse hits off the stream?

This experiment replays the workload through two-tier hierarchies
``site:file-lru@0.5% + regional:<policy>@f% + origin`` with the regional
policy at file vs filecule granularity, sweeping the regional capacity
over the same scale-invariant fractions as the flat sweep.  The score is
:attr:`~repro.engine.HierarchyResult.origin_byte_hit_rate` — the
fraction of demanded bytes some caching tier absorbed, i.e. origin
offload.  Every replay is folded into a
:class:`~repro.obs.metrics.MetricsRegistry` through the shared
``hier_*`` vocabulary, and the tier conservation law
(``tier[k+1].requests == tier[k].misses``) is asserted as a check.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.experiments.fig10 import CAPACITY_FRACTIONS
from repro.hierarchy import (
    HierarchySpec,
    TierCapacity,
    TierSpec,
    fold_hierarchy_metrics,
    hierarchy_sweep,
)
from repro.obs.metrics import MetricsRegistry
from repro.util.ascii_plot import ascii_series
from repro.util.units import TB, format_bytes

#: The two regional-tier contenders, as registry specs.
POLICIES: tuple[str, ...] = ("file-lru", "filecule-lru")

#: Site tier: a fixed, deliberately small file-LRU cache (0.5% of the
#: accessed bytes) that skims short-reuse hits before the regional tier.
SITE_FRACTION = 0.005


def _hierarchy(policy: str, fraction: float) -> HierarchySpec:
    """``site:file-lru@0.5% + regional:<policy>@<fraction> + origin``."""
    return HierarchySpec(
        (
            TierSpec(
                "site",
                "file-lru",
                TierCapacity(SITE_FRACTION * 100.0, relative=True),
            ),
            TierSpec(
                "regional",
                policy,
                TierCapacity(fraction * 100.0, relative=True),
            ),
        )
    )


@register("hierarchy-fig10")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    total = trace.total_bytes()
    specs = {
        (policy, frac): _hierarchy(policy, frac)
        for policy in POLICIES
        for frac in CAPACITY_FRACTIONS
    }
    results = hierarchy_sweep(
        trace,
        list(specs.values()),
        jobs=ctx.jobs,
        partition=ctx.partition,
    )
    by_cell = {
        key: results[str(spec)] for key, spec in specs.items()
    }

    metrics = MetricsRegistry()
    conserved = True
    for res in by_cell.values():
        fold_hierarchy_metrics(res, metrics)
        for upper, lower in zip(res.tiers, res.tiers[1:]):
            conserved &= lower.metrics.requests == upper.metrics.misses
        conserved &= res.origin_requests == res.tiers[-1].metrics.misses

    file_hit = [
        by_cell[("file-lru", f)].origin_byte_hit_rate
        for f in CAPACITY_FRACTIONS
    ]
    cule_hit = [
        by_cell[("filecule-lru", f)].origin_byte_hit_rate
        for f in CAPACITY_FRACTIONS
    ]
    caps = [max(int(f * total), 1) for f in CAPACITY_FRACTIONS]
    rows = tuple(
        (
            format_bytes(cap, 1),
            f"{frac:.1%}",
            file_hit[i],
            cule_hit[i],
            by_cell[("filecule-lru", frac)].request_hit_rate,
        )
        for i, (cap, frac) in enumerate(zip(caps, CAPACITY_FRACTIONS))
    )
    figure = ascii_series(
        [cap / TB for cap in caps],
        {"file-lru": file_hit, "filecule-lru": cule_hit},
        title="origin byte hit rate vs regional cache size (TB)",
    )
    checks = {
        "filecule regional tier offloads >= file at every capacity": all(
            c >= f - 1e-9 for f, c in zip(file_hit, cule_hit)
        ),
        "origin offload grows with regional capacity (both policies)": (
            all(a <= b + 1e-9 for a, b in zip(file_hit, file_hit[1:]))
            and all(a <= b + 1e-9 for a, b in zip(cule_hit, cule_hit[1:]))
        ),
        "tier conservation: tier[k+1].requests == tier[k].misses": conserved,
        "metrics registry carries every replay": (
            metrics.get("hier_replays") == len(specs)
        ),
    }
    largest = CAPACITY_FRACTIONS[-1]
    notes = (
        f"site tier fixed at {SITE_FRACTION:.1%} of accessed bytes "
        f"({format_bytes(int(SITE_FRACTION * total), 1)}), file-LRU — the "
        f"status-quo edge cache the regional tier sits behind",
        f"at the largest regional tier ({largest:.0%}): origin offload "
        f"{by_cell[('filecule-lru', largest)].origin_byte_hit_rate:.3f} "
        f"(filecule) vs "
        f"{by_cell[('file-lru', largest)].origin_byte_hit_rate:.3f} (file) — "
        f"the §5 advantage survives a site tier skimming short reuse",
        f"total accessed data: {format_bytes(total, 1)}",
    )
    return ExperimentResult(
        experiment_id="hierarchy-fig10",
        title="Origin offload in a tiered hierarchy, file vs filecule regional cache",
        headers=(
            "regional",
            "of data",
            "file-lru offload",
            "filecule-lru offload",
            "req hit rate (cule)",
        ),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
