"""Figure 11: time intervals in which a hot filecule is accessed per site.

The paper selects a filecule accessed by 42 users from 6 sites in 634
jobs and draws one first-to-last-request bar per site, concluding that
simultaneous multi-site access is too rare for BitTorrent to pay off.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.transfer.concurrency import concurrency_profile
from repro.transfer.intervals import (
    job_duration_intervals,
    select_hot_filecule,
    site_intervals,
)
from repro.util.ascii_plot import ascii_intervals
from repro.util.timeutil import SECONDS_PER_DAY
from repro.util.units import format_bytes


@register("fig11")
def run(ctx: ExperimentContext) -> ExperimentResult:
    fc = select_hot_filecule(ctx.trace, ctx.partition)
    intervals = site_intervals(ctx.trace, fc)
    rows = tuple(
        (
            iv.label,
            iv.start / SECONDS_PER_DAY,
            iv.end / SECONDS_PER_DAY,
            iv.n_jobs,
            iv.n_users,
        )
        for iv in intervals
    )
    figure = ascii_intervals(
        [(iv.label, iv.start / SECONDS_PER_DAY, iv.end / SECONDS_PER_DAY) for iv in intervals],
        title="per-site access intervals (days)",
    )
    profile = concurrency_profile(intervals)
    running = concurrency_profile(job_duration_intervals(ctx.trace, fc))
    job_counts = sorted((iv.n_jobs for iv in intervals), reverse=True)
    total_jobs = sum(job_counts)
    checks = {
        "hot filecule spans multiple sites": len(intervals) >= 2,
        "access is site-concentrated (top 2 sites >= 70% of jobs, "
        "paper: 94%)": sum(job_counts[:2]) >= 0.7 * total_jobs,
        "one site dominates job submissions": (
            job_counts[0] >= 0.5 * total_jobs
        ),
        "simultaneous *running* jobs stay in the single digits "
        "(time-weighted mean < 3)": running.mean_concurrency < 3,
    }
    notes = (
        f"selected filecule: {fc.n_files} files, "
        f"{format_bytes(fc.size_bytes)}, {fc.n_requests} jobs, "
        f"{len(intervals)} sites "
        f"(paper's example: 2 files, 2.2 GB, 634 jobs, 6 sites)",
        f"sites holding it simultaneously (first-to-last spans): "
        f"max {profile.max_concurrency}, "
        f"time-weighted mean {profile.mean_concurrency:.2f}",
        f"jobs actually *running* on it simultaneously: "
        f"max {running.max_concurrency}, "
        f"time-weighted mean {running.mean_concurrency:.2f} — the number "
        f"that matters for swarming",
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Time intervals a filecule is accessed from various sites",
        headers=("site", "first (day)", "last (day)", "jobs", "users"),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
