"""Figure 9: number of requests per filecule over the entire trace.

Paper: "while thousands of filecules are requested fewer than 50 times,
there are tens of filecules that are requested more than 300 times".
The absolute thresholds scale with trace size; the invariant shape is a
long low-popularity body with a small very-hot head.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.util.ascii_plot import ascii_histogram


@register("fig9")
def run(ctx: ExperimentContext) -> ExperimentResult:
    requests = ctx.partition.requests
    edges = np.array([1, 2, 5, 10, 25, 50, 100, 300, max(301, requests.max() + 1)])
    hist, _ = np.histogram(requests, bins=edges)
    labels = [f"{lo}-{hi - 1}" for lo, hi in zip(edges[:-1], edges[1:])]
    rows = tuple((lab, int(c)) for lab, c in zip(labels, hist))
    figure = ascii_histogram(
        labels, hist.tolist(), title="filecules per request-count bucket"
    )
    cold = float((requests < 50).mean())
    hot = int((requests > 300).sum())
    p50 = float(np.median(requests))
    checks = {
        "majority of filecules are cold (<50 requests)": cold > 0.5,
        "a hot head exists (max >= 10x median requests)": bool(
            requests.max() >= 10 * max(p50, 1)
        ),
        "hot head is small (<5% of filecules above 10x median)": bool(
            float((requests > 10 * max(p50, 1)).mean()) < 0.05
        ),
    }
    notes = (
        f"{int((requests < 50).sum())} filecules requested < 50 times "
        f"({cold:.0%}); {hot} requested > 300 times",
        f"median requests={p50:.0f}, max={int(requests.max())}",
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Number of requests per filecule",
        headers=("requests", "filecules"),
        rows=rows,
        figure_text=figure,
        notes=notes,
        checks=checks,
    )
