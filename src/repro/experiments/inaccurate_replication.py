"""§6 experiment: replication cost under inaccurate filecule identification.

"Because inaccurately identified filecules can only be larger than the
filecules detected using global knowledge, we expect higher replication
costs in terms of used storage and transfer costs."

Two measurements:

1. **Fixed-intent cost** (the paper's sentence, directly): each site
   wants its top-K most-requested true filecules replicated.  With
   global knowledge the cost is exactly their total size; with only local
   knowledge the site must ship the *enclosing local filecules* —
   supersets, by the coarsening theorem — so the byte cost can only be
   equal or larger.  We report the inflation factor per site.

2. **Fixed-budget coverage** (secondary): both planners fill the same
   per-site budget.  Here local knowledge is *not* penalized for
   self-serving placement — a site's coarse filecules are, from its own
   view, perfectly co-accessed — an honest refinement of §6: inaccurate
   identification costs extra bytes for a given *intent*, not necessarily
   worse *self*-coverage per budget.
"""

from __future__ import annotations

import numpy as np

from repro.core.identify import find_filecules
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.replication.evaluate import compare_strategies
from repro.util.units import format_bytes

TOP_K = 10
BUDGET_FRACTION = 0.05

#: Declarative strategy table: registry placement specs, no classes.
STRATEGIES: tuple[str, ...] = ("filecule-rank", "local-filecule-rank")


def _fixed_intent_rows(ctx: ExperimentContext) -> tuple[list[tuple], list[float]]:
    """Per-site byte cost of replicating its top-K true filecules."""
    trace = ctx.trace
    global_p = ctx.partition
    fc_sizes = global_p.sizes_bytes
    rows: list[tuple] = []
    inflations: list[float] = []
    sites = np.unique(trace.job_sites)
    for site in sites:
        sub = trace.subset_jobs(trace.job_sites == site)
        if sub.n_accesses == 0:
            continue
        local = find_filecules(sub)
        # the site's top-K true filecules by its own request counts
        reps = global_p.representative_files()
        local_jobs_per_fc = np.array(
            [
                int((trace.job_sites[trace.file_jobs(int(rep))] == site).sum())
                for rep in reps
            ]
        )
        wanted = np.argsort(local_jobs_per_fc, kind="stable")[::-1][:TOP_K]
        wanted = [int(w) for w in wanted if local_jobs_per_fc[w] > 0]
        if not wanted:
            continue
        intent_bytes = int(fc_sizes[list(wanted)].sum())
        # enclosing local filecules (dedup by local label)
        enclosing: set[int] = set()
        for c in wanted:
            for f in global_p[c].file_ids:
                label = int(local.labels[f])
                if label >= 0:
                    enclosing.add(label)
        shipped_bytes = int(
            sum(local[label].size_bytes for label in enclosing)
        )
        inflation = shipped_bytes / intent_bytes if intent_bytes else 1.0
        inflations.append(inflation)
        rows.append(
            (
                trace.site_names[int(site)],
                len(wanted),
                format_bytes(intent_bytes, 1),
                format_bytes(shipped_bytes, 1),
                inflation,
            )
        )
    return rows, inflations


@register("inaccurate_replication")
def run(ctx: ExperimentContext) -> ExperimentResult:
    trace = ctx.trace
    rows, inflations = _fixed_intent_rows(ctx)
    checks: dict[str, bool] = {
        "shipping cost inflation >= 1 at every site (coarsening theorem)": all(
            x >= 1.0 - 1e-9 for x in inflations
        ),
        "some site pays a real premium (> 1.2x)": any(x > 1.2 for x in inflations),
    }
    # secondary: fixed-budget self-coverage comparison
    budget = max(int(BUDGET_FRACTION * trace.total_bytes()), 1)
    outcomes = compare_strategies(
        trace,
        STRATEGIES,
        budget_bytes_per_site=budget,
    )
    by_name = {o.strategy: o for o in outcomes}
    global_o = by_name["filecule-rank"]
    local_o = by_name["local-filecule-rank"]
    checks["budgeted self-coverage within 20% of global knowledge"] = (
        local_o.local_byte_fraction >= 0.8 * global_o.local_byte_fraction - 0.02
    )
    notes = (
        f"fixed intent (top {TOP_K} true filecules per site): local "
        f"knowledge ships up to {max(inflations, default=1):.1f}x the bytes "
        f"(median {np.median(inflations) if inflations else 1:.2f}x) — the "
        f"§6 prediction, quantified",
        f"fixed budget ({format_bytes(budget, 1)}/site): self-coverage "
        f"{local_o.local_byte_fraction:.2f} (local) vs "
        f"{global_o.local_byte_fraction:.2f} (global), waste "
        f"{1 - local_o.used_fraction:.0%} vs {1 - global_o.used_fraction:.0%} "
        f"— a site's own coarse filecules are co-accessed from its own "
        f"view, so self-serving placement is not penalized",
    )
    return ExperimentResult(
        experiment_id="inaccurate_replication",
        title="Replication cost under inaccurate (per-site) identification (§6)",
        headers=(
            "site",
            "intent filecules",
            "intent bytes",
            "shipped bytes",
            "inflation",
        ),
        rows=tuple(rows),
        notes=notes,
        checks=checks,
    )
