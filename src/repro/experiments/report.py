"""Full-evaluation report generator.

:func:`generate_report` runs every registered experiment against one
context and writes a single self-contained markdown document — the
regenerable counterpart of EXPERIMENTS.md.  Used by
``python -m repro.experiments all`` consumers that want an artifact
rather than terminal output::

    from repro.experiments.report import generate_report
    path = generate_report(output_path="REPORT.md")
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.experiments.base import (
    ExperimentContext,
    all_experiment_ids,
    get_context,
    run_experiment,
)
from repro.util.tables import render_table


def generate_report(
    output_path: str | Path = "REPORT.md",
    ctx: ExperimentContext | None = None,
    experiment_ids: list[str] | None = None,
) -> Path:
    """Run experiments and write a markdown report; returns the path."""
    ctx = ctx or get_context()
    ids = experiment_ids or all_experiment_ids()
    unknown = [i for i in ids if i not in all_experiment_ids()]
    if unknown:
        raise KeyError(f"unknown experiment ids: {unknown}")

    lines: list[str] = [
        "# Reproduction report",
        "",
        f"Workload: scale `{ctx.scale}`, seed `{ctx.seed}` — "
        f"{ctx.trace.n_jobs} jobs, {ctx.trace.n_files} files, "
        f"{ctx.trace.n_accesses} accesses, {len(ctx.partition)} filecules.",
        "",
    ]
    summary_rows = []
    sections: list[str] = []
    for experiment_id in ids:
        t0 = time.perf_counter()
        result = run_experiment(experiment_id, ctx)
        elapsed = time.perf_counter() - t0
        n_checks = len(result.checks)
        n_pass = sum(result.checks.values())
        summary_rows.append(
            [
                experiment_id,
                result.title,
                f"{n_pass}/{n_checks}",
                f"{elapsed:.2f}s",
            ]
        )
        sections.append(f"## {experiment_id}: {result.title}")
        sections.append("")
        sections.append("```")
        sections.append(result.render())
        sections.append("```")
        sections.append("")

    lines.append("## Check summary")
    lines.append("")
    lines.append("```")
    lines.append(
        render_table(
            ["experiment", "title", "checks", "time"], summary_rows
        )
    )
    lines.append("```")
    lines.append("")
    lines.extend(sections)

    output_path = Path(output_path)
    output_path.write_text("\n".join(lines))
    return output_path
